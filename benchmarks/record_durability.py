"""Record durability overheads to BENCH_durability.json and gate on them.

Crash safety must stay affordable, or nobody leaves it on.  Two numbers
are gated (the ``make crash-smoke`` contract):

* **WAL append overhead** — journalling one committed transaction
  (frame + checksum + write + fsync) must be a rounding error next to
  the analysis work it protects.  Gate: at most 5% of the incremental
  propagation baseline (the single-retract time recorded by
  ``benchmarks/record_incremental.py``, recomputed here so the gate is
  self-contained).
* **paper-world recovery** — reopening the paper's full sc1/sc2 sitting
  after a simulated crash (checkpoint + unsaved WAL tail) must stay
  interactive.  Gate: at most 50 ms.

Also recorded, ungated: the end-to-end slowdown of the paper sitting
with a WAL attached versus without, and the pure framing cost with
fsync off (what the checksummed format itself costs).

Run:  PYTHONPATH=src python benchmarks/record_durability.py
Exits non-zero when a gate fails.
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.baselines.closure_baselines import (  # noqa: E402
    drive_assertions_with_closure,
)
from repro.kernel.wal import WriteAheadLog  # noqa: E402
from repro.tool.session import ToolSession  # noqa: E402
from repro.workloads.generator import (  # noqa: E402
    GeneratorConfig,
    generate_schema_pair,
)
from repro.workloads.university import (  # noqa: E402
    PAPER_ASSERTION_CODES,
    PAPER_RELATIONSHIP_CODES,
    build_sc1,
    build_sc2,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_durability.json"

WAL_COMMITS = 300
APPEND_OVERHEAD_CEILING = 0.05  # per-commit WAL cost vs. incremental retract
RECOVERY_CEILING_SECONDS = 0.050

PAPER_DECLARATIONS = [
    ("sc1.Student.Name", "sc2.Grad_student.Name"),
    ("sc1.Student.Name", "sc2.Faculty.Name"),
    ("sc1.Student.GPA", "sc2.Grad_student.GPA"),
    ("sc1.Department.Name", "sc2.Department.Name"),
    ("sc1.Majors.Since", "sc2.Majors.Since"),
]

#: A commit record the size of a real declare-equivalent transaction.
SAMPLE_EVENTS = [
    {
        "offset": 1,
        "txn": 1,
        "scope": "registry",
        "action": "declare_equivalent",
        "payload": {
            "first": "sc1.Student.Name",
            "second": "sc2.Grad_student.Name",
        },
        "objects": [["sc1", "Student"], ["sc2", "Grad_student"]],
    }
]


def repo_sha() -> str:
    """The repo's HEAD SHA, or ``unknown`` outside a git checkout."""
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def schema_sizes(*schemas) -> list[dict]:
    """Per-schema size metadata: object classes and attribute counts."""
    return [
        {
            "name": schema.name,
            "object_classes": len(schema),
            "attributes": schema.attribute_count(),
        }
        for schema in schemas
    ]


def measure_wal_append(sync: bool) -> dict:
    """Mean seconds per committed transaction hitting the WAL."""
    with tempfile.TemporaryDirectory() as tmp:
        wal = WriteAheadLog(Path(tmp) / "wal", sync=sync)
        started = time.perf_counter()
        for index in range(WAL_COMMITS):
            events = [dict(SAMPLE_EVENTS[0], offset=index + 1)]
            wal.commit(events)
        elapsed = time.perf_counter() - started
        wal.close()
    return {
        "commits": WAL_COMMITS,
        "fsync": sync,
        "total_seconds": round(elapsed, 6),
        "per_commit_seconds": elapsed / WAL_COMMITS,
    }


def measure_incremental_baseline() -> dict:
    """One incremental retract on the EXP-CLO workload (the PR-1 baseline)."""
    from repro.assertions.kinds import Source

    pair = generate_schema_pair(
        GeneratorConfig(seed=17, concepts=16, overlap=0.6, category_rate=0.5)
    )
    network, _ = drive_assertions_with_closure(
        pair.first, pair.second, pair.truth
    )
    specified = [
        a for a in network.specified_assertions() if a.source is Source.DDA
    ]
    target = specified[len(specified) // 2]
    started = time.perf_counter()
    network.retract(target.first, target.second)
    elapsed = time.perf_counter() - started
    return {
        "workload": "bench_exp_closure (concepts=16, one retract)",
        "seconds": elapsed,
    }


def drive_paper_sitting(session: ToolSession) -> None:
    """The paper's sc1/sc2 DDA flow against an already-schema'd session."""
    session.select_pair("sc1", "sc2")
    for first, second in PAPER_DECLARATIONS:
        session.registry.declare_equivalent(first, second)
    for first, second, code in PAPER_ASSERTION_CODES:
        session.analysis.specify(first, second, code)
    for first, second, code in PAPER_RELATIONSHIP_CODES:
        session.analysis.specify(first, second, code, relationships=True)
    session.integrate()


def measure_paper_sitting(durable: bool, root: Path) -> float:
    """Wall time of the full paper sitting, with or without a WAL."""
    if durable:
        session = ToolSession.open(root / "durable.json")
    else:
        session = ToolSession()
    session.adopt_schema(build_sc1())
    session.adopt_schema(build_sc2())
    started = time.perf_counter()
    drive_paper_sitting(session)
    return time.perf_counter() - started


def measure_recovery(root: Path) -> dict:
    """Crash the paper sitting mid-way, time the reopen."""
    path = root / "recover.json"
    session = ToolSession.open(path)
    session.adopt_schema(build_sc1())
    session.adopt_schema(build_sc2())
    session.select_pair("sc1", "sc2")
    for first, second in PAPER_DECLARATIONS[:3]:
        session.registry.declare_equivalent(first, second)
    session.save(path)  # checkpoint mid-sitting
    for first, second in PAPER_DECLARATIONS[3:]:
        session.registry.declare_equivalent(first, second)
    for first, second, code in PAPER_ASSERTION_CODES:
        session.analysis.specify(first, second, code)
    session.integrate()
    schemas = list(session.schemas.values())
    del session  # crash: the tail past the checkpoint lives only in the WAL

    started = time.perf_counter()
    recovered = ToolSession.open(path)
    elapsed = time.perf_counter() - started
    report = recovered.last_recovery
    return {
        "schemas": schema_sizes(*schemas),
        "events_replayed": report.events_replayed,
        "source": report.source,
        "seconds": elapsed,
    }


def main() -> int:
    synced = measure_wal_append(sync=True)
    framing_only = measure_wal_append(sync=False)
    baseline = measure_incremental_baseline()
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        plain_seconds = measure_paper_sitting(durable=False, root=root)
        durable_seconds = measure_paper_sitting(durable=True, root=root)
        recovery = measure_recovery(root)

    append_ratio = synced["per_commit_seconds"] / max(
        baseline["seconds"], 1e-12
    )
    gates = {
        "wal_append_overhead": {
            "ratio": round(append_ratio, 6),
            "ceiling": APPEND_OVERHEAD_CEILING,
            "passed": append_ratio <= APPEND_OVERHEAD_CEILING,
        },
        "paper_recovery": {
            "seconds": round(recovery["seconds"], 6),
            "ceiling_seconds": RECOVERY_CEILING_SECONDS,
            "passed": recovery["seconds"] <= RECOVERY_CEILING_SECONDS,
        },
    }
    report = {
        "description": (
            "WAL + recovery overheads and smoke gates; "
            "see docs/DURABILITY.md and make crash-smoke"
        ),
        "repro_sha": repo_sha(),
        "wal_append": {
            **synced,
            "per_commit_seconds": round(synced["per_commit_seconds"], 9),
        },
        "wal_framing_only": {
            **framing_only,
            "per_commit_seconds": round(
                framing_only["per_commit_seconds"], 9
            ),
        },
        "incremental_baseline": {
            **baseline,
            "seconds": round(baseline["seconds"], 6),
        },
        "paper_sitting": {
            "plain_seconds": round(plain_seconds, 6),
            "durable_seconds": round(durable_seconds, 6),
            "slowdown": round(durable_seconds / max(plain_seconds, 1e-12), 4),
        },
        "recovery": {
            **recovery,
            "seconds": round(recovery["seconds"], 6),
        },
        "gates": gates,
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {OUTPUT}")
    print(json.dumps(report, indent=2))
    failed = [name for name, gate in gates.items() if not gate["passed"]]
    if failed:
        print(f"GATE FAILURE: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
