"""Telemetry smoke gate: a real server, a real scrape, two live streams.

Boots the service on an ephemeral port, then:

1. scrapes ``GET /v1/metrics`` and strictly parses the Prometheus text
   exposition (malformed output fails the gate);
2. seeds a session with the paper's sc1/sc2 schemas and correlates one
   ``X-Request-Id`` through a background integration job while consuming
   **both** SSE streams (``…/events/stream`` and ``…/spans/stream``) to
   completion over real sockets;
3. fails on zero streamed spans, zero streamed kernel events, a lost
   request id, or a second scrape that does not parse / does not show
   the request traffic.

Results are recorded under the ``telemetry_smoke`` key of
``BENCH_obs.json``.

Run: PYTHONPATH=src python benchmarks/telemetry_smoke.py
"""

from __future__ import annotations

import asyncio
import json
import socket
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.ecr.ddl import to_ddl  # noqa: E402
from repro.obs.telemetry import parse_prometheus  # noqa: E402
from repro.service import ServiceApp, TenantAuth  # noqa: E402
from repro.service.app import serve  # noqa: E402
from repro.workloads.university import build_sc1, build_sc2  # noqa: E402

from record_incremental import repo_sha  # noqa: E402

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_obs.json"
TOKEN = "smoke-token"
REQUEST_ID = "req-telemetry-smoke"


class Server:
    """The service on an ephemeral port, served from a worker thread."""

    def __init__(self, root: Path) -> None:
        self.app = ServiceApp(
            root, auth=TenantAuth.from_tokens({TOKEN: "smoke"})
        )
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            self.port = probe.getsockname()[1]
        self._loop = asyncio.new_event_loop()
        self._task: dict[str, asyncio.Task] = {}
        started = threading.Event()

        async def main() -> None:
            ready = asyncio.Event()
            self._task["serve"] = asyncio.ensure_future(
                serve(self.app, "127.0.0.1", self.port, ready=ready)
            )
            await ready.wait()
            started.set()
            try:
                await self._task["serve"]
            except asyncio.CancelledError:
                pass

        self._thread = threading.Thread(
            target=lambda: self._loop.run_until_complete(main())
        )
        self._thread.start()
        if not started.wait(timeout=30):
            raise RuntimeError("service failed to start")

    def stop(self) -> None:
        self._loop.call_soon_threadsafe(self._task["serve"].cancel)
        self._thread.join(timeout=30)
        self._loop.close()
        self.app.close()


def http(
    port: int,
    method: str,
    path: str,
    body: dict | None = None,
    *,
    headers: dict[str, str] | None = None,
    token: str | None = TOKEN,
) -> tuple[int, bytes]:
    data = json.dumps(body).encode("utf-8") if body is not None else b""
    lines = [f"{method} {path} HTTP/1.1", "host: localhost"]
    if token:
        lines.append(f"authorization: Bearer {token}")
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    if data:
        lines.append(f"content-length: {len(data)}")
    lines.append("connection: close")
    raw = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + data
    with socket.create_connection(("127.0.0.1", port), timeout=30) as sock:
        sock.sendall(raw)
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    answer = b"".join(chunks)
    head, _, payload = answer.partition(b"\r\n\r\n")
    return int(head.split()[1]), payload


class SseConsumer:
    """Reads one SSE stream over a raw socket until the server closes it."""

    def __init__(self, port: int, path: str) -> None:
        self.path = path
        self.body = b""
        self.opened = threading.Event()
        self._thread = threading.Thread(
            target=self._consume, args=(port,), daemon=True
        )
        self._thread.start()

    def _consume(self, port: int) -> None:
        request = (
            f"GET {self.path} HTTP/1.1\r\nhost: localhost\r\n"
            f"authorization: Bearer {TOKEN}\r\n\r\n"
        ).encode("latin-1")
        with socket.create_connection(
            ("127.0.0.1", port), timeout=120
        ) as sock:
            sock.sendall(request)
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                self.body += chunk
                if b": stream open" in self.body:
                    self.opened.set()

    def frames(self, timeout: float = 120.0) -> list[dict]:
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise RuntimeError(f"stream {self.path} did not terminate")
        _, _, payload = self.body.partition(b"\r\n\r\n")
        frames = []
        for block in payload.decode("utf-8").split("\n\n"):
            block = block.strip()
            if not block or block.startswith(":"):
                continue
            frame: dict = {}
            for line in block.splitlines():
                key, _, value = line.partition(": ")
                frame[key] = value
            if "data" in frame:
                frame["data"] = json.loads(frame["data"])
            frames.append(frame)
        return frames


def fail(message: str) -> int:
    print(f"telemetry-smoke FAILED: {message}", file=sys.stderr)
    return 1


def main() -> int:
    import tempfile

    with tempfile.TemporaryDirectory() as root:
        server = Server(Path(root))
        try:
            return run(server)
        finally:
            server.stop()


def run(server: Server) -> int:
    port = server.port

    # 1) first scrape: must be valid exposition text
    status, body = http(port, "GET", "/v1/metrics", token=None)
    if status != 200:
        return fail(f"/v1/metrics answered {status}")
    try:
        first_scrape = parse_prometheus(body.decode("utf-8"))
    except ValueError as exc:
        return fail(f"first scrape is malformed: {exc}")

    # 2) seed a session with the paper schemas + the canonical DDA calls
    steps = [
        ("POST", "/v1/sessions", {"session_id": "s1"}),
        ("POST", "/v1/sessions/s1/schemas", {"ddl": to_ddl(build_sc1())}),
        ("POST", "/v1/sessions/s1/schemas", {"ddl": to_ddl(build_sc2())}),
        (
            "POST",
            "/v1/sessions/s1/equivalences",
            {
                "first": "sc1.Student.Name",
                "second": "sc2.Grad_student.Name",
            },
        ),
        (
            "POST",
            "/v1/sessions/s1/equivalences",
            {
                "first": "sc1.Department.Name",
                "second": "sc2.Department.Name",
            },
        ),
        (
            "POST",
            "/v1/sessions/s1/assertions",
            {
                "first": "sc1.Department",
                "second": "sc2.Department",
                "kind": "EQUALS",
            },
        ),
        (
            "POST",
            "/v1/sessions/s1/assertions",
            {
                "first": "sc1.Student",
                "second": "sc2.Grad_student",
                "kind": "CONTAINS",
            },
        ),
    ]
    for method, path, payload in steps:
        status, body = http(port, method, path, payload)
        if status >= 400:
            return fail(f"{method} {path} answered {status}: {body!r}")

    # 3) open both streams, then drive one background integration
    events = SseConsumer(
        port, "/v1/sessions/s1/events/stream?idle_s=3&timeout_s=90"
    )
    spans = SseConsumer(
        port, "/v1/sessions/s1/spans/stream?idle_s=3&timeout_s=90"
    )
    for consumer in (events, spans):
        if not consumer.opened.wait(timeout=30):
            return fail(f"stream {consumer.path} never opened")

    status, body = http(
        port,
        "POST",
        "/v1/sessions/s1/integrate",
        {"first": "sc1", "second": "sc2", "mode": "background"},
        headers={"x-request-id": REQUEST_ID},
    )
    if status != 202:
        return fail(f"background integrate answered {status}: {body!r}")
    job = json.loads(body)
    if job.get("request_id") != REQUEST_ID:
        return fail(
            f"job lost the request id: {job.get('request_id')!r}"
        )
    deadline = time.monotonic() + 60
    while True:
        status, body = http(port, "GET", f"/v1/jobs/{job['job_id']}")
        state = json.loads(body)["state"]
        if state in ("succeeded", "failed", "cancelled"):
            break
        if time.monotonic() > deadline:
            return fail("background integration never finished")
        time.sleep(0.1)
    if state != "succeeded":
        return fail(f"background integration {state}: {body!r}")

    # 4) both streams must have carried real, correlated traffic
    event_frames = [
        frame["data"]
        for frame in events.frames()
        if frame.get("event") == "kernel-event"
    ]
    span_frames = [
        frame["data"]
        for frame in spans.frames()
        if frame.get("event") == "span"
    ]
    if not event_frames:
        return fail("events stream delivered zero kernel events")
    if not span_frames:
        return fail("spans stream delivered zero spans")
    correlated_events = [
        frame
        for frame in event_frames
        if frame["request_id"] == REQUEST_ID
    ]
    correlated_spans = [
        frame
        for frame in span_frames
        if frame["request_id"] == REQUEST_ID
    ]
    if not correlated_events:
        return fail("no kernel event carried the job's request id")
    if not correlated_spans:
        return fail("no span carried the job's request id")

    # 5) second scrape: still valid, and the traffic is visible
    status, body = http(port, "GET", "/v1/metrics", token=None)
    try:
        second_scrape = parse_prometheus(body.decode("utf-8"))
    except ValueError as exc:
        return fail(f"second scrape is malformed: {exc}")
    requests_seen = sum(
        value
        for series, value in second_scrape.items()
        if series.startswith("repro_http_requests_total{")
    )
    if requests_seen <= sum(
        value
        for series, value in first_scrape.items()
        if series.startswith("repro_http_requests_total{")
    ):
        return fail("request counters did not advance between scrapes")
    streamed = sum(
        value
        for series, value in second_scrape.items()
        if series.startswith("repro_sse_events_total{")
    )
    if streamed <= 0:
        return fail("SSE delivery counters stayed at zero")

    record = {
        "repro_sha": repo_sha(),
        "request_id": REQUEST_ID,
        "scrape_series": len(second_scrape),
        "events_streamed": len(event_frames),
        "spans_streamed": len(span_frames),
        "correlated_events": len(correlated_events),
        "correlated_spans": len(correlated_spans),
    }
    bench = json.loads(OUTPUT.read_text()) if OUTPUT.exists() else {}
    bench["telemetry_smoke"] = record
    OUTPUT.write_text(json.dumps(bench, indent=2, sort_keys=True) + "\n")
    print(
        "telemetry-smoke OK: "
        f"{len(second_scrape)} series scraped, "
        f"{len(event_frames)} kernel events + {len(span_frames)} spans "
        f"streamed, request id {REQUEST_ID} joined "
        f"{len(correlated_events)}/{len(correlated_spans)} of them"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
