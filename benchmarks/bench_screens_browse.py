"""SCR10-12 — the browse screens over the integrated schema.

Replays the browse part of a session (Screens 10, 11, 12a, 12b) and checks
the rendered frames carry the paper's content: the Screen 10 column counts,
Screen 11's parent/child for Student, and the two Component Attribute
screens for D_Name.
"""

from repro.analysis.report import Table
from repro.tool.app import run_script
from repro.tool.session import ToolSession
from repro.ecr.schema import ObjectRef
from repro.workloads.university import (
    PAPER_ASSERTION_CODES,
    PAPER_RELATIONSHIP_CODES,
    build_sc1,
    build_sc2,
)

BROWSE_SCRIPT = [
    "6",
    "Student c", "q",
    "Student a", "D_Name", "n", "q", "q",
    "E_Department e", "v", "q", "q",
    "E_Stud_Majo r", "p", "q", "q",
    "x",
    "E",
]


def make_ready_session():
    session = ToolSession()
    session.adopt_schema(build_sc1())
    session.adopt_schema(build_sc2())
    session.select_pair("sc1", "sc2")
    for first, second in [
        ("sc1.Student.Name", "sc2.Grad_student.Name"),
        ("sc1.Student.Name", "sc2.Faculty.Name"),
        ("sc1.Student.GPA", "sc2.Grad_student.GPA"),
        ("sc1.Department.Name", "sc2.Department.Name"),
        ("sc1.Majors.Since", "sc2.Majors.Since"),
    ]:
        session.registry.declare_equivalent(first, second)
    for first, second, code in PAPER_ASSERTION_CODES:
        session.object_network.specify(
            ObjectRef.parse(first), ObjectRef.parse(second), code
        )
    for first, second, code in PAPER_RELATIONSHIP_CODES:
        session.relationship_network.specify(
            ObjectRef.parse(first), ObjectRef.parse(second), code
        )
    return session


def run_browse():
    return run_script(BROWSE_SCRIPT, make_ready_session())


def test_screens_10_to_12_browse(benchmark):
    app, transcript = benchmark(run_browse)
    checks = [
        ("Screen 10 title", "Object Class Screen"),
        ("Screen 10 counts", "Entities(2)"),
        ("Screen 10 counts", "Categories(3)"),
        ("Screen 10 counts", "Relationships(2)"),
        ("Screen 11 title", "Category Screen"),
        ("Screen 11 parent", "D_Stud_Facu (e)"),
        ("Screen 11 child", "Grad_student (c)"),
        ("Screen 12a", "(1 of 2)"),
        ("Screen 12b", "(2 of 2)"),
        ("Screen 12a schema", "Schema Name      : sc1"),
        ("Screen 12b schema", "Schema Name      : sc2"),
        ("Equivalent Screen", "sc1.Department"),
        ("Participating Objects", "Participating Objects In Relationship"),
    ]
    table = Table("SCR10-12: browse frames", ["check", "content", "seen"])
    for label, needle in checks:
        table.add_row(label, needle, "yes" if needle in transcript else "NO")
    print()
    print(table)
    for _, needle in checks:
        assert needle in transcript, needle
    assert app.finished
