"""EXP-CON — does consistency checking catch contradictory assertions?

We corrupt the oracle DDA's answers at a known rate and measure how many
contradictions the network rejects.  The no-closure baseline records the
same answers blindly and, having no consistency check, detects nothing.

Shape expected: detections grow with the error rate; the baseline stays
at zero detections for every rate.
"""

from repro.analysis.report import Table
from repro.baselines.closure_baselines import (
    drive_assertions_with_closure,
    drive_assertions_without_closure,
)
from repro.workloads.generator import GeneratorConfig, generate_schema_pair

ERROR_RATES = (0.0, 0.1, 0.2, 0.4)
SEEDS = range(3)


def run_experiment():
    pair = generate_schema_pair(
        GeneratorConfig(seed=23, concepts=10, overlap=0.7, category_rate=0.5)
    )
    rows = []
    for rate in ERROR_RATES:
        detected = 0
        baseline_detected = 0
        for seed in SEEDS:
            _, stats = drive_assertions_with_closure(
                pair.first, pair.second, pair.truth, error_rate=rate, seed=seed
            )
            detected += stats.conflicts
            baseline = drive_assertions_without_closure(
                pair.first, pair.second, pair.truth, error_rate=rate, seed=seed
            )
            baseline_detected += baseline.conflicts
        rows.append((rate, detected / len(SEEDS), baseline_detected))
    return rows


def test_exp_conflict_detection(benchmark):
    rows = benchmark(run_experiment)
    table = Table(
        "EXP-CON: contradictions detected vs. injected error rate",
        ["error rate", "mean conflicts detected (tool)",
         "conflicts detected (baseline)"],
    )
    for rate, detected, baseline in rows:
        table.add_row(f"{rate:.0%}", detected, baseline)
    print()
    print(table)
    by_rate = {rate: detected for rate, detected, _ in rows}
    assert by_rate[0.0] == 0.0  # truthful oracle never contradicts
    assert by_rate[0.4] > 0.0  # heavy corruption is caught
    assert by_rate[0.4] >= by_rate[0.1]
    assert all(baseline == 0 for *_, baseline in rows)
