"""Measure the observability layer's overhead and record BENCH_obs.json.

Runs the EXP-CLO workload (the generated 16-concept pair of
``bench_exp_closure.py``, oracle-driven equivalences and assertions, one
retract/re-specify edit) plus the paper's sc1/sc2 integration — once with
tracing disabled, once enabled — and records both timings, the overhead
ratio, the cost of a disabled ``span()`` call, and the per-phase span
summary from :mod:`repro.obs.report`.

Run:    PYTHONPATH=src python benchmarks/record_obs.py
Smoke:  PYTHONPATH=src python benchmarks/record_obs.py --smoke
        (single traced run; exits non-zero if any instrumented phase
        emitted zero spans)
"""

from __future__ import annotations

import json
import sys
import time
import timeit
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.assertions.kinds import Source  # noqa: E402
from repro.baselines.closure_baselines import (  # noqa: E402
    drive_assertions_with_closure,
)
from repro.equivalence.session import AnalysisSession  # noqa: E402
from repro.obs.report import render_text, summarize  # noqa: E402
from repro.obs.trace import Tracer, span, tracing  # noqa: E402
from repro.tool.app import run_script  # noqa: E402
from repro.tool.session import ToolSession  # noqa: E402
from repro.workloads.generator import (  # noqa: E402
    GeneratorConfig,
    generate_schema_pair,
)
from repro.workloads.oracle import OracleDda  # noqa: E402
from repro.workloads.university import build_sc1, build_sc2  # noqa: E402

from record_incremental import repo_sha, schema_sizes  # noqa: E402

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_obs.json"

CONFIG = GeneratorConfig(seed=17, concepts=16, overlap=0.6, category_rate=0.5)

#: Every instrumented phase; the smoke run fails if any emits zero spans.
SMOKE_PHASES = ("phase1", "phase2", "phase3", "phase4", "tool")

SCREENS_SCRIPT = [
    "2", "sc1 sc2",
    "Student Grad_student", "A Name Name", "A GPA GPA", "E",
    "Department Department", "A Name Name", "E",
    "E",
    "E",
]


def run_workload() -> AnalysisSession:
    """One full pass over every instrumented surface.

    The EXP-CLO part exercises phases 1-3 at benchmark scale; the sc1/sc2
    tail covers the tool screens and a phase-4 integration.
    """
    pair = generate_schema_pair(CONFIG)
    session = AnalysisSession([pair.first, pair.second])
    OracleDda(pair.truth).declare_all_equivalences(session.registry)
    session.acs(pair.first.name, pair.second.name).equivalent_pairs()
    session.candidate_pairs(pair.first.name, pair.second.name)
    network, _ = drive_assertions_with_closure(
        pair.first, pair.second, pair.truth
    )
    specified = [
        a for a in network.specified_assertions() if a.source is Source.DDA
    ]
    target = specified[len(specified) // 2]
    network.retract(target.first, target.second)
    network.specify(target.first, target.second, target.kind)

    tool = ToolSession()
    tool.adopt_schema(build_sc1())
    tool.adopt_schema(build_sc2())
    run_script(SCREENS_SCRIPT, tool)
    tool.analysis.declare_equivalent("sc1.Majors.Since", "sc2.Majors.Since")
    tool.analysis.specify("sc1.Department", "sc2.Department", 1)
    tool.analysis.specify("sc1.Student", "sc2.Grad_student", 3)
    tool.analysis.specify("sc1.Majors", "sc2.Majors", 1, relationships=True)
    tool.analysis.integrate("sc1", "sc2")
    session._exp_clo_pair = pair  # stashed for metadata reporting
    return session


def time_workload(repeats: int, traced: bool) -> tuple[float, "Tracer | None"]:
    """Best-of-``repeats`` wall time; returns the last tracer when traced."""
    best = float("inf")
    tracer = None
    for _ in range(repeats):
        started = time.perf_counter()
        if traced:
            with tracing() as tracer:
                run_workload()
        else:
            run_workload()
        best = min(best, time.perf_counter() - started)
    return best, tracer


def disabled_span_cost_ns() -> float:
    """Nanoseconds per ``span()`` call with no tracer installed."""
    iterations = 200_000
    seconds = timeit.timeit(
        lambda: span("phase2.ocs.recompute"), number=iterations
    )
    return seconds / iterations * 1e9


def missing_phases(tracer: Tracer) -> list[str]:
    present = {name.split(".", 1)[0] for name in tracer.names()}
    return [phase for phase in SMOKE_PHASES if phase not in present]


def smoke() -> int:
    with tracing() as tracer:
        run_workload()
    print(render_text(summarize(tracer)))
    missing = missing_phases(tracer)
    if missing:
        print(
            "trace-smoke FAILED: no spans from "
            + ", ".join(missing),
            file=sys.stderr,
        )
        return 1
    print(
        f"trace-smoke OK: {len(tracer.spans)} spans across "
        f"{len(SMOKE_PHASES)} instrumented phases"
    )
    return 0


def main(argv: list[str]) -> int:
    if "--smoke" in argv:
        return smoke()
    repeats = 5
    disabled_seconds, _ = time_workload(repeats, traced=False)
    enabled_seconds, tracer = time_workload(repeats, traced=True)
    overhead_ratio = enabled_seconds / disabled_seconds - 1.0
    pair = generate_schema_pair(CONFIG)
    report = {
        "description": (
            "Tracing overhead on the EXP-CLO workload plus the sc1/sc2 "
            "integration; see docs/OBSERVABILITY.md"
        ),
        "repro_sha": repo_sha(),
        "workload": {
            "generator": {
                "seed": CONFIG.seed,
                "concepts": CONFIG.concepts,
                "overlap": CONFIG.overlap,
                "category_rate": CONFIG.category_rate,
            },
            "schemas": schema_sizes(
                pair.first, pair.second, build_sc1(), build_sc2()
            ),
        },
        "repeats": repeats,
        "disabled_seconds": round(disabled_seconds, 6),
        "enabled_seconds": round(enabled_seconds, 6),
        "overhead_ratio": round(overhead_ratio, 4),
        "disabled_span_call_ns": round(disabled_span_cost_ns(), 1),
        "spans_recorded": len(tracer.spans),
        "missing_phases": missing_phases(tracer),
        "summary": summarize(tracer),
    }
    OUTPUT.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {OUTPUT}")
    print(
        f"disabled {disabled_seconds * 1e3:.1f} ms, "
        f"enabled {enabled_seconds * 1e3:.1f} ms, "
        f"overhead {overhead_ratio:+.1%}, "
        f"disabled span() {report['disabled_span_call_ns']:.0f} ns"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
