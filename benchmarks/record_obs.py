"""Measure the observability layer's overhead and record BENCH_obs.json.

Runs the EXP-CLO workload (the generated 16-concept pair of
``bench_exp_closure.py``, oracle-driven equivalences and assertions, one
retract/re-specify edit) plus the paper's sc1/sc2 integration — once with
tracing disabled, once enabled — and records both timings, the overhead
ratio, the cost of a disabled ``span()`` call, and the per-phase span
summary from :mod:`repro.obs.report`.

Run:    PYTHONPATH=src python benchmarks/record_obs.py
Smoke:  PYTHONPATH=src python benchmarks/record_obs.py --smoke
        (single traced run; exits non-zero if any instrumented phase
        emitted zero spans)
"""

from __future__ import annotations

import json
import sys
import time
import timeit
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.assertions.kinds import Source  # noqa: E402
from repro.baselines.closure_baselines import (  # noqa: E402
    drive_assertions_with_closure,
)
from repro.ecr.ddl import to_ddl  # noqa: E402
from repro.equivalence.session import AnalysisSession  # noqa: E402
from repro.obs.report import render_text, summarize  # noqa: E402
from repro.obs.trace import Tracer, span, tracing  # noqa: E402
from repro.tool.app import run_script  # noqa: E402
from repro.tool.session import ToolSession  # noqa: E402
from repro.workloads.generator import (  # noqa: E402
    GeneratorConfig,
    generate_schema_pair,
)
from repro.workloads.oracle import OracleDda  # noqa: E402
from repro.workloads.university import build_sc1, build_sc2  # noqa: E402

from record_incremental import repo_sha, schema_sizes  # noqa: E402

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_obs.json"

CONFIG = GeneratorConfig(seed=17, concepts=16, overlap=0.6, category_rate=0.5)

#: Every instrumented phase; the smoke run fails if any emits zero spans.
SMOKE_PHASES = ("phase1", "phase2", "phase3", "phase4", "tool")

SCREENS_SCRIPT = [
    "2", "sc1 sc2",
    "Student Grad_student", "A Name Name", "A GPA GPA", "E",
    "Department Department", "A Name Name", "E",
    "E",
    "E",
]


def run_workload() -> AnalysisSession:
    """One full pass over every instrumented surface.

    The EXP-CLO part exercises phases 1-3 at benchmark scale; the sc1/sc2
    tail covers the tool screens and a phase-4 integration.
    """
    pair = generate_schema_pair(CONFIG)
    session = AnalysisSession([pair.first, pair.second])
    OracleDda(pair.truth).declare_all_equivalences(session.registry)
    session.acs(pair.first.name, pair.second.name).equivalent_pairs()
    session.candidate_pairs(pair.first.name, pair.second.name)
    network, _ = drive_assertions_with_closure(
        pair.first, pair.second, pair.truth
    )
    specified = [
        a for a in network.specified_assertions() if a.source is Source.DDA
    ]
    target = specified[len(specified) // 2]
    network.retract(target.first, target.second)
    network.specify(target.first, target.second, target.kind)

    tool = ToolSession()
    tool.adopt_schema(build_sc1())
    tool.adopt_schema(build_sc2())
    run_script(SCREENS_SCRIPT, tool)
    tool.analysis.declare_equivalent("sc1.Majors.Since", "sc2.Majors.Since")
    tool.analysis.specify("sc1.Department", "sc2.Department", 1)
    tool.analysis.specify("sc1.Student", "sc2.Grad_student", 3)
    tool.analysis.specify("sc1.Majors", "sc2.Majors", 1, relationships=True)
    tool.analysis.integrate("sc1", "sc2")
    session._exp_clo_pair = pair  # stashed for metadata reporting
    return session


def time_workload(repeats: int, traced: bool) -> tuple[float, "Tracer | None"]:
    """Best-of-``repeats`` wall time; returns the last tracer when traced."""
    best = float("inf")
    tracer = None
    for _ in range(repeats):
        started = time.perf_counter()
        if traced:
            with tracing() as tracer:
                run_workload()
        else:
            run_workload()
        best = min(best, time.perf_counter() - started)
    return best, tracer


def disabled_span_cost_ns() -> float:
    """Nanoseconds per ``span()`` call with no tracer installed."""
    iterations = 200_000
    seconds = timeit.timeit(
        lambda: span("phase2.ocs.recompute"), number=iterations
    )
    return seconds / iterations * 1e9


class _BenchServer:
    """A real service process (``python -m repro.service``) on a free port.

    Subprocess isolation matters here: three servers sharing one
    interpreter contend on the GIL and smear each other's timings.
    """

    def __init__(self, root: str, *, telemetry: bool) -> None:
        import os
        import socket
        import subprocess

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            self.port = probe.getsockname()[1]
        argv = [
            sys.executable, "-m", "repro.service",
            "--root", root,
            "--port", str(self.port),
            "--token", "bench:tok",
            "--log-level", "warning",
        ]
        if not telemetry:
            argv.append("--no-telemetry")
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(Path(__file__).resolve().parent.parent / "src")
            + os.pathsep
            + env.get("PYTHONPATH", "")
        )
        self.proc = subprocess.Popen(
            argv,
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        deadline = time.time() + 30
        while True:
            try:
                client = _BenchClient(self.port)
                status, _ = client.request("GET", "/v1/healthz")
                client.close()
                if status == 200:
                    return
            except OSError:
                pass
            if self.proc.poll() is not None:
                raise RuntimeError("bench server exited during startup")
            if time.time() > deadline:
                self.stop()
                raise RuntimeError("bench server never became ready")
            time.sleep(0.05)

    def stop(self) -> None:
        self.proc.terminate()
        try:
            self.proc.wait(timeout=30)
        except Exception:
            self.proc.kill()
            self.proc.wait(timeout=30)


class _SseDrain:
    """A live spans-stream consumer: opens the SSE socket, drains it."""

    def __init__(self, port: int, sid: str) -> None:
        import socket
        import threading

        self.sock = socket.create_connection(
            ("127.0.0.1", port), timeout=30
        )
        self.sock.sendall(
            (
                f"GET /v1/sessions/{sid}/spans/stream"
                "?timeout_s=600&idle_s=600 HTTP/1.1\r\n"
                "host: bench\r\nauthorization: Bearer tok\r\n\r\n"
            ).encode("latin-1")
        )
        self._opened = threading.Event()
        self._thread = threading.Thread(target=self._drain, daemon=True)
        self._thread.start()
        if not self._opened.wait(timeout=30):
            raise RuntimeError("spans stream never opened")

    def _drain(self) -> None:
        seen = b""
        try:
            while True:
                chunk = self.sock.recv(65536)
                if not chunk:
                    return
                if not self._opened.is_set():
                    seen += chunk
                    if b": stream open" in seen:
                        self._opened.set()
        except OSError:
            return

    def close(self) -> None:
        self.sock.close()
        self._thread.join(timeout=10)


class _BenchClient:
    """One keep-alive HTTP/1.1 connection to a served bench app."""


class _BenchClient:
    """One keep-alive HTTP/1.1 connection to a served bench app."""

    def __init__(self, port: int) -> None:
        import socket

        self.sock = socket.create_connection(
            ("127.0.0.1", port), timeout=30
        )
        self.buffer = b""

    def request(
        self, method: str, path: str, body: dict | None = None
    ) -> tuple[int, bytes]:
        payload = (
            json.dumps(body).encode("utf-8") if body is not None else b""
        )
        head = [
            f"{method} {path} HTTP/1.1",
            "host: bench",
            "authorization: Bearer tok",
        ]
        if payload:
            head.append(f"content-length: {len(payload)}")
        self.sock.sendall(
            ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + payload
        )
        while b"\r\n\r\n" not in self.buffer:
            self.buffer += self.sock.recv(65536)
        raw_head, _, self.buffer = self.buffer.partition(b"\r\n\r\n")
        status = int(raw_head.split()[1])
        length = 0
        for line in raw_head.split(b"\r\n")[1:]:
            name, _, value = line.partition(b":")
            if name.strip().lower() == b"content-length":
                length = int(value)
        while len(self.buffer) < length:
            self.buffer += self.sock.recv(65536)
        body_bytes = self.buffer[:length]
        self.buffer = self.buffer[length:]
        return status, body_bytes

    def close(self) -> None:
        self.sock.close()


#: the bench mix: (kind, method, path template, body, weight per pass)
_BENCH_MIX = (
    ("get_session", "GET", "/v1/sessions/{sid}", None, 150),
    (
        "post_equivalence",
        "POST",
        "/v1/sessions/{sid}/equivalences",
        {"first": "sc1.Student.GPA", "second": "sc2.Grad_student.Advisor"},
        150,
    ),
    (
        "delete_equivalence",
        "DELETE",
        "/v1/sessions/{sid}/equivalences",
        {"ref": "sc1.Student.GPA"},
        150,
    ),
    ("get_stats", "GET", "/v1/stats", None, 150),
    # weight 1: a Prometheus scrape every 15-30 s against a service at
    # hundreds of requests/s is far rarer than even 1-in-600
    ("scrape_metrics", "GET", "/v1/metrics", None, 1),
)


def telemetry_overhead(repeats: int = 10, requests: int = 75) -> dict:
    """Cost per *served* request with the telemetry plane on vs off.

    Three real server *processes* (``python -m repro.service`` on
    loopback, one keep-alive client each) run the same mix — session
    reads, equivalence mutations
    (which commit kernel events), stats reads, a periodic
    ``/v1/metrics`` scrape — and every request round-trip is timed
    individually:

    * ``disabled`` — the plane off (``telemetry=False``);
    * ``enabled`` — the plane on, nobody streaming: request ids,
      metrics, the access-log gate.  Tracing is on demand, so spans
      stay no-ops.  Gated at ``TELEMETRY_BUDGET`` by ``main``.
    * ``streaming`` — the plane on with a live spans subscriber:
      per-request tracing, span serialisation and hub fan-out all
      paid.  Also gated — a watched stream must not blow the budget.

    Arms interleave request for request so they sample the same
    disk/fsync weather.  The gated ``*overhead_ratio`` values come from
    **paired medians**: sample *i* of each kind ran back to back on
    every arm, so the median of the per-pair deltas cancels the
    common-mode noise that independent per-arm statistics (including
    pooled per-request floors, also reported as ``floor_*``) cannot.
    Each attempt yields its own paired ratio and the minimum is kept —
    scheduler contention (everything shares one core here) only ever
    *adds* apparent cost, so the quietest attempt is the most accurate.
    """
    import tempfile

    sc1 = to_ddl(build_sc1())
    sc2 = to_ddl(build_sc2())

    def seed(client, sid: str) -> None:
        for path, body in (
            ("/v1/sessions", {"session_id": sid}),
            (f"/v1/sessions/{sid}/schemas", {"ddl": sc1}),
            (f"/v1/sessions/{sid}/schemas", {"ddl": sc2}),
        ):
            status, _ = client.request("POST", path, body)
            assert status < 400, (path, status)

    def run_round(arm_order, clients, sids, samples) -> None:
        # request-level interleave: the same request kind hits every
        # arm back to back, so all arms sample the same fsync weather;
        # the order rotates so no arm always pays the cold first slot
        for index in range(requests):
            rotation = index % len(arm_order)
            ordered = arm_order[rotation:] + arm_order[:rotation]
            for kind, method, template, body, _ in _BENCH_MIX:
                if kind == "scrape_metrics" and index % 30 != 15:
                    # sample the scrape away from the cold first index
                    continue
                for arm in ordered:
                    started = time.perf_counter()
                    status, _ = clients[arm].request(
                        method, template.format(sid=sids[arm]), body
                    )
                    samples[arm].setdefault(kind, []).append(
                        time.perf_counter() - started
                    )
                    assert status < 500, (arm, method, template, status)

    def floor_seconds(samples) -> float:
        return sum(
            min(samples[kind]) * weight
            for kind, _, _, _, weight in _BENCH_MIX
        )

    def paired_overhead(samples, arm) -> float:
        """Median per-kind delta vs ``disabled``, over the median baseline.

        Sample *i* of a kind on every arm ran back to back against the
        same machine weather, so the paired delta cancels common-mode
        noise that independent per-arm floors cannot, and the median
        shrugs off the fsync spikes that land on only one of the pair.
        The baseline is the *median* disabled cost — same weather as
        the deltas; dividing hot-weather deltas by a best-weather floor
        would overstate the ratio whenever the box throttles mid-run.
        """
        added = 0.0
        base_total = 0.0
        for kind, _, _, _, weight in _BENCH_MIX:
            base = samples["disabled"][kind]
            other = samples[arm][kind]
            deltas = sorted(
                b - a for a, b in zip(base, other, strict=True)
            )
            added += deltas[len(deltas) // 2] * weight
            base_total += sorted(base)[len(base) // 2] * weight
        return added / base_total

    arms = ("disabled", "enabled", "streaming")
    samples = {arm: {} for arm in arms}
    #: per-attempt paired ratios; contention only ever *adds* cost, so
    #: the quietest attempt is the most accurate estimate (same logic
    #: as per-request floors, one level up)
    attempt_ratios: dict[str, list[float]] = {
        "enabled": [], "streaming": []
    }
    roots = [tempfile.TemporaryDirectory() for _ in arms]
    servers, clients = {}, {}
    try:
        for arm, root in zip(arms, roots):
            servers[arm] = _BenchServer(
                root.name, telemetry=arm != "disabled"
            )
            clients[arm] = _BenchClient(servers[arm].port)
        for attempt in range(repeats):
            sids = {arm: f"{arm[0]}{attempt}" for arm in arms}
            for arm in arms:
                seed(clients[arm], sids[arm])
            # a live SSE consumer: every span pays serialise, hub
            # fan-out and the server's socket writes
            drain = _SseDrain(servers["streaming"].port, sids["streaming"])
            block = {arm: {} for arm in arms}
            try:
                run_round(arms, clients, sids, block)
            finally:
                drain.close()
            for arm in ("enabled", "streaming"):
                attempt_ratios[arm].append(paired_overhead(block, arm))
            for arm in arms:
                for kind, values in block[arm].items():
                    samples[arm].setdefault(kind, []).extend(values)
    finally:
        for client in clients.values():
            client.close()
        for server in servers.values():
            server.stop()
        for root in roots:
            root.cleanup()

    floors = {arm: floor_seconds(samples[arm]) for arm in arms}
    return {
        "requests_per_pass": sum(w for *_, w in _BENCH_MIX),
        "repeats": repeats,
        "disabled_seconds": round(floors["disabled"], 6),
        "enabled_seconds": round(floors["enabled"], 6),
        "overhead_ratio": round(min(attempt_ratios["enabled"]), 4),
        "streaming_seconds": round(floors["streaming"], 6),
        "streaming_overhead_ratio": round(
            min(attempt_ratios["streaming"]), 4
        ),
        "attempt_overhead_ratios": {
            arm: [round(value, 4) for value in ratios]
            for arm, ratios in attempt_ratios.items()
        },
        "floor_overhead_ratio": round(
            floors["enabled"] / floors["disabled"] - 1.0, 4
        ),
        "floor_streaming_overhead_ratio": round(
            floors["streaming"] / floors["disabled"] - 1.0, 4
        ),
        "floor_us_per_request": {
            arm: {
                kind: round(min(values) * 1e6, 1)
                for kind, values in samples[arm].items()
            }
            for arm in arms
        },
        "budget_ratio": TELEMETRY_BUDGET,
        "streaming_budget_ratio": STREAMING_BUDGET,
    }


#: the steady-state telemetry plane (metrics, request ids, access-log
#: gate — nobody streaming) may cost at most 5% of baseline dispatch
TELEMETRY_BUDGET = 0.05

#: regression tripwire for the *opt-in* cost of a live spans stream:
#: requests to a watched session pay tracing, hub fan-out and (on a
#: single-core box) consumer scheduling on top of the plane — a
#: documented diagnostic price, typically ~9% here, allowed to 3x the
#: budget so real regressions (per-span consumer wake-ups measured at
#: +18%) still fail loudly
STREAMING_BUDGET = 3 * TELEMETRY_BUDGET


def missing_phases(tracer: Tracer) -> list[str]:
    present = {name.split(".", 1)[0] for name in tracer.names()}
    return [phase for phase in SMOKE_PHASES if phase not in present]


def smoke() -> int:
    with tracing() as tracer:
        run_workload()
    print(render_text(summarize(tracer)))
    missing = missing_phases(tracer)
    if missing:
        print(
            "trace-smoke FAILED: no spans from "
            + ", ".join(missing),
            file=sys.stderr,
        )
        return 1
    print(
        f"trace-smoke OK: {len(tracer.spans)} spans across "
        f"{len(SMOKE_PHASES)} instrumented phases"
    )
    return 0


def main(argv: list[str]) -> int:
    if "--smoke" in argv:
        return smoke()
    repeats = 5
    disabled_seconds, _ = time_workload(repeats, traced=False)
    enabled_seconds, tracer = time_workload(repeats, traced=True)
    overhead_ratio = enabled_seconds / disabled_seconds - 1.0
    telemetry = telemetry_overhead()
    pair = generate_schema_pair(CONFIG)
    report = {
        "description": (
            "Tracing overhead on the EXP-CLO workload plus the sc1/sc2 "
            "integration; see docs/OBSERVABILITY.md"
        ),
        "repro_sha": repo_sha(),
        "workload": {
            "generator": {
                "seed": CONFIG.seed,
                "concepts": CONFIG.concepts,
                "overlap": CONFIG.overlap,
                "category_rate": CONFIG.category_rate,
            },
            "schemas": schema_sizes(
                pair.first, pair.second, build_sc1(), build_sc2()
            ),
        },
        "repeats": repeats,
        "disabled_seconds": round(disabled_seconds, 6),
        "enabled_seconds": round(enabled_seconds, 6),
        "overhead_ratio": round(overhead_ratio, 4),
        "disabled_span_call_ns": round(disabled_span_cost_ns(), 1),
        "spans_recorded": len(tracer.spans),
        "missing_phases": missing_phases(tracer),
        "telemetry": telemetry,
        "summary": summarize(tracer),
    }
    existing = (
        json.loads(OUTPUT.read_text()) if OUTPUT.exists() else {}
    )
    if "telemetry_smoke" in existing:
        # keep the live-server smoke record (telemetry_smoke.py owns it)
        report["telemetry_smoke"] = existing["telemetry_smoke"]
    OUTPUT.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {OUTPUT}")
    print(
        f"disabled {disabled_seconds * 1e3:.1f} ms, "
        f"enabled {enabled_seconds * 1e3:.1f} ms, "
        f"overhead {overhead_ratio:+.1%}, "
        f"disabled span() {report['disabled_span_call_ns']:.0f} ns"
    )
    print(
        "telemetry plane (per served request, paired medians): "
        f"enabled {telemetry['overhead_ratio']:+.1%} "
        f"(budget {TELEMETRY_BUDGET:.0%}), "
        f"streaming {telemetry['streaming_overhead_ratio']:+.1%} "
        f"(tripwire {STREAMING_BUDGET:.0%})"
    )
    failed = []
    if telemetry["overhead_ratio"] > TELEMETRY_BUDGET:
        failed.append(
            f"steady-state plane {telemetry['overhead_ratio']:+.1%} "
            f"exceeds the {TELEMETRY_BUDGET:.0%} budget"
        )
    if telemetry["streaming_overhead_ratio"] > STREAMING_BUDGET:
        failed.append(
            "live spans streaming "
            f"{telemetry['streaming_overhead_ratio']:+.1%} exceeds the "
            f"{STREAMING_BUDGET:.0%} tripwire"
        )
    if failed:
        print(
            "telemetry overhead gate FAILED: " + "; ".join(failed),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
