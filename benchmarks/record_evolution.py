"""Record incremental evolution repair costs to BENCH_evolution.json.

One typed attribute edit lands on a single component of an
eight-component federation with live, cached query plans.  Three hard
gates (non-zero exit on failure, so ``make evolution-smoke`` can enforce
them in CI):

* **OCS locality** — re-warming every memoized candidate-pair matrix
  after the edit recomputes at most 10% of the cells a from-scratch
  session recomputes (the edit touched one class of one component, so
  only that row of that component's pair matrices may go cold);
* **propagation locality** — the scoped solver re-propagation does at
  most 10% of the propagation steps a full rebuild pays to re-derive
  the assertion closure;
* **plan precision** — exactly the cached plans with a leg on the
  edited class are invalidated; plans over other classes survive and
  the planner reports the count in ``last_evolve_invalidated``.

The from-scratch baseline is the rebuild oracle
(:func:`repro.baselines.rebuild_session`): a cold session re-driven
through the same observable facts, whose fingerprint the incremental
session must also match bitwise.

Run:  PYTHONPATH=src python benchmarks/record_evolution.py
"""

from __future__ import annotations

import json
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.assertions.kinds import AssertionKind  # noqa: E402
from repro.baselines import (  # noqa: E402
    rebuild_matches,
    rebuild_session,
)
from repro.data.populate import populate_store  # noqa: E402
from repro.ecr.attributes import Attribute  # noqa: E402
from repro.ecr.builder import SchemaBuilder  # noqa: E402
from repro.ecr.domains import Domain, DomainKind  # noqa: E402
from repro.equivalence.session import AnalysisSession  # noqa: E402
from repro.evolution import AddAttribute  # noqa: E402
from repro.federation import FederationEngine  # noqa: E402
from repro.integration.mappings import SchemaMapping  # noqa: E402
from repro.workloads.university import build_expected_figure5  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_evolution.json"

COMPONENTS = 8
EDITED_COMPONENT = "comp3"
#: repair may cost at most this fraction of the from-scratch baseline
LOCALITY_BUDGET = 0.10


def repo_sha() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def build_component(name: str):
    """An sc1-shaped component schema plus a local-only Course class."""
    return (
        SchemaBuilder(name, "evolution benchmark component")
        .entity("Student", attrs=[("Name", "char", True), ("GPA", "real")])
        .entity("Department", attrs=[("Name", "char", True)])
        .entity("Course", attrs=[("CNo", "integer", True)])
        .relationship(
            "Majors",
            connects=[("Student", "(1,1)"), ("Department", "(0,n)")],
            attrs=[("Since", "date")],
        )
        .build()
    )


def build_mapping(name: str, integrated_name: str) -> SchemaMapping:
    return SchemaMapping(
        component_schema=name,
        integrated_schema=integrated_name,
        objects={
            "Student": "Student",
            "Department": "E_Department",
            "Majors": "E_Stud_Majo",
        },
        attributes={
            ("Student", "Name"): ("Student", "D_Name"),
            ("Student", "GPA"): ("Student", "D_GPA"),
            ("Department", "Name"): ("E_Department", "D_Name"),
            ("Majors", "Since"): ("E_Stud_Majo", "D_Since"),
        },
    )


def build_world():
    """An 8-component session, its federation engine, and warm plans."""
    names = [f"comp{index}" for index in range(COMPONENTS)]
    session = AnalysisSession([build_component(name) for name in names])
    anchor = names[0]
    for other in names[1:]:
        session.declare_equivalent(
            f"{anchor}.Student.Name", f"{other}.Student.Name"
        )
        session.declare_equivalent(
            f"{anchor}.Department.Name", f"{other}.Department.Name"
        )
        session.specify(
            f"{anchor}.Student", f"{other}.Student", AssertionKind.EQUALS
        )
        session.specify(
            f"{anchor}.Department",
            f"{other}.Department",
            AssertionKind.EQUALS,
        )
    integrated = build_expected_figure5()
    stores = {
        name: populate_store(
            build_component(name),
            seed=index + 1,
            entities_per_class=10,
            links_per_relationship=10,
        )
        for index, name in enumerate(names)
    }
    engine = FederationEngine.for_stores(
        {name: build_mapping(name, integrated.name) for name in names},
        stores,
        integrated,
        object_network=session.object_network,
        registry=session.registry,
    )
    return session, engine, names


def warm_candidate_pairs(session: AnalysisSession, names: list[str]) -> None:
    """Force every pairwise OCS matrix (the memoized Screen 8 state)."""
    for index, first in enumerate(names):
        for second in names[index + 1:]:
            session.candidate_pairs(first, second)


def main() -> None:
    failures: list[str] = []
    session, engine, names = build_world()
    planner = engine.planner

    engine.query("select D_Name from Student")
    engine.query("select D_Name from E_Department")
    plans_before = planner.cache_size()

    warm_candidate_pairs(session, names)
    before = session.counters.snapshot()
    start = time.perf_counter()
    outcome = session.apply_edit(
        EDITED_COMPONENT,
        AddAttribute("Student", Attribute("Audit_note", Domain(DomainKind.CHAR))),
    )
    repair_seconds = time.perf_counter() - start
    warm_candidate_pairs(session, names)
    after = session.counters.snapshot()

    repair_cells = (
        after["ocs_cells_recomputed"] - before["ocs_cells_recomputed"]
    )
    repair_steps = (
        after["propagation_steps"]
        - before["propagation_steps"]
        + after["solver_propagation_steps"]
        - before["solver_propagation_steps"]
    )

    start = time.perf_counter()
    rebuilt = rebuild_session(session)
    warm_candidate_pairs(rebuilt, names)
    rebuild_seconds = time.perf_counter() - start
    full = rebuilt.counters.snapshot()
    full_cells = full["ocs_cells_recomputed"]
    full_steps = (
        full["propagation_steps"] + full["solver_propagation_steps"]
    )

    if repair_cells > LOCALITY_BUDGET * full_cells:
        failures.append(
            f"OCS locality: repair recomputed {repair_cells} cells, "
            f"budget is {LOCALITY_BUDGET:.0%} of {full_cells}"
        )
    if repair_steps > LOCALITY_BUDGET * full_steps:
        failures.append(
            f"propagation locality: repair did {repair_steps} steps, "
            f"budget is {LOCALITY_BUDGET:.0%} of {full_steps}"
        )
    if planner.last_evolve_invalidated != 1:
        failures.append(
            "plan precision: expected exactly the Student plan dropped, "
            f"planner invalidated {planner.last_evolve_invalidated}"
        )
    if planner.cache_size() != plans_before - 1:
        failures.append(
            f"plan precision: cache went {plans_before} -> "
            f"{planner.cache_size()}, expected exactly one plan dropped"
        )

    incremental, from_scratch = rebuild_matches(session)
    if incremental != from_scratch:
        failures.append(
            "rebuild oracle: incremental state diverged from a "
            "from-scratch rebuild"
        )

    report = {
        "description": (
            "One typed attribute edit on an 8-component federation with "
            "live plans: repair locality vs. the from-scratch rebuild "
            "oracle and per-class plan invalidation; see docs/EVOLUTION.md"
        ),
        "repro_sha": repo_sha(),
        "world": {
            "components": COMPONENTS,
            "edited": f"{EDITED_COMPONENT}.Student",
            "edit": outcome.edit.to_payload(),
            "plans_cached": plans_before,
        },
        "repair": {
            "scope": outcome.scope.to_wire(),
            "ocs_cells_recomputed": repair_cells,
            "propagation_steps": repair_steps,
            "seconds": round(repair_seconds, 6),
            "plans_invalidated": planner.last_evolve_invalidated,
        },
        "full_rebuild": {
            "ocs_cells_recomputed": full_cells,
            "propagation_steps": full_steps,
            "seconds": round(rebuild_seconds, 6),
        },
        "ratios": {
            "ocs_cells": round(repair_cells / max(full_cells, 1), 4),
            "propagation_steps": round(
                repair_steps / max(full_steps, 1), 4
            ),
            "budget": LOCALITY_BUDGET,
        },
        "gates_failed": failures,
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {OUTPUT}")
    print(json.dumps(report, indent=2))
    if failures:
        print("EVOLUTION SMOKE FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        raise SystemExit(1)


if __name__ == "__main__":
    main()
