"""FIG2a-2e — the five assertion types and their integration outcomes.

Each case of Figure 2 is regenerated: the input pair, the assertion, and
the integrated structure the paper draws.
"""

import pytest

from repro.analysis.report import Table
from repro.assertions.network import AssertionNetwork
from repro.ecr.builder import SchemaBuilder
from repro.ecr.schema import ObjectRef
from repro.equivalence.registry import EquivalenceRegistry
from repro.integration.integrator import integrate_pair

CASES = [
    # (figure, first object, second object, code, expected structures)
    ("2a", "Department", "Department", 1, ["E_Department"]),
    ("2b", "Student", "Grad_student", 3, ["Student", "Grad_student"]),
    ("2c", "Grad_student", "Instructor", 5,
     ["D_Grad_Inst", "Grad_student", "Instructor"]),
    ("2d", "Secretary", "Engineer", 4,
     ["D_Secr_Engi", "Secretary", "Engineer"]),
    ("2e", "Under_Grad_Student", "Full_Professor", 0,
     ["Under_Grad_Student", "Full_Professor"]),
]


def build_case(first_name, second_name, code):
    first = (
        SchemaBuilder("x")
        .entity(first_name, attrs=[("Name", "char", True)])
        .build()
    )
    second = (
        SchemaBuilder("y")
        .entity(second_name, attrs=[("Name", "char", True)])
        .build()
    )
    registry = EquivalenceRegistry([first, second])
    registry.declare_equivalent(
        f"x.{first_name}.Name", f"y.{second_name}.Name"
    )
    network = AssertionNetwork()
    network.seed_schema(first)
    network.seed_schema(second)
    network.specify(
        ObjectRef("x", first_name), ObjectRef("y", second_name), code
    )
    return registry, network


def run_case(first_name, second_name, code):
    registry, network = build_case(first_name, second_name, code)
    return integrate_pair(registry, network, "x", "y")


@pytest.mark.parametrize("figure,first,second,code,expected", CASES)
def test_fig2_assertion_catalogue(benchmark, figure, first, second, code, expected):
    result = benchmark(run_case, first, second, code)
    names = result.schema.structure_names()
    table = Table(
        f"FIG{figure}: assertion code {code} on {first}/{second}",
        ["paper outcome", "reproduced structures"],
    )
    table.add_row(", ".join(expected), ", ".join(names))
    print()
    print(table)
    assert sorted(names) == sorted(expected)
    if figure in ("2c", "2d"):
        derived = expected[0]
        assert result.schema.category(first).parents == [derived]
        assert result.schema.category(second).parents == [derived]
    if figure == "2b":
        assert result.schema.category(second).parents == [first]
    if figure == "2e":
        assert not result.schema.categories()
