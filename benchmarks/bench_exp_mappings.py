"""EXP-MAP — request translation through the generated mappings.

Phase 4's mappings serve both contexts; this experiment checks, over a
family of generated worlds, that (a) every view request rewrites to a
valid integrated request, and (b) view → global → component round trips
recover the original request on its home schema.
"""

from repro.analysis.report import Table
from repro.baselines.closure_baselines import drive_assertions_with_closure
from repro.ecr.walk import inherited_attributes
from repro.equivalence.registry import EquivalenceRegistry
from repro.errors import MappingError
from repro.integration.integrator import integrate_pair
from repro.integration.mappings import build_mappings
from repro.query.ast import Request
from repro.query.rewrite import rewrite_to_components, rewrite_to_integrated
from repro.workloads.generator import GeneratorConfig, generate_schema_pair
from repro.workloads.oracle import OracleDda

SEEDS = range(4)


def _world(seed):
    pair = generate_schema_pair(
        GeneratorConfig(seed=seed, concepts=8, overlap=0.6)
    )
    registry = EquivalenceRegistry([pair.first, pair.second])
    OracleDda(pair.truth).declare_all_equivalences(registry)
    network, _ = drive_assertions_with_closure(pair.first, pair.second, pair.truth)
    result = integrate_pair(registry, network, pair.first.name, pair.second.name)
    mappings = build_mappings(result, [pair.first, pair.second])
    return pair, result, mappings


def run_experiment():
    totals = {"requests": 0, "valid": 0, "round_trips": 0, "recovered": 0}
    for seed in SEEDS:
        pair, result, mappings = _world(seed)
        for schema in (pair.first, pair.second):
            for structure in schema.object_classes():
                attributes = tuple(
                    attribute.name for attribute in structure.attributes[:2]
                )
                request = Request(structure.name, attributes)
                totals["requests"] += 1
                integrated = rewrite_to_integrated(
                    request, mappings[schema.name]
                )
                try:
                    integrated.validate_against(result.schema)
                    totals["valid"] += 1
                except Exception:
                    continue
                try:
                    legs = rewrite_to_components(integrated, mappings)
                except MappingError:
                    continue
                totals["round_trips"] += 1
                home = [leg for leg in legs if leg.schema == schema.name]
                if any(
                    leg.request.object_name == structure.name
                    and set(leg.request.attributes) == set(attributes)
                    for leg in home
                ):
                    totals["recovered"] += 1
    return totals


def test_exp_mapping_round_trips(benchmark):
    totals = benchmark(run_experiment)
    table = Table(
        "EXP-MAP: request translation over 4 generated worlds",
        ["requests", "valid after forward rewrite", "round trips",
         "recovered on home schema"],
    )
    table.add_row(
        totals["requests"],
        totals["valid"],
        totals["round_trips"],
        totals["recovered"],
    )
    print()
    print(table)
    assert totals["valid"] == totals["requests"]  # forward rewrite is total
    assert totals["round_trips"] == totals["requests"]
    assert totals["recovered"] == totals["round_trips"]  # lossless round trip
