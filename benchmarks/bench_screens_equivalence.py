"""SCR6-7 — the equivalence-class screens.

Replays Screen 6/7 interactions and checks the resulting equivalence
classes match the paper's example (one class holding sc1.Student.Name,
sc2.Faculty.Name and sc2.Grad_student.Name).
"""

from repro.analysis.report import Table
from repro.tool.app import run_script
from repro.tool.session import ToolSession
from repro.workloads.university import build_sc1, build_sc2

EQUIVALENCE_SCRIPT = [
    "2", "sc1 sc2",
    "Student Grad_student", "A Name Name", "A GPA GPA", "E",
    "Student Faculty", "A Name Name", "E",
    "Department Department", "A Name Name", "E",
    "E",
    "E",
]


def run_equivalence():
    session = ToolSession()
    session.adopt_schema(build_sc1())
    session.adopt_schema(build_sc2())
    return run_script(EQUIVALENCE_SCRIPT, session)


def test_screens_6_7_equivalence(benchmark):
    app, transcript = benchmark(run_equivalence)
    registry = app.session.registry
    members = sorted(str(m) for m in registry.class_members("sc1.Student.Name"))
    table = Table(
        "SCR7: the Name equivalence class",
        ["paper", "reproduced"],
    )
    table.add_row(
        "sc1.Student.Name, sc2.Faculty.Name, sc2.Grad_student.Name",
        ", ".join(members),
    )
    print()
    print(table)
    assert "Entity/Category Name Selection Screen" in transcript
    assert "Equivalence Class Creation and Deletion Screen" in transcript
    assert "Eq_class #" in transcript
    assert members == [
        "sc1.Student.Name",
        "sc2.Faculty.Name",
        "sc2.Grad_student.Name",
    ]
    # the GPA class and the Department class exist too
    assert registry.are_equivalent("sc1.Student.GPA", "sc2.Grad_student.GPA")
    assert registry.are_equivalent(
        "sc1.Department.Name", "sc2.Department.Name"
    )
    # Screen 7's renumbering: the surviving Eq_class # is the smaller one
    assert registry.class_number("sc2.Grad_student.Name") == registry.class_number(
        "sc1.Student.Name"
    )
