"""Record replication behaviour to BENCH_replication.json and gate on it.

Three promises of the WAL-shipped replica plane, measured for real:

* **steady-state lag** — a leader/replica pair joined by the in-process
  link with the background pump running; seeded read/write traffic
  (:func:`repro.workloads.service_traffic`, reads routed to the replica)
  while every leader write is timed until the replica observably serves
  it.  Gate: lag p99 <= ``LAG_P99_CEILING_SECONDS``.
* **failover** — ``POST /v1/replication/promote`` on the replica, timed
  until its first successfully served read.  Gate: promotion-to-first-
  read <= ``PROMOTION_CEILING_SECONDS``; the fenced ex-leader must
  refuse writes with the typed error.
* **chaos convergence** — a crash-scheduled shipping run (every
  replication crashpoint, torn and clean) over at least
  ``CHAOS_EVENTS`` leader events; at every observation the follower's
  fingerprint must equal a committed leader state, and one clean round
  must converge exactly.  Gate: zero divergent fingerprints.

Run:  PYTHONPATH=src python benchmarks/record_replication.py [--smoke]
Exits non-zero when a gate fails.
"""

from __future__ import annotations

import argparse
import json
import random
import statistics
import subprocess
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import faults  # noqa: E402
from repro.errors import ReproError  # noqa: E402
from repro.faults import FaultPlan, InjectedCrash  # noqa: E402
from repro.replication import (  # noqa: E402
    ReplicaApplier,
    payload_fingerprint,
    ShipCursor,
    Shipment,
    WalShipper,
    decode_frames,
    encode_frames,
)
from repro.service import Request, ServiceApp, TenantAuth  # noqa: E402
from repro.service.replication import InProcessLeaderLink  # noqa: E402
from repro.tool.session import ToolSession  # noqa: E402
from repro.workloads import TrafficConfig, service_traffic  # noqa: E402
from repro.workloads.university import build_sc1, build_sc2  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_replication.json"

LAG_P99_CEILING_SECONDS = 0.25
PROMOTION_CEILING_SECONDS = 1.0
POLL_SECONDS = 0.02
#: shared replication-plane secret for the leader/replica pair
REPL_TOKEN = "repl-bench-secret"

OPERATIONS_FULL = 120
OPERATIONS_SMOKE = 40
READ_FRACTION = 0.7
CHAOS_EVENTS_FULL = 500
CHAOS_EVENTS_SMOKE = 120

SC1_DDL = """\
schema sc1
entity Student
  attr Name : string key
  attr GPA : real
entity Department
  attr Name : string key
relationship Majors
  connects Student (1,1)
  connects Department (0,n)
"""

SC2_DDL = """\
schema sc2
entity Grad_student
  attr Name : string key
  attr Advisor : string
entity Department
  attr Name : string key
"""


def repo_sha() -> str:
    """The repo's HEAD SHA, or ``unknown`` outside a git checkout."""
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


class Client:
    """Drives ``ServiceApp.dispatch`` in process; no sockets needed."""

    def __init__(self, app: ServiceApp, token: str = "token-acme") -> None:
        self.app = app
        self.token = token

    def call(self, method, path, body=None, *, query=None, headers=None):
        all_headers = {"authorization": f"Bearer {self.token}"}
        all_headers.update(headers or {})
        response = self.app.dispatch(
            Request(
                method=method,
                path=path,
                query=query or {},
                headers=all_headers,
                body=(
                    json.dumps(body).encode("utf-8")
                    if body is not None
                    else b""
                ),
            )
        )
        return response.status, response.json_payload()


def percentile(values: list[float], fraction: float) -> float:
    ordered = sorted(values)
    index = min(
        len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1)))
    )
    return ordered[index]


def wait_for_state(replica: Client, sid: str, state_fingerprint: str,
                   timeout: float = 10.0) -> float:
    """Seconds until the replica observably serves the leader's state.

    Fingerprint equality, not offset comparison: an undo *lowers* the
    leader's event offset, so only the bitwise state proves catch-up.
    """
    start = time.perf_counter()
    deadline = start + timeout
    while time.perf_counter() < deadline:
        status, payload = replica.call("GET", f"/v1/sessions/{sid}")
        if (
            status == 200
            and payload["state_fingerprint"] == state_fingerprint
        ):
            return time.perf_counter() - start
        time.sleep(0.001)
    raise RuntimeError("replica never converged to the leader state")


def measure_service_pair(operations: int):
    """Steady-state lag and promotion timing over a live pump."""
    lag_samples: list[float] = []
    read_failures: list[str] = []
    with tempfile.TemporaryDirectory() as tmp:
        auth = TenantAuth.from_tokens({"token-acme": "acme"})
        leader_app = ServiceApp(
            Path(tmp) / "leader", auth=auth, replication_token=REPL_TOKEN
        )
        replica_app = ServiceApp(
            Path(tmp) / "replica",
            auth=TenantAuth.from_tokens({"token-acme": "acme"}),
            replication_link=InProcessLeaderLink(leader_app, REPL_TOKEN),
            replication_token=REPL_TOKEN,
            max_lag_s=60.0,  # lag is measured here, not enforced
            replication_poll_s=POLL_SECONDS,
        )
        try:
            leader = Client(leader_app)
            replica = Client(replica_app)
            operator = Client(replica_app, token=REPL_TOKEN)
            assert leader.call(
                "POST", "/v1/sessions", {"session_id": "s1"}
            )[0] == 201
            for ddl in (SC1_DDL, SC2_DDL):
                assert leader.call(
                    "POST", "/v1/sessions/s1/schemas", {"ddl": ddl}
                )[0] == 201
            _, detail = leader.call("GET", "/v1/sessions/s1")
            wait_for_state(
                replica, "s1", detail["state_fingerprint"]
            )  # bootstrap ships

            config = TrafficConfig(
                operations=operations,
                read_fraction=READ_FRACTION,
                seed=2024,
            )
            reads = writes = 0
            for call in service_traffic(config):
                if call.is_read:
                    reads += 1
                    status, _ = replica.call(
                        call.method, call.path, query=call.query
                    )
                    if status >= 300:
                        read_failures.append(f"{call.path} -> {status}")
                else:
                    writes += 1
                    status, _ = leader.call(
                        call.method, call.path, call.body
                    )
                    assert status < 300, (call, status)
                    _, detail = leader.call("GET", "/v1/sessions/s1")
                    lag_samples.append(
                        wait_for_state(
                            replica, "s1", detail["state_fingerprint"]
                        )
                    )

            _, before = leader.call("GET", "/v1/sessions/s1")
            promote_start = time.perf_counter()
            status, promoted = operator.call(
                "POST", "/v1/replication/promote"
            )
            assert status == 200 and promoted["role"] == "leader"
            status, served = replica.call("GET", "/v1/sessions/s1")
            assert status == 200
            promotion_seconds = time.perf_counter() - promote_start
            fingerprint_preserved = (
                served["state_fingerprint"] == before["state_fingerprint"]
            )
            status, refused = leader.call(
                "POST", "/v1/sessions/s1/undo"
            )
            fenced = (
                status == 503
                and refused["error"]["code"] == "replication_fenced"
            )
            status, _ = replica.call("POST", "/v1/sessions/s1/undo")
            writable_after_promotion = status == 200
        finally:
            replica_app.close()
            leader_app.close()
    return {
        "lag_samples": lag_samples,
        "reads": reads,
        "writes": writes,
        "read_failures": read_failures,
        "promotion_seconds": promotion_seconds,
        "promoted_epoch": promoted["epoch"],
        "fingerprint_preserved": fingerprint_preserved,
        "old_leader_fenced": fenced,
        "writable_after_promotion": writable_after_promotion,
    }


def fingerprint(session: ToolSession) -> str:
    return payload_fingerprint(session.analysis.state_payload())


PAIRS = (
    ("sc1.Student.Name", "sc2.Grad_student.Name"),
    ("sc1.Department.Name", "sc2.Department.Name"),
)


def chaos_move(session: ToolSession, save: Path, rng: random.Random):
    roll = rng.random()
    try:
        if roll < 0.45:
            session.registry.declare_equivalent(*rng.choice(PAIRS))
        elif roll < 0.75:
            session.undo()
        elif roll < 0.9:
            session.analysis.kernel.snapshot()
        else:
            session.save(save)  # checkpoint: WAL generation reset
    except ReproError:
        pass  # invalid moves are recorded as failure events


def replicate_round(shipper, applier):
    leader_died = False
    shipment = shipper.poll(applier.cursor)
    try:
        data = encode_frames(list(shipment.records))
    except InjectedCrash as crash:
        data = crash.partial or b""
        leader_died = True
    records, _good, _damaged = decode_frames(data)
    start = shipment.cursor.records - len(shipment.records)
    applier.apply(
        Shipment(
            records=tuple(records),
            cursor=ShipCursor(
                shipment.cursor.generation, start + len(records)
            ),
            restarted=shipment.restarted,
            damaged=shipment.damaged,
            quarantined=shipment.quarantined,
        )
    )
    return applier, leader_died


def chaos_run(target_events: int):
    """A crash-scheduled shipping run; counts divergent observations."""
    rng = random.Random(7)
    points = (
        "repl.ship.read",
        "repl.ship.frame",
        "repl.apply.record",
        "repl.promote.persist",
    )
    divergent = 0
    observations = 0
    crashes = 0
    with tempfile.TemporaryDirectory() as tmp:
        save = Path(tmp) / "leader.json"
        session = ToolSession.open(save)
        committed = {fingerprint(session)}
        session.adopt_schema(build_sc1())
        committed.add(fingerprint(session))
        session.adopt_schema(build_sc2())
        committed.add(fingerprint(session))
        session.analysis.kernel.snapshot_every = 3
        shipper = WalShipper(f"{save}.wal")
        applier = ReplicaApplier()
        episode = 0
        events = 0  # leader moves; each appends at least one WAL record
        while events < target_events:
            plan = FaultPlan(
                crash_at=points[episode % len(points)],
                occurrence=1 + episode % 3,
                torn=bool(episode % 2),
                seed=episode,
            )
            episode += 1
            with faults.inject(plan):
                for _ in range(4):
                    chaos_move(session, save, rng)
                    events += 1
                    committed.add(fingerprint(session))
                    try:
                        applier, leader_died = replicate_round(
                            shipper, applier
                        )
                    except InjectedCrash:
                        leader_died = True
                        applier = ReplicaApplier(state=applier.state())
                    if leader_died:
                        crashes += 1
                        session = ToolSession.open(save)
                        session.analysis.kernel.snapshot_every = 3
                        committed.add(fingerprint(session))
                    observed = applier.fingerprint()
                    if observed is not None:
                        observations += 1
                        if observed not in committed:
                            divergent += 1
        applier, _ = replicate_round(shipper, applier)
        converged = applier.fingerprint() == fingerprint(session)
        final_offset = session.analysis.kernel.bus.offset
    return {
        "events": events,
        "final_offset": final_offset,
        "episodes": episode,
        "crashes_injected": crashes,
        "observations": observations,
        "divergent_fingerprints": divergent,
        "converged_after_faults": converged,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fewer operations and chaos events (CI); same gates",
    )
    args = parser.parse_args(argv)
    operations = OPERATIONS_SMOKE if args.smoke else OPERATIONS_FULL
    chaos_events = CHAOS_EVENTS_SMOKE if args.smoke else CHAOS_EVENTS_FULL

    service = measure_service_pair(operations)
    chaos = chaos_run(chaos_events)

    lags = service["lag_samples"]
    lag_p99 = percentile(lags, 0.99)
    gates = {
        "steady_state_lag_p99": {
            "seconds": round(lag_p99, 6),
            "ceiling_seconds": LAG_P99_CEILING_SECONDS,
            "passed": lag_p99 <= LAG_P99_CEILING_SECONDS,
        },
        "promotion_to_first_read": {
            "seconds": round(service["promotion_seconds"], 6),
            "ceiling_seconds": PROMOTION_CEILING_SECONDS,
            "passed": (
                service["promotion_seconds"] <= PROMOTION_CEILING_SECONDS
                and service["writable_after_promotion"]
                and service["old_leader_fenced"]
                and service["fingerprint_preserved"]
            ),
        },
        "chaos_divergence": {
            "events": chaos["events"],
            "divergent_fingerprints": chaos["divergent_fingerprints"],
            "passed": (
                chaos["divergent_fingerprints"] == 0
                and chaos["converged_after_faults"]
                and not service["read_failures"]
            ),
        },
    }
    report = {
        "description": (
            "WAL-shipped replica lag, failover and chaos convergence; "
            "see docs/REPLICATION.md and make replica-smoke"
        ),
        "repro_sha": repo_sha(),
        "smoke": args.smoke,
        "traffic": {
            "operations": operations,
            "read_fraction": READ_FRACTION,
            "reads": service["reads"],
            "writes": service["writes"],
            "replica_read_failures": len(service["read_failures"]),
        },
        "lag_seconds": {
            "samples": len(lags),
            "mean": round(statistics.fmean(lags), 6),
            "p50": round(percentile(lags, 0.50), 6),
            "p95": round(percentile(lags, 0.95), 6),
            "p99": round(lag_p99, 6),
            "max": round(max(lags), 6),
        },
        "failover": {
            "promotion_to_first_read_seconds": round(
                service["promotion_seconds"], 6
            ),
            "promoted_epoch": service["promoted_epoch"],
            "fingerprint_preserved": service["fingerprint_preserved"],
            "old_leader_fenced": service["old_leader_fenced"],
            "writable_after_promotion": service[
                "writable_after_promotion"
            ],
        },
        "chaos": chaos,
        "gates": gates,
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {OUTPUT}")
    print(json.dumps(report, indent=2))
    for message in service["read_failures"][:10]:
        print(f"FAILED REPLICA READ: {message}", file=sys.stderr)
    failed = [name for name, gate in gates.items() if not gate["passed"]]
    if failed:
        print(f"GATE FAILURE: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
