"""SCR1-5 — the schema-collection screens, driven by a scripted session.

Replays the full Screen 2-5 data entry for sc1 and sc2 and checks that the
rendered frames carry the paper's screen titles and column headings, and
that the schemas entered through the screens equal the Figure 3/4 schemas.
"""

from repro.analysis.report import Table
from repro.ecr.json_io import schema_to_dict
from repro.tool.app import run_script
from repro.workloads.university import build_sc1, build_sc2

COLLECTION_SCRIPT = [
    "1",
    "A sc1",
    "A Student e", "A Name char y", "A GPA real n", "E",
    "A Department e", "A Name char y", "E",
    "A Majors r", "A Student 1,1", "A Department 0,n", "E",
    "A Since date n", "E",
    "E",
    "A sc2",
    "A Grad_student e", "A Name char y", "A GPA real n",
    "A Support_type char n", "E",
    "A Faculty e", "A Name char y", "A Rank char n", "E",
    "A Department e", "A Name char y", "A Location char n", "E",
    "A Majors r", "A Grad_student 1,1", "A Department 0,n", "E",
    "A Since date n", "E",
    "A Works r", "A Faculty 1,1", "A Department 1,n", "E",
    "A Percent_time real n", "E",
    "E",
    "E",
    "E",
]

PAPER_TITLES = [
    "Main Menu",
    "Schema Name Collection Screen",
    "Structure Information Collection Screen",
    "Relationship Information Collection Screen",
    "Attribute Information Collection Screen",
]


def run_collection():
    return run_script(COLLECTION_SCRIPT)


def test_screens_1_to_5_collection(benchmark):
    app, transcript = benchmark(run_collection)
    table = Table("SCR1-5: collection screens", ["screen", "seen"])
    for title in PAPER_TITLES:
        table.add_row(title, "yes" if title in transcript else "NO")
    print()
    print(table)
    for title in PAPER_TITLES:
        assert title in transcript
    # column headings of Screens 3 and 5
    assert "Type(E/C/R)" in transcript
    assert "Key (y/n)" in transcript
    # schemas collected through the screens equal the programmatic builds
    entered_sc1 = schema_to_dict(app.session.schema("sc1"))
    entered_sc2 = schema_to_dict(app.session.schema("sc2"))
    reference_sc1 = schema_to_dict(build_sc1())
    reference_sc2 = schema_to_dict(build_sc2())
    # descriptions differ (the script types none); compare structures only
    assert entered_sc1["structures"] == reference_sc1["structures"]
    assert entered_sc2["structures"] == reference_sc2["structures"]
