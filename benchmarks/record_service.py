"""Record multi-tenant service behaviour to BENCH_service.json and gate on it.

The service's promise is *bounded memory under real concurrency*: many
tenants, few resident kernels, eviction/rehydration invisible except as
latency.  This recorder stands up the real asyncio HTTP server on a
loopback socket, drives ``TENANTS`` concurrent tenants (each from its own
thread over a keep-alive connection) through the full integration
lifecycle — create, load schemas, declare equivalences, assert, integrate,
query, undo/redo, checkpoint — with a deliberately small residency bound,
and records:

* request latency (p50 / p95 / p99) and total throughput;
* eviction / rehydration counts (the churn must actually happen);
* resident bytes per session → sessions-per-GB capacity.

Gates (the ``make service-smoke`` contract):

* every tenant completes its whole workload — at least 16 concurrently
  sustained tenants with zero failed requests;
* the residency bound forced at least one eviction AND one rehydration
  (otherwise the run proved nothing about parking);
* p99 request latency stays under ``P99_CEILING_SECONDS``.

Run:  PYTHONPATH=src python benchmarks/record_service.py [--smoke]
Exits non-zero when a gate fails.
"""

from __future__ import annotations

import argparse
import asyncio
import http.client
import json
import socket
import statistics
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.service import ServiceApp, TenantAuth  # noqa: E402
from repro.service.app import serve  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_service.json"

TENANTS = 20
MAX_RESIDENT = 6  # far below TENANTS: every round churns the pool
ROUNDS_FULL = 4
ROUNDS_SMOKE = 2
MIN_SUSTAINED_TENANTS = 16
P99_CEILING_SECONDS = 0.75

SC1_DDL = """\
schema sc1
entity Student
  attr Name : string key
  attr GPA : real
entity Department
  attr Name : string key
relationship Majors
  connects Student (1,1)
  connects Department (0,n)
"""

SC2_DDL = """\
schema sc2
entity Grad_student
  attr Name : string key
  attr Advisor : string
entity Department
  attr Name : string key
"""


def repo_sha() -> str:
    """The repo's HEAD SHA, or ``unknown`` outside a git checkout."""
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


class Server:
    """The real service on an ephemeral loopback port, in a thread."""

    def __init__(self, root: Path, tokens: dict[str, str]) -> None:
        self.app = ServiceApp(
            root,
            auth=TenantAuth.from_tokens(tokens),
            max_resident=MAX_RESIDENT,
        )
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            self.port = probe.getsockname()[1]
        self._loop = asyncio.new_event_loop()
        self._task: asyncio.Task | None = None
        self._started = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        async def main() -> None:
            ready = asyncio.Event()
            self._task = asyncio.ensure_future(
                serve(
                    self.app,
                    "127.0.0.1",
                    self.port,
                    executor_workers=TENANTS,
                    ready=ready,
                )
            )
            await ready.wait()
            self._started.set()
            try:
                await self._task
            except asyncio.CancelledError:
                pass

        self._loop.run_until_complete(main())

    def __enter__(self) -> "Server":
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("service did not start")
        return self

    def __exit__(self, *exc) -> None:
        self._loop.call_soon_threadsafe(self._task.cancel)
        self._thread.join(timeout=30)
        self._loop.close()
        self.app.close()


class TenantClient:
    """One tenant's keep-alive connection; records every request latency."""

    def __init__(self, port: int, token: str) -> None:
        self.connection = http.client.HTTPConnection(
            "127.0.0.1", port, timeout=30
        )
        self.token = token
        self.latencies: list[float] = []
        self.failures: list[str] = []

    def call(
        self, method: str, path: str, body: dict | None = None
    ) -> dict | None:
        payload = json.dumps(body).encode() if body is not None else None
        headers = {"Authorization": f"Bearer {self.token}"}
        if payload:
            headers["Content-Length"] = str(len(payload))
        start = time.perf_counter()
        self.connection.request(method, path, payload, headers)
        response = self.connection.getresponse()
        data = response.read()
        self.latencies.append(time.perf_counter() - start)
        if response.status >= 400:
            self.failures.append(
                f"{method} {path} -> {response.status} {data[:200]!r}"
            )
            return None
        return json.loads(data) if data else None

    def close(self) -> None:
        self.connection.close()


def tenant_workload(client: TenantClient, tenant: str, rounds: int) -> None:
    sid = "bench"
    client.call("POST", "/v1/sessions", {"session_id": sid})
    client.call("POST", f"/v1/sessions/{sid}/schemas", {"ddl": SC1_DDL})
    client.call("POST", f"/v1/sessions/{sid}/schemas", {"ddl": SC2_DDL})
    for first, second in (
        ("sc1.Student.Name", "sc2.Grad_student.Name"),
        ("sc1.Department.Name", "sc2.Department.Name"),
    ):
        client.call(
            "POST",
            f"/v1/sessions/{sid}/equivalences",
            {"first": first, "second": second},
        )
    client.call(
        "GET", f"/v1/sessions/{sid}/candidates?first=sc1&second=sc2"
    )
    client.call(
        "POST",
        f"/v1/sessions/{sid}/assertions",
        {"first": "sc1.Department", "second": "sc2.Department",
         "kind": "EQUALS"},
    )
    client.call(
        "POST",
        f"/v1/sessions/{sid}/assertions",
        {"first": "sc1.Student", "second": "sc2.Grad_student",
         "kind": "CONTAINS"},
    )
    client.call(
        "POST",
        f"/v1/sessions/{sid}/integrate",
        {"first": "sc1", "second": "sc2"},
    )
    client.call(
        "POST",
        f"/v1/sessions/{sid}/query",
        {"request": "select D_Name from Student"},
    )
    for _ in range(rounds):
        client.call("POST", f"/v1/sessions/{sid}/undo")
        client.call("POST", f"/v1/sessions/{sid}/redo")
        client.call("GET", f"/v1/sessions/{sid}")
        client.call("POST", f"/v1/sessions/{sid}/checkpoint")
        client.call("GET", "/v1/sessions")
    client.call("GET", "/v1/stats")


def percentile(values: list[float], fraction: float) -> float:
    ordered = sorted(values)
    index = min(
        len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1)))
    )
    return ordered[index]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fewer rounds per tenant (CI); same gates",
    )
    args = parser.parse_args(argv)
    rounds = ROUNDS_SMOKE if args.smoke else ROUNDS_FULL

    tokens = {f"token-{i}": f"tenant{i:02d}" for i in range(TENANTS)}
    with tempfile.TemporaryDirectory() as tmp:
        with Server(Path(tmp), tokens) as server:
            clients = [
                TenantClient(server.port, token) for token in tokens
            ]
            threads = [
                threading.Thread(
                    target=tenant_workload,
                    args=(client, tenant, rounds),
                )
                for client, tenant in zip(clients, tokens.values())
            ]
            wall_start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=300)
            wall_seconds = time.perf_counter() - wall_start
            for client in clients:
                client.close()
            stats = server.app.manager.stats()

    latencies = [lat for client in clients for lat in client.latencies]
    failures = [msg for client in clients for msg in client.failures]
    sustained = sum(
        1 for client in clients if client.latencies and not client.failures
    )
    bytes_per_session = stats.resident_bytes / max(
        stats.resident_sessions, 1
    )
    sessions_per_gb = int((1 << 30) / max(bytes_per_session, 1))
    p99 = percentile(latencies, 0.99)

    gates = {
        "sustained_tenants": {
            "count": sustained,
            "floor": MIN_SUSTAINED_TENANTS,
            "passed": sustained >= MIN_SUSTAINED_TENANTS and not failures,
        },
        "eviction_churn": {
            "evictions": stats.evictions,
            "rehydrations": stats.rehydrations,
            "passed": stats.evictions >= 1 and stats.rehydrations >= 1,
        },
        "p99_latency": {
            "seconds": round(p99, 6),
            "ceiling_seconds": P99_CEILING_SECONDS,
            "passed": p99 <= P99_CEILING_SECONDS,
        },
    }
    report = {
        "description": (
            "multi-tenant service lifecycle over the real asyncio server; "
            "see docs/SERVICE.md and make service-smoke"
        ),
        "repro_sha": repo_sha(),
        "smoke": args.smoke,
        "tenants": TENANTS,
        "rounds_per_tenant": rounds,
        "max_resident": MAX_RESIDENT,
        "requests": {
            "total": len(latencies),
            "failed": len(failures),
            "wall_seconds": round(wall_seconds, 3),
            "throughput_per_second": round(
                len(latencies) / max(wall_seconds, 1e-9), 1
            ),
        },
        "latency_seconds": {
            "mean": round(statistics.fmean(latencies), 6),
            "p50": round(percentile(latencies, 0.50), 6),
            "p95": round(percentile(latencies, 0.95), 6),
            "p99": round(p99, 6),
            "max": round(max(latencies), 6),
        },
        "residency": {
            "resident_sessions": stats.resident_sessions,
            "known_sessions": stats.known_sessions,
            "resident_bytes": stats.resident_bytes,
            "evictions": stats.evictions,
            "rehydrations": stats.rehydrations,
            "approx_bytes_per_session": int(bytes_per_session),
            "sessions_per_gb": sessions_per_gb,
        },
        "gates": gates,
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {OUTPUT}")
    print(json.dumps(report, indent=2))
    if failures:
        for message in failures[:10]:
            print(f"FAILED REQUEST: {message}", file=sys.stderr)
    failed = [name for name, gate in gates.items() if not gate["passed"]]
    if failed:
        print(f"GATE FAILURE: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
