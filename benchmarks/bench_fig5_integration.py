"""FIG5 — the integrated schema of Figure 5 / Screen 10.

The headline artifact: integrating sc1 and sc2 with the paper's
equivalences and assertions must produce exactly the structures the paper
draws — entities E_Department and D_Stud_Facu; categories Student,
Grad_student and Faculty; relationships E_Stud_Majo and Works.
"""

from conftest import make_paper_setup

from repro.analysis.report import Table
from repro.ecr.diagram import ascii_diagram
from repro.integration.integrator import Integrator


def run_integration():
    registry, network, relationship_network = make_paper_setup()
    return Integrator(registry, network, relationship_network).integrate(
        "sc1", "sc2"
    )


def test_fig5_integrated_schema(benchmark):
    result = benchmark(run_integration)
    schema = result.schema
    table = Table(
        "FIG5: integrated schema",
        ["kind", "paper", "reproduced"],
    )
    table.add_row(
        "entities",
        "E_Department, D_Stud_Facu",
        ", ".join(e.name for e in schema.entity_sets()),
    )
    table.add_row(
        "categories",
        "Student, Grad_student, Faculty",
        ", ".join(c.name for c in schema.categories()),
    )
    table.add_row(
        "relationships",
        "E_Stud_Majo, Works",
        ", ".join(r.name for r in schema.relationship_sets()),
    )
    print()
    print(table)
    print(ascii_diagram(schema))
    assert [e.name for e in schema.entity_sets()] == [
        "E_Department",
        "D_Stud_Facu",
    ]
    assert [c.name for c in schema.categories()] == [
        "Student",
        "Grad_student",
        "Faculty",
    ]
    assert [r.name for r in schema.relationship_sets()] == [
        "E_Stud_Majo",
        "Works",
    ]
    # the lattice of Figure 5
    assert schema.category("Student").parents == ["D_Stud_Facu"]
    assert schema.category("Faculty").parents == ["D_Stud_Facu"]
    assert schema.category("Grad_student").parents == ["Student"]
    # and the full structural diff against a hand-built Figure 5 is empty
    from repro.analysis.diff import diff_schemas
    from repro.workloads.university import build_expected_figure5

    assert diff_schemas(build_expected_figure5(), schema) == []
