"""SCR9 — the conflict-resolution scenario on sc3/sc4.

Reproduces the derivation (Instructor ⊆ Grad_student ⊆ Student ⇒
Instructor ⊆ Student), the rejection of the contradictory code-0
assertion, and the Screen 9 report content with its derivation chain.
"""

from repro.analysis.report import Table
from repro.assertions.conflicts import render_screen9
from repro.assertions.network import AssertionNetwork
from repro.ecr.schema import ObjectRef
from repro.errors import ConflictError
from repro.workloads.university import build_sc3, build_sc4


def provoke_conflict():
    network = AssertionNetwork()
    network.seed_schema(build_sc3())
    network.seed_schema(build_sc4())
    network.specify(
        ObjectRef("sc3", "Instructor"), ObjectRef("sc4", "Grad_student"), 2
    )
    try:
        network.specify(
            ObjectRef("sc3", "Instructor"), ObjectRef("sc4", "Student"), 0
        )
    except ConflictError as conflict:
        return network, conflict.report
    raise AssertionError("the conflicting assertion was not rejected")


def test_screen9_conflict_detection(benchmark):
    network, report = benchmark(provoke_conflict)
    table = Table(
        "SCR9: conflict rows",
        ["pair", "current", "new"],
    )
    table.add_row(
        f"{report.subject_first} / {report.subject_second}",
        f"{report.current.kind.code} <derived>",
        f"{report.new.kind.code} <new>",
    )
    for assertion in report.chain:
        table.add_row(
            f"{assertion.first} / {assertion.second}",
            str(assertion.kind.code),
            "",
        )
    print()
    print(table)
    print(render_screen9(report))
    # The paper's four rows: derived 2, new 0, and the two chain lines.
    assert report.current.kind.code == 2
    assert report.new.kind.code == 0
    chain = {
        (str(a.first), str(a.second), a.kind.code) for a in report.chain
    }
    assert chain == {
        ("sc3.Instructor", "sc4.Grad_student", 2),
        ("sc4.Grad_student", "sc4.Student", 2),
    }
    # the repair of the paper: change line 3 to 0, retry, accepted
    network.respecify(
        ObjectRef("sc3", "Instructor"), ObjectRef("sc4", "Grad_student"), 0
    )
    accepted = network.specify(
        ObjectRef("sc3", "Instructor"), ObjectRef("sc4", "Student"), 0
    )
    assert accepted.kind.code == 0
