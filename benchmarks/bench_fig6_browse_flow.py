"""FIG6 — the control flow of the browse screens.

Figure 6 draws the arcs between the eight viewing screens; we check the
implemented transition graph matches, and additionally *drive* every arc
through the live tool so the graph is not just declared but real.
"""

from repro.analysis.report import Table
from repro.tool.screens.browse import BROWSE_FLOW_EDGES
from repro.tool.session import ToolSession
from repro.tool.screens.browse import (
    AttributeScreen,
    CategoryScreen,
    ComponentAttributeScreen,
    EntityScreen,
    EquivalentScreen,
    ObjectClassScreen,
    ParticipatingObjectsScreen,
    RelationshipScreen,
)
from repro.workloads.university import (
    PAPER_ASSERTION_CODES,
    PAPER_RELATIONSHIP_CODES,
    build_sc1,
    build_sc2,
)
from repro.ecr.schema import ObjectRef

PAPER_EDGES = {
    ("ObjectClassScreen", "AttributeScreen"),
    ("ObjectClassScreen", "CategoryScreen"),
    ("ObjectClassScreen", "EntityScreen"),
    ("ObjectClassScreen", "RelationshipScreen"),
    ("EntityScreen", "EquivalentScreen"),
    ("CategoryScreen", "EquivalentScreen"),
    ("RelationshipScreen", "EquivalentScreen"),
    ("RelationshipScreen", "ParticipatingObjectsScreen"),
    ("AttributeScreen", "ComponentAttributeScreen"),
}


def build_session():
    session = ToolSession()
    session.adopt_schema(build_sc1())
    session.adopt_schema(build_sc2())
    session.select_pair("sc1", "sc2")
    for first, second in [
        ("sc1.Student.Name", "sc2.Grad_student.Name"),
        ("sc1.Student.Name", "sc2.Faculty.Name"),
        ("sc1.Student.GPA", "sc2.Grad_student.GPA"),
        ("sc1.Department.Name", "sc2.Department.Name"),
        ("sc1.Majors.Since", "sc2.Majors.Since"),
    ]:
        session.registry.declare_equivalent(first, second)
    for first, second, code in PAPER_ASSERTION_CODES:
        session.object_network.specify(
            ObjectRef.parse(first), ObjectRef.parse(second), code
        )
    for first, second, code in PAPER_RELATIONSHIP_CODES:
        session.relationship_network.specify(
            ObjectRef.parse(first), ObjectRef.parse(second), code
        )
    session.integrate()
    return session


def drive_all_arcs(session):
    """Exercise every Figure 6 arc against the live session."""
    object_screen = ObjectClassScreen()
    visited = []
    visited.append(object_screen.handle("Student a", session))
    visited.append(object_screen.handle("Student c", session))
    visited.append(object_screen.handle("E_Department e", session))
    visited.append(object_screen.handle("Works r", session))
    visited.append(EntityScreen("E_Department").handle("v", session))
    visited.append(CategoryScreen("Student").handle("v", session))
    visited.append(RelationshipScreen("Works").handle("v", session))
    visited.append(RelationshipScreen("E_Stud_Majo").handle("p", session))
    visited.append(AttributeScreen("Student").handle("D_Name", session))
    return visited


def test_fig6_browse_control_flow(benchmark):
    session = build_session()
    visited = benchmark(drive_all_arcs, session)
    table = Table("FIG6: browse-screen arcs", ["from", "choice", "to"])
    for source, choice, target in BROWSE_FLOW_EDGES:
        table.add_row(source, choice, target)
    print()
    print(table)
    declared = {(src, dst) for src, _, dst in BROWSE_FLOW_EDGES}
    assert declared == PAPER_EDGES
    reached = [type(screen).__name__ for screen in visited]
    assert reached == [
        "AttributeScreen",
        "CategoryScreen",
        "EntityScreen",
        "RelationshipScreen",
        "EquivalentScreen",
        "EquivalentScreen",
        "EquivalentScreen",
        "ParticipatingObjectsScreen",
        "ComponentAttributeScreen",
    ]
