"""Record federated-engine performance to BENCH_federation.json.

Models a federation of N sc1-shaped component databases (each behind a
simulated network latency) all mapped onto the Figure 5 integrated
schema, and measures:

* **scaling** — wall time of one global request answered sequentially
  (the oracle's execution order) vs concurrently, at 1/2/4/8 components;
* **plan cache** — hit ratio over repeated requests;
* **partial results** — latency and health of a query with one component
  down, verifying fault injection never leaks an exception.

The script *gates*: it exits non-zero if the concurrent fan-out is not
at least 2x faster than the sequential baseline on 8 components, or if
the fault-injection run raises.  ``make fed-smoke`` runs it in CI.

Run:  PYTHONPATH=src python benchmarks/record_federation.py
"""

from __future__ import annotations

import json
import statistics
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.assertions.kinds import AssertionKind  # noqa: E402
from repro.assertions.network import AssertionNetwork  # noqa: E402
from repro.data.populate import populate_store  # noqa: E402
from repro.ecr.builder import SchemaBuilder  # noqa: E402
from repro.ecr.schema import ObjectRef  # noqa: E402
from repro.federation import (  # noqa: E402
    ExecutionPolicy,
    FederationEngine,
    FlakyBackend,
    InstanceBackend,
)
from repro.integration.mappings import SchemaMapping  # noqa: E402
from repro.obs.metrics import MetricsRegistry  # noqa: E402
from repro.workloads.university import build_expected_figure5  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_federation.json"

COMPONENT_COUNTS = [1, 2, 4, 8]
#: simulated per-call network/processing latency of a remote component
LATENCY_S = 0.02
REQUEST = "select D_Name, D_GPA from Student"
REPEATS = 5


def repo_sha() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def build_component_schema(name: str):
    """An sc1-shaped component schema under the given name."""
    return (
        SchemaBuilder(name, "benchmark component")
        .entity("Student", attrs=[("Name", "char", True), ("GPA", "real")])
        .entity("Department", attrs=[("Name", "char", True)])
        .relationship(
            "Majors",
            connects=[("Student", "(1,1)"), ("Department", "(0,n)")],
            attrs=[("Since", "date")],
        )
        .build()
    )


def build_mapping(name: str, integrated_name: str) -> SchemaMapping:
    """The Figure 5 mapping for one sc1-shaped component."""
    return SchemaMapping(
        component_schema=name,
        integrated_schema=integrated_name,
        objects={
            "Student": "Student",
            "Department": "E_Department",
            "Majors": "E_Stud_Majo",
        },
        attributes={
            ("Student", "Name"): ("Student", "D_Name"),
            ("Student", "GPA"): ("Student", "D_GPA"),
            ("Department", "Name"): ("E_Department", "D_Name"),
            ("Majors", "Since"): ("E_Stud_Majo", "D_Since"),
        },
    )


def build_federation(count: int):
    """mappings, stores, and a pairwise-equals network for N components."""
    integrated = build_expected_figure5()
    names = [f"comp{index}" for index in range(count)]
    mappings = {name: build_mapping(name, integrated.name) for name in names}
    stores = {
        name: populate_store(
            build_component_schema(name),
            seed=index + 1,
            entities_per_class=25,
            links_per_relationship=25,
        )
        for index, name in enumerate(names)
    }
    network = AssertionNetwork()
    for name in names:
        network.add_object(ObjectRef(name, "Student"))
        network.add_object(ObjectRef(name, "Department"))
    for index, first in enumerate(names):
        for second in names[index + 1:]:
            for cls in ("Student", "Department"):
                network.specify(
                    ObjectRef(first, cls),
                    ObjectRef(second, cls),
                    AssertionKind.EQUALS.code,
                )
    return integrated, mappings, stores, network


def flaky_backends(stores, latency: float = LATENCY_S):
    return {
        name: FlakyBackend(InstanceBackend(store), latency=latency, seed=index)
        for index, (name, store) in enumerate(sorted(stores.items()))
    }


def timed(engine: FederationEngine, repeats: int = REPEATS) -> float:
    """Median wall time of one query (plan pre-warmed)."""
    engine.query(REQUEST)  # warm the plan cache and the thread pool path
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        engine.query(REQUEST)
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def measure_scaling() -> list[dict]:
    rows = []
    for count in COMPONENT_COUNTS:
        integrated, mappings, stores, network = build_federation(count)
        sequential = FederationEngine.for_backends(
            mappings,
            flaky_backends(stores),
            integrated,
            object_network=network,
            policy=ExecutionPolicy(sequential=True),
        )
        concurrent = FederationEngine.for_backends(
            mappings,
            flaky_backends(stores),
            integrated,
            object_network=network,
        )
        seq_s = timed(sequential)
        conc_s = timed(concurrent)
        result = concurrent.query(REQUEST)
        rows.append(
            {
                "components": count,
                "sequential_s": round(seq_s, 6),
                "concurrent_s": round(conc_s, 6),
                "speedup": round(seq_s / conc_s, 3),
                "strategy": str(result.plan.strategy),
                "rows": len(result.rows),
                "healthy": result.ok,
            }
        )
        print(
            f"  {count} component(s): sequential {seq_s * 1e3:.1f} ms, "
            f"concurrent {conc_s * 1e3:.1f} ms "
            f"({rows[-1]['speedup']:.2f}x)"
        )
    return rows


def measure_plan_cache(queries: int = 20) -> dict:
    integrated, mappings, stores, network = build_federation(4)
    metrics = MetricsRegistry()
    engine = FederationEngine.for_stores(
        mappings, stores, integrated, object_network=network, metrics=metrics
    )
    for _ in range(queries):
        engine.query(REQUEST)
    hits = metrics.counter("federation.plan.hit").value
    misses = metrics.counter("federation.plan.miss").value
    return {
        "queries": queries,
        "hits": hits,
        "misses": misses,
        "hit_ratio": round(hits / (hits + misses), 4),
    }


def measure_partial_results() -> dict:
    """One dead component out of 8: answers still arrive, nothing leaks."""
    integrated, mappings, stores, network = build_federation(8)
    backends = flaky_backends(stores)
    backends["comp7"] = FlakyBackend(
        InstanceBackend(stores["comp7"]),
        latency=LATENCY_S,
        down=True,
    )
    engine = FederationEngine.for_backends(
        mappings,
        backends,
        integrated,
        object_network=network,
        policy=ExecutionPolicy(retries=1, backoff=0.005),
    )
    start = time.perf_counter()
    result = engine.query(REQUEST)
    elapsed = time.perf_counter() - start
    return {
        "components": 8,
        "down": 1,
        "latency_s": round(elapsed, 6),
        "degraded": result.degraded,
        "rows": len(result.rows),
        "health": result.health.summary(),
    }


def main() -> int:
    print("scaling (sequential vs concurrent fan-out):")
    scaling = measure_scaling()
    print("plan cache:")
    plan_cache = measure_plan_cache()
    print(f"  hit ratio {plan_cache['hit_ratio']:.2%}")
    print("partial results under faults:")
    try:
        partial = measure_partial_results()
        fault_clean = True
        print(f"  {partial['health']} in {partial['latency_s'] * 1e3:.1f} ms")
    except Exception as exc:  # noqa: BLE001 - the gate reports, then fails
        partial = {"error": f"{type(exc).__name__}: {exc}"}
        fault_clean = False
        print(f"  LEAKED: {partial['error']}")

    eight = next(row for row in scaling if row["components"] == 8)
    checks = {
        "speedup_8_components_ge_2": eight["speedup"] >= 2.0,
        "fault_injection_clean": fault_clean
        and partial.get("degraded") is True
        and partial.get("rows", 0) > 0,
    }
    payload = {
        "sha": repo_sha(),
        "request": REQUEST,
        "latency_model_s": LATENCY_S,
        "repeats": REPEATS,
        "scaling": scaling,
        "plan_cache": plan_cache,
        "partial_results": partial,
        "checks": checks,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUTPUT.relative_to(REPO_ROOT)}")
    if not all(checks.values()):
        failed = [name for name, passed in checks.items() if not passed]
        print(f"FAILED checks: {', '.join(failed)}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
