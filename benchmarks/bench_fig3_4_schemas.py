"""FIG3-4 — the input schemas sc1 and sc2, built, validated and printed."""

from repro.analysis.metrics import schema_size
from repro.analysis.report import Table
from repro.ecr.ddl import parse_ddl, to_ddl
from repro.ecr.diagram import ascii_diagram
from repro.ecr.validation import validate_schema
from repro.workloads.university import build_sc1, build_sc2


def build_both():
    return build_sc1(), build_sc2()


def test_fig3_4_input_schemas(benchmark):
    sc1, sc2 = benchmark(build_both)
    table = Table(
        "FIG3/FIG4: input schemas",
        ["schema", "entities", "categories", "relationships", "attributes"],
    )
    for schema in (sc1, sc2):
        table.add_row(schema.name, *schema_size(schema).as_row())
    print()
    print(table)
    print(ascii_diagram(sc1))
    print(ascii_diagram(sc2))
    # Screen 3 pins sc1: Student/2 attrs, Department/1, Majors/1.
    assert [len(s.attributes) for s in sc1] == [2, 1, 1]
    # Screen 7 pins sc2.Grad_student's three attributes.
    assert sc2.get("Grad_student").attribute_names() == [
        "Name",
        "GPA",
        "Support_type",
    ]
    for schema in (sc1, sc2):
        assert validate_schema(schema) == []
        # and the DDL round-trips, so the figures are fully serialisable
        assert to_ddl(parse_ddl(to_ddl(schema))) == to_ddl(schema)
