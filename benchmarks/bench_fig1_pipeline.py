"""FIG1 — the four-phase pipeline of Figure 1, end to end.

Regenerates the complete trace (collection → analysis → assertions →
integration) on the paper's sc1/sc2 and times the whole pipeline.
"""

from repro.analysis.report import Table
from repro.equivalence.registry import EquivalenceRegistry
from repro.assertions.network import AssertionNetwork
from repro.ecr.schema import ObjectRef
from repro.integration.integrator import Integrator
from repro.workloads.university import (
    PAPER_ASSERTION_CODES,
    PAPER_RELATIONSHIP_CODES,
    build_sc1,
    build_sc2,
)


def run_pipeline():
    # Phase 1
    sc1, sc2 = build_sc1(), build_sc2()
    # Phase 2
    registry = EquivalenceRegistry([sc1, sc2])
    registry.declare_equivalent("sc1.Student.Name", "sc2.Grad_student.Name")
    registry.declare_equivalent("sc1.Student.Name", "sc2.Faculty.Name")
    registry.declare_equivalent("sc1.Student.GPA", "sc2.Grad_student.GPA")
    registry.declare_equivalent("sc1.Department.Name", "sc2.Department.Name")
    registry.declare_equivalent("sc1.Majors.Since", "sc2.Majors.Since")
    # Phase 3
    network = AssertionNetwork()
    network.seed_schema(sc1)
    network.seed_schema(sc2)
    for first, second, code in PAPER_ASSERTION_CODES:
        network.specify(ObjectRef.parse(first), ObjectRef.parse(second), code)
    rel_network = AssertionNetwork()
    for schema in (sc1, sc2):
        for relationship in schema.relationship_sets():
            rel_network.add_object(ObjectRef(schema.name, relationship.name))
    for first, second, code in PAPER_RELATIONSHIP_CODES:
        rel_network.specify(ObjectRef.parse(first), ObjectRef.parse(second), code)
    # Phase 4
    return Integrator(registry, network, rel_network).integrate("sc1", "sc2")


def test_fig1_four_phase_pipeline(benchmark):
    result = benchmark(run_pipeline)
    table = Table(
        "FIG1: four-phase pipeline on sc1+sc2",
        ["phase", "artifact"],
    )
    table.add_row("1 collection", "sc1 (3 structures), sc2 (5 structures)")
    table.add_row("2 analysis", "5 equivalence classes declared")
    table.add_row("3 assertions", "3 DDA + derived closure, 0 conflicts")
    table.add_row("4 integration", result.schema.summary())
    print()
    print(table)
    # Shape: the pipeline ends in the Figure 5 schema.
    assert result.schema.summary().startswith(
        "schema integrated: 2 entities, 3 categories, 2 relationships"
    )
    assert [line for line in result.log if "clusters" in line]
