"""SCR8 — the ranked candidate list with the paper's attribute ratios.

Screen 8 shows exactly three rows with ratios 0.5000, 0.5000 and 0.3333;
this benchmark regenerates the list and times the OCS derivation plus
ordering.
"""

from repro.analysis.report import Table
from repro.equivalence.ordering import ordered_object_pairs
from repro.workloads.university import paper_registry

PAPER_ROWS = [
    ("sc1.Department", "sc2.Department", 0.5000),
    ("sc1.Student", "sc2.Grad_student", 0.5000),
    ("sc1.Student", "sc2.Faculty", 0.3333),
]


def rank_candidates():
    registry = paper_registry()
    return ordered_object_pairs(registry, "sc1", "sc2")


def test_screen8_candidate_ordering(benchmark):
    pairs = benchmark(rank_candidates)
    table = Table(
        "SCR8: ranked object pairs",
        ["Schema_Name1.Obj_Class1", "Schema_Name2.Obj_Class2",
         "paper ratio", "reproduced"],
    )
    for (first, second, ratio), pair in zip(PAPER_ROWS, pairs):
        table.add_row(first, second, ratio, round(pair.attribute_ratio, 4))
    print()
    print(table)
    assert len(pairs) == len(PAPER_ROWS)
    for (first, second, ratio), pair in zip(PAPER_ROWS, pairs):
        assert str(pair.first) == first
        assert str(pair.second) == second
        assert round(pair.attribute_ratio, 4) == ratio
