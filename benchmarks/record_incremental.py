"""Record the incremental engine's counters to BENCH_incremental.json.

Replays the two instrumented workloads — the EXP-CLO retract comparison
(``bench_exp_closure.py``) and the Screen 6/7 equivalence session
(``bench_screens_equivalence.py``) — through the incremental engine and
writes every :class:`~repro.obs.metrics.AnalysisCounters` snapshot,
plus the incremental-vs-full-rebuild ratios, to ``BENCH_incremental.json``
at the repository root.

Run:  PYTHONPATH=src python benchmarks/record_incremental.py
"""

from __future__ import annotations

import json
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.assertions.kinds import Source  # noqa: E402
from repro.assertions.network import AssertionNetwork  # noqa: E402
from repro.baselines.closure_baselines import (  # noqa: E402
    drive_assertions_with_closure,
)
from repro.equivalence.registry import EquivalenceRegistry  # noqa: E402
from repro.equivalence.session import AnalysisSession  # noqa: E402
from repro.tool.app import run_script  # noqa: E402
from repro.tool.session import ToolSession  # noqa: E402
from repro.workloads.generator import (  # noqa: E402
    GeneratorConfig,
    generate_schema_pair,
)
from repro.workloads.oracle import OracleDda  # noqa: E402
from repro.workloads.university import build_sc1, build_sc2  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_incremental.json"


def repo_sha() -> str:
    """The repo's HEAD SHA, or ``unknown`` outside a git checkout."""
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def schema_sizes(*schemas) -> list[dict]:
    """Per-schema size metadata: object classes and attribute counts."""
    return [
        {
            "name": schema.name,
            "object_classes": len(schema),
            "attributes": schema.attribute_count(),
        }
        for schema in schemas
    ]

SCREENS_SCRIPT = [
    "2", "sc1 sc2",
    "Student Grad_student", "A Name Name", "A GPA GPA", "E",
    "Student Faculty", "A Name Name", "E",
    "Department Department", "A Name Name", "E",
    "E",
    "E",
]


def record_closure_retract() -> dict:
    """The EXP-CLO single-retract comparison, incremental vs. rebuild."""
    pair = generate_schema_pair(
        GeneratorConfig(seed=17, concepts=16, overlap=0.6, category_rate=0.5)
    )
    incremental, _ = drive_assertions_with_closure(
        pair.first, pair.second, pair.truth
    )
    baseline = AssertionNetwork(incremental=False)
    for ref in incremental.objects():
        baseline.add_object(ref)
    for assertion in incremental.specified_assertions():
        baseline.specify(
            assertion.first, assertion.second, assertion.kind,
            assertion.source, assertion.note,
        )
    specified = [
        a for a in incremental.specified_assertions() if a.source is Source.DDA
    ]
    target = specified[len(specified) // 2]
    incremental.counters.reset()
    baseline.counters.reset()
    started = time.perf_counter()
    incremental.retract(target.first, target.second)
    incremental_seconds = time.perf_counter() - started
    started = time.perf_counter()
    baseline.retract(target.first, target.second)
    baseline_seconds = time.perf_counter() - started
    steps_ratio = incremental.counters.propagation_steps / max(
        1, baseline.counters.propagation_steps
    )
    return {
        "workload": "bench_exp_closure (concepts=16, one retract)",
        "schemas": schema_sizes(pair.first, pair.second),
        "incremental": incremental.counters.snapshot(),
        "full_rebuild": baseline.counters.snapshot(),
        "propagation_steps_ratio": round(steps_ratio, 4),
        "incremental_seconds": round(incremental_seconds, 6),
        "full_rebuild_seconds": round(baseline_seconds, 6),
    }


def record_ocs_edit() -> dict:
    """One Screen 7 edit against a warmed OCS view vs. a cold rebuild."""
    pair = generate_schema_pair(
        GeneratorConfig(seed=17, concepts=16, overlap=0.6, category_rate=0.5)
    )
    registry = EquivalenceRegistry([pair.first, pair.second])
    OracleDda(pair.truth).declare_all_equivalences(registry)
    ocs = registry.ocs(pair.first.name, pair.second.name)
    ocs.as_counts()
    edited = sorted(pair.truth.attribute_pairs)[0][0]
    registry.remove_from_class(edited)
    registry.counters.reset()
    ocs.as_counts()
    total_cells = len(ocs.rows) * len(ocs.columns)
    return {
        "workload": "bench_exp_closure registry (one equivalence edit)",
        "schemas": schema_sizes(pair.first, pair.second),
        "incremental": registry.counters.snapshot(),
        "full_rebuild_cells": total_cells,
        "ocs_cells_ratio": round(
            registry.counters.ocs_cells_recomputed / max(1, total_cells), 4
        ),
    }


def record_screens_session() -> dict:
    """The Screen 6/7 script of bench_screens_equivalence, with counters."""
    session = ToolSession()
    session.adopt_schema(build_sc1())
    session.adopt_schema(build_sc2())
    session.analysis.reset_counters()
    run_script(SCREENS_SCRIPT, session)
    return {
        "workload": "bench_screens_equivalence (Screens 6-7 script)",
        "schemas": schema_sizes(*session.analysis.schemas()),
        "counters": session.analysis.counters_snapshot(),
    }


def record_facade_flow() -> dict:
    """The paper's sc1/sc2 flow via AnalysisSession, end to end."""
    session = AnalysisSession([build_sc1(), build_sc2()])
    session.declare_equivalent("sc1.Student.Name", "sc2.Grad_student.Name")
    session.declare_equivalent("sc1.Student.Name", "sc2.Faculty.Name")
    session.declare_equivalent("sc1.Student.GPA", "sc2.Grad_student.GPA")
    session.declare_equivalent("sc1.Department.Name", "sc2.Department.Name")
    session.declare_equivalent("sc1.Majors.Since", "sc2.Majors.Since")
    session.candidate_pairs("sc1", "sc2")
    session.candidate_pairs("sc1", "sc2")  # second read: served from cache
    session.specify("sc1.Department", "sc2.Department", 1)
    session.specify("sc1.Student", "sc2.Grad_student", 3)
    session.specify("sc1.Student", "sc2.Faculty", 4)
    session.retract("sc1.Student", "sc2.Faculty")
    return {
        "workload": "AnalysisSession paper flow (sc1/sc2)",
        "schemas": schema_sizes(*session.schemas()),
        "counters": session.counters_snapshot(),
    }


def main() -> None:
    report = {
        "description": (
            "Instrumentation counters for the incremental analysis engine; "
            "see docs/API.md and benchmarks/bench_exp_closure.py"
        ),
        "repro_sha": repo_sha(),
        "closure_retract": record_closure_retract(),
        "ocs_edit": record_ocs_edit(),
        "screens_session": record_screens_session(),
        "facade_flow": record_facade_flow(),
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {OUTPUT}")
    print(json.dumps(report, indent=2))


if __name__ == "__main__":
    main()
