"""EXP-SCALE — wall-clock of each phase as the schemas grow.

The tool paper gives no timings (1988 hardware); the practicality claim is
simply that the bookkeeping is automatic.  We time the expensive parts —
OCS + ordering (phase 2/3 prep), closure-driven assertion entry (phase 3)
and integration (phase 4) — over a size sweep to show the library stays
interactive at realistic schema sizes.
"""

import time

from repro.analysis.report import Table
from repro.baselines.closure_baselines import drive_assertions_with_closure
from repro.equivalence.ordering import ordered_object_pairs
from repro.equivalence.registry import EquivalenceRegistry
from repro.integration.integrator import integrate_pair
from repro.workloads.generator import GeneratorConfig, generate_schema_pair
from repro.workloads.oracle import OracleDda

SIZES = (4, 8, 16, 24, 32)


def _prepare(concepts):
    pair = generate_schema_pair(
        GeneratorConfig(seed=31, concepts=concepts, overlap=0.5)
    )
    registry = EquivalenceRegistry([pair.first, pair.second])
    OracleDda(pair.truth).declare_all_equivalences(registry)
    return pair, registry


def phase_times(concepts):
    pair, registry = _prepare(concepts)
    start = time.perf_counter()
    ordered_object_pairs(registry, pair.first.name, pair.second.name)
    t_ordering = time.perf_counter() - start
    start = time.perf_counter()
    network, _ = drive_assertions_with_closure(pair.first, pair.second, pair.truth)
    t_assertions = time.perf_counter() - start
    start = time.perf_counter()
    integrate_pair(registry, network, pair.first.name, pair.second.name)
    t_integration = time.perf_counter() - start
    return t_ordering, t_assertions, t_integration


def run_sweep():
    return {concepts: phase_times(concepts) for concepts in SIZES}


def test_exp_scale_phase_times(benchmark):
    sweep = benchmark.pedantic(run_sweep, rounds=3, iterations=1)
    table = Table(
        "EXP-SCALE: per-phase time (seconds) vs. schema size",
        ["concepts per schema", "ordering", "assertions+closure", "integration"],
    )
    for concepts, (t_ordering, t_assertions, t_integration) in sweep.items():
        table.add_row(concepts, t_ordering, t_assertions, t_integration)
    print()
    print(table)
    # Shape: everything stays interactive (well under a second per phase
    # at 24 concepts ≈ 30+ object classes per schema).
    for times in sweep.values():
        assert all(t < 5.0 for t in times)


def test_exp_scale_integration_only(benchmark):
    pair, registry = _prepare(16)
    network, _ = drive_assertions_with_closure(pair.first, pair.second, pair.truth)
    result = benchmark(
        integrate_pair, registry, network, pair.first.name, pair.second.name
    )
    assert result.schema.attribute_count() > 0
