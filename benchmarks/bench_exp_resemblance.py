"""EXP-RES — ablation over resemblance functions (future-work section).

The paper proposes additional resemblance functions ("to have similar
names", key similarity) combined as a weighted sum.  We compare candidate
orderings produced by: the paper's attribute ratio alone, name similarity
alone, and a weighted combination — measuring how much DDA review effort
each needs to surface every true correspondence.

Shape expected: the weighted combination is at least as good as either
ingredient, and everything beats random.
"""

import statistics

from repro.analysis.report import Table
from repro.baselines.ordering_baselines import (
    all_cross_pairs,
    effort_to_full_recall,
    ordering_random,
)
from repro.equivalence.registry import EquivalenceRegistry
from repro.equivalence.resemblance import (
    AttributeRatio,
    NameResemblance,
    WeightedResemblance,
)
from repro.workloads.generator import GeneratorConfig, generate_schema_pair
from repro.workloads.oracle import OracleDda

SEEDS = range(5)


def _order_by(scorer, registry, first, second):
    pairs = all_cross_pairs(first, second)
    scored = []
    for ref_a, ref_b in pairs:
        object_a = registry.schema(ref_a.schema).object_class(ref_a.object_name)
        object_b = registry.schema(ref_b.schema).object_class(ref_b.object_name)
        scored.append(
            (-scorer.score(ref_a, object_a, ref_b, object_b), ref_a, ref_b)
        )
    scored.sort()
    return [(ref_a, ref_b) for _, ref_a, ref_b in scored]


def run_experiment():
    efforts = {"attribute_ratio": [], "name_only": [], "weighted": [],
               "random": []}
    for seed in SEEDS:
        pair = generate_schema_pair(
            GeneratorConfig(seed=seed, concepts=10, overlap=0.5,
                            name_hint_rate=0.6)
        )
        registry = EquivalenceRegistry([pair.first, pair.second])
        OracleDda(pair.truth).declare_all_equivalences(registry)
        ratio = AttributeRatio(registry)
        name = NameResemblance()
        weighted = WeightedResemblance([ratio, name], [2.0, 1.0])
        orderings = {
            "attribute_ratio": _order_by(ratio, registry, pair.first, pair.second),
            "name_only": _order_by(name, registry, pair.first, pair.second),
            "weighted": _order_by(weighted, registry, pair.first, pair.second),
            "random": ordering_random(pair.first, pair.second, seed),
        }
        for key, ordering in orderings.items():
            efforts[key].append(effort_to_full_recall(ordering, pair.truth))
    return {key: statistics.mean(values) for key, values in efforts.items()}


def test_exp_resemblance_ablation(benchmark):
    means = benchmark(run_experiment)
    table = Table(
        "EXP-RES: mean pairs reviewed to reach full recall (5 seeds)",
        ["ordering", "mean effort (pairs)"],
    )
    for key in ("weighted", "attribute_ratio", "name_only", "random"):
        table.add_row(key, means[key])
    print()
    print(table)
    assert means["weighted"] <= means["random"]
    assert means["attribute_ratio"] <= means["random"]
    # the combination never hurts relative to the ratio alone on average
    assert means["weighted"] <= means["attribute_ratio"] + 1.0
