"""Record kernel overheads to BENCH_kernel.json and gate on them.

Two numbers matter for the event-sourced kernel to stay free in
practice:

* **per-event bus overhead** — the cost of appending one event and
  notifying subscribers must be a rounding error next to the real work
  it accompanies.  Gate: at most 5% of the incremental-propagation
  baseline (the single-retract time recorded by
  ``benchmarks/record_incremental.py``, recomputed here so the gate is
  self-contained).
* **snapshot restore** — checking out the paper's full sc1/sc2 world
  (declarations, assertions, integration) from an exported snapshot
  must stay interactive.  Gate: at most 50 ms.

Run:  PYTHONPATH=src python benchmarks/record_kernel.py
Exits non-zero when a gate fails (the ``make kernel-smoke`` contract).
"""

from __future__ import annotations

import json
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.baselines.closure_baselines import (  # noqa: E402
    drive_assertions_with_closure,
)
from repro.equivalence.session import AnalysisSession  # noqa: E402
from repro.kernel import EventBus, Kernel  # noqa: E402
from repro.workloads.generator import (  # noqa: E402
    GeneratorConfig,
    generate_schema_pair,
)
from repro.workloads.university import (  # noqa: E402
    PAPER_ASSERTION_CODES,
    PAPER_RELATIONSHIP_CODES,
    build_sc1,
    build_sc2,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_kernel.json"

BUS_EVENTS = 20_000
OVERHEAD_CEILING = 0.05  # per-event publish vs. incremental retract
RESTORE_CEILING_SECONDS = 0.050

PAPER_DECLARATIONS = [
    ("sc1.Student.Name", "sc2.Grad_student.Name"),
    ("sc1.Student.Name", "sc2.Faculty.Name"),
    ("sc1.Student.GPA", "sc2.Grad_student.GPA"),
    ("sc1.Department.Name", "sc2.Department.Name"),
    ("sc1.Majors.Since", "sc2.Majors.Since"),
]


def repo_sha() -> str:
    """The repo's HEAD SHA, or ``unknown`` outside a git checkout."""
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def measure_bus_overhead() -> dict:
    """Mean seconds per publish, with view + audit-style subscribers on."""
    bus = EventBus()
    invalidations = []
    bus.subscribe(lambda event: invalidations.append(event.offset))
    bus.subscribe(lambda event: None, live_only=True)  # the audit tap shape
    payload = {"first": "sc1.Student.Name", "second": "sc2.Grad_student.Name"}
    started = time.perf_counter()
    for _ in range(BUS_EVENTS):
        bus.publish("registry", "declare_equivalent", payload)
    elapsed = time.perf_counter() - started
    return {
        "events": BUS_EVENTS,
        "total_seconds": round(elapsed, 6),
        "per_event_seconds": elapsed / BUS_EVENTS,
        "subscribers": 2,
    }


def measure_incremental_baseline() -> dict:
    """One incremental retract on the EXP-CLO workload (the PR-1 baseline)."""
    from repro.assertions.kinds import Source

    pair = generate_schema_pair(
        GeneratorConfig(seed=17, concepts=16, overlap=0.6, category_rate=0.5)
    )
    network, _ = drive_assertions_with_closure(
        pair.first, pair.second, pair.truth
    )
    specified = [
        a for a in network.specified_assertions() if a.source is Source.DDA
    ]
    target = specified[len(specified) // 2]
    started = time.perf_counter()
    network.retract(target.first, target.second)
    elapsed = time.perf_counter() - started
    return {
        "workload": "bench_exp_closure (concepts=16, one retract)",
        "seconds": elapsed,
    }


def build_paper_world() -> AnalysisSession:
    """The paper's sc1/sc2 sitting, driven end to end through the kernel."""
    session = AnalysisSession([build_sc1(), build_sc2()])
    for first, second in PAPER_DECLARATIONS:
        session.declare_equivalent(first, second)
    for first, second, code in PAPER_ASSERTION_CODES:
        session.specify(first, second, code)
    for first, second, code in PAPER_RELATIONSHIP_CODES:
        session.specify(first, second, code, relationships=True)
    session.integrate("sc1", "sc2")
    return session


def measure_snapshot_restore() -> dict:
    """Export the paper world, then time restore + checkout of its head."""
    session = build_paper_world()
    session.kernel.snapshot()
    state = session.kernel.export_state()
    started = time.perf_counter()
    kernel = Kernel.restore(state)
    AnalysisSession(kernel=kernel)
    kernel.checkout(state["head"])
    elapsed = time.perf_counter() - started
    return {
        "events": len(state["events"]),
        "snapshots": len(state["snapshots"]),
        "seconds": elapsed,
    }


def main() -> int:
    bus = measure_bus_overhead()
    baseline = measure_incremental_baseline()
    restore = measure_snapshot_restore()

    overhead_ratio = bus["per_event_seconds"] / max(
        baseline["seconds"], 1e-12
    )
    gates = {
        "bus_overhead": {
            "ratio": round(overhead_ratio, 6),
            "ceiling": OVERHEAD_CEILING,
            "passed": overhead_ratio <= OVERHEAD_CEILING,
        },
        "snapshot_restore": {
            "seconds": round(restore["seconds"], 6),
            "ceiling_seconds": RESTORE_CEILING_SECONDS,
            "passed": restore["seconds"] <= RESTORE_CEILING_SECONDS,
        },
    }
    report = {
        "description": (
            "Event-sourced kernel overheads and smoke gates; "
            "see docs/ARCHITECTURE.md and make kernel-smoke"
        ),
        "repro_sha": repo_sha(),
        "bus_publish": {
            **bus,
            "per_event_seconds": round(bus["per_event_seconds"], 9),
        },
        "incremental_baseline": {
            **baseline,
            "seconds": round(baseline["seconds"], 6),
        },
        "snapshot_restore": {
            **restore,
            "seconds": round(restore["seconds"], 6),
        },
        "gates": gates,
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {OUTPUT}")
    print(json.dumps(report, indent=2))
    failed = [name for name, gate in gates.items() if not gate["passed"]]
    if failed:
        print(f"GATE FAILURE: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
