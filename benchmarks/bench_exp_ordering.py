"""EXP-ORD — does the resemblance ordering save DDA review effort?

The paper's rationale for Screen 8's ranking: "the higher the percentage of
equivalent attributes between two objects, the more likely they are to be
integrated with stronger assertions".  We measure recall@k of the true
correspondences under the resemblance ordering against random and
alphabetical baselines, over seeded synthetic schema pairs.

Shape expected: the resemblance series dominates both baselines at small k.
"""

import statistics

from repro.analysis.report import Table
from repro.baselines.ordering_baselines import (
    ordering_alphabetical,
    ordering_random,
    ordering_resemblance,
    recall_at_k,
)
from repro.equivalence.registry import EquivalenceRegistry
from repro.workloads.generator import GeneratorConfig, generate_schema_pair
from repro.workloads.oracle import OracleDda

SEEDS = range(5)
K_POINTS = (1, 2, 4, 8, 16, 32)


def _prepared(seed):
    pair = generate_schema_pair(
        GeneratorConfig(seed=seed, concepts=12, overlap=0.5)
    )
    registry = EquivalenceRegistry([pair.first, pair.second])
    OracleDda(pair.truth).declare_all_equivalences(registry)
    return pair, registry


def run_experiment():
    series = {"resemblance": [], "random": [], "alphabetical": []}
    for k in K_POINTS:
        at_k = {name: [] for name in series}
        for seed in SEEDS:
            pair, registry = _prepared(seed)
            orderings = {
                "resemblance": ordering_resemblance(
                    registry, pair.first, pair.second
                ),
                "random": ordering_random(pair.first, pair.second, seed),
                "alphabetical": ordering_alphabetical(pair.first, pair.second),
            }
            for name, ordering in orderings.items():
                at_k[name].append(recall_at_k(ordering, pair.truth, k))
        for name in series:
            series[name].append(statistics.mean(at_k[name]))
    return series


def test_exp_ordering_recall_at_k(benchmark):
    series = benchmark(run_experiment)
    table = Table(
        "EXP-ORD: mean recall@k of true correspondences (5 seeds)",
        ["k", "resemblance", "random", "alphabetical"],
    )
    for index, k in enumerate(K_POINTS):
        table.add_row(
            k,
            series["resemblance"][index],
            series["random"][index],
            series["alphabetical"][index],
        )
    print()
    print(table)
    # Shape: the heuristic wins at every small k and reaches full recall
    # within the candidate count.
    for index, k in enumerate(K_POINTS[:4]):
        assert series["resemblance"][index] >= series["random"][index]
        assert series["resemblance"][index] >= series["alphabetical"][index]
    assert series["resemblance"][2] > series["random"][2]  # strictly at k=4
    assert series["resemblance"][-1] == 1.0
