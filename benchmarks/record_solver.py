"""Record the batch solver against the closure oracle to BENCH_solver.json.

Three instrumented comparisons, each with a hard gate (non-zero exit on
failure, so ``make solver-smoke`` can enforce them in CI):

* **fixpoint parity** — on conflict-free generated workloads the
  solver's derived assertions and narrowed feasible sets must equal the
  incremental network's, while its adjacency-restricted worklist does
  no more triangle revisions than the oracle's propagation;
* **conflict detection** — on conflict-seeded workloads
  (``repro.workloads.conflict_seeded_config``) every planted
  contradiction must raise :class:`~repro.errors.ConsistencyFailure`
  with a conflict set that ``verify_conflict`` confirms is both
  sufficient and minimal, and the oracle must agree the input is
  inconsistent;
* **suggestion recall** — on conflict-free runs at least one planted
  true equivalence must rank in the suggestion top 3.

Run:  PYTHONPATH=src python benchmarks/record_solver.py
"""

from __future__ import annotations

import json
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.assertions.assertion import Assertion  # noqa: E402
from repro.assertions.kinds import AssertionKind  # noqa: E402
from repro.baselines import (  # noqa: E402
    closure_oracle,
    derived_keys,
    objects_of,
)
from repro.equivalence.session import AnalysisSession  # noqa: E402
from repro.errors import ConsistencyFailure  # noqa: E402
from repro.obs.metrics import AnalysisCounters  # noqa: E402
from repro.solver import ConstraintSolver, verify_conflict  # noqa: E402
from repro.workloads.generator import (  # noqa: E402
    GeneratorConfig,
    conflict_seeded_config,
    generate_schema_pair,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_solver.json"

#: conflict-free parity worlds: (seed, concepts, overlap)
PARITY_WORLDS = [(11, 10, 0.5), (23, 14, 0.7), (42, 18, 1.0)]
#: conflict-seeded worlds: (seed, contradictions)
CONFLICT_WORLDS = [(0, 2), (1, 2), (2, 3), (3, 1)]
#: suggestion-recall seeds (conflict-free, dense equivalences)
SUGGESTION_SEEDS = [0, 1, 2, 3, 4]


def repo_sha() -> str:
    """The repo's HEAD SHA, or ``unknown`` outside a git checkout."""
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def truth_facts(pair) -> list[Assertion]:
    return [
        Assertion(first, second, kind)
        for (first, second), kind in pair.truth.object_assertions.items()
    ]


def record_fixpoint_parity() -> tuple[dict, list[str]]:
    failures: list[str] = []
    runs = []
    for seed, concepts, overlap in PARITY_WORLDS:
        pair = generate_schema_pair(
            GeneratorConfig(seed=seed, concepts=concepts, overlap=overlap)
        )
        facts = truth_facts(pair)
        counters = AnalysisCounters()
        start = time.perf_counter()
        solution = ConstraintSolver(facts, counters=counters).solve()
        solver_seconds = time.perf_counter() - start
        start = time.perf_counter()
        oracle = closure_oracle(objects_of(facts), facts)
        oracle_seconds = time.perf_counter() - start
        label = f"seed={seed} concepts={concepts} overlap={overlap}"
        if not oracle.consistent:
            failures.append(f"parity {label}: oracle rejected true facts")
        if derived_keys(
            {a.pair: a for a in solution.derived}
        ) != derived_keys(oracle.derived):
            failures.append(f"parity {label}: derived sets diverge")
        if solution.feasible != oracle.feasible:
            failures.append(f"parity {label}: feasible tables diverge")
        runs.append(
            {
                "world": label,
                "facts": len(facts),
                "derived": len(solution.derived),
                "solver_steps": solution.steps,
                "oracle_steps": oracle.propagation_steps,
                "solver_seconds": round(solver_seconds, 6),
                "oracle_seconds": round(oracle_seconds, 6),
            }
        )
    return {"runs": runs}, failures


def record_conflict_detection() -> tuple[dict, list[str]]:
    failures: list[str] = []
    runs = []
    for seed, contradictions in CONFLICT_WORLDS:
        pair = generate_schema_pair(
            conflict_seeded_config(seed, contradictions=contradictions)
        )
        base_facts = truth_facts(pair)
        caught = 0
        verified = 0
        minimize_seconds = 0.0
        # contradictions plant independent spoilers: check each in isolation
        for planted in pair.contradictions:
            extras = [
                Assertion(first, second, kind)
                for first, second, kind in planted.extras
            ]
            facts = base_facts + extras
            start = time.perf_counter()
            try:
                ConstraintSolver(facts).solve()
            except ConsistencyFailure as failure:
                caught += 1
                verified += bool(verify_conflict(failure.conflict))
            minimize_seconds += time.perf_counter() - start
            oracle = closure_oracle(objects_of(facts), facts)
            if oracle.consistent:
                failures.append(
                    f"conflict seed={seed}: oracle missed a contradiction"
                )
        label = f"seed={seed} contradictions={contradictions}"
        if caught != contradictions:
            failures.append(
                f"conflict {label}: solver caught {caught}"
            )
        if verified != contradictions:
            failures.append(
                f"conflict {label}: only {verified} minimal sets verified"
            )
        runs.append(
            {
                "world": label,
                "planted": contradictions,
                "caught": caught,
                "minimal_sets_verified": verified,
                "solve_and_minimize_seconds": round(minimize_seconds, 6),
            }
        )
    return {"runs": runs}, failures


def record_suggestion_recall() -> tuple[dict, list[str]]:
    failures: list[str] = []
    runs = []
    for seed in SUGGESTION_SEEDS:
        pair = generate_schema_pair(
            conflict_seeded_config(seed, contradictions=0)
        )
        session = AnalysisSession([pair.first, pair.second])
        start = time.perf_counter()
        suggestions = session.suggest_assertions(
            pair.first.name, pair.second.name, limit=10
        )
        seconds = time.perf_counter() - start
        true_equals = {
            (first, second)
            for (first, second), kind in pair.truth.object_assertions.items()
            if kind is AssertionKind.EQUALS
        }
        top3 = {(s.first, s.second) for s in suggestions[:3]}
        hit = bool(top3 & true_equals)
        if not hit:
            failures.append(
                f"suggestion seed={seed}: no true equivalence in the top 3"
            )
        runs.append(
            {
                "seed": seed,
                "suggestions": len(suggestions),
                "true_equals_pairs": len(true_equals),
                "top3_hit": hit,
                "seconds": round(seconds, 6),
            }
        )
    return {"runs": runs}, failures


def main() -> None:
    failures: list[str] = []
    parity, parity_failures = record_fixpoint_parity()
    conflicts, conflict_failures = record_conflict_detection()
    suggestions, suggestion_failures = record_suggestion_recall()
    failures = parity_failures + conflict_failures + suggestion_failures
    report = {
        "description": (
            "Batch constraint solver vs. the incremental-closure oracle: "
            "fixpoint parity, conflict detection with verified-minimal "
            "sets, and suggestion top-3 recall; see docs/SOLVER.md"
        ),
        "repro_sha": repo_sha(),
        "fixpoint_parity": parity,
        "conflict_detection": conflicts,
        "suggestion_recall": suggestions,
        "gates_failed": failures,
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {OUTPUT}")
    print(json.dumps(report, indent=2))
    if failures:
        print("SOLVER SMOKE FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        raise SystemExit(1)


if __name__ == "__main__":
    main()
