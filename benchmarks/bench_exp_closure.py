"""EXP-CLO — how many assertions does transitive derivation save?

The paper: "By performing the transitive closure of existing relationships
between pairs of objects, the relationships between additional pairs of
objects can be determined automatically."  We replay an oracle DDA over all
cross-schema object pairs with and without derivation, sweeping the schema
size, and report the questions asked vs. obtained for free.

Shape expected: with closure the question count is strictly below the
pair count, and the saving grows with the amount of IS-A structure.
"""

from repro.analysis.report import Table
from repro.baselines.closure_baselines import (
    drive_assertions_with_closure,
    drive_assertions_without_closure,
)
from repro.workloads.generator import GeneratorConfig, generate_schema_pair

SIZES = (4, 8, 12, 16)


def run_experiment():
    rows = []
    for concepts in SIZES:
        pair = generate_schema_pair(
            GeneratorConfig(
                seed=17, concepts=concepts, overlap=0.6, category_rate=0.5
            )
        )
        _, with_closure = drive_assertions_with_closure(
            pair.first, pair.second, pair.truth
        )
        without = drive_assertions_without_closure(
            pair.first, pair.second, pair.truth
        )
        rows.append((concepts, with_closure, without))
    return rows


def test_exp_closure_question_savings(benchmark):
    rows = benchmark(run_experiment)
    table = Table(
        "EXP-CLO: DDA questions with vs. without transitive derivation",
        ["concepts", "pairs", "asked (closure)", "derived free",
         "asked (baseline)", "saving"],
    )
    for concepts, with_closure, without in rows:
        table.add_row(
            concepts,
            with_closure.pairs_total,
            with_closure.questions_asked,
            with_closure.derived_free,
            without.questions_asked,
            f"{with_closure.savings_ratio:.0%}",
        )
    print()
    print(table)
    for _, with_closure, without in rows:
        assert without.questions_asked == without.pairs_total
        assert (
            with_closure.questions_asked + with_closure.derived_free
            == with_closure.pairs_total
        )
    # at least one size shows genuine derivation savings
    assert any(w.derived_free > 0 for _, w, _ in rows)


def test_exp_closure_entity_disjointness_seeding(benchmark):
    """Ablation: seeding the model rule that a schema's entity sets are
    pairwise disjoint lets the closure answer even more pairs unaided."""
    from repro.assertions.network import AssertionNetwork
    from repro.ecr.schema import ObjectRef

    from repro.assertions.kinds import AssertionKind

    def run_variant():
        pair = generate_schema_pair(
            GeneratorConfig(seed=17, concepts=10, overlap=0.6, category_rate=0.5)
        )
        equals_pair = next(
            key
            for key, kind in sorted(
                pair.truth.object_assertions.items(),
                key=lambda item: (str(item[0][0]), str(item[0][1])),
            )
            if kind is AssertionKind.EQUALS
        )
        outcomes = {}
        for label, seed_disjoint in (("plain", False), ("seeded", True)):
            network = AssertionNetwork()
            network.seed_schema(pair.first, entity_disjointness=seed_disjoint)
            network.seed_schema(pair.second, entity_disjointness=seed_disjoint)
            network.specify(*equals_pair, AssertionKind.EQUALS)
            determined = 0
            total = 0
            for a in pair.first.object_classes():
                for b in pair.second.object_classes():
                    total += 1
                    if not network.is_undetermined(
                        ObjectRef(pair.first.name, a.name),
                        ObjectRef(pair.second.name, b.name),
                    ):
                        determined += 1
            outcomes[label] = (determined, total)
        return outcomes

    outcomes = benchmark(run_variant)
    table = Table(
        "EXP-CLO ablation: cross pairs determined after ONE equals assertion",
        ["seeding", "determined", "total cross pairs"],
    )
    for label, (determined, total) in outcomes.items():
        table.add_row(label, determined, total)
    print()
    print(table)
    # One A≡B plus the seeded intra-schema disjointness rule determines
    # every (A, other-entity-of-B's-schema) pair via A≡B ∧ B∩C=∅ ⇒ A∩C=∅;
    # without the rule only the asserted pair is determined.
    assert outcomes["plain"][0] >= 1
    assert outcomes["seeded"][0] > outcomes["plain"][0]
