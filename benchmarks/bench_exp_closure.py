"""EXP-CLO — how many assertions does transitive derivation save?

The paper: "By performing the transitive closure of existing relationships
between pairs of objects, the relationships between additional pairs of
objects can be determined automatically."  We replay an oracle DDA over all
cross-schema object pairs with and without derivation, sweeping the schema
size, and report the questions asked vs. obtained for free.

Shape expected: with closure the question count is strictly below the
pair count, and the saving grows with the amount of IS-A structure.
"""

from repro.analysis.report import Table
from repro.baselines.closure_baselines import (
    drive_assertions_with_closure,
    drive_assertions_without_closure,
)
from repro.workloads.generator import GeneratorConfig, generate_schema_pair

SIZES = (4, 8, 12, 16)


def run_experiment():
    rows = []
    for concepts in SIZES:
        pair = generate_schema_pair(
            GeneratorConfig(
                seed=17, concepts=concepts, overlap=0.6, category_rate=0.5
            )
        )
        _, with_closure = drive_assertions_with_closure(
            pair.first, pair.second, pair.truth
        )
        without = drive_assertions_without_closure(
            pair.first, pair.second, pair.truth
        )
        rows.append((concepts, with_closure, without))
    return rows


def test_exp_closure_question_savings(benchmark):
    rows = benchmark(run_experiment)
    table = Table(
        "EXP-CLO: DDA questions with vs. without transitive derivation",
        ["concepts", "pairs", "asked (closure)", "derived free",
         "asked (baseline)", "saving"],
    )
    for concepts, with_closure, without in rows:
        table.add_row(
            concepts,
            with_closure.pairs_total,
            with_closure.questions_asked,
            with_closure.derived_free,
            without.questions_asked,
            f"{with_closure.savings_ratio:.0%}",
        )
    print()
    print(table)
    for _, with_closure, without in rows:
        assert without.questions_asked == without.pairs_total
        assert (
            with_closure.questions_asked + with_closure.derived_free
            == with_closure.pairs_total
        )
    # at least one size shows genuine derivation savings
    assert any(w.derived_free > 0 for _, w, _ in rows)


def test_exp_closure_incremental_retract_counters(benchmark):
    """INCR — the incremental engine's win on this workload, by counters.

    One retract on the largest EXP-CLO network must cost well under a
    quarter of the full-rebuild propagation work (and likewise for OCS
    cell recomputation after one equivalence edit), with the resulting
    feasible sets bitwise identical either way.
    """
    import itertools

    from repro.assertions.network import AssertionNetwork
    from repro.assertions.kinds import Source
    from repro.baselines.closure_baselines import drive_assertions_with_closure
    from repro.equivalence.registry import EquivalenceRegistry
    from repro.workloads.oracle import OracleDda

    pair = generate_schema_pair(
        GeneratorConfig(seed=17, concepts=16, overlap=0.6, category_rate=0.5)
    )

    def run_comparison():
        # -- assertion closure: retract one DDA assertion both ways ---------
        incremental, _ = drive_assertions_with_closure(
            pair.first, pair.second, pair.truth
        )
        baseline = AssertionNetwork(incremental=False)
        for ref in incremental.objects():
            baseline.add_object(ref)
        for assertion in incremental.specified_assertions():
            baseline.specify(
                assertion.first, assertion.second, assertion.kind,
                assertion.source, assertion.note,
            )
        specified = [
            a for a in incremental.specified_assertions()
            if a.source is Source.DDA
        ]
        target = specified[len(specified) // 2]
        incremental.counters.reset()
        baseline.counters.reset()
        incremental.retract(target.first, target.second)
        baseline.retract(target.first, target.second)
        objects = incremental.objects()
        identical = all(
            incremental.feasible(a, b) == baseline.feasible(a, b)
            for a, b in itertools.combinations(objects, 2)
        )

        # -- OCS cells: one equivalence edit against a cold rebuild ---------
        registry = EquivalenceRegistry([pair.first, pair.second])
        OracleDda(pair.truth).declare_all_equivalences(registry)
        ocs = registry.ocs(pair.first.name, pair.second.name)
        ocs.as_counts()  # warm every cell
        edited_ref = sorted(pair.truth.attribute_pairs)[0][0]
        registry.remove_from_class(edited_ref)
        registry.counters.reset()
        counts_incremental = ocs.as_counts()
        ocs_recomputed = registry.counters.ocs_cells_recomputed
        ocs_total = len(ocs.rows) * len(ocs.columns)
        # Cold reference: a fresh registry in the same post-edit state.
        reference = EquivalenceRegistry([pair.first, pair.second])
        OracleDda(pair.truth).declare_all_equivalences(reference)
        reference.remove_from_class(edited_ref)
        counts_cold = reference.ocs(
            pair.first.name, pair.second.name
        ).as_counts()

        return {
            "feasible_identical": identical,
            "ocs_identical": counts_incremental == counts_cold,
            "retract_steps_incremental":
                incremental.counters.propagation_steps,
            "retract_steps_full": baseline.counters.propagation_steps,
            "pairs_recomputed":
                incremental.counters.closure_pairs_recomputed,
            "ocs_cells_recomputed": ocs_recomputed,
            "ocs_cells_full": ocs_total,
        }

    outcome = benchmark(run_comparison)
    table = Table(
        "INCR: single-edit cost, incremental vs. full rebuild",
        ["metric", "incremental", "full rebuild", "ratio"],
    )
    steps_ratio = outcome["retract_steps_incremental"] / max(
        1, outcome["retract_steps_full"]
    )
    cells_ratio = outcome["ocs_cells_recomputed"] / max(
        1, outcome["ocs_cells_full"]
    )
    table.add_row(
        "propagation steps per retract",
        outcome["retract_steps_incremental"],
        outcome["retract_steps_full"],
        f"{steps_ratio:.0%}",
    )
    table.add_row(
        "OCS cells recomputed per edit",
        outcome["ocs_cells_recomputed"],
        outcome["ocs_cells_full"],
        f"{cells_ratio:.0%}",
    )
    print()
    print(table)
    assert outcome["feasible_identical"]
    assert outcome["ocs_identical"]
    assert steps_ratio < 0.25
    assert cells_ratio < 0.25


def test_exp_closure_entity_disjointness_seeding(benchmark):
    """Ablation: seeding the model rule that a schema's entity sets are
    pairwise disjoint lets the closure answer even more pairs unaided."""
    from repro.assertions.network import AssertionNetwork
    from repro.ecr.schema import ObjectRef

    from repro.assertions.kinds import AssertionKind

    def run_variant():
        pair = generate_schema_pair(
            GeneratorConfig(seed=17, concepts=10, overlap=0.6, category_rate=0.5)
        )
        equals_pair = next(
            key
            for key, kind in sorted(
                pair.truth.object_assertions.items(),
                key=lambda item: (str(item[0][0]), str(item[0][1])),
            )
            if kind is AssertionKind.EQUALS
        )
        outcomes = {}
        for label, seed_disjoint in (("plain", False), ("seeded", True)):
            network = AssertionNetwork()
            network.seed_schema(pair.first, entity_disjointness=seed_disjoint)
            network.seed_schema(pair.second, entity_disjointness=seed_disjoint)
            network.specify(*equals_pair, AssertionKind.EQUALS)
            determined = 0
            total = 0
            for a in pair.first.object_classes():
                for b in pair.second.object_classes():
                    total += 1
                    if not network.is_undetermined(
                        ObjectRef(pair.first.name, a.name),
                        ObjectRef(pair.second.name, b.name),
                    ):
                        determined += 1
            outcomes[label] = (determined, total)
        return outcomes

    outcomes = benchmark(run_variant)
    table = Table(
        "EXP-CLO ablation: cross pairs determined after ONE equals assertion",
        ["seeding", "determined", "total cross pairs"],
    )
    for label, (determined, total) in outcomes.items():
        table.add_row(label, determined, total)
    print()
    print(table)
    # One A≡B plus the seeded intra-schema disjointness rule determines
    # every (A, other-entity-of-B's-schema) pair via A≡B ∧ B∩C=∅ ⇒ A∩C=∅;
    # without the rule only the asserted pair is determined.
    assert outcomes["plain"][0] >= 1
    assert outcomes["seeded"][0] > outcomes["plain"][0]
