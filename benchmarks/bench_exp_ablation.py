"""EXP-ABL — integration-option ablations (DESIGN.md design choices).

Two behaviours the paper leaves open are implemented behind
:class:`~repro.integration.options.IntegrationOptions` and measured here:

* ``pull_up_shared_attributes`` — move attribute classes shared by the
  children of a derived parent up into the parent (classic
  generalisation) vs. the paper's observed behaviour (Screen 12 keeps
  ``D_Name`` on ``Student``);
* ``merge_cardinalities_loosely`` — union vs. intersection when merging
  matched relationship legs.
"""

from conftest import make_paper_setup

from repro.analysis.report import Table
from repro.integration.integrator import Integrator
from repro.integration.options import IntegrationOptions


def integrate_with(options: IntegrationOptions):
    registry, network, relationship_network = make_paper_setup()
    return Integrator(
        registry, network, relationship_network, options
    ).integrate("sc1", "sc2")


def run_ablation():
    return {
        "paper (default)": integrate_with(IntegrationOptions()),
        "pull-up": integrate_with(
            IntegrationOptions(pull_up_shared_attributes=True)
        ),
        "tight cardinalities": integrate_with(
            IntegrationOptions(merge_cardinalities_loosely=False)
        ),
    }


def test_exp_integration_ablations(benchmark):
    results = benchmark(run_ablation)
    table = Table(
        "EXP-ABL: integration options on the paper workload",
        ["variant", "D_Stud_Facu attrs", "Student attrs",
         "E_Stud_Majo Student leg"],
    )
    for name, result in results.items():
        schema = result.schema
        majors_leg = str(
            schema.relationship_set("E_Stud_Majo")
            .participation_for("Student")
            .cardinality
        )
        table.add_row(
            name,
            ", ".join(schema.get("D_Stud_Facu").attribute_names()) or "(none)",
            ", ".join(schema.get("Student").attribute_names()),
            majors_leg,
        )
    print()
    print(table)
    default = results["paper (default)"].schema
    pulled = results["pull-up"].schema
    # Screen 12 evidence: the default keeps D_Name on Student.
    assert "D_Name" in default.get("Student").attribute_names()
    assert default.get("D_Stud_Facu").attributes == []
    # The ablation moves the shared Name class up to the derived parent.
    assert any(
        name.startswith("D_") for name in pulled.get("D_Stud_Facu").attribute_names()
    )
    assert "D_Name" not in pulled.get("Student").attribute_names()
    # Cardinality policy: identical here because both views agree on (1,1),
    # so tight merging must not change the leg.
    tight = results["tight cardinalities"].schema
    assert (
        str(
            tight.relationship_set("E_Stud_Majo")
            .participation_for("Student")
            .cardinality
        )
        == "(1,1)"
    )
