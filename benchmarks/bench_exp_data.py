"""EXP-DATA — semantic verification of the mappings on populated databases.

The strongest check of Phase 4: populate the component schemas with
instances, migrate them through the generated mappings into the integrated
schema, and verify at the *answer* level that

* every view request's answers are contained in the rewritten request's
  answers on the integrated database (view integration context), and
* federated answering (global request routed to components and unioned)
  equals answering directly on the merged database (federation context).
"""

from conftest import make_paper_setup

from repro.analysis.report import Table
from repro.data.migrate import federated_answer, merge_stores
from repro.data.populate import populate_store
from repro.integration.integrator import Integrator
from repro.integration.mappings import build_mappings
from repro.query.ast import Request
from repro.query.rewrite import rewrite_to_integrated


def run_verification():
    registry, network, relationship_network = make_paper_setup()
    result = Integrator(registry, network, relationship_network).integrate(
        "sc1", "sc2"
    )
    mappings = build_mappings(result, registry.schemas())
    stores = {
        "sc1": populate_store(registry.schema("sc1"), seed=1),
        "sc2": populate_store(registry.schema("sc2"), seed=2),
    }
    integrated, _ = merge_stores(
        [(stores["sc1"], mappings["sc1"]), (stores["sc2"], mappings["sc2"])],
        result.schema,
    )
    checks = {"view_contained": 0, "view_total": 0, "fed_equal": 0, "fed_total": 0}
    for schema_name, store in stores.items():
        for structure in store.schema.object_classes():
            request = Request(
                structure.name,
                tuple(a.name for a in structure.attributes),
            )
            view_rows = set(store.select(request))
            integrated_rows = set(
                integrated.select(
                    rewrite_to_integrated(request, mappings[schema_name])
                )
            )
            checks["view_total"] += 1
            if view_rows <= integrated_rows:
                checks["view_contained"] += 1
    for structure in integrated.schema.object_classes():
        attributes = tuple(a.name for a in structure.attributes)
        if not attributes:
            continue  # attribute-less umbrella classes have nothing to project
        request = Request(structure.name, attributes)
        try:
            fed = federated_answer(
                request, mappings, stores, integrated.schema
            )
        except Exception:
            continue  # structures no component covers (derived parents)
        checks["fed_total"] += 1
        if fed == integrated.select(request):
            checks["fed_equal"] += 1
    return checks, integrated.size()


def test_exp_data_semantic_preservation(benchmark):
    (checks, size) = benchmark(run_verification)
    table = Table(
        "EXP-DATA: answer-level verification of the mappings",
        ["check", "passed", "total"],
    )
    table.add_row(
        "view answers ⊆ integrated answers",
        checks["view_contained"],
        checks["view_total"],
    )
    table.add_row(
        "federated == direct global answers",
        checks["fed_equal"],
        checks["fed_total"],
    )
    print()
    print(table)
    print(f"merged database: {size[0]} entities, {size[1]} links")
    assert checks["view_contained"] == checks["view_total"]
    assert checks["fed_equal"] == checks["fed_total"]
    assert checks["fed_total"] > 0
