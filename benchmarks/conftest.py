"""Shared fixtures and helpers for the experiment harness.

Every benchmark regenerates one paper artifact (figure/screen) or one
experiment series from DESIGN.md, prints the rows through
:class:`repro.analysis.report.Table` (visible with ``-s``) and asserts the
*shape* the paper implies.  Timing comes from pytest-benchmark.
"""

from __future__ import annotations

import pytest

from repro.assertions.network import AssertionNetwork
from repro.ecr.schema import ObjectRef
from repro.integration.integrator import Integrator
from repro.workloads.university import (
    PAPER_RELATIONSHIP_CODES,
    paper_assertions,
    paper_registry,
)


def make_paper_setup():
    """Fresh registry + both assertion networks for the sc1/sc2 pipeline."""
    registry = paper_registry()
    network = paper_assertions(registry)
    relationship_network = AssertionNetwork()
    for schema in registry.schemas():
        for relationship in schema.relationship_sets():
            relationship_network.add_object(
                ObjectRef(schema.name, relationship.name)
            )
    for first, second, code in PAPER_RELATIONSHIP_CODES:
        relationship_network.specify(
            ObjectRef.parse(first), ObjectRef.parse(second), code
        )
    return registry, network, relationship_network


@pytest.fixture
def paper_setup():
    return make_paper_setup()


@pytest.fixture
def paper_result(paper_setup):
    registry, network, relationship_network = paper_setup
    return Integrator(registry, network, relationship_network).integrate(
        "sc1", "sc2"
    )
