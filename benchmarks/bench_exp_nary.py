"""EXP-NARY — iterated binary integration of many schemas.

The tool integrates two schemas at a time; the result is integrated with
the next schema, and so on.  We integrate k views of one world in several
orders and compare the final schema shapes and wall-clock.

Shape expected: the final shape (entity/category counts) is stable across
orders; the time grows with k.
"""

from repro.analysis.metrics import schema_size
from repro.analysis.report import Table
from repro.assertions.kinds import AssertionKind
from repro.baselines.strategies import ladder_orders
from repro.ecr.builder import SchemaBuilder
from repro.integration.nary import integrate_all
from repro.workloads.oracle import GroundTruth


def build_world(views: int):
    """k views of one Person world: view i adds a subtype level."""
    schemas = []
    truth = GroundTruth()
    names = []
    for index in range(views):
        name = f"v{index}"
        class_name = f"Role{index}"
        schema = (
            SchemaBuilder(name)
            .entity(
                class_name,
                attrs=[("Ssn", "char", True), (f"Extra{index}", "char")],
            )
            .build()
        )
        schemas.append(schema)
        names.append((name, class_name))
    for i in range(views):
        for j in range(i + 1, views):
            truth.add_attribute_pair(
                f"{names[i][0]}.{names[i][1]}.Ssn",
                f"{names[j][0]}.{names[j][1]}.Ssn",
            )
    # a containment chain: Role_k ⊂ ... ⊂ Role_0
    for i in range(views - 1):
        truth.add_object_assertion(
            f"{names[i + 1][0]}.{names[i + 1][1]}",
            f"{names[i][0]}.{names[i][1]}",
            AssertionKind.CONTAINED_IN,
        )
    return schemas, truth


def run_orders(views: int):
    schemas, truth = build_world(views)
    shapes = {}
    for name, order in ladder_orders(schemas, samples=1).items():
        result, _ = integrate_all(order, truth, result_name="g")
        shapes[name] = schema_size(result.schema)
    return shapes


def test_exp_nary_order_stability(benchmark):
    shapes = benchmark(run_orders, 5)
    table = Table(
        "EXP-NARY: final schema shape per integration order (5 views)",
        ["order", "entities", "categories", "relationships", "attributes"],
    )
    for name, size in shapes.items():
        table.add_row(name, *size.as_row())
    print()
    print(table)
    sizes = {
        (size.entities, size.categories, size.relationships)
        for size in shapes.values()
    }
    # Shape: the structure counts are order-independent.
    assert len(sizes) == 1
    entities, categories, _ = next(iter(sizes))
    assert entities == 1  # one root Person-like class
    assert categories == 4  # the four subtype levels


def test_exp_nary_growth(benchmark):
    def run_growth():
        rows = []
        for views in (2, 4, 6, 8):
            schemas, truth = build_world(views)
            result, _ = integrate_all(schemas, truth, result_name="g")
            rows.append((views, schema_size(result.schema)))
        return rows

    rows = benchmark(run_growth)
    table = Table(
        "EXP-NARY: growth with number of views",
        ["views", "entities", "categories", "relationships", "attributes"],
    )
    for views, size in rows:
        table.add_row(views, *size.as_row())
    print()
    print(table)
    categories = [size.categories for _, size in rows]
    assert categories == sorted(categories)  # monotone growth of the chain
    assert all(size.entities == 1 for _, size in rows)
