"""Robustness: the tool must never crash on user input.

The original was an interactive program for non-programmer DDAs; any
library error must surface as a status line, not a traceback.  The fuzz
property drives the app with random token streams and asserts it either
keeps running or exits cleanly.
"""

import io
from unittest import mock

from hypothesis import given, settings, strategies as st

from repro.tool.app import ToolApp, main
from repro.workloads.university import build_sc1, build_sc2

_TOKENS = [
    "1", "2", "3", "4", "5", "6", "E", "A", "D", "U", "S", "R", "N", "W",
    "C", "q", "x", "sc1", "sc2", "Student", "Grad_student", "Name", "char",
    "real", "y", "n", "0,n", "1,1", "e", "c", "r", "0", "bogus", "",
    "A Name char y", "A sc1", "sc1 sc2", "Student Grad_student",
]


@settings(deadline=None, max_examples=40)
@given(st.lists(st.sampled_from(_TOKENS), max_size=40))
def test_random_input_never_crashes(lines):
    app = ToolApp()
    app.session.adopt_schema(build_sc1())
    app.session.adopt_schema(build_sc2())
    for line in lines:
        if app.finished:
            break
        app.render()
        app.feed(line)
    # the app is either alive and renderable, or exited via the main menu
    if not app.finished:
        assert app.render()


@settings(deadline=None, max_examples=20)
@given(
    st.lists(
        st.text(
            alphabet=st.characters(min_codepoint=32, max_codepoint=126),
            max_size=20,
        ),
        max_size=15,
    )
)
def test_arbitrary_text_never_crashes(lines):
    app = ToolApp()
    for line in lines:
        if app.finished:
            break
        app.feed(line)


class TestInteractiveMain:
    def test_main_loop_reads_stdin_until_exit(self, capsys):
        with mock.patch("builtins.input", side_effect=["1", "E", "E"]):
            code = main()
        assert code == 0
        out = capsys.readouterr().out
        assert "Schema integration tool" in out
        assert "Schema Name Collection Screen" in out
        assert "bye" in out

    def test_main_loop_handles_eof(self, capsys):
        with mock.patch("builtins.input", side_effect=EOFError):
            code = main()
        assert code == 0
        assert "bye" in capsys.readouterr().out
