"""Checkpoint saves racing live commits must never lose a transaction.

A writer thread keeps declaring/removing equivalences (each one a
committed kernel transaction journalled to the WAL) while the main
thread checkpoints the session repeatedly.  Every save written must be
loadable, and the final checkpoint + WAL tail must recover the exact
final state — the bus lock makes checkpoint (export + save + WAL reset)
atomic with respect to commits.
"""

import json
import threading

from repro.tool.session import ToolSession
from repro.workloads.university import build_sc1, build_sc2

PAIRS = [
    ("sc1.Student.Name", "sc2.Grad_student.Name"),
    ("sc1.Student.GPA", "sc2.Grad_student.GPA"),
    ("sc1.Department.Name", "sc2.Department.Name"),
    ("sc1.Majors.Since", "sc2.Majors.Since"),
]


def fingerprint(session: ToolSession) -> str:
    return json.dumps(session.analysis.state_payload(), sort_keys=True)


def test_saves_during_commits_are_each_loadable(tmp_path):
    path = tmp_path / "session.json"
    session = ToolSession.open(path)
    session.adopt_schema(build_sc1())
    session.adopt_schema(build_sc2())

    stop = threading.Event()
    failures: list[BaseException] = []

    def writer() -> None:
        index = 0
        try:
            while not stop.is_set():
                first, second = PAIRS[index % len(PAIRS)]
                if (index // len(PAIRS)) % 2 == 0:
                    session.registry.declare_equivalent(first, second)
                else:
                    session.registry.remove_from_class(second)
                index += 1
        except BaseException as exc:  # pragma: no cover - failure path
            failures.append(exc)

    thread = threading.Thread(target=writer)
    thread.start()
    try:
        checkpoints = []
        for round_number in range(8):
            session.save(path)
            checkpoints.append(ToolSession.load(path))
    finally:
        stop.set()
        thread.join()

    assert not failures, failures
    # every checkpoint loaded cleanly into a replayable session
    assert len(checkpoints) == 8
    for restored in checkpoints:
        assert set(restored.schemas) == {"sc1", "sc2"}

    # after the dust settles: final state survives a crash-style reopen
    final = fingerprint(session)
    events = session.analysis.kernel.bus.offset
    del session
    recovered = ToolSession.open(path)
    assert fingerprint(recovered) == final
    assert recovered.analysis.kernel.bus.offset == events


def test_checkpoint_resets_the_wal_generation(tmp_path):
    path = tmp_path / "session.json"
    session = ToolSession.open(path)
    session.adopt_schema(build_sc1())
    for _ in range(3):
        session.registry.declare_equivalent(
            "sc1.Student.Name", "sc1.Department.Name"
        )
        session.registry.remove_from_class("sc1.Department.Name")
    session.save(path)
    # the generation restarts: one segment, one base record
    segments = list((tmp_path / "session.json.wal").glob("wal-*.seg"))
    assert len(segments) == 1
    recovered = ToolSession.open(path)
    assert recovered.last_recovery.source == "save"
    assert recovered.last_recovery.events_replayed == 0
