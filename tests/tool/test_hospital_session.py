"""A second full tool session on a non-paper workload (hospital), plus
category entry through the collection screens."""

import pytest

from repro.tool.app import ToolApp, run_script
from repro.tool.session import ToolSession
from repro.workloads.domains import (
    build_hospital_admissions,
    build_hospital_clinic,
)


class TestCategoryCollectionThroughScreens:
    def test_category_with_parent_and_attributes(self):
        script = [
            "1",
            "A s",
            "A Person e", "A Ssn char y", "E",
            "A Patient c",          # -> CategoryInfoScreen
            "A Person",             # attach parent
            "E",                    # -> AttributeInfoScreen (Replace)
            "A Referral char n", "E",
            "E", "E", "E",
        ]
        app, _ = run_script(script)
        schema = app.session.schema("s")
        patient = schema.category("Patient")
        assert patient.parents == ["Person"]
        assert patient.attribute_names() == ["Referral"]

    def test_union_category(self):
        script = [
            "1",
            "A s",
            "A Car e", "A Vin char y", "E",
            "A Boat e", "A Hull char y", "E",
            "A Amphibious c", "A Car", "A Boat", "E", "E",
            "E", "E", "E",
        ]
        app, _ = run_script(script)
        assert app.session.schema("s").category("Amphibious").parents == [
            "Car",
            "Boat",
        ]


class TestHospitalSession:
    @pytest.fixture
    def app(self):
        session = ToolSession()
        session.adopt_schema(build_hospital_admissions())
        session.adopt_schema(build_hospital_clinic())
        return ToolApp(session)

    def test_full_flow_on_hospital_schemas(self, app):
        script = [
            # equivalences (task 2)
            "2", "adm cli",
            "Patient Person",
            "A Name Name", "A Birth_date Birth_date", "E",
            "Physician Doctor",
            "A Staff_id Staff_id", "A Name Name", "E",
            "E",
            # assertions (task 3): ranked pairs answered per ground truth
            "3",
            "2",   # Patient contained in Person (ratio ranks it high)
            "1",   # Physician equals Doctor
            "E",
            # integrate and browse
            "6",
            "Patient c", "q",
            "x",
            "E",
        ]
        transcript = app.run(script)
        assert app.finished
        result = app.session.result
        assert result is not None
        schema = result.schema
        assert schema.category("Patient").parents == ["Person"]
        merged_staff = result.node_for("adm.Physician")
        assert merged_staff == result.node_for("cli.Doctor")
        assert merged_staff.startswith("E_")
        assert "Category Screen" in transcript

    def test_assertion_order_follows_ratio(self, app):
        app.run(["2", "adm cli", "Patient Person", "A Name Name",
                 "A Birth_date Birth_date", "E",
                 "Physician Doctor", "A Staff_id Staff_id", "A Name Name",
                 "E", "E"])
        pairs = app.session.candidate_pairs()
        # Physician/Doctor: 2 equivalent of 3-attr classes -> 2/(2+3) = 0.4
        # Patient/Person: 2 equivalent, smaller has 3 attrs -> 0.4 as well;
        # ordering then falls back to alphabetical.
        assert len(pairs) == 2
        assert {p.first.object_name for p in pairs} == {
            "Patient",
            "Physician",
        }
