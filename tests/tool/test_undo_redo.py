"""Cross-phase undo/redo from the tool screens (the Z / Y choices).

The kernel walks its event log one group at a time, so an equivalence
declared on Screen 7 can be undone from the main menu, an attribute
added on Screen 5 can be taken back mid-edit, and a deleted schema
comes back whole (the checkout fallback for non-invertible events).
"""

import pytest

from repro.tool.app import ToolApp, run_script
from repro.tool.session import ToolSession
from repro.workloads.university import build_sc1, build_sc2


@pytest.fixture
def loaded():
    session = ToolSession()
    session.adopt_schema(build_sc1())
    session.adopt_schema(build_sc2())
    return session


DECLARE_NAME = [
    "2",
    "sc1 sc2",
    "Student Grad_student",
    "A Name Name",
    "E",
    "E",
]


def nontrivial(session: ToolSession):
    return session.registry.nontrivial_classes()


class TestMainMenu:
    def test_screen7_declaration_undone_from_the_menu(self, loaded):
        app, transcript = run_script(DECLARE_NAME + ["Z"], loaded)
        assert nontrivial(app.session) == []
        assert "undid last action (now at event" in app.session.status
        assert "** undid last action" in transcript

    def test_redo_brings_the_declaration_back(self, loaded):
        app, _ = run_script(DECLARE_NAME + ["Z", "Y"], loaded)
        classes = nontrivial(app.session)
        assert len(classes) == 1
        assert {str(ref) for ref in classes[0]} == {
            "sc1.Student.Name",
            "sc2.Grad_student.Name",
        }
        assert "redid action (now at event" in app.session.status

    def test_undo_cuts_across_phases(self, loaded):
        # declare on Screen 7, assert on Screen 8, then unwind both from
        # the menu in reverse order
        app, _ = run_script(DECLARE_NAME + ["3", "1", "E"], loaded)
        session = app.session
        assert session.object_network.specified_assertions()
        app.feed("Z")  # the Screen 8 assertion goes first
        assert not session.object_network.specified_assertions()
        assert len(nontrivial(session)) == 1
        app.feed("Z")  # then the Screen 7 declaration
        assert nontrivial(session) == []

    def test_nothing_to_undo_surfaces_as_status(self):
        app = ToolApp()
        app.feed("Z")
        assert app.session.status == "nothing to undo"
        app.feed("Y")
        assert app.session.status == "nothing to redo"


class TestWithinScreens:
    def test_undo_inside_the_equivalence_edit_screen(self, loaded):
        app, _ = run_script(
            ["2", "sc1 sc2", "Student Grad_student", "A Name Name", "Z"],
            loaded,
        )
        assert nontrivial(app.session) == []
        # still on the edit screen: the selected pair survived the undo
        assert app.session.selected_pair == ("sc1", "sc2")
        assert not app.finished

    def test_attribute_add_undone_on_screen5(self):
        app, _ = run_script(
            ["1", "A s3", "A Thing e", "A X char y", "Z"], ToolSession()
        )
        session = app.session
        assert "undid last action" in session.status
        schema = session.schema("s3")
        assert "Thing" in schema
        assert [a.name for a in schema.get("Thing").attributes] == []

    def test_structure_add_undone_on_screen3(self):
        app, _ = run_script(
            ["1", "A s3", "A Thing e", "E", "Z"], ToolSession()
        )
        schema = app.session.schema("s3")
        assert "Thing" not in schema

    def test_screen_pops_when_undo_removes_its_schema(self):
        # undoing past the schema's creation pulls the rug from under
        # Screen 3; the screen notices and pops instead of rendering
        # a ghost
        app, _ = run_script(["1", "A s3", "Z", "Z"], ToolSession())
        assert "s3" not in app.session.schemas
        # back on Screen 2 (the schema-name list), not Screen 3
        assert type(app.current_screen).__name__ == "SchemaNameScreen"


class TestDeleteSchema:
    def test_deleted_schema_comes_back_on_undo(self, loaded):
        app, _ = run_script(["1", "D sc2", "E", "Z"], loaded)
        session = app.session
        assert set(session.schemas) == {"sc1", "sc2"}
        assert "Grad_student" in session.schema("sc2")

    def test_undo_restores_state_that_died_with_the_schema(self, loaded):
        # the declaration references sc2; deleting sc2 kills it, undoing
        # the delete resurrects both the schema and the declaration
        app, _ = run_script(DECLARE_NAME + ["1", "D sc2", "E"], loaded)
        assert nontrivial(app.session) == []
        app.feed("Z")
        classes = nontrivial(app.session)
        assert len(classes) == 1
        assert {str(ref) for ref in classes[0]} == {
            "sc1.Student.Name",
            "sc2.Grad_student.Name",
        }
