"""Focused tests for the collection screens (2-5)."""

import pytest

from repro.tool.screens.base import POP, Replace
from repro.tool.screens.collection import (
    AttributeInfoScreen,
    CategoryInfoScreen,
    RelationshipInfoScreen,
    SchemaNameScreen,
    StructureInfoScreen,
)
from repro.tool.session import ToolSession


@pytest.fixture
def session():
    return ToolSession()


class TestSchemaNameScreen:
    def test_add_pushes_structure_screen(self, session):
        screen = SchemaNameScreen()
        outcome = screen.handle("A sc1", session)
        assert isinstance(outcome, StructureInfoScreen)
        assert "sc1" in session.schemas

    def test_delete(self, session):
        screen = SchemaNameScreen()
        screen.handle("A sc1", session)
        assert screen.handle("D sc1", session) is None
        assert "sc1" not in session.schemas

    def test_update_requires_existing(self, session):
        screen = SchemaNameScreen()
        from repro.errors import ToolError

        with pytest.raises(ToolError):
            screen.handle("U ghost", session)

    def test_exit_pops(self, session):
        assert SchemaNameScreen().handle("E", session) is POP

    def test_body_lists_schemas(self, session):
        session.add_schema("one")
        body = SchemaNameScreen().body(session)
        assert any("one" in line for line in body)


class TestStructureInfoScreen:
    def test_add_entity_pushes_attributes(self, session):
        session.add_schema("s")
        screen = StructureInfoScreen("s")
        outcome = screen.handle("A Student e", session)
        assert isinstance(outcome, AttributeInfoScreen)
        assert "Student" in session.schema("s")

    def test_add_category_pushes_category_info(self, session):
        session.add_schema("s")
        screen = StructureInfoScreen("s")
        outcome = screen.handle("A Sub c", session)
        assert isinstance(outcome, CategoryInfoScreen)
        # category not created until a parent is given
        assert "Sub" not in session.schema("s")

    def test_add_relationship_pushes_relationship_info(self, session):
        session.add_schema("s")
        outcome = StructureInfoScreen("s").handle("A R r", session)
        assert isinstance(outcome, RelationshipInfoScreen)

    def test_body_shows_counts(self, session):
        session.add_schema("s")
        screen = StructureInfoScreen("s")
        screen.handle("A Student e", session)
        body = screen.body(session)
        assert any("Student" in line and "e" in line for line in body)

    def test_bad_kind_rejected(self, session):
        from repro.errors import ToolError

        session.add_schema("s")
        with pytest.raises(ToolError):
            StructureInfoScreen("s").handle("A X q", session)


class TestCategoryInfoScreen:
    def test_exit_requires_parent(self, session):
        from repro.errors import ToolError

        session.add_schema("s")
        screen = CategoryInfoScreen("s", "Sub")
        with pytest.raises(ToolError):
            screen.handle("E", session)

    def test_parent_must_exist(self, session):
        from repro.errors import ReproError

        session.add_schema("s")
        screen = CategoryInfoScreen("s", "Sub")
        with pytest.raises(ReproError):
            screen.handle("A Ghost", session)

    def test_add_parent_then_exit_replaces(self, session):
        session.add_schema("s")
        StructureInfoScreen("s").handle("A Base e", session)
        screen = CategoryInfoScreen("s", "Sub")
        screen.handle("A Base", session)
        outcome = screen.handle("E", session)
        assert isinstance(outcome, Replace)
        assert session.schema("s").category("Sub").parents == ["Base"]


class TestRelationshipInfoScreen:
    def test_needs_two_legs_to_exit(self, session):
        from repro.errors import ToolError

        session.add_schema("s")
        StructureInfoScreen("s").handle("A A e", session)
        StructureInfoScreen("s").handle("A R r", session)
        screen = RelationshipInfoScreen("s", "R")
        screen.handle("A A 1,1", session)
        with pytest.raises(ToolError):
            screen.handle("E", session)

    def test_role_argument(self, session):
        session.add_schema("s")
        StructureInfoScreen("s").handle("A E e", session)
        StructureInfoScreen("s").handle("A R r", session)
        screen = RelationshipInfoScreen("s", "R")
        screen.handle("A E 0,n boss", session)
        screen.handle("A E 1,1 minion", session)
        outcome = screen.handle("E", session)
        assert isinstance(outcome, Replace)
        relationship = session.schema("s").relationship_set("R")
        assert relationship.participation_for("boss").role == "boss"


class TestAttributeInfoScreen:
    def test_add_and_delete(self, session):
        session.add_schema("s")
        StructureInfoScreen("s").handle("A E e", session)
        screen = AttributeInfoScreen("s", "E")
        screen.handle("A Name char y", session)
        assert session.schema("s").get("E").attribute("Name").is_key
        screen.handle("D Name", session)
        assert not session.schema("s").get("E").has_attribute("Name")

    def test_bad_key_flag(self, session):
        from repro.errors import ToolError

        session.add_schema("s")
        StructureInfoScreen("s").handle("A E e", session)
        with pytest.raises(ToolError):
            AttributeInfoScreen("s", "E").handle("A Name char x", session)

    def test_exit_refreshes_registry(self, session):
        session.add_schema("s")
        StructureInfoScreen("s").handle("A E e", session)
        screen = AttributeInfoScreen("s", "E")
        screen.handle("A Name char y", session)
        assert screen.handle("E", session) is POP
        assert session.registry.class_number("s.E.Name") >= 1
