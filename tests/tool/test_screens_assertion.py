"""Focused tests for Screens 8 and 9 (assertion collection and conflicts)."""

import pytest

from repro.tool.screens.assertion import (
    AssertionCollectScreen,
    ConflictResolutionScreen,
)
from repro.tool.screens.base import POP
from repro.tool.session import ToolSession
from repro.workloads.university import build_sc3, build_sc4


@pytest.fixture
def session():
    s = ToolSession()
    s.adopt_schema(build_sc3())
    s.adopt_schema(build_sc4())
    s.select_pair("sc3", "sc4")
    # make Instructor/Grad_student and Instructor/Student candidates;
    # Grad_student is a category, so only its own attribute can be matched
    s.registry.declare_equivalent("sc3.Instructor.Name", "sc4.Student.Name")
    s.registry.declare_equivalent(
        "sc3.Instructor.Office", "sc4.Grad_student.Thesis_title"
    )
    return s


class TestAssertionCollect:
    def test_body_lists_candidates_with_ratios(self, session):
        screen = AssertionCollectScreen()
        body = "\n".join(screen.body(session))
        assert "sc3.Instructor" in body
        assert "ATTRIBUTE" in body

    def test_code_advances_cursor(self, session):
        screen = AssertionCollectScreen()
        pairs = session.candidate_pairs()
        assert screen.handle("2", session) is None  # Instructor ⊆ first pair
        network = session.object_network
        recorded = network.assertion_for(pairs[0].first, pairs[0].second)
        assert recorded.kind.code == 2

    def test_conflict_pushes_screen9(self, session):
        screen = AssertionCollectScreen()
        # pairs ordered: (Instructor, Grad_student) then (Instructor, Student)
        assert screen.handle("2", session) is None
        outcome = screen.handle("0", session)
        assert isinstance(outcome, ConflictResolutionScreen)

    def test_revise_row(self, session):
        screen = AssertionCollectScreen()
        screen.handle("2", session)
        screen.handle("n", session)
        assert screen.handle("R 1 1", session) is None
        pairs = session.candidate_pairs()
        network = session.object_network
        assert network.assertion_for(pairs[0].first, pairs[0].second).kind.code == 1

    def test_exit(self, session):
        assert AssertionCollectScreen().handle("E", session) is POP

    def test_bad_row_number(self, session):
        from repro.errors import ToolError

        with pytest.raises(ToolError):
            AssertionCollectScreen().handle("R 99 1", session)

    def test_code_after_all_reviewed(self, session):
        from repro.errors import ToolError

        screen = AssertionCollectScreen()
        screen.handle("2", session)
        outcome = screen.handle("1", session)  # Instructor equals Student? conflicts
        # equals contradicts derived ⊆? Instructor ⊆ Grad_student ⊂ Student
        # means Instructor ⊂ Student, so equals is rejected -> Screen 9
        assert isinstance(outcome, ConflictResolutionScreen)
        # withdraw, then both pairs are reviewed
        outcome.handle("W", session)
        screen.handle("n", session)
        with pytest.raises(ToolError):
            screen.handle("3", session)


class TestConflictResolution:
    def _conflict(self, session):
        screen = AssertionCollectScreen()
        screen.handle("2", session)
        return screen.handle("0", session)

    def test_body_shows_chain(self, session):
        screen9 = self._conflict(session)
        body = "\n".join(screen9.body(session))
        assert "<derived>(CONFLICT)" in body
        assert "<new>(CONFLICT)" in body
        assert "sc4.Grad_student" in body

    def test_withdraw(self, session):
        screen9 = self._conflict(session)
        assert screen9.handle("W", session) is POP
        assert "withdrawn" in session.status

    def test_change_chain_assertion_resolves(self, session):
        screen9 = self._conflict(session)
        # chain line 1 is the DDA's Instructor ⊆ Grad_student; change to 0
        outcome = screen9.handle("C 1 0", session)
        assert outcome is POP
        assert "resolved" in session.status
        pairs = session.candidate_pairs()
        network = session.object_network
        # the new assertion went through after the repair
        recorded = network.assertion_for(pairs[1].first, pairs[1].second)
        assert recorded.kind.code == 0

    def test_cannot_change_implicit_assertion(self, session):
        from repro.errors import ToolError

        screen9 = self._conflict(session)
        # chain line 2 is the implicit category containment
        with pytest.raises(ToolError):
            screen9.handle("C 2 0", session)

    def test_bad_line_number(self, session):
        from repro.errors import ToolError

        screen9 = self._conflict(session)
        with pytest.raises(ToolError):
            screen9.handle("C 9 0", session)
