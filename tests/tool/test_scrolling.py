"""Tests for the generic screen scrolling (the paper's scrolled windows)."""

import pytest

from repro.ecr.attributes import Attribute
from repro.ecr.objects import EntitySet
from repro.tool.app import ToolApp
from repro.tool.screens.collection import AttributeInfoScreen
from repro.tool.session import ToolSession
from repro.tool.terminal import VirtualTerminal


@pytest.fixture
def big_session():
    """A structure with far more attributes than one screen page."""
    session = ToolSession()
    session.add_schema("s")
    entity = EntitySet("Wide")
    for index in range(40):
        entity.add_attribute(Attribute(f"attr_{index:02d}"))
    session.schema("s").add(entity)
    session.analysis.refresh_schema("s")
    return session


class TestScrolling:
    def test_first_page_shows_position_marker(self, big_session):
        screen = AttributeInfoScreen("s", "Wide")
        terminal = VirtualTerminal()
        screen.render(terminal, big_session)
        frame = terminal.render()
        assert "attr_00" in frame
        assert "(S)croll for more" in frame
        assert "attr_39" not in frame

    def test_scroll_advances_pages(self, big_session):
        screen = AttributeInfoScreen("s", "Wide")
        terminal = VirtualTerminal()
        screen.safe_handle("S", big_session)
        screen.render(terminal, big_session)
        frame = terminal.render()
        assert "attr_00" not in frame
        assert "lines 17-" in frame

    def test_scroll_wraps_to_top(self, big_session):
        screen = AttributeInfoScreen("s", "Wide")
        terminal = VirtualTerminal()
        for _ in range(4):  # past the end of 43 body lines
            screen.safe_handle("S", big_session)
        screen.render(terminal, big_session)
        assert "attr_00" in terminal.render()

    def test_short_bodies_have_no_marker(self):
        session = ToolSession()
        session.add_schema("s")
        session.schema("s").add(EntitySet("Tiny", [Attribute("only")]))
        screen = AttributeInfoScreen("s", "Tiny")
        terminal = VirtualTerminal()
        screen.render(terminal, session)
        assert "(S)croll for more" not in terminal.render()

    def test_scroll_via_app_keeps_screen(self, big_session):
        app = ToolApp(big_session)
        app._stack.append(AttributeInfoScreen("s", "Wide"))
        before = app.current_screen
        app.feed("S")
        assert app.current_screen is before

    def test_prompt_always_visible_when_scrolled(self, big_session):
        screen = AttributeInfoScreen("s", "Wide")
        terminal = VirtualTerminal()
        screen.render(terminal, big_session)
        assert "Choose:" in terminal.render()
