"""Tests for session save/load through the data dictionary."""

import pytest

from repro.ecr.json_io import schema_to_dict
from repro.ecr.schema import ObjectRef
from repro.tool.session import ToolSession
from repro.workloads.university import (
    PAPER_ASSERTION_CODES,
    PAPER_RELATIONSHIP_CODES,
    build_sc1,
    build_sc2,
)


@pytest.fixture
def full_session():
    s = ToolSession()
    s.adopt_schema(build_sc1())
    s.adopt_schema(build_sc2())
    s.select_pair("sc1", "sc2")
    for first, second in [
        ("sc1.Student.Name", "sc2.Grad_student.Name"),
        ("sc1.Student.Name", "sc2.Faculty.Name"),
        ("sc1.Student.GPA", "sc2.Grad_student.GPA"),
        ("sc1.Department.Name", "sc2.Department.Name"),
        ("sc1.Majors.Since", "sc2.Majors.Since"),
    ]:
        s.registry.declare_equivalent(first, second)
    for first, second, code in PAPER_ASSERTION_CODES:
        s.object_network.specify(
            ObjectRef.parse(first), ObjectRef.parse(second), code
        )
    for first, second, code in PAPER_RELATIONSHIP_CODES:
        s.relationship_network.specify(
            ObjectRef.parse(first), ObjectRef.parse(second), code
        )
    s.integrate()
    return s


class TestRoundTrip:
    def test_schemas_survive(self, full_session, tmp_path):
        path = tmp_path / "s.json"
        full_session.save(path)
        restored = ToolSession.load(path)
        assert schema_to_dict(restored.schema("sc1")) == schema_to_dict(
            build_sc1()
        )

    def test_equivalences_survive(self, full_session, tmp_path):
        path = tmp_path / "s.json"
        full_session.save(path)
        restored = ToolSession.load(path)
        members = {
            str(m)
            for m in restored.registry.class_members("sc1.Student.Name")
        }
        assert members == {
            "sc1.Student.Name",
            "sc2.Faculty.Name",
            "sc2.Grad_student.Name",
        }

    def test_dda_assertions_survive_but_implicit_rederived(
        self, full_session, tmp_path
    ):
        path = tmp_path / "s.json"
        full_session.save(path)
        restored = ToolSession.load(path)
        from repro.assertions.kinds import Source

        dda = [
            a
            for a in restored.object_network.specified_assertions()
            if a.source is Source.DDA
        ]
        assert len(dda) == 3

    def test_result_survives(self, full_session, tmp_path):
        path = tmp_path / "s.json"
        full_session.save(path)
        restored = ToolSession.load(path)
        assert restored.result is not None
        assert schema_to_dict(restored.result.schema) == schema_to_dict(
            full_session.result.schema
        )

    def test_reintegration_after_restore_matches(self, full_session, tmp_path):
        path = tmp_path / "s.json"
        full_session.save(path)
        restored = ToolSession.load(path)
        restored.select_pair("sc1", "sc2")
        again = restored.integrate()
        assert schema_to_dict(again.schema) == schema_to_dict(
            full_session.result.schema
        )

    def test_restore_in_place(self, full_session, tmp_path):
        path = tmp_path / "s.json"
        full_session.save(path)
        target = ToolSession()
        target.restore_from(path)
        assert set(target.schemas) == {"sc1", "sc2"}
        assert target.selected_pair is None


class TestKernelHistory:
    def test_saved_history_survives_the_round_trip(self, tmp_path):
        session = ToolSession()
        session.adopt_schema(build_sc1())
        session.adopt_schema(build_sc2())
        session.registry.declare_equivalent(
            "sc1.Student.Name", "sc2.Grad_student.Name"
        )
        path = tmp_path / "s.json"
        session.save(path)

        restored = ToolSession.load(path)
        kernel = restored.analysis.kernel
        assert kernel.head == session.analysis.kernel.head
        # history is intact: the declaration can still be undone
        assert "undid last action" in restored.undo()
        assert restored.registry.nontrivial_classes() == []
        assert "redid action" in restored.redo()
        assert len(restored.registry.nontrivial_classes()) == 1

    def test_legacy_dictionary_without_kernel_still_loads(self, tmp_path):
        session = ToolSession()
        session.adopt_schema(build_sc1())
        session.registry.declare_equivalent(
            "sc1.Student.Name", "sc1.Department.Name"
        )
        dictionary = session.to_dictionary()
        data = dictionary.to_dict()
        assert "kernel" in data
        del data["kernel"]  # simulate a save from before the kernel existed
        data["format"] = 1  # ...which was also before the v2 footer

        import json

        path = tmp_path / "legacy.json"
        path.write_text(json.dumps(data))
        restored = ToolSession.load(path)
        assert set(restored.schemas) == {"sc1"}
        assert len(restored.registry.nontrivial_classes()) == 1
        # no history came along: the restored state is the new baseline
        kernel = restored.analysis.kernel
        assert kernel.baseline == kernel.head
        assert not kernel.can_undo()

    def test_saved_result_reattaches_to_the_restored_head(
        self, full_session, tmp_path
    ):
        path = tmp_path / "s.json"
        full_session.save(path)
        restored = ToolSession.load(path)
        kernel = restored.analysis.kernel
        assert kernel.result_at_head() is restored.result
        assert restored.result is not None
