"""Tests for the run loop: scripted sessions end to end.

The long script below replays the entire paper: define sc1/sc2 through the
collection screens, declare the Screen 7 equivalences, answer Screen 8,
integrate, and browse Screens 10-12.
"""

import pytest

from repro.tool.app import ToolApp, run_script

PAPER_SCRIPT = [
    # Task 1: schema collection (Screens 2-5)
    "1",
    "A sc1",
    "A Student e", "A Name char y", "A GPA real n", "E",
    "A Department e", "A Name char y", "E",
    "A Majors r", "A Student 1,1", "A Department 0,n", "E",
    "A Since date n", "E",
    "E",
    "A sc2",
    "A Grad_student e", "A Name char y", "A GPA real n",
    "A Support_type char n", "E",
    "A Faculty e", "A Name char y", "A Rank char n", "E",
    "A Department e", "A Name char y", "A Location char n", "E",
    "A Majors r", "A Grad_student 1,1", "A Department 0,n", "E",
    "A Since date n", "E",
    "A Works r", "A Faculty 1,1", "A Department 1,n", "E",
    "A Percent_time real n", "E",
    "E",
    "E",
    # Task 2: equivalences (Screens 6-7)
    "2", "sc1 sc2",
    "Student Grad_student", "A Name Name", "A GPA GPA", "E",
    "Student Faculty", "A Name Name", "E",
    "Department Department", "A Name Name", "E",
    "E",
    # Task 4: relationship equivalences
    "4", "Majors Majors", "A Since Since", "E", "E",
    # Task 3: object assertions (Screen 8 order: 1, 3, 4)
    "3", "1", "3", "4", "E",
    # Task 5: relationship assertions
    "5", "1", "E",
    # Task 6: integrate, browse Screens 10-12
    "6",
    "Student c", "q",
    "Student a", "D_Name", "n", "q", "q",
    "x",
    "E",
]


@pytest.fixture(scope="module")
def paper_run():
    return run_script(PAPER_SCRIPT)


class TestPaperScript:
    def test_script_runs_to_completion(self, paper_run):
        app, _ = paper_run
        assert app.finished
        assert app.session.status == "" or "error" not in app.session.status

    def test_integrated_schema_is_figure5(self, paper_run):
        app, _ = paper_run
        schema = app.session.result.schema
        assert [e.name for e in schema.entity_sets()] == [
            "E_Department",
            "D_Stud_Facu",
        ]
        assert [c.name for c in schema.categories()] == [
            "Student",
            "Grad_student",
            "Faculty",
        ]
        assert [r.name for r in schema.relationship_sets()] == [
            "E_Stud_Majo",
            "Works",
        ]

    def test_main_menu_frame(self, paper_run):
        _, transcript = paper_run
        assert "SCHEMA INTEGRATION TOOL" in transcript
        assert "1. Define the schemas to be integrated" in transcript

    def test_screen3_frame(self, paper_run):
        _, transcript = paper_run
        assert "Structure Information Collection Screen" in transcript
        assert "Type(E/C/R)" in transcript

    def test_screen5_frame(self, paper_run):
        _, transcript = paper_run
        assert "Attribute Information Collection Screen" in transcript
        assert "Key (y/n)" in transcript

    def test_screen7_frame_shows_eq_classes(self, paper_run):
        _, transcript = paper_run
        assert "Equivalence Class Creation and Deletion Screen" in transcript
        assert "Eq_class #" in transcript

    def test_screen8_frame_shows_paper_ratios(self, paper_run):
        _, transcript = paper_run
        assert "Assertion Collection For Object Pairs" in transcript
        assert "0.5000" in transcript
        assert "0.3333" in transcript

    def test_screen10_frame(self, paper_run):
        _, transcript = paper_run
        assert "Object Class Screen" in transcript
        assert "E_Department" in transcript
        assert "D_Stud_Facu" in transcript

    def test_screen11_category_screen(self, paper_run):
        _, transcript = paper_run
        index = transcript.index("Category Screen")
        chunk = transcript[index : index + 600]
        assert "D_Stud_Facu" in chunk
        assert "Grad_student" in chunk

    def test_screen12_component_attributes(self, paper_run):
        _, transcript = paper_run
        assert "Component Attribute Screen" in transcript
        assert "(1 of 2)" in transcript
        assert "(2 of 2)" in transcript


class TestAppMechanics:
    def test_errors_surface_as_status(self):
        app = ToolApp()
        app.feed("bogus")
        assert "unknown choice" in app.session.status
        frame = app.render()
        assert "unknown choice" in frame

    def test_exit_finishes(self):
        app = ToolApp()
        app.feed("E")
        assert app.finished
        with pytest.raises(Exception):
            app.render()

    def test_run_stops_after_exit(self):
        app = ToolApp()
        transcript = app.run(["E", "1", "2"])
        assert app.finished
        assert transcript  # at least the first frame rendered

    def test_status_cleared_each_input(self):
        app = ToolApp()
        app.feed("bogus")
        assert app.session.status
        app.feed("1")
        assert app.session.status == ""
