"""Tests for the tool session state."""

import pytest

from repro.ecr.attributes import Attribute
from repro.ecr.objects import EntitySet
from repro.errors import ToolError
from repro.tool.session import ToolSession
from repro.workloads.university import build_sc1, build_sc2


@pytest.fixture
def session():
    return ToolSession()


@pytest.fixture
def loaded(session):
    session.adopt_schema(build_sc1())
    session.adopt_schema(build_sc2())
    session.select_pair("sc1", "sc2")
    return session


class TestSchemaManagement:
    def test_add_and_get(self, session):
        session.add_schema("s")
        assert session.schema("s").name == "s"

    def test_duplicate_rejected(self, session):
        session.add_schema("s")
        with pytest.raises(ToolError):
            session.add_schema("s")

    def test_delete_clears_state(self, loaded):
        loaded.delete_schema("sc2")
        assert loaded.selected_pair is None
        with pytest.raises(ToolError):
            loaded.schema("sc2")

    def test_delete_unknown(self, session):
        with pytest.raises(ToolError):
            session.delete_schema("ghost")

    def test_adopt_registers_everything(self, loaded):
        assert loaded.registry.class_number("sc1.Student.Name") >= 1
        # implicit network seeding happened
        assert loaded.object_network.objects()

    def test_adopt_duplicate_rejected(self, loaded):
        with pytest.raises(ToolError):
            loaded.adopt_schema(build_sc1())

    def test_refresh_after_edit_deprecated(self, loaded):
        schema = loaded.schema("sc1")
        schema.add(EntitySet("NewThing", [Attribute("x")]))
        with pytest.deprecated_call():
            loaded.refresh_after_edit("sc1")
        assert loaded.registry.class_number("sc1.NewThing.x") >= 1


class TestPairSelection:
    def test_requires_selection(self, session):
        with pytest.raises(ToolError):
            session.require_pair()

    def test_same_schema_rejected(self, loaded):
        with pytest.raises(ToolError):
            loaded.select_pair("sc1", "sc1")

    def test_unknown_schema_rejected(self, loaded):
        with pytest.raises(ToolError):
            loaded.select_pair("sc1", "ghost")


class TestIntegrationFlow:
    def test_candidates_require_equivalences(self, loaded):
        assert loaded.candidate_pairs() == []
        loaded.registry.declare_equivalent(
            "sc1.Student.Name", "sc2.Grad_student.Name"
        )
        assert len(loaded.candidate_pairs()) >= 1

    def test_integrate_produces_result(self, loaded):
        result = loaded.integrate()
        assert loaded.result is result
        assert loaded.require_result() is result

    def test_require_result_before_integration(self, session):
        with pytest.raises(ToolError):
            session.require_result()

    def test_integrated_structure_lookup(self, loaded):
        loaded.integrate()
        assert loaded.integrated_structure("Student") is not None
        with pytest.raises(ToolError):
            loaded.integrated_structure("Ghost")

    def test_network_for(self, loaded):
        assert loaded.network_for(False) is loaded.object_network
        assert loaded.network_for(True) is loaded.relationship_network
