"""Focused tests for Screens 6-7 (equivalence) and session persistence
through the main menu."""

import pytest

from repro.tool.screens.base import POP, Replace
from repro.tool.screens.equivalence import (
    EquivalenceEditScreen,
    ObjectSelectScreen,
    SchemaSelectScreen,
)
from repro.tool.screens.main_menu import MainMenuScreen
from repro.tool.session import ToolSession
from repro.workloads.university import build_sc1, build_sc2


@pytest.fixture
def session():
    s = ToolSession()
    s.adopt_schema(build_sc1())
    s.adopt_schema(build_sc2())
    return s


@pytest.fixture
def paired(session):
    session.select_pair("sc1", "sc2")
    return session


class TestSchemaSelect:
    def test_selects_and_replaces(self, session):
        screen = SchemaSelectScreen(lambda: ObjectSelectScreen())
        outcome = screen.handle("sc1 sc2", session)
        assert isinstance(outcome, Replace)
        assert session.selected_pair == ("sc1", "sc2")

    def test_requires_two_names(self, session):
        from repro.errors import ToolError

        screen = SchemaSelectScreen(lambda: ObjectSelectScreen())
        with pytest.raises(ToolError):
            screen.handle("sc1", session)

    def test_exit(self, session):
        assert SchemaSelectScreen(lambda: None).handle("E", session) is POP

    def test_body_lists_schemas(self, paired):
        body = "\n".join(SchemaSelectScreen(lambda: None).body(paired))
        assert "sc1" in body and "sc2" in body
        assert "currently selected" in body


class TestObjectSelect:
    def test_columns_list_object_classes(self, paired):
        body = "\n".join(ObjectSelectScreen().body(paired))
        assert "Student" in body and "Grad_student" in body
        assert "Majors" not in body  # relationships excluded here

    def test_relationship_variant(self, paired):
        screen = ObjectSelectScreen(relationships=True)
        body = "\n".join(screen.body(paired))
        assert "Majors" in body and "Works" in body
        assert "Student" not in body

    def test_pushes_edit_screen(self, paired):
        outcome = ObjectSelectScreen().handle("Student Grad_student", paired)
        assert isinstance(outcome, EquivalenceEditScreen)

    def test_validates_membership(self, paired):
        from repro.errors import ToolError

        with pytest.raises(ToolError):
            ObjectSelectScreen().handle("Ghost Grad_student", paired)
        with pytest.raises(ToolError):
            ObjectSelectScreen().handle("Student Ghost", paired)


class TestEquivalenceEdit:
    def test_add_merges_classes(self, paired):
        screen = EquivalenceEditScreen("Student", "Grad_student")
        screen.handle("A Name Name", paired)
        assert paired.registry.are_equivalent(
            "sc1.Student.Name", "sc2.Grad_student.Name"
        )

    def test_add_reports_issues_as_status(self, paired):
        screen = EquivalenceEditScreen("Student", "Grad_student")
        screen.handle("A Name GPA", paired)  # char vs real
        assert "incompatible" in paired.status

    def test_delete_splits(self, paired):
        screen = EquivalenceEditScreen("Student", "Grad_student")
        screen.handle("A Name Name", paired)
        screen.handle("D 2 Name", paired)
        assert not paired.registry.are_equivalent(
            "sc1.Student.Name", "sc2.Grad_student.Name"
        )

    def test_body_shows_eq_class_numbers(self, paired):
        screen = EquivalenceEditScreen("Student", "Grad_student")
        screen.handle("A Name Name", paired)
        body = "\n".join(screen.body(paired))
        assert "Eq_class #" in body
        number = paired.registry.class_number("sc1.Student.Name")
        assert str(number) in body

    def test_exit(self, paired):
        assert EquivalenceEditScreen("Student", "Faculty").handle(
            "E", paired
        ) is POP


class TestMainMenuPersistence:
    def test_save_and_load_via_menu(self, paired, tmp_path):
        paired.registry.declare_equivalent(
            "sc1.Student.Name", "sc2.Grad_student.Name"
        )
        path = tmp_path / "session.json"
        menu = MainMenuScreen()
        menu.handle(f"S {path}", paired)
        assert "saved" in paired.status
        fresh = ToolSession()
        MainMenuScreen().handle(f"L {path}", fresh)
        assert "loaded" in fresh.status
        assert set(fresh.schemas) == {"sc1", "sc2"}
        assert fresh.registry.are_equivalent(
            "sc1.Student.Name", "sc2.Grad_student.Name"
        )

    def test_load_missing_file(self, session):
        from repro.errors import ToolError

        with pytest.raises(ToolError):
            MainMenuScreen().handle("L /no/such/file.json", session)

    def test_usage_errors(self, session):
        from repro.errors import ToolError

        with pytest.raises(ToolError):
            MainMenuScreen().handle("S", session)
        with pytest.raises(ToolError):
            MainMenuScreen().handle("L", session)
