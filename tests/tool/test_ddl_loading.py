"""Tests for loading schemas from DDL files in the collection screen."""

import pytest

from repro.ecr.ddl import to_ddl
from repro.tool.screens.collection import SchemaNameScreen
from repro.tool.session import ToolSession
from repro.workloads.university import build_sc1, build_sc2


class TestDdlFileLoading:
    def test_load_two_schemas_from_file(self, tmp_path):
        path = tmp_path / "schemas.ecr"
        path.write_text(to_ddl(build_sc1()) + to_ddl(build_sc2()))
        session = ToolSession()
        SchemaNameScreen().handle(f"F {path}", session)
        assert set(session.schemas) == {"sc1", "sc2"}
        assert "loaded sc1, sc2" in session.status
        # registry and networks seeded from the loaded schemas
        assert session.registry.class_number("sc1.Student.Name") >= 1

    def test_missing_file(self):
        from repro.errors import ToolError

        with pytest.raises(ToolError):
            SchemaNameScreen().handle("F /no/such.ecr", ToolSession())

    def test_empty_file(self, tmp_path):
        from repro.errors import ToolError

        path = tmp_path / "empty.ecr"
        path.write_text("# nothing here\n")
        with pytest.raises(ToolError):
            SchemaNameScreen().handle(f"F {path}", ToolSession())

    def test_bad_ddl_reports_line(self, tmp_path):
        from repro.errors import DdlError

        path = tmp_path / "bad.ecr"
        path.write_text("schema s\n  wibble\n")
        with pytest.raises(DdlError):
            SchemaNameScreen().handle(f"F {path}", ToolSession())
