"""Task 7: the Global Request Execution screen and its session plumbing."""

import pytest

from repro.data.instances import InstanceStore
from repro.errors import ToolError
from repro.obs.replay import replay
from repro.tool.screens.base import POP
from repro.tool.screens.federation import FederationScreen
from repro.tool.screens.main_menu import MainMenuScreen
from repro.tool.session import ToolSession
from repro.ecr.schema import ObjectRef
from repro.workloads.university import (
    PAPER_ASSERTION_CODES,
    PAPER_RELATIONSHIP_CODES,
    build_sc1,
    build_sc2,
)


@pytest.fixture
def session():
    s = ToolSession()
    s.adopt_schema(build_sc1())
    s.adopt_schema(build_sc2())
    s.select_pair("sc1", "sc2")
    s.registry.declare_equivalent("sc1.Student.Name", "sc2.Grad_student.Name")
    s.registry.declare_equivalent("sc1.Student.Name", "sc2.Faculty.Name")
    s.registry.declare_equivalent("sc1.Student.GPA", "sc2.Grad_student.GPA")
    s.registry.declare_equivalent("sc1.Department.Name", "sc2.Department.Name")
    s.registry.declare_equivalent("sc1.Majors.Since", "sc2.Majors.Since")
    for first, second, code in PAPER_ASSERTION_CODES:
        s.object_network.specify(
            ObjectRef.parse(first), ObjectRef.parse(second), code
        )
    for first, second, code in PAPER_RELATIONSHIP_CODES:
        s.relationship_network.specify(
            ObjectRef.parse(first), ObjectRef.parse(second), code
        )
    s.integrate()
    return s


def overlap_stores(session):
    sc1 = InstanceStore(session.schema("sc1"))
    sc2 = InstanceStore(session.schema("sc2"))
    sc1.insert("Student", {"Name": "ana", "GPA": 3.8})
    sc1.insert("Department", {"Name": "cs"})
    sc2.insert(
        "Grad_student", {"Name": "ana", "GPA": 3.8, "Support_type": "ta"}
    )
    sc2.insert("Department", {"Name": "cs", "Location": "west"})
    return {"sc1": sc1, "sc2": sc2}


class TestSessionPlumbing:
    def test_connect_federation_with_stores(self, session):
        attachment = session.connect_federation(overlap_stores(session))
        assert session.federation is attachment.engine
        assert attachment.components == ("sc1", "sc2")
        assert attachment.demo_components == ()
        result = session.execute_global_request(
            "select D_Name, D_GPA, Support_type from Student"
        )
        assert ("ana", 3.8, "ta") in result.rows

    def test_require_federation_auto_populates_demo_stores(self, session):
        engine = session.require_federation()
        assert engine is session.federation
        result = session.execute_global_request("select D_Name from Student")
        assert result.ok

    def test_without_result_raises(self):
        bare = ToolSession()
        with pytest.raises(ToolError):
            bare.connect_federation()

    def test_query_errors_surface_as_repro_errors(self, session):
        session.connect_federation(overlap_stores(session))
        with pytest.raises(Exception) as err:
            session.execute_global_request("select X from Ghost")
        from repro.errors import ReproError

        assert isinstance(err.value, ReproError)

    def test_audit_captures_query_and_replay_accepts_it(self, session):
        log = session.analysis.attach_audit()
        session.connect_federation(overlap_stores(session))
        session.execute_global_request("select D_Name, D_GPA from Student")
        assert "federation.query" in log.actions()
        event = [e for e in log if e.scope == "federation"][-1]
        assert event.payload["strategy"] == "subset-union"
        assert event.payload["components"] == ["sc1", "sc2"]
        assert event.payload["health"]["ok"] is True
        # a recorded sitting containing federation events still replays
        assert replay(log).verified


class TestFederationScreen:
    def test_menu_task_7_opens_screen(self, session):
        screen = MainMenuScreen().handle("7", session)
        assert isinstance(screen, FederationScreen)

    def test_menu_task_7_requires_result(self):
        bare = ToolSession()
        with pytest.raises(ToolError):
            MainMenuScreen().handle("7", bare)

    def test_request_renders_rows_health_and_status(self, session):
        session.connect_federation(overlap_stores(session))
        screen = FederationScreen()
        outcome = screen.handle(
            "select D_Name, D_GPA, Support_type from Student", session
        )
        assert outcome is None
        body = "\n".join(screen.body(session))
        assert "answer (" in body
        assert "ana, 3.8, ta" in body
        assert "merge strategy: subset-union" in body
        assert "sc1: ok" in body and "sc2: ok" in body
        assert "row(s) via subset-union" in session.status

    def test_plan_only_mode(self, session):
        session.connect_federation(overlap_stores(session))
        screen = FederationScreen()
        screen.handle("p select D_Name, D_GPA from Student", session)
        body = "\n".join(screen.body(session))
        assert "federated plan for" in body
        assert "fan-out" in body

    def test_non_select_input_rejected(self, session):
        screen = FederationScreen()
        with pytest.raises(ToolError):
            screen.handle("drop everything", session)

    def test_exit_pops(self, session):
        assert FederationScreen().handle("e", session) is POP

    def test_body_lists_components_and_breakers(self, session):
        session.connect_federation(overlap_stores(session))
        screen = FederationScreen()
        body = "\n".join(screen.body(session))
        assert "components: sc1, sc2" in body
        assert "breaker closed" in body
