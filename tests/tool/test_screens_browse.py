"""Focused tests for the browse screens (10-12) and the Figure 6 flow."""

import pytest

from repro.tool.screens.base import POP
from repro.tool.screens.browse import (
    BROWSE_FLOW_EDGES,
    AttributeScreen,
    CategoryScreen,
    ComponentAttributeScreen,
    EntityScreen,
    EquivalentScreen,
    ObjectClassScreen,
    ParticipatingObjectsScreen,
    RelationshipScreen,
)
from repro.tool.session import ToolSession
from repro.workloads.university import (
    PAPER_ASSERTION_CODES,
    PAPER_RELATIONSHIP_CODES,
    build_sc1,
    build_sc2,
)
from repro.ecr.schema import ObjectRef


@pytest.fixture
def session():
    s = ToolSession()
    s.adopt_schema(build_sc1())
    s.adopt_schema(build_sc2())
    s.select_pair("sc1", "sc2")
    s.registry.declare_equivalent("sc1.Student.Name", "sc2.Grad_student.Name")
    s.registry.declare_equivalent("sc1.Student.Name", "sc2.Faculty.Name")
    s.registry.declare_equivalent("sc1.Student.GPA", "sc2.Grad_student.GPA")
    s.registry.declare_equivalent("sc1.Department.Name", "sc2.Department.Name")
    s.registry.declare_equivalent("sc1.Majors.Since", "sc2.Majors.Since")
    for first, second, code in PAPER_ASSERTION_CODES:
        s.object_network.specify(
            ObjectRef.parse(first), ObjectRef.parse(second), code
        )
    for first, second, code in PAPER_RELATIONSHIP_CODES:
        s.relationship_network.specify(
            ObjectRef.parse(first), ObjectRef.parse(second), code
        )
    s.integrate()
    return s


class TestFigure6Flow:
    def test_edges_match_paper(self):
        """Figure 6: Object Class Screen fans out to Attribute, Category,
        Entity and Relationship; those reach Equivalent, Participating
        Objects and Component Attribute screens."""
        flows = {(src, dst) for src, _, dst in BROWSE_FLOW_EDGES}
        assert flows == {
            ("ObjectClassScreen", "AttributeScreen"),
            ("ObjectClassScreen", "CategoryScreen"),
            ("ObjectClassScreen", "EntityScreen"),
            ("ObjectClassScreen", "RelationshipScreen"),
            ("EntityScreen", "EquivalentScreen"),
            ("CategoryScreen", "EquivalentScreen"),
            ("RelationshipScreen", "EquivalentScreen"),
            ("RelationshipScreen", "ParticipatingObjectsScreen"),
            ("AttributeScreen", "ComponentAttributeScreen"),
        }

    def test_edges_are_live(self, session):
        """Every declared arc is reachable by an actual input."""
        object_screen = ObjectClassScreen()
        assert isinstance(
            object_screen.handle("Student a", session), AttributeScreen
        )
        assert isinstance(
            object_screen.handle("Student c", session), CategoryScreen
        )
        assert isinstance(
            object_screen.handle("E_Department e", session), EntityScreen
        )
        assert isinstance(
            object_screen.handle("Works r", session), RelationshipScreen
        )
        assert isinstance(
            CategoryScreen("Student").handle("v", session), EquivalentScreen
        )
        assert isinstance(
            RelationshipScreen("Works").handle("p", session),
            ParticipatingObjectsScreen,
        )
        assert isinstance(
            AttributeScreen("Student").handle("D_Name", session),
            ComponentAttributeScreen,
        )


class TestScreen10:
    def test_three_columns_with_counts(self, session):
        body = "\n".join(ObjectClassScreen().body(session))
        assert "Entities(2)" in body
        assert "Categories(3)" in body
        assert "Relationships(2)" in body
        assert "E_Department" in body and "D_Stud_Facu" in body

    def test_kind_checked(self, session):
        from repro.errors import ToolError

        with pytest.raises(ToolError):
            ObjectClassScreen().handle("Student e", session)
        with pytest.raises(ToolError):
            ObjectClassScreen().handle("E_Department c", session)
        with pytest.raises(ToolError):
            ObjectClassScreen().handle("Works c", session)

    def test_exit(self, session):
        assert ObjectClassScreen().handle("x", session) is POP


class TestScreen11:
    def test_category_screen_for_student(self, session):
        body = "\n".join(CategoryScreen("Student").body(session))
        assert "D_Stud_Facu (e)" in body
        assert "Grad_student (c)" in body

    def test_entity_screen_children(self, session):
        body = "\n".join(EntityScreen("D_Stud_Facu").body(session))
        assert "Student (c)" in body
        assert "Faculty (c)" in body


class TestScreen12:
    def test_component_sequence(self, session):
        screen = ComponentAttributeScreen("Student", "D_Name", 0)
        first = "\n".join(screen.body(session))
        assert "Schema Name      : sc1" in first
        assert "(1 of 2)" in first
        assert screen.handle("n", session) is None
        second = "\n".join(screen.body(session))
        assert "Schema Name      : sc2" in second
        assert "Object Name      : Grad_student" in second
        assert screen.handle("n", session) is POP  # past the last component

    def test_quit_any_time(self, session):
        screen = ComponentAttributeScreen("Student", "D_Name", 0)
        assert screen.handle("q", session) is POP

    def test_attribute_screen_lists_component_counts(self, session):
        body = "\n".join(AttributeScreen("Student").body(session))
        assert "D_Name" in body and "2" in body

    def test_singleton_attribute_has_one_component(self, session):
        screen = AttributeScreen("Faculty")
        outcome = screen.handle("Rank", session)
        assert isinstance(outcome, ComponentAttributeScreen)
        body = "\n".join(outcome.body(session))
        assert "(1 of 1)" in body


class TestEquivalentScreen:
    def test_lists_components(self, session):
        body = "\n".join(EquivalentScreen("E_Department").body(session))
        assert "sc1.Department" in body and "sc2.Department" in body

    def test_quit(self, session):
        assert EquivalentScreen("E_Department").handle("q", session) is POP


class TestParticipatingObjects:
    def test_lists_legs_with_types(self, session):
        body = "\n".join(
            ParticipatingObjectsScreen("E_Stud_Majo").body(session)
        )
        assert "Student" in body and "(1,1)" in body
        assert "E_Department" in body and "(0,n)" in body
