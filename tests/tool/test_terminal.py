"""Tests for the virtual terminal."""

import pytest

from repro.errors import ToolError
from repro.tool.terminal import VirtualTerminal


class TestGeometry:
    def test_defaults(self):
        terminal = VirtualTerminal()
        assert terminal.width == 80
        assert terminal.height == 24

    def test_too_small_rejected(self):
        with pytest.raises(ToolError):
            VirtualTerminal(width=10, height=24)
        with pytest.raises(ToolError):
            VirtualTerminal(width=80, height=2)


class TestWriting:
    def test_write_and_render(self):
        terminal = VirtualTerminal()
        terminal.write_row(0, "hello")
        text = terminal.render()
        assert text.splitlines()[0] == "hello"
        assert len(text.splitlines()) == 24

    def test_rows_clipped_to_width(self):
        terminal = VirtualTerminal(width=20, height=5)
        terminal.write_row(0, "x" * 50)
        assert terminal.render().splitlines()[0] == "x" * 20

    def test_out_of_range_rows_ignored(self):
        terminal = VirtualTerminal(width=20, height=5)
        terminal.write_row(99, "invisible")
        terminal.write_row(-1, "invisible")
        assert "invisible" not in terminal.render()

    def test_clear(self):
        terminal = VirtualTerminal()
        terminal.write_row(3, "junk")
        terminal.clear()
        assert "junk" not in terminal.render()


class TestScreens:
    def test_headers_centred(self):
        terminal = VirtualTerminal(width=40, height=10)
        terminal.show_screen("HEADER", "Sub", ["body line"])
        lines = terminal.render().splitlines()
        assert lines[0].strip() == "HEADER"
        assert lines[1].strip() == "< Sub >"
        assert lines[3] == "body line"

    def test_truncation_marker(self):
        terminal = VirtualTerminal(width=40, height=6)
        terminal.show_screen("H", "S", [f"line {i}" for i in range(20)])
        lines = terminal.render().splitlines()
        assert lines[-1].startswith("-- more --")

    def test_visible_text_drops_blank_rows(self):
        terminal = VirtualTerminal()
        terminal.show_screen("H", "S", ["a", "", "b"])
        visible = terminal.visible_text()
        assert "a\n" in visible and "b\n" in visible
        assert "\n\n" not in visible
