"""The Suggestion screen (task 8) and Screen 9's conflict-set M command."""

import pytest

from repro.assertions.kinds import AssertionKind, Source
from repro.errors import ToolError
from repro.tool.screens.assertion import (
    AssertionCollectScreen,
    ConflictResolutionScreen,
)
from repro.tool.screens.base import POP
from repro.tool.screens.main_menu import MainMenuScreen
from repro.tool.screens.suggestion import SuggestionScreen
from repro.tool.session import ToolSession
from repro.workloads.university import build_sc3, build_sc4


@pytest.fixture
def session():
    s = ToolSession()
    s.adopt_schema(build_sc3())
    s.adopt_schema(build_sc4())
    s.select_pair("sc3", "sc4")
    s.registry.declare_equivalent("sc3.Instructor.Name", "sc4.Student.Name")
    return s


class TestSuggestionScreen:
    def test_body_lists_ranked_candidates(self, session):
        screen = SuggestionScreen(limit=50)
        body = "\n".join(screen.body(session))
        assert "SCORE" in body and "STATUS" in body
        assert "sc3." in body and "sc4." in body

    def test_accept_safe_commits_through_the_session(self, session):
        screen = SuggestionScreen(limit=50)
        top = screen._current(session)[0]
        assert top.safe
        assert screen.handle("A", session) is None
        assert "accepted" in session.status
        recorded = session.object_network.assertion_for(top.first, top.second)
        assert recorded is not None
        assert recorded.kind is AssertionKind.EQUALS
        assert recorded.source is Source.DDA

    def test_accepted_assertion_is_undoable(self, session):
        screen = SuggestionScreen(limit=50)
        top = screen._current(session)[0]
        screen.handle("A", session)
        assert screen.handle("Z", session) is None  # kernel undo
        assert session.object_network.assertion_for(top.first, top.second) is None

    def test_accept_refreshes_the_ranking(self, session):
        screen = SuggestionScreen(limit=50)
        top = screen._current(session)[0]
        screen.handle("A", session)
        pairs = {(s.first, s.second) for s in screen._current(session)}
        assert (top.first, top.second) not in pairs

    def test_conflicting_suggestion_is_refused(self, session):
        # Instructor ∥ Grad_student ⊂ Student leaves (Instructor, Student)
        # undetermined but EQ-impossible: the suggestion must be labelled
        # conflicting and A must not commit it.
        session.analysis.specify(
            "sc3.Instructor",
            "sc4.Grad_student",
            AssertionKind.DISJOINT_INTEGRABLE,
        )
        screen = SuggestionScreen(limit=50)
        suggestions = screen._current(session)
        index = next(
            i
            for i, s in enumerate(suggestions)
            if (str(s.first), str(s.second)) == ("sc3.Instructor", "sc4.Student")
        )
        assert suggestions[index].status == "conflicting"
        assert suggestions[index].conflict
        for _ in range(index):
            screen.handle("N", session)
        before = len(session.object_network.specified_assertions())
        assert screen.handle("A", session) is None
        assert "cannot accept" in session.status
        assert len(session.object_network.specified_assertions()) == before

    def test_next_and_exit(self, session):
        screen = SuggestionScreen(limit=50)
        screen.handle("N", session)
        assert screen._cursor == 1
        assert screen.handle("E", session) is POP

    def test_refresh_recomputes(self, session):
        screen = SuggestionScreen(limit=50)
        screen._current(session)
        assert screen.handle("R", session) is None
        assert "recomputed" in session.status

    def test_accept_past_the_end_is_an_error(self, session):
        screen = SuggestionScreen(limit=50)
        count = len(screen._current(session))
        for _ in range(count):
            screen.handle("N", session)
        with pytest.raises(ToolError):
            screen.handle("A", session)

    def test_main_menu_task_8_opens_the_screen(self, session):
        outcome = MainMenuScreen().handle("8", session)
        assert isinstance(outcome, SuggestionScreen)


class TestScreen9ConflictSet:
    def _conflict(self, session):
        session.registry.declare_equivalent(
            "sc3.Instructor.Office", "sc4.Grad_student.Thesis_title"
        )
        screen = AssertionCollectScreen()
        screen.handle("2", session)  # Instructor ⊆ Grad_student
        screen9 = screen.handle("0", session)  # Instructor ∥ Student: conflict
        assert isinstance(screen9, ConflictResolutionScreen)
        return screen9

    def test_body_and_prompt_show_the_minimal_set(self, session):
        screen9 = self._conflict(session)
        body = "\n".join(screen9.body(session))
        assert "Minimal conflict set" in body
        assert "(M <n>)" in screen9.prompt(session)

    def test_retract_member_resolves_the_conflict(self, session):
        screen9 = self._conflict(session)
        minimal = screen9.report.minimal_conflict()
        member = next(
            i
            for i, assertion in enumerate(minimal, start=1)
            if assertion.source is Source.DDA
        )
        outcome = screen9.handle(f"M {member}", session)
        assert outcome is POP
        assert "resolved" in session.status
        network = session.object_network
        # the retracted DDA assertion is gone, the new one committed
        new = screen9.report.new
        recorded = network.assertion_for(new.first, new.second)
        assert recorded is not None and recorded.kind.code == 0

    def test_implicit_members_cannot_be_retracted(self, session):
        screen9 = self._conflict(session)
        minimal = screen9.report.minimal_conflict()
        implicit = [
            i
            for i, assertion in enumerate(minimal, start=1)
            if assertion.source is not Source.DDA
        ]
        assert implicit, "expected an implicit member in the conflict set"
        with pytest.raises(ToolError):
            screen9.handle(f"M {implicit[0]}", session)

    def test_bad_member_numbers(self, session):
        screen9 = self._conflict(session)
        with pytest.raises(ToolError):
            screen9.handle("M", session)
        with pytest.raises(ToolError):
            screen9.handle("M notanumber", session)
        with pytest.raises(ToolError):
            screen9.handle("M 99", session)
