"""The redesigned typed results and their deprecation shims.

``connect_federation`` / ``execute_global_request`` / ``recovery_info``
return frozen dataclasses whose ``to_wire()`` is plain JSON; the old
``attach_federation`` / ``run_global_request`` names keep returning the
old raw shapes but warn ``DeprecationWarning`` for one release.
"""

from __future__ import annotations

import json

import pytest

from repro.ecr.schema import ObjectRef
from repro.federation.engine import FederationEngine, FederationResult
from repro.tool import (
    FederationAttachment,
    GlobalRequestResult,
    RecoveryInfo,
    ToolSession,
)
from repro.workloads.university import (
    PAPER_ASSERTION_CODES,
    PAPER_RELATIONSHIP_CODES,
    build_sc1,
    build_sc2,
)


@pytest.fixture
def session():
    s = ToolSession()
    s.adopt_schema(build_sc1())
    s.adopt_schema(build_sc2())
    s.select_pair("sc1", "sc2")
    s.registry.declare_equivalent("sc1.Student.Name", "sc2.Grad_student.Name")
    s.registry.declare_equivalent("sc1.Student.Name", "sc2.Faculty.Name")
    s.registry.declare_equivalent("sc1.Student.GPA", "sc2.Grad_student.GPA")
    s.registry.declare_equivalent("sc1.Department.Name", "sc2.Department.Name")
    s.registry.declare_equivalent("sc1.Majors.Since", "sc2.Majors.Since")
    for first, second, code in PAPER_ASSERTION_CODES:
        s.object_network.specify(
            ObjectRef.parse(first), ObjectRef.parse(second), code
        )
    for first, second, code in PAPER_RELATIONSHIP_CODES:
        s.relationship_network.specify(
            ObjectRef.parse(first), ObjectRef.parse(second), code
        )
    s.integrate()
    return s


class TestConnectFederation:
    def test_returns_frozen_attachment(self, session):
        attachment = session.connect_federation()
        assert isinstance(attachment, FederationAttachment)
        assert isinstance(attachment.engine, FederationEngine)
        assert session.federation is attachment.engine
        assert set(attachment.components) == {"sc1", "sc2"}
        # no stores passed in -> demo stores were seeded
        assert attachment.demo_components == attachment.components
        with pytest.raises(Exception):
            attachment.components = ()  # frozen

    def test_to_wire_is_json(self, session):
        wire = session.connect_federation().to_wire()
        assert json.loads(json.dumps(wire)) == wire
        assert wire["integrated_schema"]
        assert "engine" not in wire

    def test_attach_federation_shim_warns_and_returns_engine(self, session):
        with pytest.warns(DeprecationWarning, match="connect_federation"):
            engine = session.attach_federation()
        assert isinstance(engine, FederationEngine)
        assert session.federation is engine


class TestExecuteGlobalRequest:
    def test_returns_typed_result(self, session):
        session.connect_federation()
        result = session.execute_global_request("select D_Name from Student")
        assert isinstance(result, GlobalRequestResult)
        assert isinstance(result.raw, FederationResult)
        assert result.request == "select D_Name from Student"
        assert result.ok and not result.degraded
        assert result.rows  # the demo stores are populated
        assert all(isinstance(row, tuple) for row in result.rows)
        assert result.summary() == result.raw.summary()

    def test_to_wire_is_json(self, session):
        session.connect_federation()
        wire = session.execute_global_request("select D_Name from Student").to_wire()
        assert json.loads(json.dumps(wire)) == wire
        assert wire["row_count"] == len(wire["rows"])
        assert set(wire["components"]) == {"sc1", "sc2"}
        assert isinstance(wire["health"], dict)

    def test_run_global_request_shim_warns_and_returns_raw(self, session):
        session.connect_federation()
        with pytest.warns(DeprecationWarning, match="execute_global_request"):
            raw = session.run_global_request("select D_Name from Student")
        assert isinstance(raw, FederationResult)

    def test_query_still_lands_on_kernel_log(self, session):
        session.connect_federation()
        kernel = session.analysis.kernel
        before = kernel.bus.offset
        session.execute_global_request("select D_Name from Student")
        assert kernel.bus.offset == before + 1


class TestRecoveryInfo:
    def test_fresh_session_has_none(self):
        assert ToolSession().recovery_info() is None

    def test_open_surfaces_typed_info(self, tmp_path, session):
        path = tmp_path / "dict.json"
        session.save(path)
        reopened = ToolSession.open(path)
        info = reopened.recovery_info()
        assert isinstance(info, RecoveryInfo)
        assert info.source == "save"
        assert info.head == reopened.analysis.kernel.head
        wire = info.to_wire()
        assert json.loads(json.dumps(wire)) == wire
        assert wire["clean"] is True

    def test_wal_tail_is_reported(self, tmp_path, session):
        path = tmp_path / "dict.json"
        session.save(path)
        session.add_schema("extra")
        # the WAL now has events past the checkpoint; a reopen replays them
        reopened = ToolSession.open(path)
        info = reopened.recovery_info()
        assert info.used_wal
        assert info.events_replayed >= 1
        assert "extra" in reopened.schemas
