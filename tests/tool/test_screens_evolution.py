"""The Screen 10 evolution screen: JSON edits in, repair-scope report out."""

import pytest

from repro.errors import ToolError
from repro.tool.screens.base import POP
from repro.tool.screens.evolution import EvolutionScreen
from repro.tool.screens.main_menu import MainMenuScreen
from repro.tool.session import ToolSession
from repro.workloads.university import build_sc1, build_sc2


@pytest.fixture
def session():
    live = ToolSession()
    live.adopt_schema(build_sc1())
    live.adopt_schema(build_sc2())
    return live


class TestNavigation:
    def test_main_menu_routes_to_evolution(self, session):
        outcome = MainMenuScreen().handle("9", session)
        assert isinstance(outcome, EvolutionScreen)

    def test_exit_pops(self, session):
        assert EvolutionScreen().handle("E", session) is POP

    def test_body_lists_schemas_and_edit_kinds(self, session):
        body = "\n".join(EvolutionScreen().body(session))
        assert "sc1" in body
        assert "sc2" in body
        assert "add_attribute" in body


class TestApply:
    def test_edit_applies_and_reports_scope(self, session):
        screen = EvolutionScreen()
        screen.handle(
            'A sc1 {"kind": "add_attribute", "object": "Student",'
            ' "attribute": {"name": "Age", "domain": {"kind": "integer"}}}',
            session,
        )
        assert "Age" in {
            attribute.name
            for attribute in session.schema("sc1").get("Student").attributes
        }
        body = "\n".join(screen.body(session))
        assert "add_attribute" in body
        assert "OCS cells" in session.status

    def test_bad_json_is_a_tool_error(self, session):
        with pytest.raises(ToolError):
            EvolutionScreen().handle("A sc1 {not json", session)

    def test_unknown_schema_rejected(self, session):
        with pytest.raises(Exception):
            EvolutionScreen().handle(
                'A ghost {"kind": "drop_attribute", "object": "X",'
                ' "attribute": "Y"}',
                session,
            )

    def test_edit_is_undoable(self, session):
        screen = EvolutionScreen()
        screen.handle(
            'A sc1 {"kind": "rename_attribute", "object": "Student",'
            ' "old": "GPA", "new": "Grade_avg"}',
            session,
        )
        names = {
            attribute.name
            for attribute in session.schema("sc1").get("Student").attributes
        }
        assert "Grade_avg" in names
        session.undo()
        names = {
            attribute.name
            for attribute in session.schema("sc1").get("Student").attributes
        }
        assert "GPA" in names and "Grade_avg" not in names
