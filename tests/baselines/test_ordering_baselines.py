"""Tests for the EXP-ORD ordering baselines."""

import pytest

from repro.equivalence.registry import EquivalenceRegistry
from repro.baselines.ordering_baselines import (
    all_cross_pairs,
    effort_to_full_recall,
    ordering_alphabetical,
    ordering_random,
    ordering_resemblance,
    recall_at_k,
    recall_curve,
)
from repro.workloads.generator import GeneratorConfig, generate_schema_pair
from repro.workloads.oracle import OracleDda


@pytest.fixture(scope="module")
def scene():
    pair = generate_schema_pair(GeneratorConfig(seed=42, concepts=10, overlap=0.6))
    registry = EquivalenceRegistry([pair.first, pair.second])
    OracleDda(pair.truth).declare_all_equivalences(registry)
    return pair, registry


class TestOrderings:
    def test_all_orderings_are_permutations(self, scene):
        pair, registry = scene
        full = set(all_cross_pairs(pair.first, pair.second))
        for ordering in (
            ordering_resemblance(registry, pair.first, pair.second),
            ordering_random(pair.first, pair.second, seed=1),
            ordering_alphabetical(pair.first, pair.second),
        ):
            assert set(ordering) == full
            assert len(ordering) == len(full)

    def test_random_is_seeded(self, scene):
        pair, _ = scene
        assert ordering_random(pair.first, pair.second, 5) == ordering_random(
            pair.first, pair.second, 5
        )
        assert ordering_random(pair.first, pair.second, 5) != ordering_random(
            pair.first, pair.second, 6
        )

    def test_alphabetical_sorted(self, scene):
        pair, _ = scene
        ordering = ordering_alphabetical(pair.first, pair.second)
        assert ordering == sorted(ordering)


class TestRecall:
    def test_recall_monotone_and_complete(self, scene):
        pair, registry = scene
        ordering = ordering_resemblance(registry, pair.first, pair.second)
        curve = recall_curve(ordering, pair.truth)
        assert curve == sorted(curve)
        assert curve[-1] == 1.0

    def test_recall_with_empty_truth(self, scene):
        pair, _ = scene
        from repro.workloads.oracle import GroundTruth

        assert recall_at_k(
            ordering_alphabetical(pair.first, pair.second), GroundTruth(), 1
        ) == 1.0

    def test_resemblance_beats_random_early(self, scene):
        """The paper's headline claim, checked in-shape: at small k the
        heuristic ordering has found at least as much as random."""
        pair, registry = scene
        resemblance = ordering_resemblance(registry, pair.first, pair.second)
        k = max(1, len(pair.truth.object_assertions))
        heuristic = recall_at_k(resemblance, pair.truth, k)
        random_scores = [
            recall_at_k(
                ordering_random(pair.first, pair.second, seed), pair.truth, k
            )
            for seed in range(5)
        ]
        assert heuristic >= max(random_scores)
        assert heuristic >= 0.8

    def test_effort_to_full_recall(self, scene):
        pair, registry = scene
        resemblance = ordering_resemblance(registry, pair.first, pair.second)
        effort_heuristic = effort_to_full_recall(resemblance, pair.truth)
        efforts_random = [
            effort_to_full_recall(
                ordering_random(pair.first, pair.second, seed), pair.truth
            )
            for seed in range(5)
        ]
        assert effort_heuristic <= min(efforts_random)

    def test_effort_when_truth_unreachable(self, scene):
        pair, _ = scene
        from repro.workloads.oracle import GroundTruth

        truth = GroundTruth()
        truth.add_object_assertion("zz.Nope", "zz.Other", 1)
        ordering = ordering_alphabetical(pair.first, pair.second)
        assert effort_to_full_recall(ordering, truth) == len(ordering)
