"""Tests for the EXP-CLO / EXP-CON assertion-entry baselines."""

import pytest

from repro.baselines.closure_baselines import (
    drive_assertions_with_closure,
    drive_assertions_without_closure,
)
from repro.workloads.generator import GeneratorConfig, generate_schema_pair
from repro.workloads.university import build_sc3, build_sc4
from repro.workloads.oracle import GroundTruth
from repro.assertions.kinds import AssertionKind


@pytest.fixture(scope="module")
def pair():
    return generate_schema_pair(GeneratorConfig(seed=9, concepts=9, overlap=0.7))


class TestWithClosure:
    def test_counts_add_up(self, pair):
        _, stats = drive_assertions_with_closure(
            pair.first, pair.second, pair.truth
        )
        assert stats.questions_asked + stats.derived_free == stats.pairs_total
        assert stats.conflicts == 0  # truthful oracle never contradicts

    def test_network_matches_truth(self, pair):
        network, _ = drive_assertions_with_closure(
            pair.first, pair.second, pair.truth
        )
        for (a, b), kind in pair.truth.object_assertions.items():
            recorded = network.assertion_for(a, b)
            assert recorded is not None
            assert recorded.relation is kind.relation

    def test_savings_ratio(self, pair):
        _, stats = drive_assertions_with_closure(
            pair.first, pair.second, pair.truth
        )
        assert 0.0 <= stats.savings_ratio < 1.0
        assert stats.questions_saved == stats.derived_free


class TestWithoutClosure:
    def test_every_pair_is_a_question(self, pair):
        stats = drive_assertions_without_closure(
            pair.first, pair.second, pair.truth
        )
        assert stats.questions_asked == stats.pairs_total
        assert stats.derived_free == 0
        assert stats.savings_ratio == 0.0

    def test_closure_saves_questions_on_structured_pairs(self):
        """The paper's claim: derivation reduces DDA questions.  sc3/sc4
        have IS-A structure, so at least one pair comes for free."""
        sc3, sc4 = build_sc3(), build_sc4()
        truth = GroundTruth()
        truth.add_object_assertion(
            "sc3.Instructor", "sc4.Grad_student", AssertionKind.CONTAINED_IN
        )
        _, with_closure = drive_assertions_with_closure(sc3, sc4, truth)
        without = drive_assertions_without_closure(sc3, sc4, truth)
        assert with_closure.questions_asked < without.questions_asked
        assert with_closure.derived_free >= 1


class TestErrorInjection:
    def test_erroneous_answers_raise_conflicts(self, pair):
        _, stats = drive_assertions_with_closure(
            pair.first, pair.second, pair.truth, error_rate=0.4, seed=3
        )
        assert stats.conflicts > 0
        assert stats.conflict_pairs

    def test_baseline_never_notices_errors(self, pair):
        stats = drive_assertions_without_closure(
            pair.first, pair.second, pair.truth, error_rate=0.4, seed=3
        )
        assert stats.conflicts == 0

    def test_detection_grows_with_error_rate(self, pair):
        conflicts = []
        for rate in (0.0, 0.2, 0.6):
            _, stats = drive_assertions_with_closure(
                pair.first, pair.second, pair.truth, error_rate=rate, seed=1
            )
            conflicts.append(stats.conflicts)
        assert conflicts[0] == 0
        assert conflicts[2] >= conflicts[1] >= 0
        assert conflicts[2] > 0
