"""Tests for n-ary integration-order strategies."""

from repro.baselines.strategies import ladder_orders
from repro.ecr.builder import SchemaBuilder


def _schemas():
    return [
        SchemaBuilder("beta").entity("B", attrs=[("id", "char", True)]).build(),
        SchemaBuilder("alpha")
        .entity("A1", attrs=[("id", "char", True)])
        .entity("A2", attrs=[("id", "char", True)])
        .build(),
        SchemaBuilder("gamma").entity("G", attrs=[("id", "char", True)]).build(),
    ]


class TestLadderOrders:
    def test_all_orders_are_permutations(self):
        schemas = _schemas()
        for name, order in ladder_orders(schemas).items():
            assert sorted(s.name for s in order) == sorted(
                s.name for s in schemas
            ), name

    def test_given_preserves_input(self):
        schemas = _schemas()
        assert [s.name for s in ladder_orders(schemas)["given"]] == [
            "beta",
            "alpha",
            "gamma",
        ]

    def test_alphabetical(self):
        schemas = _schemas()
        assert [s.name for s in ladder_orders(schemas)["alphabetical"]] == [
            "alpha",
            "beta",
            "gamma",
        ]

    def test_size_orders(self):
        schemas = _schemas()
        orders = ladder_orders(schemas)
        assert orders["largest_first"][0].name == "alpha"
        assert orders["smallest_first"][-1].name == "alpha"

    def test_shuffles_seeded_and_counted(self):
        schemas = _schemas()
        first = ladder_orders(schemas, seed=4, samples=2)
        second = ladder_orders(schemas, seed=4, samples=2)
        assert [s.name for s in first["shuffled_0"]] == [
            s.name for s in second["shuffled_0"]
        ]
        assert "shuffled_1" in first and "shuffled_2" not in first
