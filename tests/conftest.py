"""Shared fixtures: the paper's schemas, registries, networks and results."""

from __future__ import annotations

import pytest

from repro.assertions.network import AssertionNetwork
from repro.ecr.schema import ObjectRef
from repro.integration.integrator import Integrator
from repro.workloads.university import (
    PAPER_RELATIONSHIP_CODES,
    build_sc1,
    build_sc2,
    build_sc3,
    build_sc4,
    paper_assertions,
    paper_registry,
)


@pytest.fixture
def sc1():
    return build_sc1()


@pytest.fixture
def sc2():
    return build_sc2()


@pytest.fixture
def sc3():
    return build_sc3()


@pytest.fixture
def sc4():
    return build_sc4()


@pytest.fixture
def registry():
    """sc1 + sc2 with the Screen 7 equivalences declared."""
    return paper_registry()


@pytest.fixture
def object_network(registry):
    """The Screen 8 assertions loaded into a network."""
    return paper_assertions(registry)


@pytest.fixture
def relationship_network(registry):
    """The relationship-subphase assertions (Majors equals Majors)."""
    network = AssertionNetwork()
    for schema in registry.schemas():
        for relationship in schema.relationship_sets():
            network.add_object(ObjectRef(schema.name, relationship.name))
    for first, second, code in PAPER_RELATIONSHIP_CODES:
        network.specify(ObjectRef.parse(first), ObjectRef.parse(second), code)
    return network


@pytest.fixture
def paper_result(registry, object_network, relationship_network):
    """The Figure 5 integration result."""
    integrator = Integrator(registry, object_network, relationship_network)
    return integrator.integrate("sc1", "sc2")
