"""Tests for entity sets and categories."""

import pytest

from repro.ecr.attributes import Attribute
from repro.ecr.objects import Category, EntitySet, ObjectKind
from repro.errors import DuplicateNameError, SchemaError, UnknownNameError


class TestEntitySet:
    def test_kind(self):
        entity = EntitySet("Student")
        assert entity.kind is ObjectKind.ENTITY
        assert entity.is_entity_set and not entity.is_category

    def test_duplicate_attribute_rejected_at_construction(self):
        with pytest.raises(DuplicateNameError):
            EntitySet("E", [Attribute("a"), Attribute("a")])

    def test_add_and_remove_attribute(self):
        entity = EntitySet("E")
        entity.add_attribute(Attribute("a"))
        assert entity.has_attribute("a")
        removed = entity.remove_attribute("a")
        assert removed.name == "a"
        assert not entity.has_attribute("a")

    def test_add_duplicate_attribute_rejected(self):
        entity = EntitySet("E", [Attribute("a")])
        with pytest.raises(DuplicateNameError):
            entity.add_attribute(Attribute("a"))

    def test_unknown_attribute_raises(self):
        with pytest.raises(UnknownNameError):
            EntitySet("E").attribute("missing")

    def test_key_attributes(self):
        entity = EntitySet(
            "E", [Attribute("id", "char", True), Attribute("note")]
        )
        assert [a.name for a in entity.key_attributes()] == ["id"]

    def test_attribute_order_preserved(self):
        entity = EntitySet("E", [Attribute("b"), Attribute("a")])
        assert entity.attribute_names() == ["b", "a"]


class TestCategory:
    def test_requires_parent(self):
        with pytest.raises(SchemaError):
            Category("C", parents=[])

    def test_kind(self):
        category = Category("C", parents=["E"])
        assert category.kind is ObjectKind.CATEGORY
        assert category.is_category

    def test_self_parent_rejected(self):
        with pytest.raises(SchemaError):
            Category("C", parents=["C"])

    def test_duplicate_parent_rejected(self):
        with pytest.raises(DuplicateNameError):
            Category("C", parents=["E", "E"])

    def test_multiple_parents_allowed(self):
        category = Category("C", parents=["A", "B"])
        assert category.parents == ["A", "B"]

    def test_add_and_remove_parent(self):
        category = Category("C", parents=["A"])
        category.add_parent("B")
        assert category.parents == ["A", "B"]
        category.remove_parent("A")
        assert category.parents == ["B"]

    def test_cannot_remove_last_parent(self):
        category = Category("C", parents=["A"])
        with pytest.raises(SchemaError):
            category.remove_parent("A")

    def test_remove_unknown_parent(self):
        category = Category("C", parents=["A"])
        with pytest.raises(UnknownNameError):
            category.remove_parent("B")

    def test_add_self_parent_rejected(self):
        category = Category("C", parents=["A"])
        with pytest.raises(SchemaError):
            category.add_parent("C")

    def test_kind_labels(self):
        assert "entity set" in str(EntitySet("E"))
        assert "category" in str(Category("C", parents=["E"]))
