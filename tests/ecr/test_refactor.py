"""Tests for schema-modification (refactoring) operations."""

import pytest

from repro.ecr.builder import SchemaBuilder
from repro.ecr.refactor import (
    demote_entity_to_attribute,
    promote_attribute_to_entity,
    reify_relationship,
)
from repro.ecr.validation import validate_schema
from repro.errors import SchemaError


@pytest.fixture
def schema():
    return (
        SchemaBuilder("s")
        .entity(
            "Employee",
            attrs=[("Ssn", "char", True), ("Name", "char"), ("Dept", "char")],
        )
        .entity("Person", attrs=[("Pid", "char", True)])
        .relationship(
            "Married_to",
            connects=[
                ("Person", "(0,1)", "husband"),
                ("Person", "(0,1)", "wife"),
            ],
            attrs=[("Wedding_date", "date"), ("Location", "char")],
        )
        .build()
    )


class TestPromote:
    def test_promote_creates_entity_and_relationship(self, schema):
        entity = promote_attribute_to_entity(schema, "Employee", "Dept")
        assert entity.name == "Dept"
        assert not schema.get("Employee").has_attribute("Dept")
        assert schema.entity_set("Dept").attribute("Dept").is_key
        relationship = schema.relationship_set("Has_Dept")
        legs = {leg.object_name: str(leg.cardinality) for leg in relationship.participations}
        assert legs == {"Employee": "(1,1)", "Dept": "(0,n)"}
        assert not any(i.is_error for i in validate_schema(schema))

    def test_custom_names(self, schema):
        promote_attribute_to_entity(
            schema, "Employee", "Dept", "Department", "Works_in"
        )
        assert "Department" in schema and "Works_in" in schema

    def test_name_clashes_rejected(self, schema):
        with pytest.raises(SchemaError):
            promote_attribute_to_entity(schema, "Employee", "Dept", "Person")
        # the attribute is untouched on failure
        assert schema.get("Employee").has_attribute("Dept")

    def test_unknown_attribute(self, schema):
        with pytest.raises(Exception):
            promote_attribute_to_entity(schema, "Employee", "Ghost")


class TestDemote:
    def test_demote_is_promote_inverse(self, schema):
        promote_attribute_to_entity(schema, "Employee", "Dept")
        attribute = demote_entity_to_attribute(schema, "Dept", "Has_Dept")
        assert attribute.name == "Dept"
        assert schema.get("Employee").has_attribute("Dept")
        assert "Dept" not in schema.structure_names() or schema.get(
            "Employee"
        ).has_attribute("Dept")
        assert "Has_Dept" not in schema
        assert not any(i.is_error for i in validate_schema(schema))

    def test_requires_single_attribute(self, schema):
        with pytest.raises(SchemaError):
            demote_entity_to_attribute(schema, "Employee", "Married_to")

    def test_requires_connecting_relationship(self, schema):
        promote_attribute_to_entity(schema, "Employee", "Dept")
        with pytest.raises(SchemaError):
            demote_entity_to_attribute(schema, "Dept", "Married_to")

    def test_still_referenced_entity_restores_relationship(self, schema):
        promote_attribute_to_entity(schema, "Employee", "Dept")
        # add a second relationship referencing Dept: demote must refuse
        from repro.ecr.relationships import Participation, RelationshipSet

        schema.add(
            RelationshipSet(
                "Audits",
                participations=[Participation("Person"), Participation("Dept")],
            )
        )
        with pytest.raises(SchemaError):
            demote_entity_to_attribute(schema, "Dept", "Has_Dept")
        assert "Has_Dept" in schema  # restored


class TestReify:
    def test_marriage_example(self, schema):
        entity = reify_relationship(schema, "Married_to", "Marriage")
        assert entity.attribute_names() == ["Wedding_date", "Location"]
        assert "Married_to" not in schema
        husband_link = schema.relationship_set("Marriage_husband")
        assert husband_link.participation_for("Marriage").cardinality.min == 1
        wife_link = schema.relationship_set("Marriage_wife")
        assert wife_link.participation_for("wife").role == "wife"
        assert not any(i.is_error for i in validate_schema(schema))

    def test_default_name(self, schema):
        entity = reify_relationship(schema, "Married_to")
        assert entity.name == "Married_to"

    def test_clash_restores_relationship(self, schema):
        with pytest.raises(SchemaError):
            reify_relationship(schema, "Married_to", "Person")
        assert "Married_to" in schema


class TestCrossRepresentationIntegration:
    def test_reified_marriage_integrates_with_entity_marriage(self):
        """The paper's motivating case solved end to end: one schema models
        marriage as a relationship, the other as an entity; after
        reification the two integrate with an equals assertion."""
        from repro.assertions.network import AssertionNetwork
        from repro.ecr.schema import ObjectRef
        from repro.equivalence.registry import EquivalenceRegistry
        from repro.integration.integrator import integrate_pair

        relational_style = (
            SchemaBuilder("a")
            .entity("Person", attrs=[("Pid", "char", True)])
            .relationship(
                "Marriage",
                connects=[
                    ("Person", "(0,1)", "husband"),
                    ("Person", "(0,1)", "wife"),
                ],
                attrs=[("Wedding_date", "date", True)],
            )
            .build()
        )
        entity_style = (
            SchemaBuilder("b")
            .entity("Citizen", attrs=[("Cid", "char", True)])
            .entity(
                "Marriage",
                attrs=[("Wedding_date", "date", True), ("Children", "integer")],
            )
            .build()
        )
        reify_relationship(relational_style, "Marriage")
        registry = EquivalenceRegistry([relational_style, entity_style])
        registry.declare_equivalent(
            "a.Marriage.Wedding_date", "b.Marriage.Wedding_date"
        )
        network = AssertionNetwork()
        network.seed_schema(relational_style)
        network.seed_schema(entity_style)
        network.specify(
            ObjectRef("a", "Marriage"), ObjectRef("b", "Marriage"), 1
        )
        result = integrate_pair(registry, network, "a", "b")
        merged = result.node_for(ObjectRef("a", "Marriage"))
        assert merged == result.node_for(ObjectRef("b", "Marriage"))
        assert "D_Wedding_date" in result.schema.get(merged).attribute_names()
