"""Tests for JSON serialisation of schemas."""

import pytest

from repro.ecr.domains import Domain, DomainKind
from repro.ecr.json_io import (
    attribute_from_dict,
    attribute_to_dict,
    domain_from_dict,
    domain_to_dict,
    schema_from_dict,
    schema_from_json,
    schema_to_dict,
    schema_to_json,
)
from repro.errors import SchemaError
from repro.workloads.university import build_sc1, build_sc2, build_sc4


class TestDomainDicts:
    def test_minimal(self):
        data = domain_to_dict(Domain(DomainKind.CHAR))
        assert data == {"kind": "char"}

    def test_full(self):
        domain = Domain(DomainKind.INTEGER, low=0, high=9, unit="kg")
        data = domain_to_dict(domain)
        assert domain_from_dict(data) == domain

    def test_enumeration(self):
        domain = Domain(DomainKind.CHAR, values=("a", "b"))
        assert domain_from_dict(domain_to_dict(domain)) == domain

    def test_bad_kind(self):
        with pytest.raises(SchemaError):
            domain_from_dict({"kind": "nope"})

    def test_missing_kind(self):
        with pytest.raises(SchemaError):
            domain_from_dict({})


class TestAttributeDicts:
    def test_roundtrip(self):
        from repro.ecr.attributes import Attribute

        attribute = Attribute("Name", "char(9)", True, "note")
        assert attribute_from_dict(attribute_to_dict(attribute)) == attribute

    def test_compact_when_plain(self):
        from repro.ecr.attributes import Attribute

        data = attribute_to_dict(Attribute("x"))
        assert "is_key" not in data and "description" not in data


class TestSchemaDicts:
    @pytest.mark.parametrize("factory", [build_sc1, build_sc2, build_sc4])
    def test_roundtrip(self, factory):
        schema = factory()
        data = schema_to_dict(schema)
        rebuilt = schema_from_dict(data)
        assert schema_to_dict(rebuilt) == data

    def test_json_string_roundtrip(self):
        schema = build_sc2()
        text = schema_to_json(schema)
        rebuilt = schema_from_json(text)
        assert schema_to_dict(rebuilt) == schema_to_dict(schema)

    def test_structure_order_preserved(self):
        schema = build_sc2()
        rebuilt = schema_from_dict(schema_to_dict(schema))
        assert rebuilt.structure_names() == schema.structure_names()

    def test_unknown_kind_rejected(self):
        with pytest.raises(SchemaError):
            schema_from_dict(
                {"name": "s", "structures": [{"name": "X", "kind": "z"}]}
            )

    def test_missing_name_rejected(self):
        with pytest.raises(SchemaError):
            schema_from_dict({"structures": []})

    def test_participations_roundtrip_with_roles(self):
        from repro.ecr.builder import SchemaBuilder

        schema = (
            SchemaBuilder("s")
            .entity("E", attrs=[("id", "char", True)])
            .relationship(
                "Manages",
                connects=[
                    ("E", "(0,n)", "boss"),
                    ("E", "(1,1)", "minion"),
                ],
            )
            .build()
        )
        rebuilt = schema_from_dict(schema_to_dict(schema))
        relationship = rebuilt.relationship_set("Manages")
        assert relationship.participation_for("boss").role == "boss"
        assert str(relationship.participation_for("minion").cardinality) == "(1,1)"
