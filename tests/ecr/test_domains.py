"""Tests for attribute domains."""

import pytest
from hypothesis import given, strategies as st

from repro.ecr.domains import (
    BUILTIN_DOMAINS,
    Domain,
    DomainKind,
    domain_from_name,
    domains_compatible,
)
from repro.errors import SchemaError


class TestDomainConstruction:
    def test_builtin_domains_cover_every_kind(self):
        kinds = {domain.kind for domain in BUILTIN_DOMAINS.values()}
        assert kinds == set(DomainKind)

    def test_char_length(self):
        domain = Domain(DomainKind.CHAR, length=20)
        assert domain.spelled() == "char(20)"

    def test_length_rejected_on_non_char(self):
        with pytest.raises(SchemaError):
            Domain(DomainKind.INTEGER, length=5)

    def test_non_positive_length_rejected(self):
        with pytest.raises(SchemaError):
            Domain(DomainKind.CHAR, length=0)

    def test_enumerated_domain(self):
        domain = Domain(DomainKind.CHAR, values=("MS", "PHD"))
        assert domain.is_enumerated
        assert domain.spelled() == "char{MS,PHD}"

    def test_numeric_range(self):
        domain = Domain(DomainKind.INTEGER, low=0, high=120)
        assert domain.is_bounded
        assert domain.spelled() == "integer[0..120]"

    def test_range_on_char_rejected(self):
        with pytest.raises(SchemaError):
            Domain(DomainKind.CHAR, low=0, high=1)

    def test_empty_range_rejected(self):
        with pytest.raises(SchemaError):
            Domain(DomainKind.REAL, low=5, high=1)

    def test_unit_is_kept_and_spelled(self):
        domain = Domain(DomainKind.REAL, unit="USD")
        assert domain.spelled() == "real USD"


class TestDomainParsing:
    @pytest.mark.parametrize(
        "text,kind",
        [
            ("char", DomainKind.CHAR),
            ("string", DomainKind.CHAR),
            ("int", DomainKind.INTEGER),
            ("integer", DomainKind.INTEGER),
            ("real", DomainKind.REAL),
            ("float", DomainKind.REAL),
            ("date", DomainKind.DATE),
            ("bool", DomainKind.BOOLEAN),
        ],
    )
    def test_aliases(self, text, kind):
        assert domain_from_name(text).kind is kind

    def test_parse_char_length(self):
        assert domain_from_name("char(30)").length == 30

    def test_parse_enumeration(self):
        domain = domain_from_name("char{a,b,c}")
        assert domain.values == ("a", "b", "c")

    def test_parse_range(self):
        domain = domain_from_name("int[0..10]")
        assert (domain.low, domain.high) == (0.0, 10.0)

    def test_parse_open_range(self):
        domain = domain_from_name("real[..100]")
        assert domain.low is None and domain.high == 100.0

    def test_parse_unit(self):
        domain = domain_from_name("real USD")
        assert domain.unit == "USD"

    def test_parse_roundtrips_spelling(self):
        for text in ("char(12)", "integer[1..9]", "char{x,y}", "real"):
            assert domain_from_name(text).spelled() == text

    @pytest.mark.parametrize("bad", ["", "unknownkind", "char(x)", "int[1..]..", "char{}"])
    def test_bad_spellings_rejected(self, bad):
        with pytest.raises(SchemaError):
            domain_from_name(bad)


class TestMembership:
    def test_char_membership(self):
        assert domain_from_name("char(3)").contains_value("ab")
        assert not domain_from_name("char(3)").contains_value("abcd")
        assert not domain_from_name("char").contains_value(42)

    def test_integer_membership(self):
        domain = domain_from_name("int[0..10]")
        assert domain.contains_value(5)
        assert not domain.contains_value(-1)
        assert not domain.contains_value(11)
        assert not domain.contains_value(True)  # bools are not ints here

    def test_enumeration_membership(self):
        domain = domain_from_name("char{MS,PHD}")
        assert domain.contains_value("MS")
        assert not domain.contains_value("BS")

    def test_boolean_membership(self):
        domain = BUILTIN_DOMAINS["boolean"]
        assert domain.contains_value(True)
        assert not domain.contains_value("true")


class TestCompatibility:
    def test_same_kind_compatible(self):
        assert domains_compatible(
            domain_from_name("char(5)"), domain_from_name("char(99)")
        )

    def test_numeric_kinds_compatible(self):
        assert domains_compatible(
            domain_from_name("int"), domain_from_name("real")
        )

    def test_char_and_int_incompatible(self):
        assert not domains_compatible(
            domain_from_name("char"), domain_from_name("int")
        )

    def test_date_and_boolean_incompatible(self):
        assert not domains_compatible(
            domain_from_name("date"), domain_from_name("bool")
        )


@given(st.sampled_from(list(DomainKind)), st.sampled_from(list(DomainKind)))
def test_compatibility_is_symmetric(kind_a, kind_b):
    first, second = Domain(kind_a), Domain(kind_b)
    assert domains_compatible(first, second) == domains_compatible(second, first)
