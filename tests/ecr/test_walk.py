"""Tests for IS-A traversal utilities."""

import pytest

from repro.ecr.attributes import Attribute
from repro.ecr.builder import SchemaBuilder
from repro.ecr.objects import Category
from repro.ecr.walk import (
    common_ancestors,
    direct_children,
    direct_parents,
    inherited_attributes,
    isa_depth,
    isa_edges,
    leaf_classes,
    root_classes,
    subclass_closure,
    superclass_closure,
    topological_order,
)
from repro.errors import SchemaError


@pytest.fixture
def lattice():
    """A -> B -> D, A -> C -> D (diamond), plus lone E."""
    return (
        SchemaBuilder("s")
        .entity("D", attrs=[("key", "char", True), ("base", "char")])
        .entity("E", attrs=[("key", "char", True)])
        .category("B", of="D", attrs=["b_extra"])
        .category("C", of="D", attrs=["c_extra"])
        .category("A", of=["B", "C"], attrs=["a_extra"])
        .build()
    )


class TestClosures:
    def test_direct_parents_and_children(self, lattice):
        assert direct_parents(lattice, "A") == ["B", "C"]
        assert direct_parents(lattice, "D") == []
        assert direct_children(lattice, "D") == ["B", "C"]

    def test_superclass_closure_diamond(self, lattice):
        assert superclass_closure(lattice, "A") == ["B", "C", "D"]

    def test_subclass_closure(self, lattice):
        assert subclass_closure(lattice, "D") == ["B", "C", "A"]

    def test_closures_of_leaf_and_root(self, lattice):
        assert superclass_closure(lattice, "D") == []
        assert subclass_closure(lattice, "A") == []

    def test_cycle_detected(self):
        schema = SchemaBuilder("s").entity("X").build()
        schema.add(Category("Y", parents=["X"]))
        # Force a cycle by hand (the validator would reject this schema).
        schema.add(Category("Z", parents=["Y"]))
        schema.category("Y").parents.append("Z")
        with pytest.raises(SchemaError):
            superclass_closure(schema, "Y")


class TestInheritance:
    def test_inherited_attributes_order_and_shadowing(self, lattice):
        names = [a.name for a in inherited_attributes(lattice, "A")]
        assert names == ["a_extra", "b_extra", "c_extra", "key", "base"]

    def test_inherited_key_flag_cleared(self, lattice):
        attributes = {a.name: a for a in inherited_attributes(lattice, "B")}
        assert not attributes["key"].is_key

    def test_local_attribute_shadows_inherited(self):
        schema = (
            SchemaBuilder("s")
            .entity("P", attrs=[("x", "char")])
            .build(validate=False)
        )
        schema.add(Category("Q", [Attribute("x", "integer")], parents=["P"]))
        attributes = inherited_attributes(schema, "Q")
        assert len(attributes) == 1
        assert attributes[0].domain.kind.value == "integer"


class TestStructure:
    def test_roots_and_leaves(self, lattice):
        assert root_classes(lattice) == ["D", "E"]
        assert leaf_classes(lattice) == ["E", "A"]

    def test_isa_depth(self, lattice):
        assert isa_depth(lattice, "D") == 0
        assert isa_depth(lattice, "B") == 1
        assert isa_depth(lattice, "A") == 2

    def test_isa_edges(self, lattice):
        assert set(isa_edges(lattice)) == {
            ("B", "D"),
            ("C", "D"),
            ("A", "B"),
            ("A", "C"),
        }

    def test_topological_order(self, lattice):
        order = topological_order(lattice)
        assert order.index("D") < order.index("B") < order.index("A")
        assert order.index("C") < order.index("A")

    def test_common_ancestors(self, lattice):
        assert common_ancestors(lattice, ["B", "C"]) == ["D"]
        assert common_ancestors(lattice, ["A", "B"]) == ["B", "D"]
        assert common_ancestors(lattice, ["A", "E"]) == []
        assert common_ancestors(lattice, []) == []
