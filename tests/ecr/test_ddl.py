"""Tests for the ECR DDL parser and printer."""

import pytest

from repro.ecr.ddl import parse_ddl, parse_ddl_schemas, to_ddl
from repro.ecr.json_io import schema_to_dict
from repro.errors import DdlError
from repro.workloads.university import build_sc1, build_sc2

SAMPLE = """
# the paper's sc1
schema sc1 "student registration view"
  entity Student
    attr Name : char key
    attr GPA : real
  entity Department
    attr Name : char key
  relationship Majors
    attr Since : date
    connects Student (1,1)
    connects Department (0,n)
  category Grad_student of Student
    attr Support_type : char
"""


class TestParsing:
    def test_parse_sample(self):
        schema = parse_ddl(SAMPLE)
        assert schema.name == "sc1"
        assert schema.description == "student registration view"
        assert schema.entity_set("Student").attribute("Name").is_key
        assert schema.category("Grad_student").parents == ["Student"]
        majors = schema.relationship_set("Majors")
        assert majors.participant_names() == ["Student", "Department"]
        assert str(majors.participation_for("Student").cardinality) == "(1,1)"

    def test_comments_and_blanks_ignored(self):
        schema = parse_ddl("# hi\n\nschema s\n  entity A # trailing\n")
        assert "A" in schema

    def test_multiple_schemas(self):
        schemas = parse_ddl_schemas("schema a\n entity X\nschema b\n entity Y\n")
        assert [s.name for s in schemas] == ["a", "b"]

    def test_parse_ddl_requires_exactly_one(self):
        with pytest.raises(DdlError):
            parse_ddl("schema a\nschema b\n")
        with pytest.raises(DdlError):
            parse_ddl("")

    def test_category_with_multiple_parents(self):
        schema = parse_ddl(
            "schema s\n entity A\n entity B\n category C of A, B\n"
        )
        assert schema.category("C").parents == ["A", "B"]

    def test_connects_with_role(self):
        schema = parse_ddl(
            "schema s\n entity E\n relationship R\n"
            "  connects E (0,n) as boss\n  connects E (1,1) as minion\n"
        )
        relationship = schema.relationship_set("R")
        assert relationship.participation_for("boss").role == "boss"

    def test_connects_default_cardinality(self):
        schema = parse_ddl(
            "schema s\n entity A\n entity B\n relationship R\n"
            "  connects A\n  connects B\n"
        )
        assert schema.relationship_set("R").participation_for("A").cardinality.is_many


class TestErrorsCarryLineNumbers:
    @pytest.mark.parametrize(
        "text,fragment",
        [
            ("entity A\n", "before any 'schema'"),
            ("schema s\n  attr x : char\n", "outside any structure"),
            ("schema s\n  entity A\n  connects A (1,1)\n", "outside any relationship"),
            ("schema s\n  wibble A\n", "unknown declaration"),
            ("schema s\n  category C\n", "category must be"),
            ("schema s\n  entity A\n  attr broken\n", "attr must be"),
            ("schema s\n  entity A\n  entity A\n", "duplicate"),
            ("schema\n", "schema needs a name"),
        ],
    )
    def test_messages(self, text, fragment):
        with pytest.raises(DdlError) as excinfo:
            parse_ddl_schemas(text)
        assert fragment in str(excinfo.value)

    def test_line_number_reported(self):
        with pytest.raises(DdlError) as excinfo:
            parse_ddl_schemas("schema s\n  entity A\n  wibble\n")
        assert "line 3" in str(excinfo.value)


class TestRoundTrip:
    @pytest.mark.parametrize("factory", [build_sc1, build_sc2])
    def test_paper_schemas_roundtrip(self, factory):
        schema = factory()
        text = to_ddl(schema)
        reparsed = parse_ddl(text)
        assert schema_to_dict(reparsed) == schema_to_dict(schema)

    def test_canonical_output_is_stable(self):
        schema = parse_ddl(SAMPLE)
        once = to_ddl(schema)
        twice = to_ddl(parse_ddl(once))
        assert once == twice

    def test_description_quoted(self):
        schema = parse_ddl('schema s "has description"\n entity A "entity note"\n')
        text = to_ddl(schema)
        assert '"has description"' in text
        assert '"entity note"' in text
