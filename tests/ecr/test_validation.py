"""Tests for schema validation."""

import pytest

from repro.ecr.attributes import Attribute
from repro.ecr.builder import SchemaBuilder
from repro.ecr.objects import Category, EntitySet
from repro.ecr.relationships import Participation, RelationshipSet
from repro.ecr.schema import Schema
from repro.ecr.validation import (
    Severity,
    assert_valid,
    is_valid,
    validate_schema,
)
from repro.errors import ValidationError


def _issues_for(schema, structure):
    return [issue for issue in validate_schema(schema) if issue.structure == structure]


class TestErrors:
    def test_dangling_category_parent(self):
        schema = Schema("s")
        schema.add(Category("C", parents=["Ghost"]))
        issues = _issues_for(schema, "C")
        assert any("does not exist" in issue.message for issue in issues)
        assert not is_valid(schema)

    def test_category_over_relationship_rejected(self):
        schema = Schema("s")
        schema.add(EntitySet("A"))
        schema.add(EntitySet("B"))
        schema.add(
            RelationshipSet(
                "R", participations=[Participation("A"), Participation("B")]
            )
        )
        schema.add(Category("C", parents=["R"]))
        issues = _issues_for(schema, "C")
        assert any("relationship set" in issue.message for issue in issues)

    def test_isa_cycle(self):
        schema = Schema("s")
        schema.add(EntitySet("A"))
        schema.add(Category("X", parents=["A"]))
        schema.add(Category("Y", parents=["X"]))
        schema.category("X").parents.append("Y")
        assert any(
            "cycle" in issue.message for issue in validate_schema(schema)
        )

    def test_dangling_relationship_participant(self):
        schema = Schema("s")
        schema.add(EntitySet("A"))
        schema.add(
            RelationshipSet(
                "R", participations=[Participation("A"), Participation("Ghost")]
            )
        )
        issues = _issues_for(schema, "R")
        assert any("does not exist" in issue.message for issue in issues)

    def test_unary_relationship(self):
        schema = Schema("s")
        schema.add(EntitySet("A"))
        schema.add(RelationshipSet("R", participations=[Participation("A")]))
        issues = _issues_for(schema, "R")
        assert any("at least two legs" in issue.message for issue in issues)

    def test_assert_valid_raises_with_issues(self):
        schema = Schema("s")
        schema.add(Category("C", parents=["Ghost"]))
        with pytest.raises(ValidationError) as excinfo:
            assert_valid(schema)
        assert excinfo.value.issues


class TestWarnings:
    def test_entity_without_key_is_warning_only(self):
        schema = Schema("s")
        schema.add(EntitySet("A", [Attribute("x")]))
        issues = validate_schema(schema)
        assert issues and all(
            issue.severity is Severity.WARNING for issue in issues
        )
        assert is_valid(schema)
        assert_valid(schema)  # warnings do not raise

    def test_attribute_shadowing_warning(self):
        schema = (
            SchemaBuilder("s")
            .entity("P", attrs=[("x", "char", True)])
            .build()
        )
        schema.add(Category("Q", [Attribute("x")], parents=["P"]))
        issues = _issues_for(schema, "Q")
        assert any("shadows" in issue.message for issue in issues)
        assert is_valid(schema)

    def test_clean_schema_has_no_issues(self):
        schema = (
            SchemaBuilder("s")
            .entity("A", attrs=[("id", "char", True)])
            .entity("B", attrs=[("id", "char", True)])
            .category("C", of="A", attrs=["extra"])
            .relationship("R", connects=["A", "B"])
            .build()
        )
        assert validate_schema(schema) == []

    def test_issue_str_mentions_severity(self):
        schema = Schema("s")
        schema.add(EntitySet("A", [Attribute("x")]))
        issue = validate_schema(schema)[0]
        assert str(issue).startswith("[warning]")

    def test_paper_schemas_are_clean(self):
        from repro.workloads.university import build_sc1, build_sc2

        assert validate_schema(build_sc1()) == []
        assert validate_schema(build_sc2()) == []
