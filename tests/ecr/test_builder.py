"""Tests for the fluent schema builder."""

import pytest

from repro.ecr.attributes import Attribute
from repro.ecr.builder import SchemaBuilder, make_attribute, make_participation
from repro.ecr.domains import DomainKind
from repro.ecr.relationships import CardinalityConstraint, Participation
from repro.errors import SchemaError, ValidationError


class TestAttrSpecs:
    def test_plain_name(self):
        assert make_attribute("Name").name == "Name"

    def test_pair_with_domain_spelling(self):
        attribute = make_attribute(("GPA", "real"))
        assert attribute.domain.kind is DomainKind.REAL

    def test_triple_with_key(self):
        assert make_attribute(("Id", "char", True)).is_key

    def test_ready_attribute_passthrough(self):
        ready = Attribute("x")
        assert make_attribute(ready) is ready

    @pytest.mark.parametrize("bad", [(), ("a", "char", True, "extra"), (1,)])
    def test_bad_specs(self, bad):
        with pytest.raises(SchemaError):
            make_attribute(bad)

    def test_bad_domain_in_spec(self):
        with pytest.raises(SchemaError):
            make_attribute(("a", 3.14))


class TestConnectSpecs:
    def test_plain_name(self):
        leg = make_participation("Student")
        assert leg.object_name == "Student"
        assert leg.cardinality.is_many

    def test_cardinality_string(self):
        leg = make_participation(("Student", "(1,1)"))
        assert leg.cardinality == CardinalityConstraint(1, 1)

    def test_cardinality_tuple(self):
        leg = make_participation(("Student", (0, 2)))
        assert leg.cardinality == CardinalityConstraint(0, 2)

    def test_role(self):
        leg = make_participation(("Employee", "(0,n)", "manager"))
        assert leg.role == "manager"

    def test_passthrough(self):
        ready = Participation("X")
        assert make_participation(ready) is ready

    @pytest.mark.parametrize("bad", [(), (1, "(1,1)"), ("A", object())])
    def test_bad_specs(self, bad):
        with pytest.raises(SchemaError):
            make_participation(bad)


class TestBuilder:
    def test_full_schema(self):
        schema = (
            SchemaBuilder("s", "demo")
            .entity("A", attrs=[("id", "char", True)])
            .entity("B", attrs=[("id", "char", True)])
            .category("C", of="A", attrs=["extra"])
            .category("D", of=["A", "B"])
            .relationship("R", connects=[("A", "(1,1)"), ("B", "(0,n)")])
            .build()
        )
        assert schema.description == "demo"
        assert len(schema.entity_sets()) == 2
        assert schema.category("D").parents == ["A", "B"]
        assert schema.relationship_set("R").degree == 2

    def test_relationship_needs_two_legs(self):
        builder = SchemaBuilder("s").entity("A")
        with pytest.raises(SchemaError):
            builder.relationship("R", connects=[("A", "(1,1)")])

    def test_build_validates(self):
        builder = SchemaBuilder("s").category("C", of="Ghost")
        with pytest.raises(ValidationError):
            builder.build()

    def test_build_without_validation(self):
        schema = SchemaBuilder("s").category("C", of="Ghost").build(validate=False)
        assert "C" in schema
