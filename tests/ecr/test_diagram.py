"""Tests for ASCII and DOT diagram rendering."""

from repro.ecr.diagram import ascii_diagram, dot_diagram, side_by_side
from repro.workloads.university import build_sc1, build_sc2


class TestAsciiDiagram:
    def test_contains_every_structure(self):
        text = ascii_diagram(build_sc2())
        for name in ("Grad_student", "Faculty", "Department", "Majors", "Works"):
            assert name in text

    def test_keys_starred(self):
        text = ascii_diagram(build_sc1())
        assert "*Name" in text
        assert "*GPA" not in text

    def test_category_arrow(self):
        from repro.ecr.builder import SchemaBuilder

        schema = (
            SchemaBuilder("s")
            .entity("A", attrs=[("id", "char", True)])
            .category("B", of="A")
            .build()
        )
        assert "--isa-->" in ascii_diagram(schema)

    def test_frame_is_closed(self):
        lines = ascii_diagram(build_sc1()).splitlines()
        assert lines[0].startswith("+") and lines[-1].startswith("+")
        assert all(line.startswith(("|", "+")) for line in lines)

    def test_cardinalities_shown(self):
        text = ascii_diagram(build_sc1())
        assert "(1,1)" in text and "(0,n)" in text


class TestDotDiagram:
    def test_shapes(self):
        text = dot_diagram(build_sc2())
        assert "shape=box" in text
        assert "shape=diamond" in text

    def test_isa_edge_for_category(self):
        from repro.ecr.builder import SchemaBuilder

        schema = (
            SchemaBuilder("s")
            .entity("A", attrs=[("id", "char", True)])
            .category("B", of="A")
            .build()
        )
        assert '"B" -> "A" [label="isa"]' in dot_diagram(schema)

    def test_participation_edges_with_cardinality(self):
        text = dot_diagram(build_sc1())
        assert '"Majors" -> "Student"' in text
        assert "(1,1)" in text

    def test_valid_digraph_syntax(self):
        text = dot_diagram(build_sc1())
        assert text.startswith('digraph "sc1" {')
        assert text.rstrip().endswith("}")


class TestSideBySide:
    def test_combines_two_diagrams(self):
        left = ascii_diagram(build_sc1())
        right = ascii_diagram(build_sc2())
        combined = side_by_side(left, right)
        first_line = combined.splitlines()[0]
        assert "sc1" in first_line and "sc2" in first_line

    def test_uneven_heights(self):
        combined = side_by_side("a\nb\nc\n", "x\n")
        assert combined.splitlines()[2].strip() == "c"
