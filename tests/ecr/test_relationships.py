"""Tests for relationship sets and cardinality constraints."""

import pytest
from hypothesis import given, strategies as st

from repro.ecr.relationships import (
    CARDINALITY_MANY,
    CardinalityConstraint,
    Participation,
    RelationshipSet,
)
from repro.errors import DuplicateNameError, SchemaError, UnknownNameError


class TestCardinalityConstraint:
    def test_paper_rules(self):
        # 0 <= i1 <= i2 and i2 > 0
        CardinalityConstraint(0, 1)
        CardinalityConstraint(1, 1)
        with pytest.raises(SchemaError):
            CardinalityConstraint(-1, 1)
        with pytest.raises(SchemaError):
            CardinalityConstraint(2, 1)
        with pytest.raises(SchemaError):
            CardinalityConstraint(0, 0)

    def test_many(self):
        constraint = CardinalityConstraint(0, CARDINALITY_MANY)
        assert constraint.is_many
        assert constraint.spelled() == "(0,n)"

    def test_mandatory(self):
        assert CardinalityConstraint(1, 1).is_mandatory
        assert not CardinalityConstraint(0, 1).is_mandatory

    def test_admits(self):
        constraint = CardinalityConstraint(1, 3)
        assert not constraint.admits(0)
        assert constraint.admits(1)
        assert constraint.admits(3)
        assert not constraint.admits(4)

    def test_admits_unbounded(self):
        assert CardinalityConstraint(0).admits(10_000)

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("(1,1)", CardinalityConstraint(1, 1)),
            ("(0,n)", CardinalityConstraint(0, CARDINALITY_MANY)),
            ("0,N", CardinalityConstraint(0, CARDINALITY_MANY)),
            ("(2, 5)", CardinalityConstraint(2, 5)),
            ("1,*", CardinalityConstraint(1, CARDINALITY_MANY)),
        ],
    )
    def test_parse(self, text, expected):
        assert CardinalityConstraint.parse(text) == expected

    @pytest.mark.parametrize("bad", ["", "(1)", "(a,b)", "(1,2,3)", "(1,x)"])
    def test_parse_rejects(self, bad):
        with pytest.raises(SchemaError):
            CardinalityConstraint.parse(bad)

    def test_intersect(self):
        tight = CardinalityConstraint(1, 2).intersect(CardinalityConstraint(0, 5))
        assert tight == CardinalityConstraint(1, 2)

    def test_intersect_with_many(self):
        got = CardinalityConstraint(0).intersect(CardinalityConstraint(1, 3))
        assert got == CardinalityConstraint(1, 3)

    def test_intersect_contradiction(self):
        with pytest.raises(SchemaError):
            CardinalityConstraint(3, 5).intersect(CardinalityConstraint(1, 2))

    def test_union(self):
        loose = CardinalityConstraint(1, 2).union(CardinalityConstraint(0, 5))
        assert loose == CardinalityConstraint(0, 5)

    def test_union_with_many(self):
        assert CardinalityConstraint(1, 2).union(CardinalityConstraint(0)).is_many


@given(
    st.integers(0, 5), st.integers(1, 8), st.integers(0, 5), st.integers(1, 8)
)
def test_union_admits_everything_either_admits(a_min, a_span, b_min, b_span):
    first = CardinalityConstraint(a_min, a_min + a_span)
    second = CardinalityConstraint(b_min, b_min + b_span)
    union = first.union(second)
    for count in range(0, 20):
        if first.admits(count) or second.admits(count):
            assert union.admits(count)


class TestParticipation:
    def test_label_defaults_to_object(self):
        assert Participation("Student").label == "Student"

    def test_role_overrides_label(self):
        leg = Participation("Employee", role="manager")
        assert leg.label == "manager"

    def test_str(self):
        leg = Participation("Employee", CardinalityConstraint(0, 1), "manager")
        assert str(leg) == "Employee as manager (0,1)"


class TestRelationshipSet:
    def test_degree_and_participants(self):
        relationship = RelationshipSet(
            "Majors",
            participations=[Participation("Student"), Participation("Department")],
        )
        assert relationship.degree == 2
        assert relationship.participant_names() == ["Student", "Department"]
        assert relationship.connects("Student")
        assert not relationship.connects("Course")

    def test_duplicate_leg_label_rejected(self):
        with pytest.raises(DuplicateNameError):
            RelationshipSet(
                "R",
                participations=[Participation("A"), Participation("A")],
            )

    def test_same_object_twice_with_roles(self):
        relationship = RelationshipSet(
            "Manages",
            participations=[
                Participation("Employee", role="manager"),
                Participation("Employee", role="subordinate"),
            ],
        )
        assert relationship.degree == 2

    def test_add_remove_participation(self):
        relationship = RelationshipSet(
            "R", participations=[Participation("A"), Participation("B")]
        )
        relationship.add_participation(Participation("C"))
        assert relationship.degree == 3
        relationship.remove_participation("C")
        assert relationship.degree == 2
        with pytest.raises(UnknownNameError):
            relationship.remove_participation("C")

    def test_replace_participant(self):
        relationship = RelationshipSet(
            "R", participations=[Participation("A"), Participation("B")]
        )
        changed = relationship.replace_participant("A", "E_A")
        assert changed == 1
        assert relationship.participant_names() == ["E_A", "B"]
        assert relationship.replace_participant("missing", "X") == 0
