"""Tests for attributes and qualified attribute references."""

import pytest

from repro.ecr.attributes import Attribute, AttributeRef, check_identifier
from repro.ecr.domains import DomainKind
from repro.errors import SchemaError


class TestIdentifiers:
    @pytest.mark.parametrize(
        "name", ["Student", "Grad_student", "D_or_M", "a1", "_x"]
    )
    def test_valid_identifiers(self, name):
        assert check_identifier(name, "test") == name

    @pytest.mark.parametrize("name", ["", "1abc", "with space", "a-b", "a.b"])
    def test_invalid_identifiers(self, name):
        with pytest.raises(SchemaError):
            check_identifier(name, "test")


class TestAttribute:
    def test_defaults(self):
        attribute = Attribute("Name")
        assert attribute.domain.kind is DomainKind.CHAR
        assert not attribute.is_key

    def test_domain_spelling_accepted(self):
        attribute = Attribute("GPA", "real")
        assert attribute.domain.kind is DomainKind.REAL

    def test_bad_domain_type_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("x", 42)

    def test_renamed_preserves_rest(self):
        attribute = Attribute("Name", "char", True)
        renamed = attribute.renamed("Full_name")
        assert renamed.name == "Full_name"
        assert renamed.is_key
        assert renamed.domain == attribute.domain

    def test_as_non_key(self):
        keyed = Attribute("Id", "char", True)
        assert not keyed.as_non_key().is_key
        plain = Attribute("Note")
        assert plain.as_non_key() is plain

    def test_str_shows_key(self):
        assert str(Attribute("Name", "char", True)) == "Name : char key"


class TestAttributeRef:
    def test_parse_and_str_roundtrip(self):
        ref = AttributeRef.parse("sc1.Student.Name")
        assert ref == AttributeRef("sc1", "Student", "Name")
        assert str(ref) == "sc1.Student.Name"

    @pytest.mark.parametrize("bad", ["", "a.b", "a.b.c.d", "a..c"])
    def test_parse_rejects_bad_forms(self, bad):
        with pytest.raises(SchemaError):
            AttributeRef.parse(bad)

    def test_owner(self):
        assert AttributeRef("s", "O", "a").owner == ("s", "O")

    def test_ordering_is_lexicographic(self):
        refs = [
            AttributeRef("sc2", "A", "x"),
            AttributeRef("sc1", "B", "y"),
            AttributeRef("sc1", "A", "z"),
        ]
        ordered = sorted(refs)
        assert [str(r) for r in ordered] == [
            "sc1.A.z",
            "sc1.B.y",
            "sc2.A.x",
        ]
