"""Tests for the Schema container."""

import pytest

from repro.ecr.attributes import Attribute, AttributeRef
from repro.ecr.objects import Category, EntitySet
from repro.ecr.relationships import Participation, RelationshipSet
from repro.ecr.schema import ObjectRef, Schema
from repro.errors import DuplicateNameError, SchemaError, UnknownNameError


@pytest.fixture
def schema():
    s = Schema("s")
    s.add(EntitySet("A"))
    s.add(EntitySet("B"))
    s.add(Category("C", parents=["A"]))
    s.add(
        RelationshipSet(
            "R", participations=[Participation("A"), Participation("B")]
        )
    )
    return s


class TestObjectRef:
    def test_parse_roundtrip(self):
        ref = ObjectRef.parse("sc1.Student")
        assert str(ref) == "sc1.Student"

    @pytest.mark.parametrize("bad", ["", "one", "a.b.c", ".b"])
    def test_parse_rejects(self, bad):
        with pytest.raises(SchemaError):
            ObjectRef.parse(bad)

    def test_attribute_qualification(self):
        ref = ObjectRef("s", "A").attribute("x")
        assert str(ref) == "s.A.x"


class TestMembership:
    def test_shared_namespace(self, schema):
        with pytest.raises(DuplicateNameError):
            schema.add(RelationshipSet("A"))

    def test_contains_and_len(self, schema):
        assert "A" in schema and "missing" not in schema
        assert len(schema) == 4

    def test_kind_accessors(self, schema):
        assert [e.name for e in schema.entity_sets()] == ["A", "B"]
        assert [c.name for c in schema.categories()] == ["C"]
        assert [r.name for r in schema.relationship_sets()] == ["R"]
        assert [o.name for o in schema.object_classes()] == ["A", "B", "C"]

    def test_typed_getters_check_kind(self, schema):
        assert schema.entity_set("A").name == "A"
        with pytest.raises(UnknownNameError):
            schema.entity_set("C")
        with pytest.raises(UnknownNameError):
            schema.category("A")
        with pytest.raises(UnknownNameError):
            schema.relationship_set("A")
        with pytest.raises(UnknownNameError):
            schema.object_class("R")

    def test_get_unknown(self, schema):
        with pytest.raises(UnknownNameError):
            schema.get("missing")


class TestMutation:
    def test_remove_refuses_referenced_structure(self, schema):
        with pytest.raises(SchemaError):
            schema.remove("A")  # parent of C and participant of R

    def test_remove_leaf(self, schema):
        schema.remove("R")
        schema.remove("C")
        schema.remove("A")
        assert "A" not in schema

    def test_add_all_is_atomic(self, schema):
        with pytest.raises(DuplicateNameError):
            schema.add_all([EntitySet("X"), EntitySet("A")])
        assert "X" not in schema

    def test_add_all_rejects_internal_duplicates(self):
        schema = Schema("s")
        with pytest.raises(DuplicateNameError):
            schema.add_all([EntitySet("X"), EntitySet("X")])

    def test_rename_updates_references(self, schema):
        schema.rename("A", "Alpha")
        assert "Alpha" in schema and "A" not in schema
        assert schema.category("C").parents == ["Alpha"]
        assert schema.relationship_set("R").connects("Alpha")

    def test_rename_to_existing_rejected(self, schema):
        with pytest.raises(DuplicateNameError):
            schema.rename("A", "B")

    def test_rename_noop(self, schema):
        schema.rename("A", "A")
        assert "A" in schema


class TestReferences:
    def test_ref_checks_existence(self, schema):
        assert schema.ref("A") == ObjectRef("s", "A")
        with pytest.raises(UnknownNameError):
            schema.ref("missing")

    def test_attribute_refs(self):
        schema = Schema("s")
        schema.add(EntitySet("A", [Attribute("x")]))
        assert schema.attribute_refs("A") == [AttributeRef("s", "A", "x")]
        assert schema.all_attribute_refs() == [AttributeRef("s", "A", "x")]

    def test_resolve_attribute_wrong_schema(self, schema):
        with pytest.raises(UnknownNameError):
            schema.resolve_attribute(AttributeRef("other", "A", "x"))


class TestCopyAndSummary:
    def test_copy_is_deep(self, schema):
        clone = schema.copy()
        clone.get("A").add_attribute(Attribute("n"))
        assert not schema.get("A").has_attribute("n")

    def test_copy_renames(self, schema):
        assert schema.copy("t").name == "t"

    def test_summary_counts(self, schema):
        assert "2 entities" in schema.summary()
        assert "1 categories" in schema.summary()
        assert "1 relationships" in schema.summary()
