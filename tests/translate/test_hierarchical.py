"""Tests for the hierarchical → ECR translator."""

import pytest

from repro.ecr.validation import validate_schema
from repro.errors import TranslationError
from repro.translate.hierarchical import (
    Field,
    HierarchicalSchema,
    RecordType,
    translate_hierarchical,
)


@pytest.fixture
def ims():
    return HierarchicalSchema(
        "ims",
        [
            RecordType("Dept", [Field("Dno", "char", True), Field("Dname")]),
            RecordType("Emp", [Field("Eno", "char", True)], parent="Dept"),
            RecordType("Dependent", [Field("Dep_name")], parent="Emp"),
            RecordType(
                "Project",
                [Field("Pno", "char", True)],
                parent="Dept",
                virtual_parents=["Emp"],
            ),
        ],
    )


class TestTranslation:
    def test_records_become_entities(self, ims):
        schema = translate_hierarchical(ims)
        assert {e.name for e in schema.entity_sets()} == {
            "Dept",
            "Emp",
            "Dependent",
            "Project",
        }

    def test_parent_child_relationships(self, ims):
        schema = translate_hierarchical(ims)
        rel = schema.relationship_set("Dept_Emp")
        legs = {leg.object_name: str(leg.cardinality) for leg in rel.participations}
        assert legs == {"Dept": "(0,n)", "Emp": "(1,1)"}

    def test_virtual_parent_gets_own_relationship(self, ims):
        schema = translate_hierarchical(ims)
        assert "Dept_Project" in schema
        assert "Emp_Project_v1" in schema

    def test_first_field_keyed_when_no_explicit_key(self, ims):
        schema = translate_hierarchical(ims)
        dependent = schema.entity_set("Dependent")
        assert dependent.attribute("Dep_name").is_key

    def test_explicit_key_respected(self, ims):
        schema = translate_hierarchical(ims)
        dept = schema.entity_set("Dept")
        assert dept.attribute("Dno").is_key
        assert not dept.attribute("Dname").is_key

    def test_result_is_valid(self, ims):
        schema = translate_hierarchical(ims)
        assert not any(i.is_error for i in validate_schema(schema))


class TestErrors:
    def test_unknown_parent(self):
        source = HierarchicalSchema(
            "h", [RecordType("A", [Field("x")], parent="Ghost")]
        )
        with pytest.raises(TranslationError):
            translate_hierarchical(source)

    def test_parent_cycle(self):
        source = HierarchicalSchema(
            "h",
            [
                RecordType("A", [Field("x")], parent="B"),
                RecordType("B", [Field("y")], parent="A"),
            ],
        )
        with pytest.raises(TranslationError):
            translate_hierarchical(source)

    def test_record_without_fields(self):
        source = HierarchicalSchema("h", [RecordType("A", [])])
        with pytest.raises(TranslationError):
            translate_hierarchical(source)

    def test_record_lookup(self):
        source = HierarchicalSchema("h", [RecordType("A", [Field("x")])])
        assert source.record("A").name == "A"
        with pytest.raises(TranslationError):
            source.record("Ghost")


class TestPipelineIntegrationOfTranslatedSchemas:
    def test_translated_schema_feeds_the_integrator(self, ims):
        """The future-work pipeline: translate, then integrate."""
        from repro.assertions.network import AssertionNetwork
        from repro.ecr.builder import SchemaBuilder
        from repro.ecr.schema import ObjectRef
        from repro.equivalence.registry import EquivalenceRegistry
        from repro.integration.integrator import integrate_pair

        translated = translate_hierarchical(ims)
        ecr_view = (
            SchemaBuilder("view")
            .entity("Employee", attrs=[("Eno", "char", True), ("Phone", "char")])
            .build()
        )
        registry = EquivalenceRegistry([translated, ecr_view])
        registry.declare_equivalent("ims.Emp.Eno", "view.Employee.Eno")
        network = AssertionNetwork()
        network.seed_schema(translated)
        network.seed_schema(ecr_view)
        network.specify(ObjectRef("ims", "Emp"), ObjectRef("view", "Employee"), 1)
        result = integrate_pair(registry, network, "ims", "view")
        merged = result.node_for(ObjectRef("ims", "Emp"))
        assert merged == result.node_for(ObjectRef("view", "Employee"))
        assert "D_Eno" in result.schema.get(merged).attribute_names()
