"""Tests for the relational → ECR translator."""

import pytest

from repro.ecr.validation import validate_schema
from repro.errors import TranslationError
from repro.translate.relational import (
    Column,
    ForeignKey,
    RelationalSchema,
    Table,
    translate_relational,
)


@pytest.fixture
def university():
    return RelationalSchema(
        "uni",
        [
            Table(
                "Student",
                [
                    Column("Sid", "char", True, False),
                    Column("Name", "char"),
                ],
            ),
            Table(
                "Course",
                [
                    Column("Cno", "char", True, False),
                    Column("Title", "char"),
                ],
            ),
            Table(
                "Grad",
                [
                    Column("Sid", "char", True, False),
                    Column("Thesis", "char"),
                ],
                [ForeignKey(("Sid",), "Student")],
            ),
            Table(
                "Enrolled",
                [
                    Column("Sid", "char", True, False),
                    Column("Cno", "char", True, False),
                    Column("Grade", "char"),
                ],
                [
                    ForeignKey(("Sid",), "Student"),
                    ForeignKey(("Cno",), "Course"),
                ],
            ),
            Table(
                "Advises",
                [
                    Column("Aid", "char", True, False),
                    Column("Sid", "char", nullable=False),
                    Column("Note", "char"),
                ],
                [ForeignKey(("Sid",), "Student")],
            ),
        ],
    )


class TestRules:
    def test_plain_tables_become_entities(self, university):
        schema = translate_relational(university)
        entities = {e.name for e in schema.entity_sets()}
        assert {"Student", "Course", "Advises"} <= entities

    def test_subtype_table_becomes_category(self, university):
        schema = translate_relational(university)
        grad = schema.category("Grad")
        assert grad.parents == ["Student"]
        assert grad.attribute_names() == ["Thesis"]  # PK/FK columns consumed

    def test_junction_table_becomes_relationship(self, university):
        schema = translate_relational(university)
        enrolled = schema.relationship_set("Enrolled")
        assert set(enrolled.participant_names()) == {"Student", "Course"}
        assert enrolled.attribute_names() == ["Grade"]

    def test_plain_foreign_key_becomes_relationship(self, university):
        schema = translate_relational(university)
        fk_rel = schema.relationship_set("Advises_Sid")
        legs = {leg.object_name: leg for leg in fk_rel.participations}
        assert set(legs) == {"Advises", "Student"}
        # NOT NULL FK → mandatory (1,1) on the owning side
        assert str(legs["Advises"].cardinality) == "(1,1)"
        assert str(legs["Student"].cardinality) == "(0,n)"

    def test_nullable_foreign_key_is_optional(self):
        source = RelationalSchema(
            "s",
            [
                Table("A", [Column("Id", "char", True, False)]),
                Table(
                    "B",
                    [
                        Column("Id", "char", True, False),
                        Column("A_id", "char", nullable=True),
                    ],
                    [ForeignKey(("A_id",), "A")],
                ),
            ],
        )
        schema = translate_relational(source)
        leg = schema.relationship_set("B_A_id").participation_for("B")
        assert str(leg.cardinality) == "(0,1)"

    def test_pk_columns_kept_as_key_attributes(self, university):
        schema = translate_relational(university)
        assert schema.entity_set("Student").attribute("Sid").is_key

    def test_result_is_valid(self, university):
        schema = translate_relational(university)
        assert not any(i.is_error for i in validate_schema(schema))


class TestErrors:
    def test_dangling_fk_rejected(self):
        source = RelationalSchema(
            "s",
            [
                Table(
                    "A",
                    [Column("Id", "char", True, False)],
                    [ForeignKey(("Id",), "Ghost")],
                )
            ],
        )
        with pytest.raises(TranslationError):
            translate_relational(source)

    def test_empty_fk_rejected(self):
        with pytest.raises(TranslationError):
            ForeignKey((), "A")

    def test_table_lookup(self, university):
        assert university.table("Student").name == "Student"
        with pytest.raises(TranslationError):
            university.table("Ghost")
        with pytest.raises(TranslationError):
            university.table("Student").column("Ghost")
