"""Tests for the ECR → relational translator."""

import pytest

from repro.ecr.builder import SchemaBuilder
from repro.translate.to_relational import to_relational
from repro.workloads.university import build_expected_figure5, build_sc1


@pytest.fixture
def figure5_relational():
    return to_relational(build_expected_figure5())


class TestEntityTables:
    def test_entity_becomes_table_with_pk(self, figure5_relational):
        table = figure5_relational.table("E_Department")
        assert table.primary_key_columns() == ["D_Name"]
        assert {c.name for c in table.columns} == {"D_Name", "Location"}

    def test_keyless_entity_gets_surrogate(self, figure5_relational):
        umbrella = figure5_relational.table("D_Stud_Facu")
        assert umbrella.primary_key_columns() == ["d_stud_facu_id"]


class TestSubtypeTables:
    def test_category_pk_is_fk_to_parent(self, figure5_relational):
        student = figure5_relational.table("Student")
        assert student.primary_key_columns() == ["d_stud_facu_id"]
        assert student.foreign_keys[0].referenced_table == "D_Stud_Facu"

    def test_two_level_chain(self, figure5_relational):
        grad = figure5_relational.table("Grad_student")
        assert grad.foreign_keys[0].referenced_table == "Student"
        assert {c.name for c in grad.columns} == {
            "d_stud_facu_id",
            "Support_type",
        }

    def test_union_category_extra_fks(self):
        schema = (
            SchemaBuilder("s")
            .entity("Car", attrs=[("Vin", "char", True)])
            .entity("Boat", attrs=[("Hull", "char", True)])
            .category("Amphibious", of=["Car", "Boat"], attrs=["Mode"])
            .build()
        )
        relational = to_relational(schema)
        amphibious = relational.table("Amphibious")
        referenced = {fk.referenced_table for fk in amphibious.foreign_keys}
        assert referenced == {"Car", "Boat"}
        assert amphibious.primary_key_columns() == ["Vin"]


class TestRelationships:
    def test_attributed_relationship_becomes_junction(self, figure5_relational):
        majors = figure5_relational.table("E_Stud_Majo")
        referenced = {fk.referenced_table for fk in majors.foreign_keys}
        assert referenced == {"Student", "E_Department"}
        assert any(c.name == "D_Since" for c in majors.columns)

    def test_max_one_leg_keys_the_junction(self, figure5_relational):
        # E_Stud_Majo's Student leg is (1,1): the student key alone is PK
        majors = figure5_relational.table("E_Stud_Majo")
        assert majors.primary_key_columns() == ["student_d_stud_facu_id"]

    def test_plain_one_to_many_folds_into_fk(self):
        schema = build_sc1()
        schema.relationship_set("Majors").remove_attribute("Since")
        relational = to_relational(schema)
        student = relational.table("Student")
        assert any(
            fk.referenced_table == "Department" for fk in student.foreign_keys
        )
        assert all(table.name != "Majors" for table in relational.tables)
        fk_column = student.column("majors_Name")
        assert not fk_column.nullable  # the (1,1) leg is mandatory

    def test_many_to_many_junction_pk_concatenates(self):
        schema = (
            SchemaBuilder("s")
            .entity("A", attrs=[("Aid", "char", True)])
            .entity("B", attrs=[("Bid", "char", True)])
            .relationship("Links", connects=[("A", "(0,n)"), ("B", "(0,n)")])
            .build()
        )
        relational = to_relational(schema)
        links = relational.table("Links")
        assert sorted(links.primary_key_columns()) == ["a_Aid", "b_Bid"]

    def test_roles_disambiguate_columns(self):
        schema = (
            SchemaBuilder("s")
            .entity("Employee", attrs=[("Eid", "char", True)])
            .relationship(
                "Manages",
                connects=[
                    ("Employee", "(0,n)", "boss"),
                    ("Employee", "(0,n)", "minion"),
                ],
            )
            .build()
        )
        relational = to_relational(schema)
        manages = relational.table("Manages")
        assert {c.name for c in manages.columns} == {"boss_Eid", "minion_Eid"}


class TestRoundTrip:
    def test_relational_roundtrip_recovers_structure(self):
        """ECR → relational → ECR recovers the generalisation structure.

        Attributed (1,1)-legged relationships legitimately come back as
        entity-plus-foreign-key (the classic mapping is not injective), so
        the round trip is checked on the IS-A structure and connectivity,
        not on exact relationship spelling.
        """
        from repro.translate.relational import translate_relational

        original = build_expected_figure5()
        back = translate_relational(to_relational(original))
        assert {c.name for c in back.categories()} == {
            "Student",
            "Grad_student",
            "Faculty",
        }
        assert back.category("Grad_student").parents == ["Student"]
        # the Student-Department association survives as some relationship
        assert any(
            relationship.connects("E_Department")
            for relationship in back.relationship_sets()
        )

    def test_sc1_roundtrip(self):
        from repro.translate.relational import translate_relational

        back = translate_relational(to_relational(build_sc1()))
        assert {e.name for e in back.entity_sets()} >= {
            "Student",
            "Department",
        }
