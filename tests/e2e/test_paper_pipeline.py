"""End-to-end reproduction of the paper's four phases (Figure 1).

These tests walk the entire methodology the way the paper's Figure 1 draws
it — collection, analysis, assertion specification, integration — and pin
the outcome of every phase to the published artifacts.
"""

import pytest

from repro.assertions.network import AssertionNetwork
from repro.ecr.schema import ObjectRef
from repro.equivalence.ordering import ordered_object_pairs
from repro.equivalence.registry import EquivalenceRegistry
from repro.integration.integrator import Integrator
from repro.integration.mappings import build_mappings
from repro.query.parser import parse_request
from repro.query.rewrite import rewrite_to_components, rewrite_to_integrated
from repro.workloads.university import (
    PAPER_ASSERTION_CODES,
    PAPER_RELATIONSHIP_CODES,
    build_sc1,
    build_sc2,
)


@pytest.fixture(scope="module")
def pipeline():
    """The full Figure 1 pipeline, phase by phase."""
    # Phase 1: schema collection
    sc1, sc2 = build_sc1(), build_sc2()
    # Phase 2: schema analysis — equivalence classes
    registry = EquivalenceRegistry([sc1, sc2])
    registry.declare_equivalent("sc1.Student.Name", "sc2.Grad_student.Name")
    registry.declare_equivalent("sc1.Student.Name", "sc2.Faculty.Name")
    registry.declare_equivalent("sc1.Student.GPA", "sc2.Grad_student.GPA")
    registry.declare_equivalent("sc1.Department.Name", "sc2.Department.Name")
    registry.declare_equivalent("sc1.Majors.Since", "sc2.Majors.Since")
    # Phase 3: assertion specification over the ranked pairs
    network = AssertionNetwork()
    network.seed_schema(sc1)
    network.seed_schema(sc2)
    ranked = ordered_object_pairs(registry, "sc1", "sc2")
    answers = {
        (str(a), str(b)): code for a, b, code in PAPER_ASSERTION_CODES
    }
    for pair in ranked:
        code = answers[(str(pair.first), str(pair.second))]
        network.specify(pair.first, pair.second, code)
    rel_network = AssertionNetwork()
    for schema in (sc1, sc2):
        for relationship in schema.relationship_sets():
            rel_network.add_object(ObjectRef(schema.name, relationship.name))
    for first, second, code in PAPER_RELATIONSHIP_CODES:
        rel_network.specify(ObjectRef.parse(first), ObjectRef.parse(second), code)
    # Phase 4: integration
    result = Integrator(registry, network, rel_network).integrate("sc1", "sc2")
    mappings = build_mappings(result, [sc1, sc2])
    return registry, network, result, mappings


class TestPhase3:
    def test_every_ranked_pair_was_answerable(self, pipeline):
        registry, network, _, _ = pipeline
        assert len(network.specified_assertions()) == 3

    def test_derived_assertion_appeared(self, pipeline):
        _, network, _, _ = pipeline
        assert network.derived_assertions()


class TestPhase4Figure5:
    def test_exact_figure5_structure(self, pipeline):
        _, _, result, _ = pipeline
        schema = result.schema
        assert {e.name for e in schema.entity_sets()} == {
            "E_Department",
            "D_Stud_Facu",
        }
        assert {c.name for c in schema.categories()} == {
            "Student",
            "Grad_student",
            "Faculty",
        }
        assert {r.name for r in schema.relationship_sets()} == {
            "E_Stud_Majo",
            "Works",
        }

    def test_screen12_component_attributes(self, pipeline):
        _, _, result, _ = pipeline
        components = result.component_attributes("Student", "D_Name")
        assert [str(c) for c in components] == [
            "sc1.Student.Name",
            "sc2.Grad_student.Name",
        ]


class TestMappingsBothContexts:
    def test_logical_database_design_direction(self, pipeline):
        *_, result, mappings = pipeline
        view_request = parse_request(
            "select Name, GPA from Student where GPA >= 3.5"
        )
        logical = rewrite_to_integrated(view_request, mappings["sc1"])
        logical.validate_against(result.schema)
        assert logical.attributes == ("D_Name", "D_GPA")

    def test_global_schema_design_direction(self, pipeline):
        *_, mappings = pipeline
        global_request = parse_request("select D_Name from E_Department")
        legs = rewrite_to_components(global_request, mappings)
        assert {leg.schema for leg in legs} == {"sc1", "sc2"}

    def test_attribute_conservation(self, pipeline):
        """Every component attribute is accounted for exactly once."""
        registry, _, result, _ = pipeline
        total_components = sum(
            len(origin.components)
            for origin in result.attribute_origins.values()
        )
        total_original = sum(
            schema.attribute_count() for schema in registry.schemas()
        )
        assert total_components == total_original
