"""Cross-module property-based tests on generated workloads.

Each property drives the *whole* pipeline on generator output and checks an
invariant that must hold for any input: serialisation round-trips, valid
integrated schemas, total and consistent mappings, conserved attributes.
"""

from hypothesis import given, settings, strategies as st

from repro.assertions.network import AssertionNetwork
from repro.baselines.closure_baselines import drive_assertions_with_closure
from repro.ecr.ddl import parse_ddl, to_ddl
from repro.ecr.json_io import schema_from_dict, schema_to_dict
from repro.ecr.schema import ObjectRef
from repro.ecr.validation import validate_schema
from repro.equivalence.registry import EquivalenceRegistry
from repro.integration.integrator import integrate_pair
from repro.workloads.generator import GeneratorConfig, generate_schema_pair
from repro.workloads.oracle import OracleDda

configs = st.builds(
    GeneratorConfig,
    seed=st.integers(0, 10_000),
    concepts=st.integers(3, 10),
    overlap=st.floats(0.0, 1.0),
    category_rate=st.floats(0.0, 0.6),
)


@settings(deadline=None, max_examples=25)
@given(configs)
def test_ddl_roundtrip_on_generated_schemas(config):
    pair = generate_schema_pair(config)
    for schema in (pair.first, pair.second):
        assert schema_to_dict(parse_ddl(to_ddl(schema))) == schema_to_dict(schema)


@settings(deadline=None, max_examples=25)
@given(configs)
def test_json_roundtrip_on_generated_schemas(config):
    pair = generate_schema_pair(config)
    for schema in (pair.first, pair.second):
        assert schema_to_dict(
            schema_from_dict(schema_to_dict(schema))
        ) == schema_to_dict(schema)


def _integrate(config):
    pair = generate_schema_pair(config)
    registry = EquivalenceRegistry([pair.first, pair.second])
    OracleDda(pair.truth).declare_all_equivalences(registry)
    network, _ = drive_assertions_with_closure(pair.first, pair.second, pair.truth)
    result = integrate_pair(registry, network, pair.first.name, pair.second.name)
    return pair, registry, result


@settings(deadline=None, max_examples=15)
@given(configs)
def test_integration_always_yields_valid_schema(config):
    _, _, result = _integrate(config)
    assert not any(issue.is_error for issue in validate_schema(result.schema))


@settings(deadline=None, max_examples=15)
@given(configs)
def test_object_mapping_is_total_and_consistent(config):
    pair, registry, result = _integrate(config)
    for schema in registry.schemas():
        for structure in schema:
            ref = ObjectRef(schema.name, structure.name)
            node = result.object_mapping[ref]
            assert node in result.schema
            assert ref in result.nodes[node].components


@settings(deadline=None, max_examples=15)
@given(configs)
def test_attributes_are_conserved(config):
    pair, registry, result = _integrate(config)
    total_components = sum(
        len(origin.components) for origin in result.attribute_origins.values()
    )
    total_original = sum(
        schema.attribute_count() for schema in registry.schemas()
    )
    assert total_components == total_original
    # and every attribute mapping points at a real attribute
    for ref, (node, attribute_name) in result.attribute_mapping.items():
        assert result.schema.get(node).has_attribute(attribute_name)


@settings(deadline=None, max_examples=15)
@given(configs)
def test_true_equals_pairs_land_in_one_node(config):
    pair, registry, result = _integrate(config)
    from repro.assertions.kinds import AssertionKind

    for (a, b), kind in pair.truth.object_assertions.items():
        if kind is AssertionKind.EQUALS:
            assert result.object_mapping[a] == result.object_mapping[b]
        else:
            assert result.object_mapping[a] != result.object_mapping[b]
