"""Further cross-module properties: request round-trips, retraction
semantics, and instance-store invariants."""

import random

from hypothesis import assume, given, settings, strategies as st

from repro.assertions.kinds import AssertionKind
from repro.assertions.network import AssertionNetwork
from repro.data.populate import populate_store
from repro.ecr.schema import ObjectRef
from repro.ecr.walk import superclass_closure
from repro.errors import ConflictError
from repro.query.ast import Comparison, Join, Request
from repro.query.parser import parse_request
from repro.workloads.generator import GeneratorConfig, generate_schema_pair

# -- request language ---------------------------------------------------------

identifiers = st.from_regex(r"[A-Za-z][A-Za-z0-9_]{0,8}", fullmatch=True)
values = st.from_regex(r"[A-Za-z0-9_.]{1,8}", fullmatch=True)
comparisons = st.builds(
    Comparison,
    identifiers,
    st.sampled_from(["<=", ">=", "!=", "=", "<", ">"]),
    values,
)
requests = st.builds(
    Request,
    identifiers,
    st.tuples(identifiers) | st.tuples(identifiers, identifiers) | st.just(()),
    st.lists(comparisons, max_size=3).map(tuple),
    st.lists(st.builds(Join, identifiers, identifiers), max_size=2).map(tuple),
)


@given(requests)
def test_request_str_parse_roundtrip(request):
    assume(all(value.lower() not in ("and", "via") for value in
               [c.value for c in request.conditions]))
    reparsed = parse_request(str(request))
    assert reparsed == request


# -- assertion network ----------------------------------------------------------

@st.composite
def assertion_scripts(draw):
    count = draw(st.integers(3, 6))
    refs = [ObjectRef("w", f"O{i}") for i in range(count)]
    steps = draw(
        st.lists(
            st.tuples(
                st.integers(0, count - 1),
                st.integers(0, count - 1),
                st.sampled_from(list(AssertionKind)),
            ),
            min_size=1,
            max_size=8,
        )
    )
    return refs, steps


def _apply(network, refs, steps):
    applied = []
    for i, j, kind in steps:
        if i == j:
            continue
        existing = network.assertion_for(refs[i], refs[j])
        if existing is not None:
            continue
        try:
            network.specify(refs[i], refs[j], kind)
            applied.append((i, j, kind))
        except ConflictError:
            pass
    return applied


@settings(deadline=None, max_examples=50)
@given(assertion_scripts())
def test_retract_then_respecify_is_identity(script):
    refs, steps = script
    network = AssertionNetwork()
    for ref in refs:
        network.add_object(ref)
    applied = _apply(network, refs, steps)
    assume(applied)
    before = {
        (a.first, a.second, a.kind) for a in network.all_assertions()
    }
    i, j, kind = applied[-1]
    network.retract(refs[i], refs[j])
    network.specify(refs[i], refs[j], kind)
    after = {
        (a.first, a.second, a.kind) for a in network.all_assertions()
    }
    assert before == after


@settings(deadline=None, max_examples=50)
@given(assertion_scripts())
def test_feasible_sets_shrink_monotonically(script):
    refs, steps = script
    network = AssertionNetwork()
    for ref in refs:
        network.add_object(ref)
    snapshots = []
    for i, j, kind in steps:
        if i == j:
            continue
        pairs = [
            (a, b)
            for idx, a in enumerate(refs)
            for b in refs[idx + 1 :]
        ]
        snapshots.append({pair: network.feasible(*pair) for pair in pairs})
        try:
            network.specify(refs[i], refs[j], kind)
        except (ConflictError, Exception):
            pass
        current = {pair: network.feasible(*pair) for pair in pairs}
        for pair, feasible in current.items():
            assert feasible <= snapshots[-1][pair]


# -- instance stores ---------------------------------------------------------------

@settings(deadline=None, max_examples=15)
@given(st.integers(0, 500), st.integers(3, 8))
def test_store_membership_closed_upward(seed, concepts):
    pair = generate_schema_pair(
        GeneratorConfig(seed=seed, concepts=concepts, category_rate=0.6)
    )
    store = populate_store(pair.first, seed=seed, entities_per_class=3)
    schema = store.schema
    for structure in schema.object_classes():
        members = {m.instance_id for m in store.members(structure.name)}
        for ancestor in superclass_closure(schema, structure.name):
            ancestors_members = {
                m.instance_id for m in store.members(ancestor)
            }
            assert members <= ancestors_members


@settings(deadline=None, max_examples=15)
@given(st.integers(0, 500))
def test_select_results_are_subsets_of_members(seed):
    pair = generate_schema_pair(GeneratorConfig(seed=seed, concepts=5))
    store = populate_store(pair.first, seed=seed)
    schema = store.schema
    rng = random.Random(seed)
    for structure in schema.object_classes():
        if not structure.attributes:
            continue
        attribute = rng.choice(structure.attributes)
        request = Request(structure.name, (attribute.name,))
        rows = store.select(request)
        member_values = [
            m.values.get(attribute.name) for m in store.members(structure.name)
        ]
        assert len(rows) == len(member_values)
        assert sorted(str(r[0]) for r in rows) == sorted(
            str(v) for v in member_values
        )
