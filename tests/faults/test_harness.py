"""The fault-injection harness itself: deterministic, scoped, honest.

These tests pin down the simulated-disk semantics the crash-anywhere
property relies on: crashes fire at exactly the scheduled hit, torn
writes persist a seeded (reproducible) prefix, lost fsyncs roll files
back to the last effective fsync, and none of it leaks outside an
:func:`repro.faults.inject` scope.
"""

import pytest

from repro import faults
from repro.faults import FaultPlan, InjectedCrash, InjectedIOError


class TestInactive:
    def test_crashpoint_is_a_no_op_without_a_plan(self):
        assert faults.active() is None
        faults.crashpoint("wal.append.after_write")  # nothing raised

    def test_tracked_file_passes_writes_through(self, tmp_path):
        path = tmp_path / "plain.bin"
        with faults.open_tracked(path, "wb") as handle:
            handle.write(b"hello", point="wal.append.write")
            handle.fsync()
        assert path.read_bytes() == b"hello"

    def test_text_modes_are_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            faults.open_tracked(tmp_path / "x", "w")


class TestCrashes:
    def test_fires_at_the_scheduled_occurrence_only(self):
        plan = FaultPlan(crash_at="wal.append.after_write", occurrence=3)
        with faults.inject(plan):
            faults.crashpoint("wal.append.after_write")
            faults.crashpoint("wal.append.after_write")
            with pytest.raises(InjectedCrash) as caught:
                faults.crashpoint("wal.append.after_write")
        assert caught.value.point == "wal.append.after_write"

    def test_other_points_do_not_fire(self):
        plan = FaultPlan(crash_at="dict.save.before_replace")
        with faults.inject(plan):
            for point in faults.CRASHPOINTS:
                if point != "dict.save.before_replace":
                    faults.crashpoint(point)

    def test_crash_is_not_catchable_as_exception(self):
        plan = FaultPlan(crash_at="wal.append.after_write")
        with faults.inject(plan):
            with pytest.raises(InjectedCrash):
                try:
                    faults.crashpoint("wal.append.after_write")
                except Exception:  # a tidy-up handler must NOT swallow it
                    pytest.fail("InjectedCrash was caught as Exception")

    def test_plan_deactivates_after_the_scope(self):
        with faults.inject(FaultPlan(crash_at="wal.append.after_write")):
            with pytest.raises(InjectedCrash):
                faults.crashpoint("wal.append.after_write")
        assert faults.active() is None
        faults.crashpoint("wal.append.after_write")

    def test_nesting_is_rejected(self):
        with faults.inject(FaultPlan()):
            with pytest.raises(RuntimeError):
                with faults.inject(FaultPlan()):
                    pass

    def test_hit_counters_reset_on_reactivation(self):
        plan = FaultPlan(crash_at="wal.append.after_write", occurrence=2)
        for _ in range(2):  # same plan object, fresh schedule each time
            with faults.inject(plan):
                faults.crashpoint("wal.append.after_write")
                with pytest.raises(InjectedCrash):
                    faults.crashpoint("wal.append.after_write")


class TestTornWrites:
    def write_with_tear(self, path, seed):
        plan = FaultPlan(
            crash_at="wal.append.write", torn=True, seed=seed
        )
        data = bytes(range(200))
        with faults.inject(plan):
            with pytest.raises(InjectedCrash):
                with faults.open_tracked(path, "wb") as handle:
                    handle.write(data, point="wal.append.write")
        return path.read_bytes(), data

    def test_persists_a_strict_prefix(self, tmp_path):
        persisted, data = self.write_with_tear(tmp_path / "torn.bin", 7)
        assert len(persisted) < len(data)
        assert data.startswith(persisted)

    def test_same_seed_tears_the_same_byte(self, tmp_path):
        first, _ = self.write_with_tear(tmp_path / "a.bin", 42)
        second, _ = self.write_with_tear(tmp_path / "b.bin", 42)
        assert first == second

    def test_untorn_crash_keeps_whole_writes(self, tmp_path):
        path = tmp_path / "whole.bin"
        plan = FaultPlan(crash_at="wal.append.write", occurrence=2)
        with faults.inject(plan):
            with pytest.raises(InjectedCrash):
                with faults.open_tracked(path, "wb") as handle:
                    handle.write(b"first", point="wal.append.write")
                    handle.write(b"second", point="wal.append.write")
        # occurrence 2 died before writing; occurrence 1 is intact
        assert path.read_bytes() == b"first"


class TestLostFsync:
    def test_crash_rolls_back_to_the_last_effective_fsync(self, tmp_path):
        path = tmp_path / "lost.bin"
        path.write_bytes(b"durable")  # survived a previous sitting
        plan = FaultPlan(
            crash_at="wal.append.after_write", lost_fsync=True
        )
        with faults.inject(plan):
            with pytest.raises(InjectedCrash):
                with faults.open_tracked(path, "ab") as handle:
                    handle.write(b"+gone", point="wal.append.write")
                    handle.fsync()  # the disk lies: nothing became durable
                    faults.crashpoint("wal.append.after_write")
        assert path.read_bytes() == b"durable"

    def test_without_the_policy_written_bytes_survive(self, tmp_path):
        path = tmp_path / "kept.bin"
        plan = FaultPlan(crash_at="wal.append.after_write")
        with faults.inject(plan):
            with pytest.raises(InjectedCrash):
                with faults.open_tracked(path, "wb") as handle:
                    handle.write(b"kept", point="wal.append.write")
                    faults.crashpoint("wal.append.after_write")
        assert path.read_bytes() == b"kept"


class TestIOErrors:
    def test_io_error_is_survivable(self, tmp_path):
        plan = FaultPlan(io_error_at="dict.save.before_replace")
        with faults.inject(plan):
            with pytest.raises(OSError):
                faults.crashpoint("dict.save.before_replace")
            # the process lives on; the next hit passes
            faults.crashpoint("dict.save.before_replace")

    def test_io_error_is_an_oserror_subclass(self):
        assert issubclass(InjectedIOError, OSError)
        assert not issubclass(InjectedCrash, Exception)

    def test_write_site_io_error(self, tmp_path):
        path = tmp_path / "werr.bin"
        plan = FaultPlan(io_error_at="wal.append.write")
        with faults.inject(plan):
            with faults.open_tracked(path, "wb") as handle:
                with pytest.raises(InjectedIOError):
                    handle.write(b"data", point="wal.append.write")
                handle.write(b"retry", point="wal.append.write")
        assert path.read_bytes() == b"retry"


class TestReplicationPoints:
    def test_replication_crashpoints_are_registered(self):
        for point in (
            "repl.ship.read",
            "repl.ship.frame",
            "repl.apply.record",
            "repl.promote.persist",
        ):
            assert point in faults.CRASHPOINTS
        assert "repl.ship.frame" in faults.TORN_CAPABLE


class TestTornBuffer:
    def test_passes_through_without_a_plan(self):
        assert faults.torn_buffer(b"frame", "repl.ship.frame") == b"frame"

    def test_fires_at_the_scheduled_occurrence(self):
        plan = FaultPlan(crash_at="repl.ship.frame", occurrence=2)
        with faults.inject(plan):
            assert (
                faults.torn_buffer(b"one", "repl.ship.frame") == b"one"
            )
            with pytest.raises(InjectedCrash) as caught:
                faults.torn_buffer(b"two", "repl.ship.frame")
        # untorn plan: nothing made it onto the wire
        assert caught.value.partial == b""

    def test_torn_plan_yields_a_seeded_strict_prefix(self):
        data = b"x" * 64

        def tear(seed):
            plan = FaultPlan(
                crash_at="repl.ship.frame", torn=True, seed=seed
            )
            with faults.inject(plan):
                with pytest.raises(InjectedCrash) as caught:
                    faults.torn_buffer(data, "repl.ship.frame")
            return caught.value.partial

        first = tear(7)
        assert len(first) < len(data)
        assert data.startswith(first)
        # deterministic: the same plan tears the same byte
        assert tear(7) == first

    def test_io_error_schedule_applies_to_buffers_too(self):
        plan = FaultPlan(io_error_at="repl.ship.frame")
        with faults.inject(plan):
            with pytest.raises(InjectedIOError):
                faults.torn_buffer(b"data", "repl.ship.frame")
            # survivable: the next hit passes through
            assert (
                faults.torn_buffer(b"data", "repl.ship.frame") == b"data"
            )

    def test_crash_settles_tracked_files(self, tmp_path):
        path = tmp_path / "settled.bin"
        plan = FaultPlan(crash_at="repl.ship.frame")
        with faults.inject(plan):
            handle = faults.open_tracked(path, "wb")
            handle.write(b"durable", point="wal.append.write")
            handle.fsync()
            with pytest.raises(InjectedCrash):
                faults.torn_buffer(b"frame", "repl.ship.frame")
        # the simulated process death closed and settled the file
        assert path.read_bytes() == b"durable"
