"""The fault-injection harness itself: deterministic, scoped, honest.

These tests pin down the simulated-disk semantics the crash-anywhere
property relies on: crashes fire at exactly the scheduled hit, torn
writes persist a seeded (reproducible) prefix, lost fsyncs roll files
back to the last effective fsync, and none of it leaks outside an
:func:`repro.faults.inject` scope.
"""

import pytest

from repro import faults
from repro.faults import FaultPlan, InjectedCrash, InjectedIOError


class TestInactive:
    def test_crashpoint_is_a_no_op_without_a_plan(self):
        assert faults.active() is None
        faults.crashpoint("wal.append.after_write")  # nothing raised

    def test_tracked_file_passes_writes_through(self, tmp_path):
        path = tmp_path / "plain.bin"
        with faults.open_tracked(path, "wb") as handle:
            handle.write(b"hello", point="wal.append.write")
            handle.fsync()
        assert path.read_bytes() == b"hello"

    def test_text_modes_are_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            faults.open_tracked(tmp_path / "x", "w")


class TestCrashes:
    def test_fires_at_the_scheduled_occurrence_only(self):
        plan = FaultPlan(crash_at="wal.append.after_write", occurrence=3)
        with faults.inject(plan):
            faults.crashpoint("wal.append.after_write")
            faults.crashpoint("wal.append.after_write")
            with pytest.raises(InjectedCrash) as caught:
                faults.crashpoint("wal.append.after_write")
        assert caught.value.point == "wal.append.after_write"

    def test_other_points_do_not_fire(self):
        plan = FaultPlan(crash_at="dict.save.before_replace")
        with faults.inject(plan):
            for point in faults.CRASHPOINTS:
                if point != "dict.save.before_replace":
                    faults.crashpoint(point)

    def test_crash_is_not_catchable_as_exception(self):
        plan = FaultPlan(crash_at="wal.append.after_write")
        with faults.inject(plan):
            with pytest.raises(InjectedCrash):
                try:
                    faults.crashpoint("wal.append.after_write")
                except Exception:  # a tidy-up handler must NOT swallow it
                    pytest.fail("InjectedCrash was caught as Exception")

    def test_plan_deactivates_after_the_scope(self):
        with faults.inject(FaultPlan(crash_at="wal.append.after_write")):
            with pytest.raises(InjectedCrash):
                faults.crashpoint("wal.append.after_write")
        assert faults.active() is None
        faults.crashpoint("wal.append.after_write")

    def test_nesting_is_rejected(self):
        with faults.inject(FaultPlan()):
            with pytest.raises(RuntimeError):
                with faults.inject(FaultPlan()):
                    pass

    def test_hit_counters_reset_on_reactivation(self):
        plan = FaultPlan(crash_at="wal.append.after_write", occurrence=2)
        for _ in range(2):  # same plan object, fresh schedule each time
            with faults.inject(plan):
                faults.crashpoint("wal.append.after_write")
                with pytest.raises(InjectedCrash):
                    faults.crashpoint("wal.append.after_write")


class TestTornWrites:
    def write_with_tear(self, path, seed):
        plan = FaultPlan(
            crash_at="wal.append.write", torn=True, seed=seed
        )
        data = bytes(range(200))
        with faults.inject(plan):
            with pytest.raises(InjectedCrash):
                with faults.open_tracked(path, "wb") as handle:
                    handle.write(data, point="wal.append.write")
        return path.read_bytes(), data

    def test_persists_a_strict_prefix(self, tmp_path):
        persisted, data = self.write_with_tear(tmp_path / "torn.bin", 7)
        assert len(persisted) < len(data)
        assert data.startswith(persisted)

    def test_same_seed_tears_the_same_byte(self, tmp_path):
        first, _ = self.write_with_tear(tmp_path / "a.bin", 42)
        second, _ = self.write_with_tear(tmp_path / "b.bin", 42)
        assert first == second

    def test_untorn_crash_keeps_whole_writes(self, tmp_path):
        path = tmp_path / "whole.bin"
        plan = FaultPlan(crash_at="wal.append.write", occurrence=2)
        with faults.inject(plan):
            with pytest.raises(InjectedCrash):
                with faults.open_tracked(path, "wb") as handle:
                    handle.write(b"first", point="wal.append.write")
                    handle.write(b"second", point="wal.append.write")
        # occurrence 2 died before writing; occurrence 1 is intact
        assert path.read_bytes() == b"first"


class TestLostFsync:
    def test_crash_rolls_back_to_the_last_effective_fsync(self, tmp_path):
        path = tmp_path / "lost.bin"
        path.write_bytes(b"durable")  # survived a previous sitting
        plan = FaultPlan(
            crash_at="wal.append.after_write", lost_fsync=True
        )
        with faults.inject(plan):
            with pytest.raises(InjectedCrash):
                with faults.open_tracked(path, "ab") as handle:
                    handle.write(b"+gone", point="wal.append.write")
                    handle.fsync()  # the disk lies: nothing became durable
                    faults.crashpoint("wal.append.after_write")
        assert path.read_bytes() == b"durable"

    def test_without_the_policy_written_bytes_survive(self, tmp_path):
        path = tmp_path / "kept.bin"
        plan = FaultPlan(crash_at="wal.append.after_write")
        with faults.inject(plan):
            with pytest.raises(InjectedCrash):
                with faults.open_tracked(path, "wb") as handle:
                    handle.write(b"kept", point="wal.append.write")
                    faults.crashpoint("wal.append.after_write")
        assert path.read_bytes() == b"kept"


class TestIOErrors:
    def test_io_error_is_survivable(self, tmp_path):
        plan = FaultPlan(io_error_at="dict.save.before_replace")
        with faults.inject(plan):
            with pytest.raises(OSError):
                faults.crashpoint("dict.save.before_replace")
            # the process lives on; the next hit passes
            faults.crashpoint("dict.save.before_replace")

    def test_io_error_is_an_oserror_subclass(self):
        assert issubclass(InjectedIOError, OSError)
        assert not issubclass(InjectedCrash, Exception)

    def test_write_site_io_error(self, tmp_path):
        path = tmp_path / "werr.bin"
        plan = FaultPlan(io_error_at="wal.append.write")
        with faults.inject(plan):
            with faults.open_tracked(path, "wb") as handle:
                with pytest.raises(InjectedIOError):
                    handle.write(b"data", point="wal.append.write")
                handle.write(b"retry", point="wal.append.write")
        assert path.read_bytes() == b"retry"
