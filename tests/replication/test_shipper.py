"""WAL tailing: cursors, rotation boundaries, resets, damage discipline."""

from __future__ import annotations

import json

import pytest

from repro.kernel.wal import encode_record
from repro.replication import (
    ReplicaApplier,
    ShipCursor,
    WalShipper,
    payload_fingerprint,
)

from tests.replication.conftest import durable_session


def wal_dir(path):
    return f"{path}.wal"


def leader_fingerprint(session):
    return payload_fingerprint(session.analysis.state_payload())


class TestCursorBasics:
    def test_initial_poll_ships_everything_restarted(self, tmp_path):
        save = tmp_path / "lead.json"
        session = durable_session(save)
        shipment = WalShipper(wal_dir(save)).poll()
        assert shipment.restarted
        assert shipment.records  # base + commits
        assert shipment.cursor.records == len(shipment.records)
        assert not shipment.damaged
        assert shipment.quarantined == ()

    def test_incremental_poll_ships_only_fresh_records(self, tmp_path):
        save = tmp_path / "lead.json"
        session = durable_session(save)
        shipper = WalShipper(wal_dir(save))
        first = shipper.poll()
        session.registry.declare_equivalent(
            "sc1.Student.Name", "sc2.Grad_student.Name"
        )
        second = shipper.poll(first.cursor)
        assert not second.restarted
        assert len(second.records) == 1
        assert second.cursor.records == first.cursor.records + 1

    def test_caught_up_poll_is_empty(self, tmp_path):
        save = tmp_path / "lead.json"
        durable_session(save)
        shipper = WalShipper(wal_dir(save))
        cursor = shipper.poll().cursor
        again = shipper.poll(cursor)
        assert not again.restarted
        assert again.records == ()
        assert again.cursor == cursor

    def test_overshot_cursor_restarts_stream(self, tmp_path):
        save = tmp_path / "lead.json"
        durable_session(save)
        shipper = WalShipper(wal_dir(save))
        good = shipper.poll().cursor
        bogus = ShipCursor(good.generation, good.records + 50)
        shipment = shipper.poll(bogus)
        assert shipment.restarted
        assert len(shipment.records) == good.records


class TestRotationBoundary:
    """Satellite: no skip/duplicate across a snapshot-triggered rotation."""

    def test_rotation_hands_off_without_skip_or_duplicate(self, tmp_path):
        save = tmp_path / "lead.json"
        session = durable_session(save)
        shipper = WalShipper(wal_dir(save))
        applier = ReplicaApplier()
        applier.apply(shipper.poll())
        kernel = session.analysis.kernel
        before = kernel.bus.offset
        # snapshot() rotates the WAL onto a fresh segment; the next
        # commits land in the new segment while the cursor position was
        # taken in the old one
        kernel.snapshot()
        session.registry.declare_equivalent(
            "sc1.Student.Name", "sc2.Grad_student.Name"
        )
        shipment = shipper.poll(applier.cursor)
        assert not shipment.restarted
        applier.apply(shipment)
        assert applier.applied_offset() == kernel.bus.offset
        assert kernel.bus.offset > before
        assert applier.fingerprint() == leader_fingerprint(session)
        # the directory really did rotate
        segments = sorted((tmp_path / "lead.json.wal").glob("wal-*.seg"))
        assert len(segments) >= 2

    def test_record_straddling_rotation_ships_exactly_once(self, tmp_path):
        save = tmp_path / "lead.json"
        session = durable_session(save)
        shipper = WalShipper(wal_dir(save))
        # cursor taken mid-generation, *before* the rotation
        cursor = shipper.poll().cursor
        session.analysis.kernel.snapshot()
        session.registry.declare_equivalent(
            "sc1.Department.Name", "sc2.Department.Name"
        )
        shipment = shipper.poll(cursor)
        assert not shipment.restarted
        # exactly the records written after the cursor: the snapshot
        # marker and the commit — none duplicated from segment 1
        total = shipper.poll().cursor.records
        assert cursor.records + len(shipment.records) == total

    def test_checkpoint_reset_changes_generation(self, tmp_path):
        save = tmp_path / "lead.json"
        session = durable_session(save)
        shipper = WalShipper(wal_dir(save))
        cursor = shipper.poll().cursor
        session.save(save)  # reset: new generation, new base record
        shipment = shipper.poll(cursor)
        assert shipment.restarted
        assert shipment.cursor.generation != cursor.generation


class TestDamageDiscipline:
    def test_torn_tail_on_final_segment_is_not_damage(self, tmp_path):
        save = tmp_path / "lead.json"
        durable_session(save)
        directory = tmp_path / "lead.json.wal"
        segment = sorted(directory.glob("wal-*.seg"))[-1]
        intact = segment.read_bytes()
        torn = encode_record({"t": "head", "offset": 1})[:-3]
        segment.write_bytes(intact + torn)
        shipment = WalShipper(directory).poll()
        assert not shipment.damaged  # append racing the read
        # the intact prefix shipped; the torn tail waits for a re-poll
        assert shipment.cursor.records == len(shipment.records)

    def test_mid_chain_damage_flags_and_stops(self, tmp_path):
        save = tmp_path / "lead.json"
        session = durable_session(save)
        session.analysis.kernel.snapshot()  # rotate: two segments now
        session.registry.declare_equivalent(
            "sc1.Student.Name", "sc2.Grad_student.Name"
        )
        directory = tmp_path / "lead.json.wal"
        segments = sorted(directory.glob("wal-*.seg"))
        assert len(segments) >= 2
        first = segments[0]
        data = bytearray(first.read_bytes())
        data[len(data) // 2] ^= 0xFF  # corrupt the first segment
        first.write_bytes(bytes(data))
        shipment = WalShipper(directory).poll()
        assert shipment.damaged  # corruption before the final segment
        # never ships past the hole
        assert shipment.cursor.records == len(shipment.records)

    def test_quarantined_segments_reported_by_name(self, tmp_path):
        save = tmp_path / "lead.json"
        durable_session(save)
        directory = tmp_path / "lead.json.wal"
        (directory / "wal-0000000007.seg.corrupt").write_bytes(b"xx")
        shipment = WalShipper(directory).poll()
        assert shipment.quarantined == ("wal-0000000007.seg.corrupt",)

    def test_empty_directory_is_empty_generation(self, tmp_path):
        directory = tmp_path / "nothing.wal"
        directory.mkdir()
        shipment = WalShipper(directory).poll()
        assert shipment.records == ()
        assert shipment.cursor.generation == ""

    def test_shipper_never_mutates_the_wal(self, tmp_path):
        save = tmp_path / "lead.json"
        durable_session(save)
        directory = tmp_path / "lead.json.wal"
        before = {
            p.name: p.read_bytes() for p in directory.glob("wal-*")
        }
        WalShipper(directory).poll()
        after = {p.name: p.read_bytes() for p in directory.glob("wal-*")}
        assert before == after


class TestCursorWire:
    def test_cursor_round_trips_through_wire_shape(self):
        cursor = ShipCursor("abc123", 42)
        assert ShipCursor.from_wire(cursor.to_wire()) == cursor
        assert json.dumps(cursor.to_wire())  # JSON-safe
