"""Follower replay: parity, truncate, gaps, resync, frames."""

from __future__ import annotations

import pytest

from repro.replication import (
    ReplicaApplier,
    ReplicationGapError,
    ShipCursor,
    Shipment,
    WalShipper,
    decode_frames,
    encode_frames,
    payload_fingerprint,
)

from tests.replication.conftest import durable_session


def wal_dir(path):
    return f"{path}.wal"


def leader_fingerprint(session):
    return payload_fingerprint(session.analysis.state_payload())


def synced_pair(tmp_path):
    save = tmp_path / "lead.json"
    session = durable_session(save)
    shipper = WalShipper(wal_dir(save))
    applier = ReplicaApplier()
    applier.apply(shipper.poll())
    return session, shipper, applier


class TestParity:
    def test_fingerprint_parity_after_every_mutation(self, tmp_path):
        session, shipper, applier = synced_pair(tmp_path)
        mutations = [
            lambda: session.registry.declare_equivalent(
                "sc1.Student.Name", "sc2.Grad_student.Name"
            ),
            lambda: session.registry.declare_equivalent(
                "sc1.Department.Name", "sc2.Department.Name"
            ),
            lambda: session.analysis.kernel.snapshot(),
            lambda: session.undo(),
            lambda: session.redo(),
        ]
        for mutate in mutations:
            mutate()
            applier.apply(shipper.poll(applier.cursor))
            assert applier.fingerprint() == leader_fingerprint(session)
            assert (
                applier.applied_offset()
                == session.analysis.kernel.bus.offset
            )

    def test_truncate_via_undo_branch_converges(self, tmp_path):
        session, shipper, applier = synced_pair(tmp_path)
        session.registry.declare_equivalent(
            "sc1.Student.Name", "sc2.Grad_student.Name"
        )
        applier.apply(shipper.poll(applier.cursor))
        session.undo()
        # a new commit after undo truncates the branched-off suffix
        session.registry.declare_equivalent(
            "sc1.Department.Name", "sc2.Department.Name"
        )
        applier.apply(shipper.poll(applier.cursor))
        assert applier.fingerprint() == leader_fingerprint(session)

    def test_checkpoint_reset_readopts_from_scratch(self, tmp_path):
        save = tmp_path / "lead.json"
        session, shipper, applier = (
            durable_session(save),
            WalShipper(wal_dir(save)),
            ReplicaApplier(),
        )
        applier.apply(shipper.poll())
        session.registry.declare_equivalent(
            "sc1.Student.Name", "sc2.Grad_student.Name"
        )
        session.save(save)
        shipment = shipper.poll(applier.cursor)
        assert shipment.restarted
        applier.apply(shipment)
        assert applier.fingerprint() == leader_fingerprint(session)

    def test_duplicate_shipment_is_idempotent(self, tmp_path):
        session, shipper, applier = synced_pair(tmp_path)
        before = applier.fingerprint()
        # re-ship the whole generation: duplicates are skipped
        applier.apply(shipper.poll())
        assert applier.fingerprint() == before


class TestGapsAndResync:
    def test_gap_raises_typed_error(self, tmp_path):
        session, shipper, applier = synced_pair(tmp_path)
        offset = applier.applied_offset()
        gap_commit = {
            "t": "commit",
            "events": [
                {
                    "offset": offset + 5,  # skips offsets in between
                    "txn": 99,
                    "scope": "registry",
                    "action": "noop",
                    "payload": {},
                }
            ],
        }
        shipment = Shipment(
            records=(gap_commit,),
            cursor=ShipCursor(applier.cursor.generation, 99),
            restarted=False,
            damaged=False,
            quarantined=(),
        )
        with pytest.raises(ReplicationGapError):
            applier.apply(shipment)
        # the gap is recorded for the recovery surface
        assert applier.report.replay_stopped is not None

    def test_resync_recovers_from_gap(self, tmp_path):
        session, shipper, applier = synced_pair(tmp_path)
        applier.report.replay_stopped = "simulated gap"
        state = session.analysis.kernel.export_state()
        applier.resync(state)
        assert applier.report.replay_stopped is None
        assert applier.fingerprint() == leader_fingerprint(session)
        # cursor=None: the next poll restarts and converges by dedup
        applier.apply(shipper.poll(applier.cursor))
        assert applier.fingerprint() == leader_fingerprint(session)

    def test_quarantine_names_accumulate_on_report(self, tmp_path):
        applier = ReplicaApplier()
        empty = ShipCursor("", 0)
        for names in (("a.corrupt",), ("a.corrupt", "b.corrupt")):
            applier.apply(
                Shipment(
                    records=(),
                    cursor=empty,
                    restarted=True,
                    damaged=False,
                    quarantined=names,
                )
            )
        assert applier.report.segments_quarantined == [
            "a.corrupt",
            "b.corrupt",
        ]

    def test_lag_accounting(self, tmp_path):
        session, shipper, applier = synced_pair(tmp_path)
        applier.observe_leader_offset(applier.applied_offset() + 3)
        assert applier.offset_behind() == 3
        applier.observe_leader_offset(applier.applied_offset())
        assert applier.offset_behind() == 0
        assert applier.caught_up_at is not None


class TestFrames:
    def test_frames_round_trip(self, tmp_path):
        session, shipper, _ = synced_pair(tmp_path)
        records = list(shipper.poll().records)
        data = encode_frames(records)
        decoded, good, damaged = decode_frames(data)
        assert decoded == records
        assert good == len(data)
        assert not damaged

    def test_torn_frame_decodes_to_intact_prefix(self, tmp_path):
        session, shipper, _ = synced_pair(tmp_path)
        records = list(shipper.poll().records)
        data = encode_frames(records)
        decoded, good, damaged = decode_frames(data[:-4])
        assert damaged
        assert decoded == records[:-1]

    def test_corrupted_frame_stops_decode(self, tmp_path):
        session, shipper, _ = synced_pair(tmp_path)
        records = list(shipper.poll().records)
        data = bytearray(encode_frames(records))
        data[-2] ^= 0xFF  # flip a payload byte in the last frame
        decoded, _good, damaged = decode_frames(bytes(data))
        assert damaged
        assert decoded == records[:-1]

    def test_session_is_read_only_view(self, tmp_path):
        session, shipper, applier = synced_pair(tmp_path)
        view = applier.session()
        assert view is not None
        assert sorted(view.schemas) == sorted(session.schemas)
        # rebuilt lazily: same object until the next apply dirties it
        assert applier.session() is view
        session.registry.declare_equivalent(
            "sc1.Student.Name", "sc2.Grad_student.Name"
        )
        applier.apply(shipper.poll(applier.cursor))
        assert applier.session() is not view
