"""Replication fixtures: a durable leader session and a service pair.

The service pair runs leader and replica as two in-process apps joined
by an :class:`InProcessLeaderLink` — no sockets, no pump thread; tests
drive replication rounds explicitly with ``plane.sync_once()`` so every
assertion sees a deterministic stream position.
"""

from __future__ import annotations

import pytest

from repro.service import ServiceApp, TenantAuth
from repro.service.replication import InProcessLeaderLink
from repro.tool.session import ToolSession
from repro.workloads.university import build_sc1, build_sc2

from tests.service.conftest import SC1_DDL, SC2_DDL, TOKENS, Client

#: the shared replication-plane secret both test nodes are configured
#: with: the replica presents it to the leader, and operators present
#: it on fence/promote
REPL_TOKEN = "repl-operator-secret"

__all__ = ["REPL_TOKEN", "SC1_DDL", "SC2_DDL", "TOKENS", "Client"]


def durable_session(path) -> ToolSession:
    """A WAL-backed session with both paper schemas adopted."""
    session = ToolSession.open(path)
    session.adopt_schema(build_sc1())
    session.adopt_schema(build_sc2())
    return session


@pytest.fixture
def leader_app(tmp_path):
    application = ServiceApp(
        tmp_path / "leader",
        auth=TenantAuth.from_tokens(TOKENS),
        max_resident=4,
        replication_token=REPL_TOKEN,
    )
    yield application
    application.close()


@pytest.fixture
def replica_app(tmp_path, leader_app):
    application = ServiceApp(
        tmp_path / "replica",
        auth=TenantAuth.from_tokens(TOKENS),
        max_resident=4,
        replication_link=InProcessLeaderLink(leader_app, REPL_TOKEN),
        replication_token=REPL_TOKEN,
        replication_autostart=False,
    )
    yield application
    application.close()


@pytest.fixture
def leader(leader_app):
    return Client(leader_app)


@pytest.fixture
def replica(replica_app):
    return Client(replica_app)


@pytest.fixture
def seeded_leader(leader):
    """The leader with the standard seeded session ``s1``."""
    assert leader.post("/v1/sessions", {"session_id": "s1"})[0] == 201
    assert (
        leader.post("/v1/sessions/s1/schemas", {"ddl": SC1_DDL})[0] == 201
    )
    assert (
        leader.post("/v1/sessions/s1/schemas", {"ddl": SC2_DDL})[0] == 201
    )
    leader.post(
        "/v1/sessions/s1/equivalences",
        {"first": "sc1.Student.Name", "second": "sc2.Grad_student.Name"},
    )
    leader.post(
        "/v1/sessions/s1/equivalences",
        {"first": "sc1.Department.Name", "second": "sc2.Department.Name"},
    )
    return leader
