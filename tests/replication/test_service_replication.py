"""End-to-end service replication: reads, guards, failover, fencing."""

from __future__ import annotations

import time

import pytest

from repro.service import ServiceApp, TenantAuth
from repro.service.replication import InProcessLeaderLink

from tests.replication.conftest import SC1_DDL, TOKENS, Client


def sync(replica_app):
    return replica_app.replication.sync_once()


class TestReplicaReads:
    def test_replica_serves_identical_fingerprint(
        self, seeded_leader, replica, replica_app
    ):
        sync(replica_app)
        _, on_leader = seeded_leader.get("/v1/sessions/s1")
        status, on_replica = replica.get("/v1/sessions/s1")
        assert status == 200
        assert (
            on_replica["state_fingerprint"]
            == on_leader["state_fingerprint"]
        )
        assert on_replica["events"] == on_leader["events"]

    def test_replica_serves_schemas_and_suggestions(
        self, seeded_leader, replica, replica_app
    ):
        sync(replica_app)
        status, payload = replica.get("/v1/sessions/s1/schemas")
        assert status == 200
        assert payload["schemas"] == ["sc1", "sc2"]
        status, payload = replica.get(
            "/v1/sessions/s1/suggestions",
            query={"first": "sc1", "second": "sc2"},
        )
        assert status == 200
        assert "suggestions" in payload

    def test_replica_tracks_later_writes(
        self, seeded_leader, replica, replica_app
    ):
        sync(replica_app)
        seeded_leader.post(
            "/v1/sessions/s1/assertions",
            {
                "first": "sc1.Department",
                "second": "sc2.Department",
                "kind": "EQUALS",
            },
        )
        sync(replica_app)
        _, on_leader = seeded_leader.get("/v1/sessions/s1")
        _, on_replica = replica.get("/v1/sessions/s1")
        assert (
            on_replica["state_fingerprint"]
            == on_leader["state_fingerprint"]
        )

    def test_unknown_session_is_404_on_replica(
        self, seeded_leader, replica, replica_app
    ):
        sync(replica_app)
        status, payload = replica.get("/v1/sessions/ghost")
        assert status == 404
        assert payload["error"]["code"] == "session_not_found"

    def test_replica_stats_reflect_appliers(
        self, seeded_leader, replica, replica_app
    ):
        sync(replica_app)
        status, payload = replica.get("/v1/stats")
        assert status == 200
        assert payload["manager"]["resident_sessions"] == 1


class TestWriteRouting:
    def test_write_on_replica_is_typed_503(
        self, seeded_leader, replica, replica_app
    ):
        sync(replica_app)
        status, payload = replica.post(
            "/v1/sessions/s1/undo"
        )
        assert status == 503
        assert payload["error"]["code"] == "replication_not_leader"

    def test_create_on_replica_refused(self, replica, replica_app):
        status, payload = replica.post(
            "/v1/sessions", {"session_id": "nope"}
        )
        assert status == 503
        assert payload["error"]["code"] == "replication_not_leader"

    def test_leader_still_writable(self, seeded_leader):
        status, _ = seeded_leader.post("/v1/sessions/s1/undo")
        assert status == 200


class TestLagGuards:
    def test_min_offset_guard_503_with_retry_after(
        self, seeded_leader, replica_app
    ):
        sync(replica_app)
        client = Client(replica_app)
        response = replica_app.dispatch(
            __import__("repro.service.http", fromlist=["Request"]).Request(
                method="GET",
                path="/v1/sessions/s1",
                headers={
                    "authorization": "Bearer token-acme",
                    "x-repro-min-offset": "9999",
                },
            )
        )
        assert response.status == 503
        payload = response.json_payload()
        assert payload["error"]["code"] == "replica_lagging"
        assert "retry-after" in response.headers
        assert int(response.headers["retry-after"]) >= 1

    def test_satisfied_min_offset_passes(self, seeded_leader, replica_app):
        sync(replica_app)
        _, detail = seeded_leader.get("/v1/sessions/s1")
        response = replica_app.dispatch(
            __import__("repro.service.http", fromlist=["Request"]).Request(
                method="GET",
                path="/v1/sessions/s1",
                headers={
                    "authorization": "Bearer token-acme",
                    "x-repro-min-offset": str(detail["events"]),
                },
            )
        )
        assert response.status == 200

    def test_stale_replica_refuses_reads(
        self, seeded_leader, replica, replica_app
    ):
        sync(replica_app)
        replica_app.replication.max_lag_s = 0.0
        time.sleep(0.01)
        status, payload = replica.get("/v1/sessions/s1")
        assert status == 503
        assert payload["error"]["code"] == "replica_lagging"

    def test_never_synced_replica_refuses_session_reads(
        self, seeded_leader, replica, replica_app
    ):
        # no sync_once: lag is unbounded, but the 404 path still wins
        # for sessions the replica has never heard of
        status, payload = replica.get("/v1/sessions/s1")
        assert status == 404


class TestFailover:
    def test_promote_makes_replica_writable(
        self, seeded_leader, replica, replica_app
    ):
        sync(replica_app)
        status, payload = replica.post("/v1/replication/promote")
        assert status == 200
        assert payload["role"] == "leader"
        assert payload["epoch"] == 2
        assert payload["materialized"] == ["acme/s1"]
        status, _ = replica.post("/v1/sessions/s1/undo")
        assert status == 200

    def test_promotion_preserves_fingerprint(
        self, seeded_leader, replica, replica_app
    ):
        sync(replica_app)
        _, before = seeded_leader.get("/v1/sessions/s1")
        replica.post("/v1/replication/promote")
        _, after = replica.get("/v1/sessions/s1")
        assert (
            after["state_fingerprint"] == before["state_fingerprint"]
        )

    def test_old_leader_is_fenced_after_promote(
        self, seeded_leader, replica, replica_app
    ):
        sync(replica_app)
        replica.post("/v1/replication/promote")
        status, payload = seeded_leader.post("/v1/sessions/s1/undo")
        assert status == 503
        assert payload["error"]["code"] == "replication_fenced"

    def test_fencing_survives_leader_restart(
        self, tmp_path, seeded_leader, replica, replica_app, leader_app
    ):
        sync(replica_app)
        replica.post("/v1/replication/promote")
        leader_app.close()
        revived = ServiceApp(
            tmp_path / "leader",
            auth=TenantAuth.from_tokens(TOKENS),
            replication_autostart=False,
        )
        try:
            client = Client(revived)
            status, payload = client.post("/v1/sessions/s1/undo")
            assert status == 503
            assert payload["error"]["code"] == "replication_fenced"
            # reads still work on the fenced node
            assert client.get("/v1/sessions/s1")[0] == 200
        finally:
            revived.close()

    def test_promote_is_idempotent_on_leader(self, leader):
        status, payload = leader.post("/v1/replication/promote")
        assert status == 200
        assert payload["role"] == "leader"
        assert payload["materialized"] == []

    def test_fence_requires_strictly_higher_epoch(self, leader):
        status, payload = leader.post(
            "/v1/replication/fence", {"epoch": 1}
        )
        assert status == 200
        assert payload["fenced_now"] is False
        assert payload["role"] == "leader"
        status, payload = leader.post(
            "/v1/replication/fence", {"epoch": 2}
        )
        assert payload["fenced_now"] is True
        assert payload["role"] == "fenced"


class TestReplicationSurfaces:
    def test_status_reports_role_and_lag(
        self, seeded_leader, replica, replica_app
    ):
        sync(replica_app)
        status, payload = replica.get("/v1/replication/status")
        assert status == 200
        assert payload["role"] == "replica"
        assert payload["offset_behind"] == 0
        assert payload["lag_seconds"] is not None

    def test_leader_counts_followers(
        self, seeded_leader, leader, replica_app
    ):
        sync(replica_app)
        status, payload = leader.get("/v1/replication/status")
        assert status == 200
        assert payload["followers_connected"] == 1

    def test_replica_recovery_surfaces_leader_quarantine(
        self, tmp_path, seeded_leader, replica, replica_app, leader_app
    ):
        sync(replica_app)
        # quarantined files appear on the leader (as crash recovery
        # would leave them); the names must reach follower operators
        wal = (
            tmp_path / "leader" / "acme" / "s1.json.wal"
        )
        (wal / "wal-0000000009.seg.corrupt").write_bytes(b"xx")
        sync(replica_app)
        status, payload = replica.get("/v1/sessions/s1/recovery")
        assert status == 200
        assert payload["recovery"]["segments_quarantined"] == [
            "wal-0000000009.seg.corrupt"
        ]

    def test_wal_endpoint_requires_known_session(self, seeded_leader):
        status, payload = seeded_leader.get(
            "/v1/replication/wal/acme/ghost"
        )
        assert status == 404

    def test_replication_endpoints_require_auth(self, leader_app):
        client = Client(leader_app, token=None)
        status, _ = client.get("/v1/replication/status")
        assert status == 401

    def test_query_posts_stay_replica_served(
        self, seeded_leader, replica, replica_app
    ):
        sync(replica_app)
        # a federated query is a read; it must not bounce with 503.
        # (The library may still reject the request text — that is a
        # 4xx/5xx from the handler, not the routing gate.)
        status, payload = replica.post(
            "/v1/sessions/s1/query", {"request": "select Name from Ghost"}
        )
        assert status != 503
