"""End-to-end service replication: reads, guards, failover, fencing."""

from __future__ import annotations

import time

import pytest

from repro.service import ServiceApp, TenantAuth
from repro.service.replication import InProcessLeaderLink

from tests.replication.conftest import REPL_TOKEN, SC1_DDL, TOKENS, Client


def sync(replica_app):
    return replica_app.replication.sync_once()


class TestReplicaReads:
    def test_replica_serves_identical_fingerprint(
        self, seeded_leader, replica, replica_app
    ):
        sync(replica_app)
        _, on_leader = seeded_leader.get("/v1/sessions/s1")
        status, on_replica = replica.get("/v1/sessions/s1")
        assert status == 200
        assert (
            on_replica["state_fingerprint"]
            == on_leader["state_fingerprint"]
        )
        assert on_replica["events"] == on_leader["events"]

    def test_replica_serves_schemas_and_suggestions(
        self, seeded_leader, replica, replica_app
    ):
        sync(replica_app)
        status, payload = replica.get("/v1/sessions/s1/schemas")
        assert status == 200
        assert payload["schemas"] == ["sc1", "sc2"]
        status, payload = replica.get(
            "/v1/sessions/s1/suggestions",
            query={"first": "sc1", "second": "sc2"},
        )
        assert status == 200
        assert "suggestions" in payload

    def test_replica_tracks_later_writes(
        self, seeded_leader, replica, replica_app
    ):
        sync(replica_app)
        seeded_leader.post(
            "/v1/sessions/s1/assertions",
            {
                "first": "sc1.Department",
                "second": "sc2.Department",
                "kind": "EQUALS",
            },
        )
        sync(replica_app)
        _, on_leader = seeded_leader.get("/v1/sessions/s1")
        _, on_replica = replica.get("/v1/sessions/s1")
        assert (
            on_replica["state_fingerprint"]
            == on_leader["state_fingerprint"]
        )

    def test_unknown_session_is_404_on_replica(
        self, seeded_leader, replica, replica_app
    ):
        sync(replica_app)
        status, payload = replica.get("/v1/sessions/ghost")
        assert status == 404
        assert payload["error"]["code"] == "session_not_found"

    def test_replica_stats_reflect_appliers(
        self, seeded_leader, replica, replica_app
    ):
        sync(replica_app)
        status, payload = replica.get("/v1/stats")
        assert status == 200
        assert payload["manager"]["resident_sessions"] == 1


class TestWriteRouting:
    def test_write_on_replica_is_typed_503(
        self, seeded_leader, replica, replica_app
    ):
        sync(replica_app)
        status, payload = replica.post(
            "/v1/sessions/s1/undo"
        )
        assert status == 503
        assert payload["error"]["code"] == "replication_not_leader"

    def test_create_on_replica_refused(self, replica, replica_app):
        status, payload = replica.post(
            "/v1/sessions", {"session_id": "nope"}
        )
        assert status == 503
        assert payload["error"]["code"] == "replication_not_leader"

    def test_leader_still_writable(self, seeded_leader):
        status, _ = seeded_leader.post("/v1/sessions/s1/undo")
        assert status == 200


class TestLagGuards:
    def test_min_offset_guard_503_with_retry_after(
        self, seeded_leader, replica_app
    ):
        sync(replica_app)
        client = Client(replica_app)
        response = replica_app.dispatch(
            __import__("repro.service.http", fromlist=["Request"]).Request(
                method="GET",
                path="/v1/sessions/s1",
                headers={
                    "authorization": "Bearer token-acme",
                    "x-repro-min-offset": "9999",
                },
            )
        )
        assert response.status == 503
        payload = response.json_payload()
        assert payload["error"]["code"] == "replica_lagging"
        assert "retry-after" in response.headers
        assert int(response.headers["retry-after"]) >= 1

    def test_satisfied_min_offset_passes(self, seeded_leader, replica_app):
        sync(replica_app)
        _, detail = seeded_leader.get("/v1/sessions/s1")
        response = replica_app.dispatch(
            __import__("repro.service.http", fromlist=["Request"]).Request(
                method="GET",
                path="/v1/sessions/s1",
                headers={
                    "authorization": "Bearer token-acme",
                    "x-repro-min-offset": str(detail["events"]),
                },
            )
        )
        assert response.status == 200

    def test_stale_replica_refuses_reads(
        self, seeded_leader, replica, replica_app
    ):
        sync(replica_app)
        replica_app.replication.max_lag_s = 0.0
        time.sleep(0.01)
        status, payload = replica.get("/v1/sessions/s1")
        assert status == 503
        assert payload["error"]["code"] == "replica_lagging"

    def test_never_synced_replica_refuses_session_reads(
        self, seeded_leader, replica, replica_app
    ):
        # no sync_once: lag is unbounded, but the 404 path still wins
        # for sessions the replica has never heard of
        status, payload = replica.get("/v1/sessions/s1")
        assert status == 404


def promote(client):
    """Promotion is an operator action: present the replication token."""
    return client.post("/v1/replication/promote", token=REPL_TOKEN)


class TestFailover:
    def test_promote_makes_replica_writable(
        self, seeded_leader, replica, replica_app
    ):
        sync(replica_app)
        status, payload = promote(replica)
        assert status == 200
        assert payload["role"] == "leader"
        assert payload["epoch"] == 2
        assert payload["materialized"] == ["acme/s1"]
        status, _ = replica.post("/v1/sessions/s1/undo")
        assert status == 200

    def test_promotion_preserves_fingerprint(
        self, seeded_leader, replica, replica_app
    ):
        sync(replica_app)
        _, before = seeded_leader.get("/v1/sessions/s1")
        promote(replica)
        _, after = replica.get("/v1/sessions/s1")
        assert (
            after["state_fingerprint"] == before["state_fingerprint"]
        )

    def test_old_leader_is_fenced_after_promote(
        self, seeded_leader, replica, replica_app
    ):
        sync(replica_app)
        promote(replica)
        status, payload = seeded_leader.post("/v1/sessions/s1/undo")
        assert status == 503
        assert payload["error"]["code"] == "replication_fenced"

    def test_fencing_survives_leader_restart(
        self, tmp_path, seeded_leader, replica, replica_app, leader_app
    ):
        sync(replica_app)
        promote(replica)
        leader_app.close()
        revived = ServiceApp(
            tmp_path / "leader",
            auth=TenantAuth.from_tokens(TOKENS),
            replication_autostart=False,
        )
        try:
            client = Client(revived)
            status, payload = client.post("/v1/sessions/s1/undo")
            assert status == 503
            assert payload["error"]["code"] == "replication_fenced"
            # reads still work on the fenced node
            assert client.get("/v1/sessions/s1")[0] == 200
        finally:
            revived.close()

    def test_promote_is_idempotent_on_leader(self, leader):
        status, payload = promote(leader)
        assert status == 200
        assert payload["role"] == "leader"
        assert payload["materialized"] == []

    def test_fence_requires_strictly_higher_epoch(self, leader):
        status, payload = leader.post(
            "/v1/replication/fence", {"epoch": 1}, token=REPL_TOKEN
        )
        assert status == 200
        assert payload["fenced_now"] is False
        assert payload["role"] == "leader"
        status, payload = leader.post(
            "/v1/replication/fence", {"epoch": 2}, token=REPL_TOKEN
        )
        assert payload["fenced_now"] is True
        assert payload["role"] == "fenced"

    def test_leader_delete_does_not_resurrect_on_replica(
        self, seeded_leader, replica, replica_app
    ):
        sync(replica_app)
        assert replica.get("/v1/sessions/s1")[0] == 200
        status, payload = seeded_leader.delete(
            "/v1/sessions/s1", query={"purge": "1"}
        )
        assert status == 200 and payload["purged"] is True
        sync(replica_app)
        # the delete propagated: the replica stops serving it...
        status, payload = replica.get("/v1/sessions/s1")
        assert status == 404
        # ...and promotion does not materialize it back to durability
        status, payload = promote(replica)
        assert status == 200
        assert payload["materialized"] == []
        assert replica.get("/v1/sessions/s1")[0] == 404


class TestReplicationSurfaces:
    def test_status_reports_role_and_lag(
        self, seeded_leader, replica, replica_app
    ):
        sync(replica_app)
        status, payload = replica.get("/v1/replication/status")
        assert status == 200
        assert payload["role"] == "replica"
        assert payload["offset_behind"] == 0
        assert payload["lag_seconds"] is not None

    def test_leader_counts_followers(
        self, seeded_leader, leader, replica_app
    ):
        sync(replica_app)
        status, payload = leader.get("/v1/replication/status")
        assert status == 200
        assert payload["followers_connected"] == 1

    def test_replica_recovery_surfaces_leader_quarantine(
        self, tmp_path, seeded_leader, replica, replica_app, leader_app
    ):
        sync(replica_app)
        # quarantined files appear on the leader (as crash recovery
        # would leave them); the names must reach follower operators
        wal = (
            tmp_path / "leader" / "acme" / "s1.json.wal"
        )
        (wal / "wal-0000000009.seg.corrupt").write_bytes(b"xx")
        sync(replica_app)
        status, payload = replica.get("/v1/sessions/s1/recovery")
        assert status == 200
        assert payload["recovery"]["segments_quarantined"] == [
            "wal-0000000009.seg.corrupt"
        ]

    def test_wal_endpoint_requires_known_session(self, seeded_leader):
        status, payload = seeded_leader.get(
            "/v1/replication/wal/acme/ghost"
        )
        assert status == 404

    def test_replication_endpoints_require_auth(self, leader_app):
        client = Client(leader_app, token=None)
        status, _ = client.get("/v1/replication/status")
        assert status == 401

    def test_query_posts_stay_replica_served(
        self, seeded_leader, replica, replica_app
    ):
        sync(replica_app)
        # a federated query is a read; it must not bounce with 503.
        # (The library may still reject the request text — that is a
        # 4xx/5xx from the handler, not the routing gate.)
        status, payload = replica.post(
            "/v1/sessions/s1/query", {"request": "select Name from Ghost"}
        )
        assert status != 503


class TestReplicationAuth:
    """Tenant tokens must not reach other tenants' streams or controls."""

    def test_tenant_cannot_fetch_other_tenants_wal(self, seeded_leader):
        intruder = Client(seeded_leader.app, token="token-beta")
        status, payload = intruder.get("/v1/replication/wal/acme/s1")
        assert status == 403
        assert payload["error"]["code"] == "tenant_forbidden"

    def test_tenant_cannot_fetch_other_tenants_snapshot(
        self, seeded_leader
    ):
        intruder = Client(seeded_leader.app, token="token-beta")
        status, payload = intruder.get(
            "/v1/replication/snapshot/acme/s1"
        )
        assert status == 403
        assert payload["error"]["code"] == "tenant_forbidden"

    def test_tenant_reaches_its_own_stream(self, seeded_leader):
        # token-acme fetching acme's own WAL/snapshot stays allowed
        assert seeded_leader.get("/v1/replication/wal/acme/s1")[0] == 200
        assert (
            seeded_leader.get("/v1/replication/snapshot/acme/s1")[0] == 200
        )

    def test_operator_token_reaches_any_stream(self, seeded_leader):
        operator = Client(seeded_leader.app, token=REPL_TOKEN)
        assert operator.get("/v1/replication/wal/acme/s1")[0] == 200
        assert operator.get("/v1/replication/snapshot/acme/s1")[0] == 200

    def test_inventory_is_tenant_scoped_for_tenant_tokens(
        self, seeded_leader
    ):
        beta = Client(seeded_leader.app, token="token-beta")
        assert beta.post("/v1/sessions", {"session_id": "b1"})[0] == 201
        _, payload = beta.get("/v1/replication/sessions")
        assert {row["tenant"] for row in payload["sessions"]} == {"beta"}
        operator = Client(seeded_leader.app, token=REPL_TOKEN)
        _, payload = operator.get("/v1/replication/sessions")
        assert {row["tenant"] for row in payload["sessions"]} == {
            "acme",
            "beta",
        }

    def test_tenant_token_cannot_fence(self, leader):
        status, payload = leader.post(
            "/v1/replication/fence", {"epoch": 10**9}
        )
        assert status == 403
        assert payload["error"]["code"] == "tenant_forbidden"
        # the leader is untouched and still writable
        status, payload = leader.get(
            "/v1/replication/status", token=REPL_TOKEN
        )
        assert payload["role"] == "leader"
        assert leader.post("/v1/sessions", {"session_id": "w1"})[0] == 201

    def test_tenant_token_cannot_promote(
        self, seeded_leader, replica, replica_app
    ):
        sync(replica_app)
        status, payload = replica.post("/v1/replication/promote")
        assert status == 403
        assert payload["error"]["code"] == "tenant_forbidden"
        _, payload = replica.get("/v1/replication/status")
        assert payload["role"] == "replica"

    def test_unconfigured_node_refuses_operator_surfaces(self, tmp_path):
        # no replication token configured: fence/promote are closed, not
        # open — there is no credential that reaches them
        app = ServiceApp(
            tmp_path / "bare",
            auth=TenantAuth.from_tokens(TOKENS),
            replication_autostart=False,
        )
        try:
            client = Client(app)
            status, _ = client.post(
                "/v1/replication/fence", {"epoch": 99}
            )
            assert status == 403
            status, _ = client.post(
                "/v1/replication/promote", token=REPL_TOKEN
            )
            assert status == 401  # not a tenant token either
        finally:
            app.close()
