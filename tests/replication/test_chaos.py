"""The replication chaos property, plus deterministic crash cases.

Hypothesis drives a random sitting on the leader while a
:class:`~repro.faults.FaultPlan` schedules one simulated failure at a
replication crashpoint — a torn shipped frame (connection severed
mid-frame), a dropped leader read, a follower death mid-apply, or a
crash inside promotion's persist window.  The follower keeps polling
through the schedule, restarting from its committed state when it
"dies".  The property, bitwise by canonical ``state_payload``
fingerprint:

* at every observable moment the follower's state equals some state the
  leader actually committed (a prefix of its history — no torn frame,
  duplicated record or replay artifact ever surfaces), and
* once the faults stop, one clean round converges the follower to the
  leader's exact current state, after which promotion yields a leader
  of a strictly higher epoch and the fenced ex-leader refuses writes
  with the typed error.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import faults
from repro.errors import ReproError
from repro.faults import FaultPlan, InjectedCrash
from repro.replication import (
    FencedError,
    ReplicaApplier,
    ReplicationCoordinator,
    ReplicationGapError,
    ShipCursor,
    Shipment,
    WalShipper,
    decode_frames,
    encode_frames,
)
from repro.tool.session import ToolSession
from repro.workloads.university import build_sc1, build_sc2

from tests.kernel.test_property import apply_operation, fingerprint, operations

REPLICATION_POINTS = (
    "repl.ship.read",
    "repl.ship.frame",
    "repl.apply.record",
    "repl.promote.persist",
)

crash_plans = st.builds(
    FaultPlan,
    crash_at=st.sampled_from(REPLICATION_POINTS),
    occurrence=st.integers(min_value=1, max_value=4),
    torn=st.booleans(),
    seed=st.integers(min_value=0, max_value=2**16),
)

#: leader-side moves: library mutations (from the kernel property suite)
#: plus the replication-relevant structural ones
leader_moves = st.one_of(
    operations,
    st.just(("undo",)),
    st.just(("snapshot",)),
    st.just(("checkpoint",)),
)


def apply_move(session: ToolSession, save_path: Path, move) -> None:
    if move[0] == "undo":
        try:
            session.undo()
        except ReproError:
            pass  # empty history: a no-op move
    elif move[0] == "snapshot":
        session.analysis.kernel.snapshot()
    elif move[0] == "checkpoint":
        session.save(save_path)  # WAL reset: new generation
    else:
        apply_operation(session.analysis, move)


def replicate_round(
    shipper: WalShipper, applier: ReplicaApplier
) -> tuple[ReplicaApplier, bool]:
    """One poll → wire → apply round, with transit faults simulated.

    A connection severed mid-frame (``repl.ship.frame``) delivers the
    partial prefix — exactly what a real socket would have flushed; the
    follower's CRC re-verification drops the torn tail and the cursor
    advances only over what decoded, so the remainder re-ships next
    round.  The injected crash also settles the leader's tracked WAL
    files (its "process" died), so the second return value tells the
    caller to recover the leader.  A crash mid-apply propagates to the
    caller as the follower's death.
    """
    leader_died = False
    shipment = shipper.poll(applier.cursor)
    try:
        data = encode_frames(list(shipment.records))
    except InjectedCrash as crash:
        data = crash.partial or b""
        leader_died = True
    records, _good, _damaged = decode_frames(data)
    start = shipment.cursor.records - len(shipment.records)
    delivered = Shipment(
        records=tuple(records),
        cursor=ShipCursor(
            shipment.cursor.generation, start + len(records)
        ),
        restarted=shipment.restarted,
        damaged=shipment.damaged,
        quarantined=shipment.quarantined,
    )
    applier.apply(delivered)
    return applier, leader_died


@settings(max_examples=25, deadline=None)
@given(
    moves=st.lists(leader_moves, min_size=1, max_size=6),
    plan=crash_plans,
)
def test_follower_is_always_a_committed_prefix(moves, plan):
    with tempfile.TemporaryDirectory() as tmp:
        save = Path(tmp) / "leader.json"
        session = ToolSession.open(save)
        # every WAL record boundary is a legitimate follower landing
        # spot, so the committed set must include the states between
        # the individual bootstrap commits too
        committed = {fingerprint(session.analysis)}
        session.adopt_schema(build_sc1())
        committed.add(fingerprint(session.analysis))
        session.adopt_schema(build_sc2())
        committed.add(fingerprint(session.analysis))
        session.analysis.kernel.snapshot_every = 3  # force rotations
        shipper = WalShipper(f"{save}.wal")
        applier = ReplicaApplier()
        with faults.inject(plan):
            for move in moves:
                apply_move(session, save, move)
                committed.add(fingerprint(session.analysis))
                try:
                    applier, leader_died = replicate_round(
                        shipper, applier
                    )
                except InjectedCrash:
                    # follower death mid-apply (or a dropped leader
                    # read): it comes back with its committed prefix
                    # and no cursor (cold restart)
                    leader_died = True
                    applier = ReplicaApplier(state=applier.state())
                except ReplicationGapError:
                    pytest.fail("clean stream must never present a gap")
                if leader_died:
                    # any injected crash settles (closes) every tracked
                    # durable file, so the leader recovers from disk —
                    # landing on a committed state per the
                    # crash-anywhere property
                    session = ToolSession.open(save)
                    session.analysis.kernel.snapshot_every = 3
                    committed.add(fingerprint(session.analysis))
                observed = applier.fingerprint()
                if observed is not None:
                    assert observed in committed, (
                        f"follower diverged from every committed state "
                        f"under plan {plan}"
                    )
        # faults over: one clean round must converge exactly
        applier, _ = replicate_round(shipper, applier)
        assert applier.fingerprint() == fingerprint(session.analysis)
        assert (
            applier.applied_offset() == session.analysis.kernel.bus.offset
        )


@settings(max_examples=10, deadline=None)
@given(plan=crash_plans, moves=st.lists(leader_moves, max_size=3))
def test_promotion_fences_the_old_leader(moves, plan):
    with tempfile.TemporaryDirectory() as tmp:
        save = Path(tmp) / "leader.json"
        session = ToolSession.open(save)
        session.adopt_schema(build_sc1())
        for move in moves:
            apply_move(session, save, move)
        leader = ReplicationCoordinator(
            Path(tmp) / "leader-replication.json", role="leader"
        )
        follower = ReplicationCoordinator(
            Path(tmp) / "follower-replication.json", role="replica"
        )
        epoch = None
        with faults.inject(plan):
            try:
                epoch = follower.promote()
            except InjectedCrash:
                # death inside the persist window: the node resurrects
                # in its *old* role — promotion never half-happens
                revived = ReplicationCoordinator(
                    Path(tmp) / "follower-replication.json"
                )
                assert revived.role == "replica"
                follower = revived
        if epoch is None:
            epoch = follower.promote()
        assert epoch > 1
        assert leader.fence(epoch) is True
        with pytest.raises(ReproError) as caught:
            leader.require_writable()
        assert isinstance(caught.value, FencedError)
        assert caught.value.code == "replication_fenced"
        # fencing survives the ex-leader's own restart
        resurrected = ReplicationCoordinator(
            Path(tmp) / "leader-replication.json"
        )
        with pytest.raises(FencedError):
            resurrected.require_writable()
        # and a fenced node can never promote itself back
        with pytest.raises(FencedError):
            resurrected.promote()


def test_stale_leader_resurrection_cannot_win_epoch_race(tmp_path):
    """The ISSUE's stale-generation scenario, deterministically.

    Old leader at epoch 1 dies; the follower promotes to epoch 2.  The
    old leader resurrects *without* having been fenced (it was down
    during the fence call) — the moment it observes the new epoch on
    any exchange it fences itself, and its own promote attempts then
    fail forever.
    """
    old = ReplicationCoordinator(tmp_path / "old.json", role="leader")
    new = ReplicationCoordinator(tmp_path / "new.json", role="replica")
    epoch = new.promote()
    assert epoch == 2
    # resurrection: a fresh process over the same state file
    revived = ReplicationCoordinator(tmp_path / "old.json")
    assert revived.role == "leader"  # it does not know yet
    revived.observe_epoch(epoch)
    assert revived.role == "fenced"
    with pytest.raises(FencedError):
        revived.require_writable()


def test_replica_adopts_higher_epoch_without_fencing(tmp_path):
    replica = ReplicationCoordinator(tmp_path / "r.json", role="replica")
    replica.observe_epoch(7)
    assert replica.role == "replica"
    assert replica.epoch == 7
    # its own later promotion out-bids everything it has seen
    assert replica.promote() == 8
