"""The engine facade end to end on the paper world."""

import pytest

from repro.data.migrate import federated_answer
from repro.errors import FederationError, MappingError, UnknownNameError
from repro.federation import (
    ExecutionPolicy,
    FederationEngine,
    FlakyBackend,
    InstanceBackend,
)
from repro.federation.health import BreakerState
from repro.obs.trace import tracing
from repro.query.parser import parse_request

HEALTHY_REQUESTS = [
    "select D_Name from E_Department",
    "select D_Name, Location from E_Department",
    "select D_Name, D_GPA from Student",
    "select D_Name, D_GPA, Support_type from Student",
    "select Name, Rank from Faculty",
    "select D_Name from Student via E_Stud_Majo(E_Department)",
]


class TestHealthyQueries:
    @pytest.mark.parametrize("text", HEALTHY_REQUESTS)
    def test_rows_equal_oracle(
        self, engine, mappings, stores, paper_result, text
    ):
        result = engine.query(text)
        assert result.ok and not result.degraded
        assert result.rows == federated_answer(
            parse_request(text), mappings, stores, paper_result.schema
        )

    def test_overlap_case_equals_oracle(
        self, ana_engine, mappings, ana_stores, paper_result
    ):
        text = "select D_Name, D_GPA, Support_type from Student"
        result = ana_engine.query(text)
        assert result.rows == federated_answer(
            parse_request(text), mappings, ana_stores, paper_result.schema
        )
        # ana's sc1 row is subsumed by her fuller sc2 grad-student row
        assert ("ana", 3.8, "ta") in result.rows
        assert ("ana", 3.8, None) not in result.rows

    def test_accepts_request_objects_and_text(self, engine):
        text = "select D_Name from Student"
        assert (
            engine.query(parse_request(text)).rows == engine.query(text).rows
        )

    def test_unknown_class_raises(self, engine):
        # a class missing from the integrated schema fails name lookup;
        # one that is present but unmapped fails routing — both ReproErrors
        with pytest.raises((MappingError, UnknownNameError)):
            engine.query("select X from Ghost")

    def test_summary_mentions_strategy_and_health(self, engine):
        result = engine.query("select D_Name, D_GPA from Student")
        summary = result.summary()
        assert "subset-union" in summary
        assert "2/2 component(s) answered" in summary


class TestInstrumentation:
    def test_spans_cover_the_whole_query(self, engine):
        with tracing() as tracer:
            engine.query("select D_Name, D_GPA from Student")
        names = tracer.names()
        for expected in (
            "federation.plan",
            "federation.fanout",
            "federation.component",
            "federation.merge",
        ):
            assert expected in names
        assert len(tracer.by_name("federation.component")) == 2

    def test_metrics_counters_populate(self, engine):
        engine.query("select D_Name from Student")
        engine.query("select D_Name from Student")
        counters = engine.metrics
        assert counters.counter("federation.plan.hit").value == 1
        assert counters.counter("federation.leg.ok").value == 4
        assert counters.counter("federation.rows").value > 0


class TestDegradedQueries:
    def _dead_sc2_engine(self, mappings, ana_stores, paper_result,
                         object_network, **policy_overrides):
        options = dict(retries=0, backoff=0.001)
        options.update(policy_overrides)
        return FederationEngine.for_backends(
            mappings,
            {
                "sc1": InstanceBackend(ana_stores["sc1"]),
                "sc2": FlakyBackend(
                    InstanceBackend(ana_stores["sc2"]), down=True
                ),
            },
            paper_result.schema,
            object_network=object_network,
            policy=ExecutionPolicy(**options),
        )

    def test_partial_results_instead_of_exception(
        self, mappings, ana_stores, paper_result, object_network
    ):
        engine = self._dead_sc2_engine(
            mappings, ana_stores, paper_result, object_network
        )
        result = engine.query("select D_Name, D_GPA, Support_type from Student")
        assert result.degraded and not result.ok
        assert not result.health.for_component("sc2").ok
        # sc1's certain answers still arrive; ana lacks her sc2 attributes
        assert ("ana", 3.8, None) in result.rows
        assert ("ana", 3.8, "ta") not in result.rows

    def test_repeated_failures_open_the_breaker(
        self, mappings, ana_stores, paper_result, object_network
    ):
        engine = self._dead_sc2_engine(
            mappings, ana_stores, paper_result, object_network
        )
        for _ in range(3):  # default failure threshold
            engine.query("select D_Name from Student")
        assert (
            engine.executor.breaker_for("sc2").state is BreakerState.OPEN
        )
        result = engine.query("select D_Name from Student")
        assert result.health.for_component("sc2").skipped

    def test_strict_policy_raises(
        self, mappings, ana_stores, paper_result, object_network
    ):
        engine = self._dead_sc2_engine(
            mappings,
            ana_stores,
            paper_result,
            object_network,
            partial_results=False,
        )
        with pytest.raises(FederationError) as err:
            engine.query("select D_Name from Student")
        assert err.value.health is not None
