"""Shared federation fixtures: paper-world mappings, stores and engines."""

from __future__ import annotations

import pytest

from repro.data.instances import InstanceStore
from repro.data.populate import populate_store
from repro.federation import FederationEngine
from repro.integration.mappings import build_mappings


@pytest.fixture
def mappings(paper_result, registry):
    return build_mappings(paper_result, registry.schemas())


@pytest.fixture
def stores(registry):
    """Seeded, non-overlapping component databases."""
    return {
        "sc1": populate_store(registry.schema("sc1"), seed=1),
        "sc2": populate_store(registry.schema("sc2"), seed=2),
    }


@pytest.fixture
def ana_stores(registry):
    """Hand-built overlap: "ana" is an sc1 Student AND an sc2 Grad_student."""
    sc1 = InstanceStore(registry.schema("sc1"))
    sc2 = InstanceStore(registry.schema("sc2"))
    ana = sc1.insert("Student", {"Name": "ana", "GPA": 3.8})
    sc1.insert("Student", {"Name": "bob", "GPA": 2.9})
    cs = sc1.insert("Department", {"Name": "cs"})
    sc1.connect(
        "Majors", {"Student": ana, "Department": cs}, {"Since": "1986-09-01"}
    )
    sc2.insert(
        "Grad_student", {"Name": "ana", "GPA": 3.8, "Support_type": "ta"}
    )
    sc2.insert("Faculty", {"Name": "prof_x", "Rank": "full"})
    sc2.insert("Department", {"Name": "cs", "Location": "west"})
    return {"sc1": sc1, "sc2": sc2}


@pytest.fixture
def engine(mappings, stores, paper_result, object_network):
    return FederationEngine.for_stores(
        mappings, stores, paper_result.schema, object_network=object_network
    )


@pytest.fixture
def ana_engine(mappings, ana_stores, paper_result, object_network):
    return FederationEngine.for_stores(
        mappings,
        ana_stores,
        paper_result.schema,
        object_network=object_network,
    )
