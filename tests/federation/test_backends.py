"""Backends: protocol, sqlite-vs-reference equivalence, fault injection."""

import pytest

from repro.errors import BackendError
from repro.federation.backends import (
    ComponentBackend,
    FlakyBackend,
    InstanceBackend,
    SqliteBackend,
    render_sql_ddl,
)
from repro.query.parser import parse_request
from repro.translate.to_relational import to_relational

SC1_REQUESTS = [
    "select Name, GPA from Student",
    "select * from Student",
    "select Name from Student where GPA > 3",
    "select Name from Department",
    "select Name, GPA from Student via Majors(Department)",
    "select Name from Department via Majors(Student)",
]

SC2_REQUESTS = [
    "select Name, Support_type from Grad_student",
    "select Name, Rank from Faculty",
    "select Name from Faculty where Rank = 'full'",
    "select Name, Location from Department",
    "select Name from Grad_student via Majors(Department)",
    "select Name from Department via Works(Faculty)",
]


class TestInstanceBackend:
    def test_satisfies_the_protocol(self, stores):
        backend = InstanceBackend(stores["sc1"])
        assert isinstance(backend, ComponentBackend)
        assert backend.name == "sc1"

    def test_name_override(self, stores):
        assert InstanceBackend(stores["sc1"], name="edge").name == "edge"

    def test_delegates_to_select(self, stores):
        backend = InstanceBackend(stores["sc1"])
        for text in SC1_REQUESTS:
            request = parse_request(text)
            assert backend.execute(request) == stores["sc1"].select(request)


class TestSqliteBackend:
    @pytest.mark.parametrize(
        "component, texts",
        [("sc1", SC1_REQUESTS), ("sc2", SC2_REQUESTS)],
    )
    def test_matches_reference_semantics(self, stores, component, texts):
        store = stores[component]
        sql = SqliteBackend.from_store(store)
        reference = InstanceBackend(store)
        for text in texts:
            request = parse_request(text)
            assert sql.execute(request) == reference.execute(request), text

    def test_overlap_instances_roundtrip(self, ana_stores):
        sql = SqliteBackend.from_store(ana_stores["sc2"])
        request = parse_request("select Name, GPA, Support_type from Grad_student")
        assert sql.execute(request) == [("ana", 3.8, "ta")]

    def test_strict_ddl_kept_for_display(self, registry):
        backend = SqliteBackend(registry.schema("sc1"))
        assert any("PRIMARY KEY" in statement for statement in backend.ddl)

    def test_render_without_key_enforcement(self, registry):
        relational = to_relational(registry.schema("sc1"))
        lax = render_sql_ddl(relational, enforce_keys=False)
        assert all("PRIMARY KEY" not in statement for statement in lax)
        assert all(statement.startswith("CREATE TABLE") for statement in lax)


class TestFlakyBackend:
    def test_down_always_raises(self, stores):
        backend = FlakyBackend(InstanceBackend(stores["sc1"]), down=True)
        with pytest.raises(BackendError, match="injected fault"):
            backend.execute(parse_request("select Name from Department"))

    def test_fail_first_then_recovers(self, stores):
        inner = InstanceBackend(stores["sc1"])
        backend = FlakyBackend(inner, fail_first=2)
        request = parse_request("select Name from Department")
        for _ in range(2):
            with pytest.raises(BackendError):
                backend.execute(request)
        assert backend.execute(request) == inner.execute(request)

    def test_error_rate_is_deterministic(self, stores):
        request = parse_request("select Name from Department")

        def outcomes(seed):
            backend = FlakyBackend(
                InstanceBackend(stores["sc1"]), error_rate=0.5, seed=seed
            )
            results = []
            for _ in range(8):
                try:
                    backend.execute(request)
                    results.append(True)
                except BackendError:
                    results.append(False)
            return results

        assert outcomes(7) == outcomes(7)
        assert True in outcomes(7) and False in outcomes(7)

    def test_wraps_name_of_inner_backend(self, stores):
        backend = FlakyBackend(InstanceBackend(stores["sc2"]))
        assert backend.name == "sc2"
