"""The cached planner: strategies, key positions, cache invalidation."""

import pytest

from repro.federation.plan import FederatedPlan, MergeStrategy
from repro.federation.planner import QueryPlanner
from repro.obs.metrics import MetricsRegistry
from repro.query.parser import parse_request


@pytest.fixture
def planner(mappings, paper_result, object_network):
    return QueryPlanner(
        mappings,
        paper_result.schema,
        object_network=object_network,
        metrics=MetricsRegistry(),
    )


class TestStrategies:
    def test_equal_departments_key_merge(self, planner):
        plan = planner.plan(
            parse_request("select D_Name, Location from E_Department")
        )
        assert plan.strategy is MergeStrategy.KEY_MERGE
        assert plan.components == ["sc1", "sc2"]

    def test_contained_students_subset_union(self, planner):
        plan = planner.plan(parse_request("select D_Name, D_GPA from Student"))
        assert plan.strategy is MergeStrategy.SUBSET_UNION
        # sc2 contributes through its Grad_student subclass
        assert [
            (leg.schema, leg.request.object_name) for leg in plan.legs
        ] == [("sc1", "Student"), ("sc2", "Grad_student")]
        codes = {pair.code for pair in plan.pair_assertions}
        assert None not in codes

    def test_single_leg_is_outer_union(self, planner):
        plan = planner.plan(parse_request("select Rank from Faculty"))
        assert len(plan.legs) == 1
        assert plan.pair_assertions == ()
        assert plan.strategy is MergeStrategy.OUTER_UNION

    def test_no_network_means_outer_union(self, mappings, paper_result):
        planner = QueryPlanner(mappings, paper_result.schema)
        plan = planner.plan(
            parse_request("select D_Name, Location from E_Department")
        )
        assert plan.strategy is MergeStrategy.OUTER_UNION

    def test_key_positions_from_integrated_schema(self, planner):
        plan = planner.plan(parse_request("select D_Name, D_GPA from Student"))
        assert plan.key_positions == (0,)
        no_key = planner.plan(parse_request("select Location from E_Department"))
        assert no_key.key_positions == ()


class TestCache:
    def test_identical_requests_hit(self, planner):
        first = planner.plan(parse_request("select D_Name from Student"))
        second = planner.plan(parse_request("select D_Name from Student"))
        assert second is first
        assert planner.cache_size() == 1
        assert planner.metrics.counter("federation.plan.hit").value == 1
        assert planner.metrics.counter("federation.plan.miss").value == 1

    def test_distinct_requests_miss(self, planner):
        planner.plan(parse_request("select D_Name from Student"))
        planner.plan(parse_request("select Rank from Faculty"))
        assert planner.cache_size() == 2
        assert planner.metrics.counter("federation.plan.miss").value == 2

    def test_invalidate_drops_plans_and_advances_token(self, planner):
        planner.plan(parse_request("select D_Name from Student"))
        token = planner.version_token()
        planner.invalidate()
        assert planner.cache_size() == 0
        assert planner.version_token() == token + 1

    def test_registry_change_invalidates(
        self, mappings, paper_result, object_network, registry
    ):
        planner = QueryPlanner(
            mappings,
            paper_result.schema,
            object_network=object_network,
            registry=registry,
        )
        plan = planner.plan(parse_request("select D_Name from Student"))
        assert planner.cache_size() == 1
        token = planner.version_token()
        registry.declare_equivalent(
            "sc1.Department.Name", "sc2.Department.Location"
        )
        assert planner.cache_size() == 0
        assert planner.version_token() > token
        replanned = planner.plan(parse_request("select D_Name from Student"))
        assert replanned is not plan
        assert replanned.version_token == planner.version_token()


class TestPlanRendering:
    def test_explain_names_strategy_legs_and_justification(self, planner):
        plan = planner.plan(parse_request("select D_Name, D_GPA from Student"))
        text = plan.explain()
        assert "merge strategy : subset-union" in text
        assert "entity keys    : D_Name" in text
        assert "[sc1]" in text and "[sc2]" in text
        assert "justified by" in text

    def test_round_trips_through_dict(self, planner):
        plan = planner.plan(
            parse_request("select D_Name, Location from E_Department")
        )
        restored = FederatedPlan.from_dict(plan.to_dict())
        assert str(restored.request) == str(plan.request)
        assert restored.strategy is plan.strategy
        assert restored.components == plan.components
        assert restored.key_positions == plan.key_positions
        assert restored.pair_assertions == plan.pair_assertions
        assert [leg.missing_attributes for leg in restored.legs] == [
            leg.missing_attributes for leg in plan.legs
        ]
