"""The executor: fan-out, retries, timeouts, breakers, partial results."""

import time

import pytest

from repro.errors import BackendError, FederationError
from repro.federation.executor import ExecutionPolicy, FederationExecutor
from repro.federation.health import BreakerState, CircuitBreaker
from repro.federation.planner import QueryPlanner
from repro.obs.metrics import MetricsRegistry
from repro.query.parser import parse_request


class StubBackend:
    """A scriptable backend: optional sleep, optional leading failures."""

    def __init__(self, name, rows=((1,),), fail=0, sleep=0.0):
        self.name = name
        self.rows = [tuple(row) for row in rows]
        self.fail = fail
        self.sleep = sleep
        self.calls = 0

    def execute(self, request):
        self.calls += 1
        if self.sleep:
            time.sleep(self.sleep)
        if self.calls <= self.fail:
            raise BackendError(f"scripted fault on {self.name}")
        return list(self.rows)


@pytest.fixture
def plan(mappings, paper_result, object_network):
    planner = QueryPlanner(
        mappings, paper_result.schema, object_network=object_network
    )
    return planner.plan(parse_request("select D_Name from Student"))


def quick_policy(**overrides):
    options = dict(retries=2, backoff=0.001, backoff_multiplier=1.0)
    options.update(overrides)
    return ExecutionPolicy(**options)


class TestFanOut:
    def test_rows_align_with_plan_legs(self, plan):
        executor = FederationExecutor(
            {
                "sc1": StubBackend("sc1", rows=[("a",)]),
                "sc2": StubBackend("sc2", rows=[("b",)]),
            },
            quick_policy(),
        )
        result = executor.execute(plan)
        assert result.leg_rows == [[("a",)], [("b",)]]
        assert result.health.ok
        assert all(s.attempts == 1 for s in result.health.statuses)

    def test_sequential_mode_matches_concurrent(self, plan):
        backends = {
            "sc1": StubBackend("sc1", rows=[("a",)]),
            "sc2": StubBackend("sc2", rows=[("b",)]),
        }
        concurrent = FederationExecutor(backends, quick_policy()).execute(plan)
        sequential = FederationExecutor(
            backends, quick_policy(sequential=True)
        ).execute(plan)
        assert sequential.leg_rows == concurrent.leg_rows
        assert sequential.health.ok

    def test_missing_backend_is_skipped_not_fatal(self, plan):
        executor = FederationExecutor(
            {"sc1": StubBackend("sc1")}, quick_policy()
        )
        result = executor.execute(plan)
        status = result.health.for_component("sc2")
        assert status.skipped and not status.ok
        assert "no backend registered" in status.error
        assert result.health.degraded


class TestRetries:
    def test_transient_fault_absorbed(self, plan):
        metrics = MetricsRegistry()
        flaky = StubBackend("sc2", fail=1)
        executor = FederationExecutor(
            {"sc1": StubBackend("sc1"), "sc2": flaky},
            quick_policy(),
            metrics=metrics,
        )
        result = executor.execute(plan)
        assert result.health.ok
        assert result.health.for_component("sc2").attempts == 2
        assert metrics.counter("federation.retries").value == 1

    def test_exhausted_retries_degrade(self, plan):
        executor = FederationExecutor(
            {"sc1": StubBackend("sc1"), "sc2": StubBackend("sc2", fail=99)},
            quick_policy(retries=1),
        )
        result = executor.execute(plan)
        assert result.health.degraded
        status = result.health.for_component("sc2")
        assert not status.ok and status.attempts == 2
        assert "BackendError" in status.error
        assert result.leg_rows[1] is None

    def test_strict_mode_raises_with_health(self, plan):
        executor = FederationExecutor(
            {"sc1": StubBackend("sc1"), "sc2": StubBackend("sc2", fail=99)},
            quick_policy(retries=0, partial_results=False),
        )
        with pytest.raises(FederationError) as err:
            executor.execute(plan)
        assert err.value.health is not None
        assert not err.value.health.for_component("sc2").ok


class TestTimeouts:
    def test_slow_leg_times_out(self, plan):
        executor = FederationExecutor(
            {
                "sc1": StubBackend("sc1"),
                "sc2": StubBackend("sc2", sleep=0.5),
            },
            quick_policy(retries=0, timeout=0.05),
        )
        result = executor.execute(plan)
        status = result.health.for_component("sc2")
        assert status.timed_out and not status.ok
        assert result.health.for_component("sc1").ok
        assert result.leg_rows[1] is None


class TestBreakers:
    def test_opens_after_threshold_and_skips(self, plan):
        dead = StubBackend("sc2", fail=10 ** 6)
        executor = FederationExecutor(
            {"sc1": StubBackend("sc1"), "sc2": dead},
            quick_policy(retries=0, failure_threshold=1),
        )
        executor.execute(plan)
        assert executor.breaker_for("sc2").state is BreakerState.OPEN
        calls_before = dead.calls
        result = executor.execute(plan)
        assert dead.calls == calls_before  # breaker short-circuited the call
        status = result.health.for_component("sc2")
        assert status.skipped and "circuit breaker open" in status.error

    def test_success_resets_consecutive_failures(self, plan):
        recovering = StubBackend("sc2", fail=1)
        executor = FederationExecutor(
            {"sc1": StubBackend("sc1"), "sc2": recovering},
            quick_policy(retries=2, failure_threshold=2),
        )
        executor.execute(plan)
        breaker = executor.breaker_for("sc2")
        assert breaker.state is BreakerState.CLOSED
        assert breaker.consecutive_failures == 0


class TestCircuitBreakerUnit:
    def test_cooldown_half_open_probe_cycle(self):
        now = [0.0]
        breaker = CircuitBreaker(2, 10.0, clock=lambda: now[0])
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.allows()  # one failure is below the threshold
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN and not breaker.allows()
        now[0] = 10.0
        assert breaker.state is BreakerState.HALF_OPEN and breaker.allows()
        breaker.record_failure()  # the probe fails: re-open
        assert breaker.state is BreakerState.OPEN
        now[0] = 25.0
        assert breaker.allows()
        breaker.record_success()  # the probe succeeds: close
        assert breaker.state is BreakerState.CLOSED

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            CircuitBreaker(0)
