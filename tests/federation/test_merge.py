"""Assertion-aware merging: oracle pipeline, conflicts, reconciliation.

Uses a purpose-built two-component world where both components carry the
same attributes, so genuine value conflicts (two non-None disagreeing
values for one entity) can occur — the paper world's components never
disagree because each attribute lives in only one view.
"""

import pytest

from repro.assertions.kinds import AssertionKind
from repro.assertions.network import AssertionNetwork
from repro.data.instances import InstanceStore
from repro.data.migrate import federated_answer
from repro.ecr.builder import SchemaBuilder
from repro.ecr.schema import ObjectRef
from repro.federation import FederationEngine
from repro.federation.merge import merge_legs
from repro.federation.plan import MergeStrategy
from repro.integration.mappings import SchemaMapping

REQUEST = "select D_Name, D_GPA, D_Support from Student"


def component_schema(name):
    return (
        SchemaBuilder(name, "merge-test component")
        .entity(
            "Student",
            attrs=[("Name", "char", True), ("GPA", "real"), ("Support", "char")],
        )
        .build()
    )


def global_schema():
    return (
        SchemaBuilder("global", "merge-test integrated view")
        .entity(
            "Student",
            attrs=[
                ("D_Name", "char", True),
                ("D_GPA", "real"),
                ("D_Support", "char"),
            ],
        )
        .build()
    )


def mapping(name):
    return SchemaMapping(
        component_schema=name,
        integrated_schema="global",
        objects={"Student": "Student"},
        attributes={
            ("Student", "Name"): ("Student", "D_Name"),
            ("Student", "GPA"): ("Student", "D_GPA"),
            ("Student", "Support"): ("Student", "D_Support"),
        },
    )


def build_world(kind, rows_a, rows_b, **engine_options):
    """Two components related by ``kind``, loaded with the given rows."""
    schema_a, schema_b = component_schema("compA"), component_schema("compB")
    store_a, store_b = InstanceStore(schema_a), InstanceStore(schema_b)
    for values in rows_a:
        store_a.insert("Student", values, partial=True)
    for values in rows_b:
        store_b.insert("Student", values, partial=True)
    network = AssertionNetwork()
    network.add_object(ObjectRef("compA", "Student"))
    network.add_object(ObjectRef("compB", "Student"))
    network.specify(
        ObjectRef("compA", "Student"), ObjectRef("compB", "Student"), kind
    )
    mappings = {"compA": mapping("compA"), "compB": mapping("compB")}
    stores = {"compA": store_a, "compB": store_b}
    engine = FederationEngine.for_stores(
        mappings,
        stores,
        global_schema(),
        object_network=network,
        **engine_options,
    )
    return engine, mappings, stores


class TestOraclePipeline:
    def test_rows_equal_sequential_oracle(self):
        engine, mappings, stores = build_world(
            AssertionKind.EQUALS,
            [{"Name": "ana", "GPA": 3.8}, {"Name": "bob", "GPA": 2.9}],
            [{"Name": "ana", "Support": "ta"}, {"Name": "cyd", "GPA": 3.1}],
        )
        result = engine.query(REQUEST)
        oracle = federated_answer(
            result.plan.request, mappings, stores, global_schema()
        )
        assert result.rows == oracle
        assert result.plan.strategy is MergeStrategy.KEY_MERGE

    def test_exact_duplicates_collapse_and_count(self):
        engine, _, _ = build_world(
            AssertionKind.EQUALS,
            [{"Name": "ana", "GPA": 3.8, "Support": "ta"}],
            [{"Name": "ana", "GPA": 3.8, "Support": "ta"}],
        )
        result = engine.query(REQUEST)
        assert result.rows == [("ana", 3.8, "ta")]
        assert result.eliminated == 1

    def test_subsumed_rows_dropped(self):
        engine, _, _ = build_world(
            AssertionKind.EQUALS,
            [{"Name": "ana", "GPA": 3.8, "Support": "ta"}],
            [{"Name": "ana", "GPA": 3.8}],  # projects to ("ana", 3.8, None)
        )
        result = engine.query(REQUEST)
        assert result.rows == [("ana", 3.8, "ta")]

    def test_none_leg_contributes_nothing(self):
        engine, _, _ = build_world(
            AssertionKind.EQUALS,
            [{"Name": "ana", "GPA": 3.8}],
            [{"Name": "zed", "GPA": 1.0}],
        )
        plan = engine.plan(REQUEST)
        rows_a = [("ana", 3.8)]  # compA leg answered, compB leg did not
        positions_rows = [
            [("ana", 3.8, None)] if leg.schema == "compA" else None
            for leg in plan.legs
        ]
        outcome = merge_legs(plan, positions_rows)
        assert outcome.rows == [("ana", 3.8, None)]
        assert len(rows_a) == 1


class TestConflicts:
    def test_disagreement_surfaces_under_key_merge(self):
        engine, _, _ = build_world(
            AssertionKind.EQUALS,
            [{"Name": "ana", "GPA": 3.8}],
            [{"Name": "ana", "GPA": 2.0}],
        )
        result = engine.query(REQUEST)
        assert len(result.conflicts) == 1
        conflict = result.conflicts[0]
        assert conflict.key == ("ana",)
        assert conflict.attribute == "D_GPA"
        assert conflict.values == (2.0, 3.8)
        assert "D_GPA" in conflict.describe()
        # conflicting rows are both kept: neither subsumes the other
        assert len(result.rows) == 2

    def test_subset_union_reports_no_conflicts(self):
        engine, _, _ = build_world(
            AssertionKind.CONTAINS,
            [{"Name": "ana", "GPA": 3.8}],
            [{"Name": "ana", "GPA": 2.0}],
        )
        result = engine.query(REQUEST)
        assert result.plan.strategy is MergeStrategy.SUBSET_UNION
        assert result.conflicts == []

    def test_outer_union_for_overlapping_populations(self):
        engine, _, _ = build_world(
            AssertionKind.MAY_BE,
            [{"Name": "ana", "GPA": 3.8}],
            [{"Name": "ana", "GPA": 2.0}],
        )
        result = engine.query(REQUEST)
        assert result.plan.strategy is MergeStrategy.OUTER_UNION
        assert len(result.conflicts) == 1


class TestReconciliation:
    def test_opt_in_fuses_key_equal_rows(self):
        engine, _, _ = build_world(
            AssertionKind.EQUALS,
            [{"Name": "ana", "GPA": 3.8}],
            [{"Name": "ana", "Support": "ta"}],
            reconcile_entities=True,
        )
        result = engine.query(REQUEST)
        assert result.rows == [("ana", 3.8, "ta")]

    def test_default_keeps_oracle_rows(self):
        engine, _, _ = build_world(
            AssertionKind.EQUALS,
            [{"Name": "ana", "GPA": 3.8}],
            [{"Name": "ana", "Support": "ta"}],
        )
        result = engine.query(REQUEST)
        assert result.rows == [("ana", 3.8, None), ("ana", None, "ta")]

    def test_reconcile_ignored_outside_key_merge(self):
        engine, _, _ = build_world(
            AssertionKind.MAY_BE,
            [{"Name": "ana", "GPA": 3.8}],
            [{"Name": "ana", "Support": "ta"}],
            reconcile_entities=True,
        )
        result = engine.query(REQUEST)
        assert len(result.rows) == 2


@pytest.mark.parametrize(
    "kind, strategy",
    [
        (AssertionKind.EQUALS, MergeStrategy.KEY_MERGE),
        (AssertionKind.CONTAINS, MergeStrategy.SUBSET_UNION),
        (AssertionKind.CONTAINED_IN, MergeStrategy.SUBSET_UNION),
        (AssertionKind.MAY_BE, MergeStrategy.OUTER_UNION),
    ],
)
def test_strategy_follows_assertion(kind, strategy):
    engine, _, _ = build_world(kind, [{"Name": "ana"}], [{"Name": "bob"}])
    assert engine.plan(REQUEST).strategy is strategy
