"""Property: the engine's merged answers equal the sequential oracle.

The engine adds concurrency, fault tolerance and explainability on top of
:func:`repro.data.federated_answer` — never different rows.  Checked on
the paper's sc1/sc2 world over many population seeds and on fully
generated workloads (schemas, assertions, integration and data all
derived from a random :class:`GeneratorConfig`).
"""

from __future__ import annotations

from functools import lru_cache

from hypothesis import given, settings, strategies as st

from repro.assertions.network import AssertionNetwork
from repro.baselines.closure_baselines import drive_assertions_with_closure
from repro.data.migrate import federated_answer
from repro.data.populate import populate_store
from repro.ecr.schema import ObjectRef
from repro.ecr.walk import inherited_attributes
from repro.equivalence.registry import EquivalenceRegistry
from repro.errors import MappingError
from repro.federation import FederationEngine
from repro.integration.integrator import Integrator, integrate_pair
from repro.integration.mappings import build_mappings
from repro.query.ast import Request
from repro.workloads.generator import GeneratorConfig, generate_schema_pair
from repro.workloads.oracle import OracleDda
from repro.workloads.university import (
    PAPER_RELATIONSHIP_CODES,
    paper_assertions,
    paper_registry,
)


@lru_cache(maxsize=1)
def _paper_world():
    """Built once per test run: the sc1/sc2 integration and its mappings.

    Includes the relationship assertions so Majors merges into
    E_Stud_Majo, exactly as the full tool pipeline produces it.
    """
    registry = paper_registry()
    network = paper_assertions(registry)
    relationship_network = AssertionNetwork()
    for schema in registry.schemas():
        for relationship in schema.relationship_sets():
            relationship_network.add_object(
                ObjectRef(schema.name, relationship.name)
            )
    for first, second, code in PAPER_RELATIONSHIP_CODES:
        relationship_network.specify(
            ObjectRef.parse(first), ObjectRef.parse(second), code
        )
    result = Integrator(registry, network, relationship_network).integrate(
        "sc1", "sc2"
    )
    mappings = build_mappings(result, registry.schemas())
    return registry, network, result, mappings


PAPER_REQUESTS = [
    "select D_Name from E_Department",
    "select D_Name, Location from E_Department",
    "select D_Name, D_GPA from Student",
    "select D_Name, D_GPA, Support_type from Student",
    "select Name, Rank from Faculty",
    "select D_Name from Student via E_Stud_Majo(E_Department)",
]


@settings(deadline=None, max_examples=20)
@given(st.integers(0, 200))
def test_engine_equals_oracle_on_paper_world(seed):
    registry, network, result, mappings = _paper_world()
    stores = {
        "sc1": populate_store(registry.schema("sc1"), seed=seed),
        "sc2": populate_store(registry.schema("sc2"), seed=seed + 1),
    }
    engine = FederationEngine.for_stores(
        mappings, stores, result.schema, object_network=network
    )
    for text in PAPER_REQUESTS:
        outcome = engine.query(text)
        assert outcome.ok
        assert outcome.rows == federated_answer(
            outcome.plan.request, mappings, stores, result.schema
        ), text


def test_overlapping_ana_case(ana_engine, mappings, ana_stores, paper_result):
    """The paper's signature overlap: "ana" in both component databases."""
    for text in PAPER_REQUESTS:
        outcome = ana_engine.query(text)
        assert outcome.rows == federated_answer(
            outcome.plan.request, mappings, ana_stores, paper_result.schema
        ), text


configs = st.builds(
    GeneratorConfig,
    seed=st.integers(0, 10_000),
    concepts=st.integers(3, 8),
    overlap=st.floats(0.0, 1.0),
    category_rate=st.floats(0.0, 0.5),
)


def _federated_world(config):
    pair = generate_schema_pair(config)
    registry = EquivalenceRegistry([pair.first, pair.second])
    OracleDda(pair.truth).declare_all_equivalences(registry)
    network, _ = drive_assertions_with_closure(
        pair.first, pair.second, pair.truth
    )
    result = integrate_pair(
        registry, network, pair.first.name, pair.second.name
    )
    mappings = build_mappings(result, [pair.first, pair.second])
    stores = {
        schema.name: populate_store(
            schema, seed=config.seed, entities_per_class=4
        )
        for schema in (pair.first, pair.second)
    }
    engine = FederationEngine.for_stores(
        mappings, stores, result.schema, object_network=network
    )
    return result, mappings, stores, engine


@settings(deadline=None, max_examples=10)
@given(configs)
def test_engine_equals_oracle_on_generated_worlds(config):
    result, mappings, stores, engine = _federated_world(config)
    relationship_names = {
        relationship.name for relationship in result.schema.relationship_sets()
    }
    checked = 0
    for structure in result.schema:
        if structure.name in relationship_names:
            continue
        attributes = tuple(
            attribute.name
            for attribute in inherited_attributes(
                result.schema, structure.name
            )
        )[:3]
        if not attributes:
            continue
        request = Request(structure.name, attributes)
        try:
            outcome = engine.query(request)
        except MappingError:
            continue  # derived-only class no component covers directly
        assert outcome.ok
        assert outcome.rows == federated_answer(
            request, mappings, stores, result.schema
        ), str(request)
        checked += 1
    assert checked, "generated world produced no routable requests"
