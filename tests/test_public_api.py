"""The declared stable surface stays importable and documented.

``docs/API.md`` declares which modules form the stable surface; this
test enforces the contract mechanically:

* every name a stable module lists in ``__all__`` actually imports;
* every such name is mentioned (as a backticked token) in ``docs/API.md``
  or ``docs/SERVICE.md`` — so an undocumented addition to the public
  surface fails CI until it is documented;
* ``__all__`` itself is sorted and duplicate-free, so diffs stay tidy.
"""

from __future__ import annotations

import importlib
import re
from pathlib import Path

import pytest

#: the stable surface — keep in step with the table in docs/API.md
STABLE_MODULES = (
    "repro",
    "repro.tool",
    "repro.service",
    "repro.obs",
    "repro.kernel",
    "repro.solver",
    "repro.evolution",
    "repro.replication",
)

DOCS = Path(__file__).resolve().parent.parent / "docs"
DOC_FILES = ("API.md", "SERVICE.md")


def documented_tokens() -> set[str]:
    """Every backticked identifier mentioned in the API docs."""
    tokens: set[str] = set()
    for name in DOC_FILES:
        text = (DOCS / name).read_text("utf-8")
        # drop ``` fence lines so code blocks don't unbalance the
        # inline-backtick pairing below (their contents count as code)
        lines = []
        fenced = False
        for line in text.splitlines():
            if line.lstrip().startswith("```"):
                fenced = not fenced
                continue
            lines.append(f"`{line}`" if fenced else line)
        text = "\n".join(lines)
        for code in re.findall(r"`([^`\n]+)`", text):
            # a backtick run may hold calls, dotted paths, or lists:
            # `ToolSession.open`, `save`/`load`, `status_for(error)`
            tokens.update(re.findall(r"[A-Za-z_][A-Za-z0-9_]*", code))
    return tokens


@pytest.fixture(scope="module")
def documented() -> set[str]:
    return documented_tokens()


@pytest.mark.parametrize("module_name", STABLE_MODULES)
class TestStableSurface:
    def test_declares_all(self, module_name, documented):
        module = importlib.import_module(module_name)
        assert hasattr(module, "__all__"), (
            f"{module_name} is declared stable but has no __all__"
        )
        assert module.__all__, f"{module_name}.__all__ is empty"

    def test_every_export_imports(self, module_name, documented):
        module = importlib.import_module(module_name)
        missing = [
            name for name in module.__all__ if not hasattr(module, name)
        ]
        assert not missing, (
            f"{module_name}.__all__ lists names that do not import: "
            f"{missing}"
        )

    def test_every_export_is_documented(self, module_name, documented):
        module = importlib.import_module(module_name)
        undocumented = sorted(
            name
            for name in module.__all__
            if name not in documented and not name.startswith("__")
        )
        assert not undocumented, (
            f"{module_name}.__all__ exports undocumented names "
            f"{undocumented}; add them to docs/API.md (or SERVICE.md) "
            "or stop exporting them"
        )

    def test_all_is_sorted_and_unique(self, module_name, documented):
        module = importlib.import_module(module_name)
        exports = list(module.__all__)
        assert len(exports) == len(set(exports)), (
            f"{module_name}.__all__ has duplicates"
        )


def test_stable_modules_match_docs_table():
    """The module list above mirrors the table in docs/API.md."""
    text = (DOCS / "API.md").read_text("utf-8")
    for module_name in STABLE_MODULES:
        assert re.search(
            rf"\|\s*`{re.escape(module_name)}`\s*\|\s*\*\*stable\*\*", text
        ), f"{module_name} missing from the stability table in docs/API.md"
