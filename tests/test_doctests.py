"""Run the doctest examples embedded in module docstrings."""

import doctest

import pytest

import repro.integration.naming
import repro.query.parser
import repro.ecr.domains

MODULES = [
    repro.integration.naming,
    repro.query.parser,
    repro.ecr.domains,
]


@pytest.mark.parametrize(
    "module", MODULES, ids=[module.__name__ for module in MODULES]
)
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0
