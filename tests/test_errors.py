"""Contract tests for the exception hierarchy."""

import inspect

import pytest

import repro.errors as errors_module
from repro.errors import (
    AssertionSpecError,
    ConflictError,
    DdlError,
    DuplicateNameError,
    ReproError,
    SchemaError,
    UnknownNameError,
    ValidationError,
)


def _error_classes():
    return [
        obj
        for _, obj in inspect.getmembers(errors_module, inspect.isclass)
        if issubclass(obj, Exception) and obj.__module__ == "repro.errors"
    ]


class TestHierarchy:
    def test_every_error_is_a_repro_error(self):
        for cls in _error_classes():
            assert issubclass(cls, ReproError), cls

    def test_every_error_has_a_docstring(self):
        for cls in _error_classes():
            assert cls.__doc__ and cls.__doc__.strip(), cls

    def test_conflict_is_an_assertion_error(self):
        assert issubclass(ConflictError, AssertionSpecError)

    def test_named_errors_are_schema_errors(self):
        assert issubclass(DuplicateNameError, SchemaError)
        assert issubclass(UnknownNameError, SchemaError)
        assert issubclass(ValidationError, SchemaError)


class TestMessages:
    def test_duplicate_name_scoped(self):
        error = DuplicateNameError("entity set", "Student", "sc1")
        assert str(error) == "duplicate entity set name 'Student' in sc1"
        assert error.kind == "entity set"
        assert error.name == "Student"

    def test_duplicate_name_unscoped(self):
        assert "in" not in str(DuplicateNameError("schema", "sc1"))

    def test_unknown_name(self):
        error = UnknownNameError("attribute", "GPA", "Student")
        assert str(error) == "unknown attribute 'GPA' in Student"

    def test_ddl_error_line_prefix(self):
        assert str(DdlError("boom", 7)) == "line 7: boom"
        assert str(DdlError("boom")) == "boom"

    def test_validation_error_joins_issues(self):
        from repro.ecr.validation import Severity, ValidationIssue

        issues = [
            ValidationIssue(Severity.ERROR, "A", "first"),
            ValidationIssue(Severity.ERROR, "B", "second"),
        ]
        error = ValidationError(issues)
        assert "first" in str(error) and "second" in str(error)
        assert error.issues == issues

    def test_one_except_catches_everything(self, sc3, sc4):
        """The documented catch-all contract: ``except ReproError``."""
        from repro.assertions.network import AssertionNetwork
        from repro.ecr.schema import ObjectRef

        network = AssertionNetwork()
        network.seed_schema(sc3)
        network.seed_schema(sc4)
        network.specify(
            ObjectRef("sc3", "Instructor"), ObjectRef("sc4", "Grad_student"), 2
        )
        with pytest.raises(ReproError) as excinfo:
            network.specify(
                ObjectRef("sc3", "Instructor"), ObjectRef("sc4", "Student"), 0
            )
        assert excinfo.value.report.chain  # the payload is still reachable


class TestCodes:
    """Machine-readable codes: the contract remote clients branch on."""

    def test_every_error_declares_its_own_code(self):
        for cls in _error_classes():
            assert isinstance(cls.code, str) and cls.code, cls
            assert cls.code == cls.code.lower(), cls
            assert "code" in cls.__dict__, (
                f"{cls.__name__} inherits its parent's code; every "
                f"published error class must declare its own"
            )

    def test_codes_are_unique(self):
        seen = {}
        for cls in _error_classes():
            assert cls.code not in seen, (cls, seen[cls.code])
            seen[cls.code] = cls

    def test_to_wire_shape(self):
        wire = UnknownNameError("schema", "sc9").to_wire()
        assert wire["code"] == "unknown_name"
        assert "sc9" in wire["message"]
        assert wire["details"]["name"] == "sc9"

    def test_to_wire_is_json_serializable(self):
        import json

        from repro.errors import DictionaryNotFoundError

        for error in (
            UnknownNameError("schema", "sc9"),
            DuplicateNameError("entity set", "Student", "sc1"),
            DictionaryNotFoundError("/tmp/missing.json"),
            DdlError("boom", 7),
            ReproError("generic"),
        ):
            json.dumps(error.to_wire())

    def test_service_errors_join_the_hierarchy(self):
        """Service errors subclass ReproError and extend the code space."""
        import inspect

        import repro.service.errors as service_errors

        library_codes = {cls.code for cls in _error_classes()}
        service_classes = [
            obj
            for _, obj in inspect.getmembers(service_errors, inspect.isclass)
            if issubclass(obj, Exception)
            and obj.__module__ == "repro.service.errors"
        ]
        assert service_classes
        seen = set()
        for cls in service_classes:
            assert issubclass(cls, ReproError), cls
            assert "code" in cls.__dict__, cls
            assert cls.code not in library_codes, cls
            assert cls.code not in seen, cls
            seen.add(cls.code)

    def test_status_table_covers_every_code(self):
        """Every published code resolves to exactly one HTTP status."""
        import inspect

        import repro.service.errors as service_errors
        from repro.service.errors import status_for_code

        codes = {cls.code for cls in _error_classes()}
        codes.update(
            obj.code
            for _, obj in inspect.getmembers(service_errors, inspect.isclass)
            if issubclass(obj, Exception)
            and obj.__module__ == "repro.service.errors"
        )
        for code in codes:
            status = status_for_code(code)
            assert 400 <= status <= 599, (code, status)
