"""Tests for n-ary (iterated) integration."""

import pytest

from repro.assertions.kinds import AssertionKind
from repro.ecr.builder import SchemaBuilder
from repro.ecr.validation import validate_schema
from repro.errors import IntegrationError
from repro.integration.nary import integrate_all
from repro.workloads.oracle import GroundTruth


def _three_view_world():
    """Three views of one Person concept, pairwise overlapping."""
    v1 = (
        SchemaBuilder("v1")
        .entity("Person", attrs=[("Ssn", "char", True), ("Name", "char")])
        .build()
    )
    v2 = (
        SchemaBuilder("v2")
        .entity("Employee", attrs=[("Ssn", "char", True), ("Salary", "real")])
        .build()
    )
    v3 = (
        SchemaBuilder("v3")
        .entity("Manager", attrs=[("Ssn", "char", True), ("Bonus", "real")])
        .build()
    )
    truth = GroundTruth()
    truth.add_attribute_pair("v1.Person.Ssn", "v2.Employee.Ssn")
    truth.add_attribute_pair("v1.Person.Ssn", "v3.Manager.Ssn")
    truth.add_attribute_pair("v2.Employee.Ssn", "v3.Manager.Ssn")
    truth.add_object_assertion(
        "v2.Employee", "v1.Person", AssertionKind.CONTAINED_IN
    )
    truth.add_object_assertion(
        "v3.Manager", "v1.Person", AssertionKind.CONTAINED_IN
    )
    truth.add_object_assertion(
        "v3.Manager", "v2.Employee", AssertionKind.CONTAINED_IN
    )
    return [v1, v2, v3], truth


class TestIntegrateAll:
    def test_needs_two_schemas(self):
        schemas, truth = _three_view_world()
        with pytest.raises(IntegrationError):
            integrate_all(schemas[:1], truth)

    def test_three_way_chain(self):
        schemas, truth = _three_view_world()
        result, mappings = integrate_all(schemas, truth)
        schema = result.schema
        assert schema.name == "global"
        assert not any(issue.is_error for issue in validate_schema(schema))
        # Manager ⊂ Employee ⊂ Person must come out as a two-level lattice
        assert schema.category("Employee").parents == ["Person"]
        assert schema.category("Manager").parents == ["Employee"]

    def test_mappings_reach_final_schema(self):
        schemas, truth = _three_view_world()
        result, mappings = integrate_all(schemas, truth)
        assert mappings["v1"].map_object("Person") == "Person"
        assert mappings["v2"].map_object("Employee") == "Employee"
        assert mappings["v3"].map_object("Manager") == "Manager"
        # Ssn merged across all three views ends in one integrated attribute
        targets = {
            mappings["v1"].map_attribute("Person", "Ssn"),
            mappings["v2"].map_attribute("Employee", "Ssn"),
            mappings["v3"].map_attribute("Manager", "Ssn"),
        }
        assert len(targets) == 1

    def test_two_schema_case_matches_pairwise(self):
        schemas, truth = _three_view_world()
        result, mappings = integrate_all(schemas[:2], truth)
        assert result.schema.name == "global"
        assert result.schema.category("Employee").parents == ["Person"]

    def test_order_changes_names_not_content(self):
        schemas, truth = _three_view_world()
        forward, _ = integrate_all(schemas, truth, result_name="f")
        backward, _ = integrate_all(list(reversed(schemas)), truth, result_name="b")
        def shape(result):
            return (
                len(result.schema.entity_sets()),
                len(result.schema.categories()),
                sorted(
                    tuple(sorted(c.parents)) for c in result.schema.categories()
                ),
            )
        assert shape(forward) == shape(backward)

    def test_hospital_airline_workloads(self):
        from repro.workloads import (
            airline_ground_truth,
            build_airline_operations,
            build_airline_reservations,
            build_hospital_admissions,
            build_hospital_clinic,
            hospital_ground_truth,
        )

        hospital, maps = integrate_all(
            [build_hospital_admissions(), build_hospital_clinic()],
            hospital_ground_truth(),
        )
        assert not any(
            issue.is_error for issue in validate_schema(hospital.schema)
        )
        assert maps["adm"].map_object("Physician") == "E_Phys_Doct"
        airline, maps = integrate_all(
            [build_airline_reservations(), build_airline_operations()],
            airline_ground_truth(),
        )
        assert maps["res"].map_object("Flight") == maps["ops"].map_object(
            "Flight"
        )
        assert any(node.is_derived for node in airline.nodes.values())
