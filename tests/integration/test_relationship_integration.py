"""Tests for relationship-set integration beyond the equals merge:
derived relationship parents, lattice edges, and multi-parent categories
passing through integration."""

import pytest

from repro.assertions.network import AssertionNetwork
from repro.ecr.builder import SchemaBuilder
from repro.ecr.schema import ObjectRef
from repro.ecr.validation import validate_schema
from repro.equivalence.registry import EquivalenceRegistry
from repro.integration.integrator import Integrator


def _advising_world():
    """Two schemas whose relationships overlap: Advises may-be Mentors."""
    first = (
        SchemaBuilder("x")
        .entity("Prof", attrs=[("Pid", "char", True)])
        .entity("Stud", attrs=[("Sid", "char", True)])
        .relationship(
            "Advises",
            connects=[("Prof", "(0,n)"), ("Stud", "(0,1)")],
            attrs=[("Since", "date")],
        )
        .build()
    )
    second = (
        SchemaBuilder("y")
        .entity("Prof", attrs=[("Pid", "char", True)])
        .entity("Stud", attrs=[("Sid", "char", True)])
        .relationship(
            "Mentors",
            connects=[("Prof", "(0,n)"), ("Stud", "(0,n)")],
            attrs=[("Started", "date")],
        )
        .build()
    )
    registry = EquivalenceRegistry([first, second])
    registry.declare_equivalent("x.Prof.Pid", "y.Prof.Pid")
    registry.declare_equivalent("x.Stud.Sid", "y.Stud.Sid")
    network = AssertionNetwork()
    network.seed_schema(first)
    network.seed_schema(second)
    network.specify(ObjectRef("x", "Prof"), ObjectRef("y", "Prof"), 1)
    network.specify(ObjectRef("x", "Stud"), ObjectRef("y", "Stud"), 1)
    rel_network = AssertionNetwork()
    rel_network.add_object(ObjectRef("x", "Advises"))
    rel_network.add_object(ObjectRef("y", "Mentors"))
    return registry, network, rel_network


class TestDerivedRelationshipParents:
    def test_may_be_creates_derived_relationship(self):
        registry, network, rel_network = _advising_world()
        rel_network.specify(
            ObjectRef("x", "Advises"), ObjectRef("y", "Mentors"), 5
        )
        result = Integrator(registry, network, rel_network).integrate("x", "y")
        schema = result.schema
        assert "D_Advi_Ment" in schema
        derived = schema.relationship_set("D_Advi_Ment")
        # the umbrella connects the merged participants with loose bounds
        legs = {leg.object_name: str(leg.cardinality) for leg in derived.participations}
        assert set(legs) == {"E_Prof", "E_Stud"}
        assert legs["E_Stud"] == "(0,n)"  # union of (0,1) and (0,n)
        assert set(result.relationship_lattice) == {
            ("Advises", "D_Advi_Ment"),
            ("Mentors", "D_Advi_Ment"),
        }
        assert not any(i.is_error for i in validate_schema(schema))

    def test_contained_in_records_lattice_edge_only(self):
        registry, network, rel_network = _advising_world()
        rel_network.specify(
            ObjectRef("x", "Advises"), ObjectRef("y", "Mentors"), 2
        )
        result = Integrator(registry, network, rel_network).integrate("x", "y")
        assert result.relationship_lattice == [("Advises", "Mentors")]
        assert "D_Advi_Ment" not in result.schema

    def test_contains_records_reversed_edge(self):
        registry, network, rel_network = _advising_world()
        rel_network.specify(
            ObjectRef("x", "Advises"), ObjectRef("y", "Mentors"), 3
        )
        result = Integrator(registry, network, rel_network).integrate("x", "y")
        assert result.relationship_lattice == [("Mentors", "Advises")]

    def test_nonintegrable_keeps_both_apart(self):
        registry, network, rel_network = _advising_world()
        rel_network.specify(
            ObjectRef("x", "Advises"), ObjectRef("y", "Mentors"), 0
        )
        result = Integrator(registry, network, rel_network).integrate("x", "y")
        assert result.relationship_lattice == []
        names = {r.name for r in result.schema.relationship_sets()}
        assert names == {"Advises", "Mentors"}

    def test_equals_merge_with_different_names(self):
        registry, network, rel_network = _advising_world()
        rel_network.specify(
            ObjectRef("x", "Advises"), ObjectRef("y", "Mentors"), 1
        )
        registry.declare_equivalent("x.Advises.Since", "y.Mentors.Started")
        result = Integrator(registry, network, rel_network).integrate("x", "y")
        merged_name = result.node_for(ObjectRef("x", "Advises"))
        assert merged_name == result.node_for(ObjectRef("y", "Mentors"))
        merged = result.schema.relationship_set(merged_name)
        assert "D_Sinc_Star" in merged.attribute_names()


class TestMultiParentCategories:
    def test_union_category_survives_integration(self):
        first = (
            SchemaBuilder("x")
            .entity("Car", attrs=[("Vin", "char", True)])
            .entity("Boat", attrs=[("Hull", "char", True)])
            .category("Amphibious", of=["Car", "Boat"], attrs=["Mode"])
            .build()
        )
        second = (
            SchemaBuilder("y")
            .entity("Plane", attrs=[("Tail", "char", True)])
            .build()
        )
        registry = EquivalenceRegistry([first, second])
        network = AssertionNetwork()
        network.seed_schema(first)
        network.seed_schema(second)
        result = Integrator(registry, network).integrate("x", "y")
        amphibious = result.schema.category("Amphibious")
        assert sorted(amphibious.parents) == ["Boat", "Car"]
        assert not any(i.is_error for i in validate_schema(result.schema))
