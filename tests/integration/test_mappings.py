"""Tests for schema mappings and their composition."""

import pytest

from repro.errors import MappingError
from repro.integration.mappings import (
    SchemaMapping,
    build_mappings,
    compose_mappings,
)


@pytest.fixture
def mappings(paper_result, registry):
    return build_mappings(paper_result, registry.schemas())


class TestBuildMappings:
    def test_one_mapping_per_schema(self, mappings):
        assert set(mappings) == {"sc1", "sc2"}

    def test_forward_objects(self, mappings):
        assert mappings["sc1"].map_object("Student") == "Student"
        assert mappings["sc1"].map_object("Department") == "E_Department"
        assert mappings["sc2"].map_object("Grad_student") == "Grad_student"
        assert mappings["sc2"].map_object("Majors") == "E_Stud_Majo"

    def test_forward_attributes(self, mappings):
        assert mappings["sc1"].map_attribute("Student", "Name") == (
            "Student",
            "D_Name",
        )
        assert mappings["sc2"].map_attribute("Grad_student", "Name") == (
            "Student",
            "D_Name",
        )
        assert mappings["sc2"].map_attribute("Faculty", "Rank") == (
            "Faculty",
            "Rank",
        )

    def test_unknown_forward_lookups(self, mappings):
        with pytest.raises(MappingError):
            mappings["sc1"].map_object("Ghost")
        with pytest.raises(MappingError):
            mappings["sc1"].map_attribute("Student", "Ghost")

    def test_reverse_objects(self, mappings):
        assert mappings["sc1"].objects_mapping_to("E_Department") == [
            "Department"
        ]
        assert mappings["sc2"].objects_mapping_to("Student") == []
        assert mappings["sc1"].covers_object("E_Department")
        assert not mappings["sc1"].covers_object("Faculty")

    def test_reverse_attributes(self, mappings):
        sources = mappings["sc2"].attributes_mapping_to("Student", "D_Name")
        assert sources == [("Grad_student", "Name")]


class TestComposeMappings:
    def test_two_step_composition(self):
        first = SchemaMapping("view", "mid")
        first.objects["A"] = "M_A"
        first.attributes[("A", "x")] = ("M_A", "mx")
        second = SchemaMapping("mid", "final")
        second.objects["M_A"] = "F_A"
        second.attributes[("M_A", "mx")] = ("F_A", "fx")
        composed = compose_mappings(first, second)
        assert composed.component_schema == "view"
        assert composed.integrated_schema == "final"
        assert composed.map_object("A") == "F_A"
        assert composed.map_attribute("A", "x") == ("F_A", "fx")

    def test_mismatched_composition_rejected(self):
        first = SchemaMapping("view", "mid")
        second = SchemaMapping("other", "final")
        with pytest.raises(MappingError):
            compose_mappings(first, second)

    def test_dropped_elements_are_dropped(self):
        first = SchemaMapping("view", "mid")
        first.objects["A"] = "M_A"
        second = SchemaMapping("mid", "final")  # M_A unmapped
        composed = compose_mappings(first, second)
        with pytest.raises(MappingError):
            composed.map_object("A")
