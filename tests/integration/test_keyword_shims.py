"""The one-release positional shims on integrate_pair / integrate_all."""

import pytest

from repro.integration import IntegrationOptions, integrate_all, integrate_pair
from repro.workloads.domains import (
    build_hospital_admissions,
    build_hospital_clinic,
    hospital_ground_truth,
)
from repro.workloads.university import paper_assertions, paper_registry


def paper_setup():
    registry = paper_registry()
    network = paper_assertions(registry)
    return registry, network


class TestIntegratePairShim:
    def test_keywords_do_not_warn(self, recwarn):
        registry, network = paper_setup()
        result = integrate_pair(
            registry, network, "sc1", "sc2", result_name="merged"
        )
        assert result.schema.name == "merged"
        assert not [
            w for w in recwarn if issubclass(w.category, DeprecationWarning)
        ]

    def test_positional_options_warn_but_work(self):
        registry, network = paper_setup()
        with pytest.warns(DeprecationWarning, match="keyword"):
            result = integrate_pair(
                registry, network, "sc1", "sc2",
                None, IntegrationOptions(), "merged",
            )
        assert result.schema.name == "merged"

    def test_too_many_positionals_is_a_type_error(self):
        registry, network = paper_setup()
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError):
                integrate_pair(
                    registry, network, "sc1", "sc2",
                    None, IntegrationOptions(), "merged", "extra",
                )


class TestIntegrateAllShim:
    def test_keywords_do_not_warn(self, recwarn):
        result, mappings = integrate_all(
            [build_hospital_admissions(), build_hospital_clinic()],
            hospital_ground_truth(),
            result_name="hospital",
        )
        assert result.schema.name == "hospital"
        assert not [
            w for w in recwarn if issubclass(w.category, DeprecationWarning)
        ]

    def test_positional_result_name_warns_but_works(self):
        with pytest.warns(DeprecationWarning, match="keyword"):
            result, _ = integrate_all(
                [build_hospital_admissions(), build_hospital_clinic()],
                hospital_ground_truth(),
                "hospital",
            )
        assert result.schema.name == "hospital"

    def test_positional_options_warns_but_works(self):
        with pytest.warns(DeprecationWarning, match="keyword"):
            result, _ = integrate_all(
                [build_hospital_admissions(), build_hospital_clinic()],
                hospital_ground_truth(),
                "hospital",
                IntegrationOptions(),
            )
        assert result.schema.name == "hospital"

    def test_too_many_positionals_is_a_type_error(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError):
                integrate_all(
                    [build_hospital_admissions(), build_hospital_clinic()],
                    hospital_ground_truth(),
                    "hospital",
                    IntegrationOptions(),
                    "extra",
                )
