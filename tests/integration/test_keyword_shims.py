"""Keyword-only enforcement on integrate_pair / integrate_all.

The one-release positional shims from the incremental-analysis PR are
gone: the optional parameters are now hard keyword-only, so passing
them positionally is a :class:`TypeError` rather than a warning.
"""

import pytest

from repro.equivalence.ordering import ordered_object_pairs
from repro.integration import IntegrationOptions, integrate_all, integrate_pair
from repro.workloads.domains import (
    build_hospital_admissions,
    build_hospital_clinic,
    hospital_ground_truth,
)
from repro.workloads.university import paper_assertions, paper_registry


def paper_setup():
    registry = paper_registry()
    network = paper_assertions(registry)
    return registry, network


class TestIntegratePairKeywordOnly:
    def test_keywords_do_not_warn(self, recwarn):
        registry, network = paper_setup()
        result = integrate_pair(
            registry, network, "sc1", "sc2", result_name="merged"
        )
        assert result.schema.name == "merged"
        assert not [
            w for w in recwarn if issubclass(w.category, DeprecationWarning)
        ]

    def test_positional_options_are_a_type_error(self):
        registry, network = paper_setup()
        with pytest.raises(TypeError):
            integrate_pair(
                registry, network, "sc1", "sc2",
                None, IntegrationOptions(), "merged",
            )


class TestIntegrateAllKeywordOnly:
    def test_keywords_do_not_warn(self, recwarn):
        result, mappings = integrate_all(
            [build_hospital_admissions(), build_hospital_clinic()],
            hospital_ground_truth(),
            result_name="hospital",
        )
        assert result.schema.name == "hospital"
        assert not [
            w for w in recwarn if issubclass(w.category, DeprecationWarning)
        ]

    def test_positional_result_name_is_a_type_error(self):
        with pytest.raises(TypeError):
            integrate_all(
                [build_hospital_admissions(), build_hospital_clinic()],
                hospital_ground_truth(),
                "hospital",
            )


class TestOrderedObjectPairsKeywordOnly:
    def test_positional_kind_filter_is_a_type_error(self):
        registry, _ = paper_setup()
        with pytest.raises(TypeError):
            ordered_object_pairs(registry, "sc1", "sc2", None)

    def test_keywords_still_work(self):
        registry, _ = paper_setup()
        pairs = ordered_object_pairs(
            registry, "sc1", "sc2", kind_filter=None, include_zero=True
        )
        assert pairs
