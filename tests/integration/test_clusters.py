"""Tests for cluster computation."""

from repro.assertions.assertion import Assertion
from repro.assertions.kinds import AssertionKind, Source
from repro.assertions.network import AssertionNetwork
from repro.ecr.schema import ObjectRef
from repro.integration.clusters import (
    cluster_of,
    compute_clusters,
    connects_pair,
)

A = ObjectRef("s", "A")
B = ObjectRef("s", "B")


class TestConnectsPair:
    def test_definite_relations_always_connect(self):
        for kind in (
            AssertionKind.EQUALS,
            AssertionKind.CONTAINED_IN,
            AssertionKind.CONTAINS,
        ):
            assert connects_pair(Assertion(A, B, kind))

    def test_nonintegrable_never_connects(self):
        assertion = Assertion(A, B, AssertionKind.DISJOINT_NONINTEGRABLE)
        assert not connects_pair(assertion)

    def test_decided_overlap_connects(self):
        assert connects_pair(Assertion(A, B, AssertionKind.MAY_BE))
        assert connects_pair(Assertion(A, B, AssertionKind.DISJOINT_INTEGRABLE))

    def test_undecided_derived_disjoint_does_not_connect(self):
        derived = Assertion(
            A,
            B,
            AssertionKind.DISJOINT_INTEGRABLE,
            Source.DERIVED,
            integrability_decided=False,
        )
        assert not connects_pair(derived)


class TestComputeClusters:
    def test_paper_clusters(self, object_network):
        clusters = compute_clusters(object_network)
        multi = sorted(
            tuple(sorted(str(m) for m in cluster.members))
            for cluster in clusters
            if not cluster.is_singleton
        )
        assert multi == [
            ("sc1.Department", "sc2.Department"),
            ("sc1.Student", "sc2.Faculty", "sc2.Grad_student"),
        ]

    def test_singletons_included(self, object_network):
        clusters = compute_clusters(object_network)
        total = sum(len(cluster) for cluster in clusters)
        assert total == len(object_network.objects())

    def test_restriction_to_subset(self, object_network):
        objects = [ObjectRef("sc1", "Student"), ObjectRef("sc1", "Department")]
        clusters = compute_clusters(object_network, objects)
        assert all(cluster.is_singleton for cluster in clusters)

    def test_cluster_assertions_recorded(self, object_network):
        clusters = compute_clusters(object_network)
        student_cluster = cluster_of(clusters, ObjectRef("sc1", "Student"))
        assert student_cluster is not None
        assert len(student_cluster.assertions) >= 2

    def test_cluster_of_missing(self, object_network):
        clusters = compute_clusters(object_network)
        assert cluster_of(clusters, ObjectRef("zz", "Nope")) is None

    def test_nonintegrable_pair_stays_apart(self):
        network = AssertionNetwork()
        for ref in (A, B):
            network.add_object(ref)
        network.specify(A, B, AssertionKind.DISJOINT_NONINTEGRABLE)
        clusters = compute_clusters(network)
        assert len(clusters) == 2

    def test_str(self, object_network):
        clusters = compute_clusters(object_network)
        assert any("{" in str(cluster) for cluster in clusters)
