"""Tests for DAG utilities (transitive reduction, ancestors)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import IntegrationError
from repro.integration.lattice import (
    ancestors_in_dag,
    check_acyclic,
    transitive_reduction,
)


class TestAncestors:
    def test_chain(self):
        edges = [("a", "b"), ("b", "c")]
        assert ancestors_in_dag(edges, "a") == {"b", "c"}
        assert ancestors_in_dag(edges, "c") == set()

    def test_diamond(self):
        edges = [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]
        assert ancestors_in_dag(edges, "a") == {"b", "c", "d"}


class TestAcyclicity:
    def test_accepts_dag(self):
        check_acyclic([("a", "b"), ("b", "c"), ("a", "c")])

    def test_rejects_cycle(self):
        with pytest.raises(IntegrationError):
            check_acyclic([("a", "b"), ("b", "a")])

    def test_rejects_self_loop(self):
        with pytest.raises(IntegrationError):
            check_acyclic([("a", "a")])


class TestTransitiveReduction:
    def test_removes_shortcut(self):
        edges = [("a", "b"), ("b", "c"), ("a", "c")]
        assert transitive_reduction(edges) == [("a", "b"), ("b", "c")]

    def test_keeps_diamond(self):
        edges = [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]
        assert transitive_reduction(edges) == edges

    def test_duplicates_removed(self):
        edges = [("a", "b"), ("a", "b")]
        assert transitive_reduction(edges) == [("a", "b")]

    def test_rejects_cyclic_input(self):
        with pytest.raises(IntegrationError):
            transitive_reduction([("a", "b"), ("b", "a")])

    def test_long_chain_with_all_shortcuts(self):
        chain = [("n0", "n1"), ("n1", "n2"), ("n2", "n3")]
        shortcuts = [("n0", "n2"), ("n0", "n3"), ("n1", "n3")]
        assert transitive_reduction(chain + shortcuts) == chain


@st.composite
def random_dags(draw):
    size = draw(st.integers(2, 7))
    nodes = [f"n{i}" for i in range(size)]
    edges = []
    for i in range(size):
        for j in range(i + 1, size):
            if draw(st.booleans()):
                edges.append((nodes[i], nodes[j]))
    return edges


@given(random_dags())
def test_reduction_preserves_reachability(edges):
    reduced = transitive_reduction(edges)
    nodes = {n for edge in edges for n in edge}
    for node in nodes:
        assert ancestors_in_dag(edges, node) == ancestors_in_dag(reduced, node)


@given(random_dags())
def test_reduction_is_minimal(edges):
    reduced = transitive_reduction(edges)
    for edge in reduced:
        without = [other for other in reduced if other != edge]
        child, parent = edge
        assert parent not in ancestors_in_dag(without, child)
