"""Tests for E_/D_ naming conventions."""

import pytest

from repro.errors import IntegrationError
from repro.integration.naming import (
    NamePool,
    abbreviate,
    derived_name,
    equivalent_name,
    merged_attribute_name,
)


class TestAbbreviate:
    def test_paper_abbreviations(self):
        assert abbreviate("Student") == "Stud"
        assert abbreviate("Faculty") == "Facu"
        assert abbreviate("Grad_student") == "Grad"
        assert abbreviate("Secretary") == "Secr"
        assert abbreviate("Engineer") == "Engi"
        assert abbreviate("Instructor") == "Inst"

    def test_short_names(self):
        assert abbreviate("Ab") == "Ab"

    def test_empty_rejected(self):
        with pytest.raises(IntegrationError):
            abbreviate("")


class TestDerivedName:
    def test_paper_names(self):
        assert derived_name(["Student", "Faculty"]) == "D_Stud_Facu"
        assert derived_name(["Grad_student", "Instructor"]) == "D_Grad_Inst"
        assert derived_name(["Secretary", "Engineer"]) == "D_Secr_Engi"

    def test_same_names_keep_full_name(self):
        assert derived_name(["Name", "Name"]) == "D_Name"

    def test_empty_rejected(self):
        with pytest.raises(IntegrationError):
            derived_name([])


class TestEquivalentName:
    def test_same_names(self):
        assert equivalent_name(["Department", "Department"]) == "E_Department"

    def test_relationship_with_subject(self):
        assert (
            equivalent_name(["Majors", "Majors"], subject="Student")
            == "E_Stud_Majo"
        )

    def test_different_names(self):
        assert equivalent_name(["Employee", "Worker"]) == "E_Empl_Work"


class TestMergedAttributeName:
    def test_paper_derived_attribute(self):
        assert merged_attribute_name(["Name", "Name"]) == "D_Name"

    def test_differing_names(self):
        assert merged_attribute_name(["Salary", "Pay"]) == "D_Sala_Pay"


class TestNamePool:
    def test_first_taker_keeps_name(self):
        pool = NamePool()
        assert pool.claim("Student") == "Student"
        assert pool.claim("Student") == "Student_2"
        assert pool.claim("Student") == "Student_3"

    def test_preseeded(self):
        pool = NamePool(["X"])
        assert pool.is_taken("X")
        assert pool.claim("X") == "X_2"

    def test_numbered_variant_also_reserved(self):
        pool = NamePool()
        pool.claim("A_2")
        pool.claim("A")
        assert pool.claim("A") == "A_3"
