"""Tests for the integration engine against the paper's Figure 5 and
the Figure 2 assertion catalogue."""

import pytest

from repro.assertions.kinds import AssertionKind
from repro.assertions.network import AssertionNetwork
from repro.ecr.builder import SchemaBuilder
from repro.ecr.schema import ObjectRef
from repro.ecr.validation import validate_schema
from repro.equivalence.registry import EquivalenceRegistry
from repro.errors import IntegrationError
from repro.integration.integrator import Integrator, integrate_pair
from repro.integration.options import IntegrationOptions


class TestFigure5:
    def test_structure_names(self, paper_result):
        schema = paper_result.schema
        assert [e.name for e in schema.entity_sets()] == [
            "E_Department",
            "D_Stud_Facu",
        ]
        assert [c.name for c in schema.categories()] == [
            "Student",
            "Grad_student",
            "Faculty",
        ]
        assert [r.name for r in schema.relationship_sets()] == [
            "E_Stud_Majo",
            "Works",
        ]

    def test_lattice_edges(self, paper_result):
        schema = paper_result.schema
        assert schema.category("Student").parents == ["D_Stud_Facu"]
        assert schema.category("Faculty").parents == ["D_Stud_Facu"]
        assert schema.category("Grad_student").parents == ["Student"]

    def test_result_is_valid_schema(self, paper_result):
        assert not any(
            issue.is_error for issue in validate_schema(paper_result.schema)
        )

    def test_derived_attribute_d_name(self, paper_result):
        components = paper_result.component_attributes("Student", "D_Name")
        assert [str(c) for c in components] == [
            "sc1.Student.Name",
            "sc2.Grad_student.Name",
        ]

    def test_faculty_keeps_own_name(self, paper_result):
        faculty = paper_result.schema.category("Faculty")
        assert faculty.attribute_names() == ["Name", "Rank"]

    def test_derived_parent_has_no_attributes_by_default(self, paper_result):
        assert paper_result.schema.get("D_Stud_Facu").attributes == []

    def test_e_department_merges_names(self, paper_result):
        department = paper_result.schema.entity_set("E_Department")
        assert set(department.attribute_names()) == {"D_Name", "Location"}

    def test_merged_relationship_legs(self, paper_result):
        majors = paper_result.schema.relationship_set("E_Stud_Majo")
        legs = {
            leg.object_name: str(leg.cardinality)
            for leg in majors.participations
        }
        assert legs == {"Student": "(1,1)", "E_Department": "(0,n)"}

    def test_works_copied_with_remapped_participants(self, paper_result):
        works = paper_result.schema.relationship_set("Works")
        assert works.participant_names() == ["Faculty", "E_Department"]

    def test_object_mapping_total(self, paper_result, registry):
        for schema in registry.schemas():
            for structure in schema:
                ref = ObjectRef(schema.name, structure.name)
                assert ref in paper_result.object_mapping

    def test_attribute_mapping_total(self, paper_result, registry):
        for schema in registry.schemas():
            for ref in schema.all_attribute_refs():
                assert ref in paper_result.attribute_mapping

    def test_provenance_nodes(self, paper_result):
        e_dept = paper_result.nodes["E_Department"]
        assert e_dept.is_equivalent
        assert {str(c) for c in e_dept.components} == {
            "sc1.Department",
            "sc2.Department",
        }
        d_parent = paper_result.nodes["D_Stud_Facu"]
        assert d_parent.is_derived

    def test_log_records_clusters_and_merges(self, paper_result):
        log = "\n".join(paper_result.log)
        assert "clusters:" in log
        assert "equals merge: E_Department" in log
        assert "derived parent: D_Stud_Facu" in log
        assert "derived attribute: Student.D_Name" in log

    def test_summary(self, paper_result):
        text = paper_result.summary()
        assert "2 equivalent merges" in text
        assert "1 derived parents" in text


def _two_singletons(attrs_a, attrs_b, name_a="A", name_b="B"):
    first = SchemaBuilder("x").entity(name_a, attrs=attrs_a).build(validate=False)
    second = SchemaBuilder("y").entity(name_b, attrs=attrs_b).build(validate=False)
    registry = EquivalenceRegistry([first, second])
    network = AssertionNetwork()
    network.seed_schema(first)
    network.seed_schema(second)
    return registry, network


class TestFigure2Catalogue:
    """One test per assertion type, mirroring Figures 2a-2e."""

    def test_2a_equals(self):
        registry, network = _two_singletons(
            [("Name", "char", True)], [("Name", "char", True)],
            "Department", "Department",
        )
        registry.declare_equivalent("x.Department.Name", "y.Department.Name")
        network.specify(
            ObjectRef("x", "Department"), ObjectRef("y", "Department"), 1
        )
        result = integrate_pair(registry, network, "x", "y")
        assert [e.name for e in result.schema.entity_sets()] == ["E_Department"]
        assert result.schema.categories() == []

    def test_2b_contains(self):
        registry, network = _two_singletons(
            [("Name", "char", True)], [("Name", "char", True), ("Thesis", "char")],
            "Student", "Grad_student",
        )
        registry.declare_equivalent("x.Student.Name", "y.Grad_student.Name")
        network.specify(
            ObjectRef("x", "Student"), ObjectRef("y", "Grad_student"), 3
        )
        result = integrate_pair(registry, network, "x", "y")
        grad = result.schema.category("Grad_student")
        assert grad.parents == ["Student"]
        assert grad.attribute_names() == ["Thesis"]
        assert "D_Name" in result.schema.entity_set("Student").attribute_names()

    def test_2c_may_be(self):
        registry, network = _two_singletons(
            [("Name", "char", True)], [("Name", "char", True)],
            "Grad_student", "Instructor",
        )
        network.specify(
            ObjectRef("x", "Grad_student"), ObjectRef("y", "Instructor"), 5
        )
        result = integrate_pair(registry, network, "x", "y")
        assert "D_Grad_Inst" in result.schema.structure_names()
        assert result.schema.category("Grad_student").parents == ["D_Grad_Inst"]
        assert result.schema.category("Instructor").parents == ["D_Grad_Inst"]

    def test_2d_disjoint_integrable(self):
        registry, network = _two_singletons(
            [("Name", "char", True)], [("Name", "char", True)],
            "Secretary", "Engineer",
        )
        network.specify(
            ObjectRef("x", "Secretary"), ObjectRef("y", "Engineer"), 4
        )
        result = integrate_pair(registry, network, "x", "y")
        assert "D_Secr_Engi" in result.schema.structure_names()

    def test_2e_disjoint_nonintegrable(self):
        registry, network = _two_singletons(
            [("Name", "char", True)], [("Name", "char", True)],
            "Under_Grad_Student", "Full_Professor",
        )
        network.specify(
            ObjectRef("x", "Under_Grad_Student"),
            ObjectRef("y", "Full_Professor"),
            0,
        )
        result = integrate_pair(registry, network, "x", "y")
        names = result.schema.structure_names()
        assert names == ["Under_Grad_Student", "Full_Professor"]
        assert result.schema.categories() == []


class TestOptions:
    def test_pull_up_shared_attributes(self):
        registry, network = _two_singletons(
            [("Name", "char", True)], [("Name", "char", True)],
            "Secretary", "Engineer",
        )
        registry.declare_equivalent("x.Secretary.Name", "y.Engineer.Name")
        network.specify(
            ObjectRef("x", "Secretary"), ObjectRef("y", "Engineer"), 4
        )
        result = integrate_pair(
            registry,
            network,
            "x",
            "y",
            options=IntegrationOptions(pull_up_shared_attributes=True),
        )
        parent = result.schema.get("D_Secr_Engi")
        assert parent.attribute_names() == ["D_Name"]
        assert result.schema.get("Secretary").attributes == []

    def test_default_keeps_attributes_on_children(self):
        registry, network = _two_singletons(
            [("Name", "char", True)], [("Name", "char", True)],
            "Secretary", "Engineer",
        )
        registry.declare_equivalent("x.Secretary.Name", "y.Engineer.Name")
        network.specify(
            ObjectRef("x", "Secretary"), ObjectRef("y", "Engineer"), 4
        )
        result = integrate_pair(registry, network, "x", "y")
        assert result.schema.get("D_Secr_Engi").attributes == []
        assert result.schema.get("Secretary").attribute_names() == ["Name"]

    def test_tight_cardinality_merge(self, registry, object_network,
                                     relationship_network):
        result = Integrator(
            registry,
            object_network,
            relationship_network,
            IntegrationOptions(merge_cardinalities_loosely=False),
        ).integrate("sc1", "sc2")
        majors = result.schema.relationship_set("E_Stud_Majo")
        assert str(majors.participation_for("Student").cardinality) == "(1,1)"


class TestEdgeCases:
    def test_name_clash_between_unrelated_structures(self):
        registry, network = _two_singletons(
            [("Id", "char", True)], [("Code", "char", True)],
            "Course", "Course",
        )
        result = integrate_pair(registry, network, "x", "y")
        names = result.schema.structure_names()
        assert names == ["Course", "Course_2"]
        assert result.node_for(ObjectRef("y", "Course")) == "Course_2"

    def test_unknown_ref_raises(self, paper_result):
        with pytest.raises(IntegrationError):
            paper_result.node_for("zz.Nope")
        with pytest.raises(IntegrationError):
            paper_result.attribute_for("zz.Nope.attr")
        with pytest.raises(IntegrationError):
            paper_result.components_of("Nothing")
        with pytest.raises(IntegrationError):
            paper_result.component_attributes("Student", "Nope")

    def test_transitive_chain_collapses_to_covering_edges(self):
        first = (
            SchemaBuilder("x")
            .entity("Person", attrs=[("Name", "char", True)])
            .build()
        )
        second = (
            SchemaBuilder("y")
            .entity("Student", attrs=[("Name", "char", True)])
            .category("Grad", of="Student", attrs=[("T", "char")])
            .build()
        )
        registry = EquivalenceRegistry([first, second])
        network = AssertionNetwork()
        network.seed_schema(first)
        network.seed_schema(second)
        network.specify(
            ObjectRef("y", "Student"), ObjectRef("x", "Person"), 2
        )
        result = integrate_pair(registry, network, "x", "y")
        # Grad ⊂ Student ⊂ Person; derived Grad ⊂ Person must NOT produce
        # a direct edge Grad -> Person.
        assert result.schema.category("Grad").parents == ["Student"]
        assert result.schema.category("Student").parents == ["Person"]

    def test_intra_schema_equals_merge(self):
        first = (
            SchemaBuilder("x")
            .entity("Staff", attrs=[("Id", "char", True)])
            .entity("Employee", attrs=[("Id", "char", True)])
            .build()
        )
        second = SchemaBuilder("y").entity(
            "Other", attrs=[("Id", "char", True)]
        ).build()
        registry = EquivalenceRegistry([first, second])
        registry.declare_equivalent("x.Staff.Id", "x.Employee.Id")
        network = AssertionNetwork()
        network.seed_schema(first)
        network.seed_schema(second)
        network.specify(ObjectRef("x", "Staff"), ObjectRef("x", "Employee"), 1)
        result = integrate_pair(registry, network, "x", "y")
        assert "E_Staf_Empl" in result.schema.structure_names()
