"""Tests for attribute pooling and merging."""

import pytest

from repro.ecr.attributes import Attribute, AttributeRef
from repro.equivalence.registry import EquivalenceRegistry
from repro.integration.attribute_merge import AttributePool, merge_pool
from repro.integration.options import IntegrationOptions
from repro.workloads.university import build_sc1, build_sc2


@pytest.fixture
def registry():
    registry = EquivalenceRegistry([build_sc1(), build_sc2()])
    registry.declare_equivalent("sc1.Student.Name", "sc2.Grad_student.Name")
    registry.declare_equivalent("sc1.Student.GPA", "sc2.Grad_student.GPA")
    return registry


def _student_pool(registry):
    pool = AttributePool("Student")
    sc1 = registry.schema("sc1")
    sc2 = registry.schema("sc2")
    for attribute in sc1.get("Student").attributes:
        pool.add(AttributeRef("sc1", "Student", attribute.name), attribute)
    for attribute in sc2.get("Grad_student").attributes:
        pool.add(AttributeRef("sc2", "Grad_student", attribute.name), attribute)
    return pool


class TestPool:
    def test_class_numbers(self, registry):
        pool = _student_pool(registry)
        # Name-class, GPA-class, Support_type singleton
        assert len(pool.class_numbers(registry)) == 3

    def test_take_class(self, registry):
        pool = _student_pool(registry)
        name_class = registry.class_number("sc1.Student.Name")
        taken = pool.take_class(registry, name_class)
        assert len(taken) == 2
        assert len(pool.instances) == 3
        assert name_class not in pool.class_numbers(registry)


class TestMergePool:
    def test_paper_derived_attributes(self, registry):
        attributes, origins = merge_pool(
            _student_pool(registry), registry, IntegrationOptions()
        )
        by_name = {attribute.name: attribute for attribute in attributes}
        assert set(by_name) == {"D_Name", "D_GPA", "Support_type"}
        name_origin = next(o for o in origins if o.attribute == "D_Name")
        assert [str(c) for c in name_origin.components] == [
            "sc1.Student.Name",
            "sc2.Grad_student.Name",
        ]
        assert name_origin.is_derived

    def test_key_is_conjunction(self, registry):
        attributes, _ = merge_pool(
            _student_pool(registry), registry, IntegrationOptions()
        )
        by_name = {attribute.name: attribute for attribute in attributes}
        assert by_name["D_Name"].is_key  # both components are keys
        assert not by_name["D_GPA"].is_key

    def test_singletons_copied_unchanged(self, registry):
        attributes, origins = merge_pool(
            _student_pool(registry), registry, IntegrationOptions()
        )
        support = next(o for o in origins if o.attribute == "Support_type")
        assert not support.is_derived
        assert len(support.components) == 1

    def test_name_collision_within_node(self, registry):
        pool = AttributePool("X")
        pool.add(AttributeRef("sc1", "Student", "Name"), Attribute("Name"))
        pool.add(
            AttributeRef("sc1", "Department", "Name"), Attribute("Name")
        )  # different class, same spelling
        attributes, _ = merge_pool(pool, registry, IntegrationOptions())
        assert [a.name for a in attributes] == ["Name", "Name_2"]

    def test_description_joining(self, registry):
        pool = AttributePool("X")
        pool.add(
            AttributeRef("sc1", "Student", "Name"),
            Attribute("Name", "char", True, "from sc1"),
        )
        pool.add(
            AttributeRef("sc2", "Grad_student", "Name"),
            Attribute("Name", "char", True, "from sc2"),
        )
        attributes, _ = merge_pool(pool, registry, IntegrationOptions())
        assert attributes[0].description == "from sc1 / from sc2"
        attributes, _ = merge_pool(
            pool,
            registry,
            IntegrationOptions(keep_component_descriptions=False),
        )
        assert attributes[0].description == ""

    def test_empty_pool(self, registry):
        attributes, origins = merge_pool(
            AttributePool("X"), registry, IntegrationOptions()
        )
        assert attributes == [] and origins == []
