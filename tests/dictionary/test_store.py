"""Tests for the data dictionary (persistence + reconstruction)."""

import pytest

from repro.assertions.kinds import AssertionKind
from repro.dictionary import DataDictionary
from repro.ecr.json_io import schema_to_dict
from repro.errors import SchemaError, UnknownNameError
from repro.integration.mappings import build_mappings
from repro.workloads.university import (
    PAPER_ASSERTION_CODES,
    build_sc1,
    build_sc2,
)


@pytest.fixture
def dictionary():
    d = DataDictionary()
    d.add_schema(build_sc1())
    d.add_schema(build_sc2())
    d.record_equivalence("sc1.Student.Name", "sc2.Grad_student.Name")
    d.record_equivalence("sc1.Student.Name", "sc2.Faculty.Name")
    d.record_equivalence("sc1.Student.GPA", "sc2.Grad_student.GPA")
    d.record_equivalence("sc1.Department.Name", "sc2.Department.Name")
    for first, second, code in PAPER_ASSERTION_CODES:
        d.record_assertion(first, second, code)
    d.record_assertion("sc1.Majors", "sc2.Majors", 1, relationship=True)
    return d


class TestContent:
    def test_duplicate_schema_rejected(self, dictionary):
        with pytest.raises(SchemaError):
            dictionary.add_schema(build_sc1())

    def test_unknown_lookups(self, dictionary):
        with pytest.raises(UnknownNameError):
            dictionary.schema("nope")
        with pytest.raises(UnknownNameError):
            dictionary.result("nope")

    def test_bad_assertion_code_rejected(self, dictionary):
        from repro.errors import AssertionSpecError

        with pytest.raises(AssertionSpecError):
            dictionary.record_assertion("sc1.Student", "sc2.Faculty", 9)


class TestReconstruction:
    def test_registry_rebuilt(self, dictionary):
        registry = dictionary.build_registry()
        assert registry.are_equivalent(
            "sc1.Student.Name", "sc2.Faculty.Name"
        )

    def test_networks_rebuilt(self, dictionary):
        objects, relationships = dictionary.build_networks()
        assert len(objects.specified_assertions()) == 3
        assert len(relationships.specified_assertions()) == 1
        from repro.ecr.schema import ObjectRef

        recorded = objects.assertion_for(
            ObjectRef("sc1", "Student"), ObjectRef("sc2", "Grad_student")
        )
        assert recorded.kind is AssertionKind.CONTAINS

    def test_later_recording_wins(self, dictionary):
        dictionary.record_assertion("sc1.Student", "sc2.Faculty", 5)
        objects, _ = dictionary.build_networks()
        from repro.ecr.schema import ObjectRef

        recorded = objects.assertion_for(
            ObjectRef("sc1", "Student"), ObjectRef("sc2", "Faculty")
        )
        assert recorded.kind is AssertionKind.MAY_BE

    def test_full_pipeline_from_dictionary(self, dictionary):
        from repro.integration.integrator import Integrator

        registry = dictionary.build_registry()
        objects, relationships = dictionary.build_networks()
        result = Integrator(registry, objects, relationships).integrate(
            "sc1", "sc2"
        )
        assert "D_Stud_Facu" in result.schema


class TestPersistence:
    def _integrated(self, dictionary):
        from repro.integration.integrator import Integrator

        registry = dictionary.build_registry()
        objects, relationships = dictionary.build_networks()
        result = Integrator(registry, objects, relationships).integrate(
            "sc1", "sc2"
        )
        mappings = build_mappings(result, registry.schemas())
        dictionary.store_result("paper", result, mappings)
        return result

    def test_roundtrip_via_dict(self, dictionary):
        result = self._integrated(dictionary)
        reloaded = DataDictionary.from_dict(dictionary.to_dict())
        assert [s.name for s in reloaded.schemas()] == ["sc1", "sc2"]
        assert schema_to_dict(reloaded.schema("sc1")) == schema_to_dict(
            build_sc1()
        )
        restored = reloaded.result("paper")
        assert schema_to_dict(restored.schema) == schema_to_dict(result.schema)
        assert restored.object_mapping == result.object_mapping
        assert restored.attribute_mapping == result.attribute_mapping
        assert restored.component_attributes("Student", "D_Name") == [
            *result.component_attributes("Student", "D_Name")
        ]

    def test_mappings_roundtrip(self, dictionary):
        self._integrated(dictionary)
        reloaded = DataDictionary.from_dict(dictionary.to_dict())
        mappings = reloaded.mappings_for("paper")
        assert mappings["sc1"].map_object("Department") == "E_Department"
        assert mappings["sc2"].map_attribute("Grad_student", "Name") == (
            "Student",
            "D_Name",
        )

    def test_save_and_load_file(self, dictionary, tmp_path):
        self._integrated(dictionary)
        path = tmp_path / "session.json"
        dictionary.save(path)
        reloaded = DataDictionary.load(path)
        assert reloaded.result_names() == ["paper"]
        registry = reloaded.build_registry()
        assert registry.are_equivalent(
            "sc1.Student.GPA", "sc2.Grad_student.GPA"
        )

    def test_format_version_checked(self, dictionary):
        from repro.errors import DictionaryFormatError

        data = dictionary.to_dict()
        data["format"] = 999
        with pytest.raises(DictionaryFormatError):
            DataDictionary.from_dict(data)

    def test_rebuilt_equals_original_pipeline(self, dictionary, tmp_path):
        """Save → load → integrate gives the same schema as live."""
        from repro.integration.integrator import Integrator

        live = self._integrated(dictionary)
        path = tmp_path / "d.json"
        dictionary.save(path)
        reloaded = DataDictionary.load(path)
        registry = reloaded.build_registry()
        objects, relationships = reloaded.build_networks()
        again = Integrator(registry, objects, relationships).integrate(
            "sc1", "sc2"
        )
        assert schema_to_dict(again.schema) == schema_to_dict(live.schema)
