"""Typed load errors: missing, corrupt and unknown-format saves.

Every failure mode of :meth:`DataDictionary.load` raises a distinct
error from :mod:`repro.errors`, each carrying the offending path in its
message — never a bare ``json.JSONDecodeError`` or ``KeyError``.
"""

import json

import pytest

from repro.dictionary import DataDictionary
from repro.dictionary.store import FOOTER_PREFIX, FORMAT_VERSION
from repro.errors import (
    CorruptDictionaryError,
    DictionaryError,
    DictionaryFormatError,
    DictionaryNotFoundError,
    ReproError,
)
from repro.workloads.university import build_sc1


@pytest.fixture
def saved(tmp_path):
    dictionary = DataDictionary()
    dictionary.add_schema(build_sc1())
    dictionary.record_equivalence(
        "sc1.Student.Name", "sc1.Department.Name"
    )
    path = tmp_path / "session.json"
    dictionary.save(path)
    return path


class TestMissing:
    def test_missing_file_raises_typed_error(self, tmp_path):
        path = tmp_path / "nope.json"
        with pytest.raises(DictionaryNotFoundError) as caught:
            DataDictionary.load(path)
        assert str(path) in str(caught.value)

    def test_typed_errors_share_the_dictionary_family(self):
        assert issubclass(DictionaryNotFoundError, DictionaryError)
        assert issubclass(CorruptDictionaryError, DictionaryError)
        assert issubclass(DictionaryFormatError, DictionaryError)
        assert issubclass(DictionaryError, ReproError)


class TestCorrupt:
    def test_invalid_json_raises_corrupt(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{not json at all")
        with pytest.raises(CorruptDictionaryError) as caught:
            DataDictionary.load(path)
        assert str(path) in str(caught.value)

    def test_bit_flip_fails_the_checksum(self, saved):
        text = saved.read_text()
        body_end = text.rindex(FOOTER_PREFIX)
        flipped = text.replace("Student", "Studeot", 1)
        assert flipped != text and FOOTER_PREFIX in flipped
        saved.write_text(flipped)
        with pytest.raises(CorruptDictionaryError) as caught:
            DataDictionary.load(saved)
        assert "checksum mismatch" in str(caught.value)
        assert body_end  # the original had a footer to protect the body

    def test_truncated_save_is_corrupt_not_legacy(self, saved):
        text = saved.read_text()
        saved.write_text(text[: len(text) // 2])
        with pytest.raises(CorruptDictionaryError):
            DataDictionary.load(saved)

    def test_truncation_that_only_loses_the_footer_is_still_corrupt(
        self, saved
    ):
        text = saved.read_text()
        body = text[: text.rindex(FOOTER_PREFIX)].rstrip("\n")
        json.loads(body)  # the body alone still parses...
        saved.write_text(body)
        with pytest.raises(CorruptDictionaryError) as caught:
            DataDictionary.load(saved)  # ...but load refuses it
        assert "footer missing" in str(caught.value)

    def test_bit_flip_that_breaks_the_encoding_is_corrupt(self, saved):
        data = bytearray(saved.read_bytes())
        data[len(data) // 2] = 0xDF  # an invalid UTF-8 continuation
        saved.write_bytes(bytes(data))
        with pytest.raises(CorruptDictionaryError) as caught:
            DataDictionary.load(saved)
        assert "UTF-8" in str(caught.value)

    def test_non_object_top_level_is_corrupt(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(CorruptDictionaryError):
            DataDictionary.load(path)


class TestFormats:
    def test_unknown_format_raises_with_path(self, saved, tmp_path):
        data = DataDictionary.load(saved).to_dict()
        data["format"] = 999
        path = tmp_path / "future.json"
        path.write_text(json.dumps(data))
        with pytest.raises(DictionaryFormatError) as caught:
            DataDictionary.load(path)
        assert caught.value.version == 999
        assert str(path) in str(caught.value)

    def test_v1_save_without_footer_still_loads(self, saved, tmp_path):
        data = DataDictionary.load(saved).to_dict()
        data["format"] = 1
        path = tmp_path / "v1.json"
        path.write_text(json.dumps(data, indent=2))
        loaded = DataDictionary.load(path)
        assert [schema.name for schema in loaded.schemas()] == ["sc1"]
        registry = loaded.build_registry()
        assert registry.are_equivalent(
            "sc1.Student.Name", "sc1.Department.Name"
        )

    def test_saves_are_stamped_with_the_current_format(self, saved):
        text = saved.read_text()
        body = text[: text.rindex(FOOTER_PREFIX)]
        assert json.loads(body)["format"] == FORMAT_VERSION == 2
