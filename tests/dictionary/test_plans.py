"""Federated plans persisted alongside a result's mappings."""

import pytest

from repro.assertions.network import AssertionNetwork
from repro.dictionary import DataDictionary
from repro.ecr.schema import ObjectRef
from repro.errors import UnknownNameError
from repro.federation.planner import QueryPlanner
from repro.integration.integrator import Integrator
from repro.integration.mappings import build_mappings
from repro.query.parser import parse_request
from repro.workloads.university import (
    PAPER_RELATIONSHIP_CODES,
    paper_assertions,
    paper_registry,
)


@pytest.fixture
def world():
    registry = paper_registry()
    network = paper_assertions(registry)
    relationship_network = AssertionNetwork()
    for schema in registry.schemas():
        for relationship in schema.relationship_sets():
            relationship_network.add_object(
                ObjectRef(schema.name, relationship.name)
            )
    for first, second, code in PAPER_RELATIONSHIP_CODES:
        relationship_network.specify(
            ObjectRef.parse(first), ObjectRef.parse(second), code
        )
    result = Integrator(registry, network, relationship_network).integrate(
        "sc1", "sc2"
    )
    mappings = build_mappings(result, registry.schemas())
    planner = QueryPlanner(
        mappings, result.schema, object_network=network
    )
    dictionary = DataDictionary()
    for schema in registry.schemas():
        dictionary.add_schema(schema)
    dictionary.store_result("paper", result, mappings)
    return dictionary, planner


def test_plan_round_trips_through_dictionary(world):
    dictionary, planner = world
    plan = planner.plan(parse_request("select D_Name, D_GPA from Student"))
    dictionary.store_plan("paper", plan)
    restored = dictionary.plans_for("paper")[str(plan.request)]
    assert restored.strategy is plan.strategy
    assert restored.components == plan.components
    assert restored.key_positions == plan.key_positions


def test_plans_survive_save_and_load(world):
    dictionary, planner = world
    for text in (
        "select D_Name, D_GPA from Student",
        "select D_Name, Location from E_Department",
    ):
        dictionary.store_plan("paper", planner.plan(parse_request(text)))
    loaded = DataDictionary.from_dict(dictionary.to_dict())
    plans = loaded.plans_for("paper")
    assert set(plans) == {
        "select D_Name, D_GPA from Student",
        "select D_Name, Location from E_Department",
    }
    original = dictionary.plans_for("paper")
    for request_text, plan in plans.items():
        assert plan.to_dict() == original[request_text].to_dict()


def test_restore_overwrites_stale_plan(world):
    dictionary, planner = world
    text = "select D_Name from Student"
    plan = planner.plan(parse_request(text))
    dictionary.store_plan("paper", plan)
    dictionary.store_plan("paper", plan)  # replan of the same request
    assert list(dictionary.plans_for("paper")) == [text]


def test_unknown_result_rejected(world):
    dictionary, planner = world
    plan = planner.plan(parse_request("select D_Name from Student"))
    with pytest.raises(UnknownNameError):
        dictionary.store_plan("ghost", plan)


def test_serialisation_omits_empty_plans():
    dictionary = DataDictionary()
    assert "plans" not in dictionary.to_dict()
