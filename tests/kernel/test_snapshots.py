"""Snapshots and checkout: restoring any offset by snapshot + tail replay."""

import json

import pytest

from repro.equivalence.session import AnalysisSession
from repro.errors import KernelError
from repro.workloads.university import build_sc1, build_sc2

DECLARATIONS = [
    ("sc1.Student.Name", "sc2.Grad_student.Name"),
    ("sc1.Student.GPA", "sc2.Grad_student.GPA"),
    ("sc1.Department.Name", "sc2.Department.Name"),
    ("sc1.Majors.Since", "sc2.Majors.Since"),
]


def state_key(session: AnalysisSession) -> str:
    return json.dumps(session.state_payload(), sort_keys=True)


def rerun_prefix(offset: int) -> AnalysisSession:
    """A fresh session re-driven through the same first ``offset`` events."""
    reference = AnalysisSession([build_sc1(), build_sc2()])
    for first, second in DECLARATIONS:
        if reference.kernel.head >= offset:
            break
        reference.declare_equivalent(first, second)
    return reference


@pytest.fixture
def session():
    return AnalysisSession([build_sc1(), build_sc2()])


class TestCheckout:
    def test_checkout_restores_any_prefix(self, session):
        base = session.kernel.head  # schema registration events
        keys = {base: state_key(session)}
        for first, second in DECLARATIONS:
            session.declare_equivalent(first, second)
            keys[session.kernel.head] = state_key(session)
        for offset in sorted(keys):
            session.kernel.checkout(offset)
            assert state_key(session) == keys[offset], offset
            assert session.kernel.head == offset

    def test_checkout_leaves_the_log_intact(self, session):
        session.declare_equivalent("sc1.Student.Name", "sc2.Grad_student.Name")
        end = session.kernel.bus.offset
        session.kernel.checkout(end - 1)
        assert session.kernel.bus.offset == end
        assert session.kernel.head == end - 1

    def test_checkout_uses_the_nearest_snapshot(self, session):
        kernel = session.kernel
        session.declare_equivalent("sc1.Student.Name", "sc2.Grad_student.Name")
        record = kernel.snapshot()
        session.declare_equivalent("sc1.Student.GPA", "sc2.Grad_student.GPA")
        target = state_key(session)
        assert kernel._best_snapshot(kernel.head) is record
        kernel.checkout(kernel.bus.offset)
        assert state_key(session) == target

    def test_checkout_outside_range_raises(self, session):
        with pytest.raises(KernelError):
            session.kernel.checkout(session.kernel.bus.offset + 1)
        with pytest.raises(KernelError):
            session.kernel.checkout(-1)

    def test_periodic_snapshots_accumulate(self):
        session = AnalysisSession([build_sc1(), build_sc2()])
        session.kernel.snapshot_every = 2
        for first, second in DECLARATIONS:
            session.declare_equivalent(first, second)
        assert len(session.kernel.snapshots()) >= 2

    def test_views_track_state_across_checkout(self, session):
        # a cached OCS matrix must follow time travel, not its build state
        from repro.ecr.schema import ObjectRef

        pair = ObjectRef("sc1", "Student"), ObjectRef("sc2", "Grad_student")
        session.declare_equivalent("sc1.Student.Name", "sc2.Grad_student.Name")
        cell_after = session.ocs("sc1", "sc2").entry(*pair).equivalent_attributes
        session.kernel.checkout(session.kernel.head - 1)
        cell_before = session.ocs("sc1", "sc2").entry(*pair).equivalent_attributes
        assert cell_after == cell_before + 1


class TestPersistence:
    def test_export_restore_round_trip(self, session):
        for first, second in DECLARATIONS:
            session.declare_equivalent(first, second)
        session.specify("sc1.Student", "sc2.Grad_student", 3)
        session.integrate("sc1", "sc2")
        state = session.kernel.export_state()

        from repro.kernel import Kernel

        kernel = Kernel.restore(state)
        restored = AnalysisSession(kernel=kernel)
        kernel.checkout(state["head"])
        assert state_key(restored) == state_key(session)
        assert kernel.head == session.kernel.head
        assert kernel.result_at_head() is not None

    def test_export_state_is_json_serialisable(self, session):
        session.declare_equivalent("sc1.Student.Name", "sc2.Grad_student.Name")
        session.kernel.snapshot()
        text = json.dumps(session.kernel.export_state())
        assert "declare_equivalent" in text

    def test_legacy_baseline_floors_time_travel(self, session):
        session.declare_equivalent("sc1.Student.Name", "sc2.Grad_student.Name")
        kernel = session.kernel
        kernel.set_baseline()
        assert kernel.baseline == kernel.head
        assert not kernel.undo()
        with pytest.raises(KernelError):
            kernel.checkout(kernel.baseline - 1)
