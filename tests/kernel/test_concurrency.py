"""Thread-safety stress tests: the bus's single-writer discipline.

Several threads hammer one kernel with transactions.  The guarantees
under test: the log is serializable (each transaction's events are
contiguous), no update is lost, and no transaction is torn (a group
either commits all its events or none of them).
"""

import json
import threading

import pytest

from repro.equivalence.session import AnalysisSession
from repro.workloads.university import build_sc1, build_sc2

# Non-overlapping pairs: declaring any subset never merges classes, so
# threads working on distinct pairs are logically independent.
PAIRS = [
    ("sc1.Student.Name", "sc2.Grad_student.Name"),
    ("sc1.Student.GPA", "sc2.Grad_student.GPA"),
    ("sc1.Department.Name", "sc2.Department.Name"),
    ("sc1.Majors.Since", "sc2.Majors.Since"),
]
ROUNDS = 8


def state_key(session: AnalysisSession) -> str:
    return json.dumps(session.state_payload(), sort_keys=True)


def assert_txns_contiguous(events) -> dict[int, list]:
    """Group the log by txn id, asserting each txn's run is contiguous."""
    groups: dict[int, list] = {}
    last_seen: int | None = None
    closed: set[int] = set()
    for event in events:
        if event.txn != last_seen:
            assert event.txn not in closed, (
                f"txn {event.txn} interleaved with txn {last_seen}"
            )
            if last_seen is not None:
                closed.add(last_seen)
            last_seen = event.txn
        groups.setdefault(event.txn, []).append(event)
    return groups


@pytest.fixture
def session():
    return AnalysisSession([build_sc1(), build_sc2()])


def run_threads(workers) -> list[BaseException]:
    errors: list[BaseException] = []
    gate = threading.Barrier(len(workers))

    def wrap(worker):
        try:
            gate.wait()
            worker()
        except BaseException as exc:  # noqa: BLE001 - collected for the test
            errors.append(exc)

    threads = [
        threading.Thread(target=wrap, args=(worker,)) for worker in workers
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return errors


class TestStress:
    def test_interleaved_transactions_stay_contiguous(self, session):
        kernel = session.kernel
        base = kernel.bus.offset
        before = state_key(session)

        def worker(first, second):
            def run():
                for _ in range(ROUNDS):
                    with kernel.transaction():
                        session.declare_equivalent(first, second)
                        session.remove_from_class(first)

            return run

        errors = run_threads([worker(*pair) for pair in PAIRS])
        assert errors == []

        tail = kernel.bus.events(base)
        # no lost updates: every publish from every thread landed
        assert len(tail) == len(PAIRS) * ROUNDS * 2
        # serializable: each transaction's events form one contiguous run
        groups = assert_txns_contiguous(tail)
        assert len(groups) == len(PAIRS) * ROUNDS
        # no torn transactions: each group carries exactly its two events
        for events in groups.values():
            assert [event.action for event in events] == [
                "declare_equivalent",
                "remove_from_class",
            ]
        # every round was a net no-op, so the state is untouched
        assert state_key(session) == before
        assert kernel.head == kernel.bus.offset

    def test_no_lost_updates_across_threads(self, session):
        kernel = session.kernel

        def worker(first, second):
            def run():
                with kernel.transaction():
                    session.declare_equivalent(first, second)

            return run

        errors = run_threads([worker(*pair) for pair in PAIRS])
        assert errors == []
        classes = {
            frozenset(str(ref) for ref in members)
            for members in session.registry.nontrivial_classes()
        }
        assert classes == {frozenset(pair) for pair in PAIRS}

    def test_failed_transactions_leave_no_trace_under_contention(
        self, session
    ):
        kernel = session.kernel
        base = kernel.bus.offset

        class Boom(Exception):
            pass

        def committer(first, second):
            def run():
                for _ in range(ROUNDS):
                    with kernel.transaction():
                        session.declare_equivalent(first, second)
                        session.remove_from_class(first)

            return run

        def failer(first, second):
            def run():
                for _ in range(ROUNDS):
                    try:
                        with kernel.transaction():
                            session.declare_equivalent(first, second)
                            raise Boom()
                    except Boom:
                        pass

            return run

        errors = run_threads(
            [committer(*PAIRS[0]), failer(*PAIRS[1]), committer(*PAIRS[2])]
        )
        assert errors == []

        tail = kernel.bus.events(base)
        # only committed transactions appear, each one whole
        groups = assert_txns_contiguous(tail)
        assert len(groups) == 2 * ROUNDS
        for events in groups.values():
            assert [event.action for event in events] == [
                "declare_equivalent",
                "remove_from_class",
            ]
            assert events[0].payload["first"] != PAIRS[1][0]
        assert session.registry.nontrivial_classes() == []

    def test_concurrent_publishes_get_monotonic_offsets(self):
        from repro.kernel import EventBus

        bus = EventBus()
        per_thread = 50

        def worker(name):
            def run():
                for index in range(per_thread):
                    bus.publish(name, "tick", {"index": index})

            return run

        errors = run_threads([worker(f"scope{i}") for i in range(4)])
        assert errors == []
        events = bus.events()
        assert len(events) == 4 * per_thread
        assert [event.offset for event in events] == list(
            range(1, len(events) + 1)
        )
        # each thread's own publishes kept their program order
        for i in range(4):
            indices = [
                event.payload["index"]
                for event in events
                if event.scope == f"scope{i}"
            ]
            assert indices == list(range(per_thread))
