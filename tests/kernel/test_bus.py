"""Unit tests for the event bus: log, subscriptions, replay, grouping."""

import pytest

from repro.kernel import NO_CHANGE, Event, EventBus, EventEmitter


def test_publish_appends_with_one_based_offsets():
    bus = EventBus()
    first = bus.publish("registry", "declare_equivalent", {"first": "a"})
    second = bus.publish("object_network", "specify", {"first": "b"})
    assert first.offset == 1
    assert second.offset == 2
    assert bus.offset == 2
    assert bus.event_at(1) is first
    assert bus.events(0) == [first, second]
    assert bus.events(1) == [second]


def test_subscription_filters_by_scope_and_action():
    bus = EventBus()
    seen = []
    bus.subscribe(
        lambda event: seen.append(event.label),
        scopes=["registry"],
        actions=["declare_equivalent"],
    )
    bus.publish("registry", "declare_equivalent")
    bus.publish("registry", "remove_from_class")
    bus.publish("object_network", "declare_equivalent")
    assert seen == ["registry.declare_equivalent"]


def test_cancelled_subscription_stops_delivery():
    bus = EventBus()
    seen = []
    subscription = bus.subscribe(lambda event: seen.append(event.offset))
    bus.publish("registry", "x")
    subscription.cancel()
    bus.publish("registry", "y")
    assert seen == [1]


def test_replay_mode_notifies_views_but_appends_nothing():
    bus = EventBus()
    live_only_seen, view_seen = [], []
    bus.subscribe(lambda event: live_only_seen.append(event), live_only=True)
    bus.subscribe(lambda event: view_seen.append(event))
    with bus.replaying():
        event = bus.publish("registry", "declare_equivalent")
    assert bus.offset == 0
    assert event.offset == 0 and event.txn == 0
    assert not live_only_seen  # the audit tap never sees replays
    assert len(view_seen) == 1  # invalidation listeners always do


def test_grouped_events_share_one_txn_and_are_contiguous():
    bus = EventBus()
    with bus.grouped() as txn:
        a = bus.publish("registry", "x")
        b = bus.publish("registry", "y")
    c = bus.publish("registry", "z")
    assert a.txn == b.txn == txn
    assert c.txn != a.txn
    with bus.grouped() as outer:
        with bus.grouped() as inner:  # nested groups join the outermost
            d = bus.publish("registry", "w")
        assert inner == outer
    assert d.txn == outer


def test_ungrouped_publishes_get_distinct_txns():
    bus = EventBus()
    a = bus.publish("registry", "x")
    b = bus.publish("registry", "y")
    assert a.txn != b.txn


def test_truncate_drops_tail_and_inverses():
    bus = EventBus()
    bus.publish("registry", "x", inverse=("registry", "undo_x", {}))
    bus.publish("registry", "y", inverse=("registry", "undo_y", {}))
    dropped = bus.truncate(1)
    assert [event.action for event in dropped] == ["y"]
    assert bus.offset == 1
    assert bus.inverse_for(1) is not None
    assert bus.inverse_for(2) is None


def test_serialisation_round_trip():
    bus = EventBus()
    with bus.grouped():
        bus.publish(
            "registry",
            "declare_equivalent",
            {"first": "a", "second": "b"},
            objects=frozenset([("sc1", "Student")]),
            schemas=frozenset(["sc1"]),
            inverse=NO_CHANGE,
        )
    bus.publish("session", "integrate", {"first": "sc1"})

    restored = EventBus()
    restored.load_dicts(bus.to_dicts())
    assert restored.offset == bus.offset
    for offset in (1, 2):
        original, loaded = bus.event_at(offset), restored.event_at(offset)
        assert loaded.scope == original.scope
        assert loaded.action == original.action
        assert loaded.payload == original.payload
        assert loaded.txn == original.txn
        assert loaded.objects == original.objects
        assert loaded.schemas == original.schemas
    # inverses are process-local; restored logs undo via checkout
    assert restored.inverse_for(1) is None
    # the txn counter resumes past the highest restored id
    next_event = restored.publish("registry", "x")
    assert next_event.txn > restored.event_at(2).txn


def test_emitter_binds_scope_and_mutes():
    bus = EventBus()
    emitter = EventEmitter(bus, "object_network")
    event = emitter.emit("specify", {"first": "a"})
    assert isinstance(event, Event)
    assert event.scope == "object_network"
    with emitter.muted():
        assert emitter.emit("specify", {"first": "b"}) is None
    assert bus.offset == 1


def test_event_dict_round_trip_omits_empty_sets():
    event = Event(
        3, "registry", "x", {"k": 1}, 7, frozenset(), frozenset(["sc1"])
    )
    data = event.to_dict()
    assert "objects" not in data
    assert data["schemas"] == ["sc1"]
    back = Event.from_dict(data)
    assert back == event


def test_bad_offset_raises():
    bus = EventBus()
    with pytest.raises(IndexError):
        bus.event_at(1)
