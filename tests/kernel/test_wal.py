"""The write-ahead log's framing, repair and lifecycle guarantees."""

import json
import struct
import zlib

import pytest

from repro.errors import WalError
from repro.kernel.wal import WriteAheadLog


def records_of(wal_dir):
    """Reopen the directory and return what a recovery would read."""
    wal = WriteAheadLog(wal_dir)
    try:
        return wal.open_report
    finally:
        wal.close()


class TestAppendAndScan:
    def test_round_trips_records_in_order(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal") as wal:
            wal.record_base(0, 0)
            wal.commit([{"offset": 1, "scope": "s", "action": "a"}])
            wal.record_head(0)
        report = records_of(tmp_path / "wal")
        assert [r["t"] for r in report.records] == ["base", "commit", "head"]
        assert report.clean
        assert report.segments_scanned == 1

    def test_commit_carries_events_and_truncate(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal") as wal:
            wal.commit([{"offset": 4}], truncate=3)
        (record,) = records_of(tmp_path / "wal").records
        assert record == {
            "t": "commit", "events": [{"offset": 4}], "truncate": 3
        }

    def test_append_after_close_is_misuse(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        wal.close()
        with pytest.raises(WalError):
            wal.record_head(1)


class TestTornTail:
    def seed_segments(self, wal_dir, count=3):
        with WriteAheadLog(wal_dir) as wal:
            for offset in range(1, count + 1):
                wal.commit([{"offset": offset}])
        return sorted(wal_dir.glob("wal-*.seg"))[-1]

    def test_partial_final_record_is_truncated_away(self, tmp_path):
        segment = self.seed_segments(tmp_path / "wal")
        data = segment.read_bytes()
        segment.write_bytes(data[:-5])  # tear the last record
        report = records_of(tmp_path / "wal")
        assert len(report.records) == 2
        assert report.bytes_truncated > 0
        assert not report.segments_quarantined
        # the repair is physical: a further reopen is clean
        assert records_of(tmp_path / "wal").clean

    def test_torn_header_alone_is_truncated(self, tmp_path):
        segment = self.seed_segments(tmp_path / "wal", count=1)
        with open(segment, "ab") as handle:
            handle.write(struct.pack("<I", 999))  # half a header
        report = records_of(tmp_path / "wal")
        assert len(report.records) == 1
        assert report.bytes_truncated == 4

    def test_appending_after_repair_extends_the_log(self, tmp_path):
        segment = self.seed_segments(tmp_path / "wal")
        segment.write_bytes(segment.read_bytes()[:-5])
        with WriteAheadLog(tmp_path / "wal") as wal:
            wal.commit([{"offset": 3}])
        report = records_of(tmp_path / "wal")
        assert report.clean
        assert [r["events"][0]["offset"] for r in report.records] == [1, 2, 3]


class TestCorruptSegments:
    def build_generation(self, wal_dir):
        with WriteAheadLog(wal_dir) as wal:
            wal.commit([{"offset": 1}])
            wal.rotate()
            wal.commit([{"offset": 2}])
        return sorted(wal_dir.glob("wal-*.seg"))

    def test_mid_generation_flip_quarantines_the_rest(self, tmp_path):
        first, second = self.build_generation(tmp_path / "wal")
        data = bytearray(first.read_bytes())
        data[12] ^= 0xFF  # flip a payload bit: checksum now fails
        first.write_bytes(bytes(data))
        report = records_of(tmp_path / "wal")
        assert report.records == []
        assert report.segments_quarantined == [first.name, second.name]
        leftovers = sorted(p.name for p in (tmp_path / "wal").iterdir())
        assert first.with_suffix(".corrupt").name in leftovers
        assert second.with_suffix(".corrupt").name in leftovers

    def test_final_segment_flip_is_a_tail_truncate(self, tmp_path):
        first, second = self.build_generation(tmp_path / "wal")
        data = bytearray(second.read_bytes())
        data[12] ^= 0xFF
        second.write_bytes(bytes(data))
        report = records_of(tmp_path / "wal")
        assert [r["events"][0]["offset"] for r in report.records] == [1]
        assert report.bytes_truncated > 0
        assert not report.segments_quarantined

    def test_garbage_json_with_valid_checksum_is_damage(self, tmp_path):
        wal_dir = tmp_path / "wal"
        wal_dir.mkdir()
        payload = b"not json\n"
        header = struct.pack("<II", len(payload), zlib.crc32(payload))
        (wal_dir / "wal-0000000001.seg").write_bytes(header + payload)
        report = records_of(wal_dir)
        assert report.records == []
        assert report.bytes_truncated == len(header) + len(payload)


class TestLifecycle:
    def test_rotate_starts_a_new_segment(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal") as wal:
            wal.commit([{"offset": 1}])
            wal.rotate()
            wal.commit([{"offset": 2}])
        segments = sorted(p.name for p in (tmp_path / "wal").glob("*.seg"))
        assert segments == ["wal-0000000001.seg", "wal-0000000002.seg"]
        report = records_of(tmp_path / "wal")
        assert [r["events"][0]["offset"] for r in report.records] == [1, 2]

    def test_reset_leaves_one_fresh_generation(self, tmp_path):
        with WriteAheadLog(tmp_path / "wal") as wal:
            wal.commit([{"offset": 1}])
            wal.rotate()
            wal.commit([{"offset": 2}])
            wal.reset(2, 2)
        report = records_of(tmp_path / "wal")
        assert report.records == [{"t": "base", "offset": 2, "head": 2}]
        assert report.segments_scanned == 1

    def test_reset_clears_stale_quarantine_files(self, tmp_path):
        wal_dir = tmp_path / "wal"
        with WriteAheadLog(wal_dir) as wal:
            wal.commit([{"offset": 1}])
        (wal_dir / "wal-0000000000.corrupt").write_bytes(b"old damage")
        with WriteAheadLog(wal_dir) as wal:
            wal.reset(0, 0)
        assert sorted(p.name for p in wal_dir.iterdir()) == [
            "wal-0000000001.seg"
        ]

    def test_records_survive_process_restart_byte_for_byte(self, tmp_path):
        events = [{"offset": 1, "payload": {"name": "sc1", "n": 3}}]
        with WriteAheadLog(tmp_path / "wal") as wal:
            wal.commit(events)
        # the payload is one JSON line: recoverable with standard tools
        raw = (tmp_path / "wal" / "wal-0000000001.seg").read_bytes()
        line = raw[8:].decode("utf-8")
        assert json.loads(line)["events"] == events
