"""Crash recovery: save + WAL replay must always converge.

Each scenario stages a different on-disk aftermath — clean checkpoint,
unsaved tail, undone cursor, stale WAL generation, corrupt save — and
asserts the :class:`~repro.kernel.recovery.RecoveryManager` rebuilds the
exact committed state (bitwise, via canonical ``state_payload`` JSON).
"""

import json

import pytest

from repro.errors import CorruptDictionaryError, DictionaryNotFoundError
from repro.kernel.recovery import (
    RecoveryManager,
    RecoveryReport,
    wal_directory_for,
)
from repro.obs.metrics import MetricsRegistry
from repro.tool.session import ToolSession
from repro.workloads.university import build_sc1, build_sc2


def fingerprint(session: ToolSession) -> str:
    return json.dumps(session.analysis.state_payload(), sort_keys=True)


@pytest.fixture
def save_path(tmp_path):
    return tmp_path / "session.json"


def durable_session(save_path) -> ToolSession:
    session = ToolSession.open(save_path)
    session.adopt_schema(build_sc1())
    session.adopt_schema(build_sc2())
    return session


class TestCleanPaths:
    def test_fresh_open_then_reopen_round_trips(self, save_path):
        session = durable_session(save_path)
        session.registry.declare_equivalent(
            "sc1.Student.Name", "sc2.Grad_student.Name"
        )
        expected = fingerprint(session)
        del session  # crash: never saved — the WAL alone carries it

        recovered = ToolSession.open(save_path)
        assert fingerprint(recovered) == expected
        report = recovered.last_recovery
        assert report.source == "wal"
        assert report.used_wal
        assert report.events_replayed > 0

    def test_checkpoint_then_clean_reopen_uses_the_save_alone(
        self, save_path
    ):
        session = durable_session(save_path)
        session.save(save_path)
        expected = fingerprint(session)
        del session

        recovered = ToolSession.open(save_path)
        assert fingerprint(recovered) == expected
        assert recovered.last_recovery.source == "save"
        assert recovered.last_recovery.clean
        assert not recovered.last_recovery.used_wal

    def test_unsaved_tail_replays_on_top_of_the_checkpoint(self, save_path):
        session = durable_session(save_path)
        session.save(save_path)
        session.registry.declare_equivalent(
            "sc1.Student.Name", "sc2.Grad_student.Name"
        )
        session.registry.declare_equivalent(
            "sc1.Department.Name", "sc2.Department.Name"
        )
        expected = fingerprint(session)
        del session

        recovered = ToolSession.open(save_path)
        assert fingerprint(recovered) == expected
        report = recovered.last_recovery
        assert report.source == "save+wal"
        assert report.events_replayed == 2

    def test_recovered_sessions_stay_usable_and_durable(self, save_path):
        session = durable_session(save_path)
        session.registry.declare_equivalent(
            "sc1.Student.Name", "sc2.Grad_student.Name"
        )
        del session

        recovered = ToolSession.open(save_path)
        recovered.registry.declare_equivalent(
            "sc1.Student.GPA", "sc2.Grad_student.GPA"
        )
        expected = fingerprint(recovered)
        del recovered

        third = ToolSession.open(save_path)
        assert fingerprint(third) == expected
        assert len(third.registry.nontrivial_classes()) == 2


class TestCursorAndHistory:
    def test_undo_position_survives_the_crash(self, save_path):
        session = durable_session(save_path)
        session.registry.declare_equivalent(
            "sc1.Student.Name", "sc2.Grad_student.Name"
        )
        session.registry.declare_equivalent(
            "sc1.Student.GPA", "sc2.Grad_student.GPA"
        )
        session.undo()
        expected = fingerprint(session)
        del session

        recovered = ToolSession.open(save_path)
        assert fingerprint(recovered) == expected
        # the undone tail is still there to redo
        assert recovered.analysis.kernel.can_redo()
        recovered.redo()
        assert len(recovered.registry.nontrivial_classes()) == 2

    def test_commit_after_undo_truncates_on_recovery_too(self, save_path):
        session = durable_session(save_path)
        session.registry.declare_equivalent(
            "sc1.Student.Name", "sc2.Grad_student.Name"
        )
        session.undo()
        session.registry.declare_equivalent(
            "sc1.Department.Name", "sc2.Department.Name"
        )  # branches: the undone declare is gone for good
        expected = fingerprint(session)
        del session

        recovered = ToolSession.open(save_path)
        assert fingerprint(recovered) == expected
        assert not recovered.analysis.kernel.can_redo()
        members = {
            str(m)
            for m in recovered.registry.class_members("sc1.Department.Name")
        }
        assert members == {"sc1.Department.Name", "sc2.Department.Name"}


class TestStaleAndDamaged:
    def test_stale_generation_converges_on_the_save(self, save_path):
        """The crash window between a save and the WAL reset after it."""
        session = durable_session(save_path)
        session.registry.declare_equivalent(
            "sc1.Student.Name", "sc2.Grad_student.Name"
        )
        # a save that "crashed" before resetting the WAL: write the
        # dictionary directly, leaving the generation stale
        session.to_dictionary().save(save_path)
        expected = fingerprint(session)
        del session

        recovered = ToolSession.open(save_path)
        assert fingerprint(recovered) == expected
        # every WAL event was already in the save: nothing replayed
        assert recovered.last_recovery.events_replayed == 0

    def test_corrupt_save_falls_back_to_the_wal(self, save_path):
        session = durable_session(save_path)
        session.registry.declare_equivalent(
            "sc1.Student.Name", "sc2.Grad_student.Name"
        )
        expected = fingerprint(session)
        del session
        save_path.write_text("{damaged")

        recovered = ToolSession.open(save_path)
        assert fingerprint(recovered) == expected
        report = recovered.last_recovery
        assert report.source == "wal"
        assert report.save_error is not None
        assert "save unusable" in report.summary()

    def test_corrupt_save_after_checkpoint_recovers_from_the_wal(
        self, save_path
    ):
        # the checkpoint reset embeds the saved kernel state in the
        # generation's base record, so even the post-checkpoint save
        # going bad leaves the WAL self-anchoring
        session = durable_session(save_path)
        session.save(save_path)
        session.registry.declare_equivalent(
            "sc1.Student.Name", "sc2.Grad_student.Name"
        )
        expected = fingerprint(session)
        del session
        body = save_path.read_text()
        save_path.write_text(body.replace("Student", "Studeot", 1))

        recovered = ToolSession.open(save_path)
        assert fingerprint(recovered) == expected
        report = recovered.last_recovery
        assert report.source == "wal"
        assert report.save_error is not None

    def test_corrupt_save_with_stateless_base_record_raises(self, save_path):
        # a generation anchored at a real offset WITHOUT an embedded
        # state genuinely depends on its save: recovery must refuse to
        # invent the missing events
        session = durable_session(save_path)
        session.save(save_path)
        wal_dir = wal_directory_for(save_path)
        from repro.kernel.wal import WriteAheadLog

        for segment in wal_dir.glob("wal-*.seg"):
            segment.unlink()
        stateless = WriteAheadLog(wal_dir)
        stateless.record_base(5, 5)
        stateless.close()
        body = save_path.read_text()
        save_path.write_text(body.replace("Student", "Studeot", 1))

        with pytest.raises(CorruptDictionaryError):
            ToolSession.open(save_path)

    def test_missing_save_without_create_raises(self, save_path):
        with pytest.raises(DictionaryNotFoundError):
            ToolSession.open(save_path, create=False)
        assert not wal_directory_for(save_path).exists()


class TestReporting:
    def test_report_feeds_the_metrics_registry(self, save_path):
        session = durable_session(save_path)
        session.registry.declare_equivalent(
            "sc1.Student.Name", "sc2.Grad_student.Name"
        )
        del session

        recovered = ToolSession.open(save_path)
        registry = MetricsRegistry()
        recovered.last_recovery.record_metrics(registry)
        snapshot = registry.snapshot()
        assert snapshot["recovery.opens"] == 1
        assert snapshot["recovery.wal_recoveries"] == 1
        assert (
            snapshot["recovery.events_replayed"]
            == recovered.last_recovery.events_replayed
        )

    def test_summary_counts_repairs(self, save_path):
        report = RecoveryReport(
            source="save+wal",
            events_replayed=4,
            bytes_truncated=17,
            segments_quarantined=["wal-0000000001.seg"],
        )
        text = report.summary()
        assert "4 event(s)" in text
        assert "17 torn byte(s)" in text
        assert "1 segment(s)" in text

    def test_manager_exposes_the_merged_state(self, save_path):
        session = durable_session(save_path)
        session.save(save_path)
        session.registry.declare_equivalent(
            "sc1.Student.Name", "sc2.Grad_student.Name"
        )
        log_length = session.analysis.kernel.bus.offset
        del session

        manager = RecoveryManager(save_path)
        report = manager.recover()
        assert manager.dictionary is not None
        assert manager.wal is not None
        assert len(manager.kernel_state["events"]) == log_length
        assert report.head == log_length
        assert report.to_dict()["source"] == "save+wal"
        manager.wal.close()
