"""The kernel's two replay invariants, property-tested with Hypothesis.

Over random DDA sittings on the paper's sc1/sc2:

(a) restoring from *any* snapshot and replaying the tail reaches a state
    bitwise-identical (SHA-256 over canonical JSON) to replaying the
    full log from scratch; and
(b) checking out *any* prefix of the log equals re-running exactly that
    prefix against a fresh session.
"""

from __future__ import annotations

import hashlib
import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.equivalence.session import AnalysisSession
from repro.errors import ReproError
from repro.workloads.university import build_sc1, build_sc2

ATTRIBUTES = (
    "sc1.Student.Name",
    "sc1.Student.GPA",
    "sc1.Department.Name",
    "sc2.Grad_student.Name",
    "sc2.Grad_student.GPA",
    "sc2.Faculty.Name",
    "sc2.Department.Name",
)

OBJECTS = (
    "sc1.Student",
    "sc1.Department",
    "sc2.Grad_student",
    "sc2.Faculty",
    "sc2.Department",
)

# typed evolution edits, in wire-payload form; infeasible ones (dropping
# a class a relationship still references, dropping what was never added)
# simply raise and are swallowed like any other failed operation
EDITS = (
    ("sc1", {"kind": "add_attribute", "object": "Student",
             "attribute": {"name": "Age", "domain": {"kind": "integer"}}}),
    ("sc1", {"kind": "rename_attribute", "object": "Student",
             "old": "GPA", "new": "Grade_avg"}),
    ("sc1", {"kind": "drop_attribute", "object": "Student",
             "attribute": "GPA"}),
    ("sc2", {"kind": "add_class",
             "structure": {"kind": "e", "name": "Campus", "attributes": [
                 {"name": "CName", "domain": {"kind": "char"},
                  "is_key": True}]}}),
    ("sc2", {"kind": "drop_class", "object": "Campus", "cascade": True}),
    ("sc2", {"kind": "drop_relationship", "relationship": "Works",
             "cascade": True}),
    ("sc2", {"kind": "drop_class", "object": "Faculty", "cascade": True}),
)

operations = st.one_of(
    st.tuples(
        st.just("declare"),
        st.sampled_from(ATTRIBUTES),
        st.sampled_from(ATTRIBUTES),
    ),
    st.tuples(st.just("remove"), st.sampled_from(ATTRIBUTES)),
    st.tuples(
        st.just("specify"),
        st.sampled_from(OBJECTS),
        st.sampled_from(OBJECTS),
        st.integers(min_value=0, max_value=5),
    ),
    st.tuples(
        st.just("retract"),
        st.sampled_from(OBJECTS),
        st.sampled_from(OBJECTS),
    ),
    st.tuples(st.just("integrate")),
    st.tuples(st.just("edit"), st.sampled_from(range(len(EDITS)))),
)


def apply_operation(session: AnalysisSession, operation) -> None:
    verb = operation[0]
    try:
        if verb == "declare":
            session.declare_equivalent(operation[1], operation[2])
        elif verb == "remove":
            session.remove_from_class(operation[1])
        elif verb == "specify":
            session.specify(operation[1], operation[2], operation[3])
        elif verb == "retract":
            session.retract(operation[1], operation[2])
        elif verb == "edit":
            from copy import deepcopy

            from repro.evolution import edit_from_payload

            schema, payload = EDITS[operation[1]]
            session.apply_edit(schema, edit_from_payload(deepcopy(payload)))
        else:
            session.integrate("sc1", "sc2")
    except ReproError:
        pass  # failures are themselves recorded events


def fingerprint(session: AnalysisSession) -> str:
    """SHA-256 over the canonical JSON of the session's full state."""
    canonical = json.dumps(
        session.state_payload(), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def drive(ops, *, snapshot_every: int | None = None) -> AnalysisSession:
    session = AnalysisSession([build_sc1(), build_sc2()])
    if snapshot_every is not None:
        session.kernel.snapshot_every = snapshot_every
    for operation in ops:
        apply_operation(session, operation)
    return session


def replay_prefix(events, offset: int) -> AnalysisSession:
    """A fresh session re-driven through the log's first ``offset`` events."""
    from repro.kernel.apply import apply_event
    from repro.errors import ReplayError

    fresh = AnalysisSession()

    def diverge(event, message):
        raise ReplayError(message)

    with fresh.kernel.bus.replaying():
        for event in events[:offset]:
            apply_event(fresh, event, diverge)
    return fresh


@settings(max_examples=20, deadline=None)
@given(st.lists(operations, max_size=15), st.data())
def test_snapshot_plus_tail_equals_full_replay(ops, data):
    live = drive(ops, snapshot_every=3)  # snapshots accumulate while driving
    kernel = live.kernel
    final = fingerprint(live)
    events = kernel.bus.events()

    # full replay from scratch
    assert fingerprint(replay_prefix(events, len(events))) == final

    # restore from a snapshot + tail replay (export/restore keeps all
    # snapshots; checkout picks the nearest one at or below the head)
    state = kernel.export_state()

    from repro.kernel import Kernel

    restored_kernel = Kernel.restore(state)
    restored = AnalysisSession(kernel=restored_kernel)
    restored_kernel.checkout(state["head"])
    assert fingerprint(restored) == final


def test_snapshot_restore_is_insensitive_to_assertion_order():
    """Regression: integration output must not depend on specification order.

    Snapshots store the canonical state payload, which sorts assertions —
    so a restored session re-specifies them in sorted, not historical,
    order.  This exact sequence (two containments specified "out of order"
    around an equivalence remove, then integrate) used to replay a
    different ``parents`` order on the integrated category and fail the
    fingerprint check in ``checkout``.
    """
    from repro.kernel import Kernel

    ops = [
        ("declare", "sc1.Student.Name", "sc1.Student.GPA"),
        ("specify", "sc2.Grad_student", "sc1.Department", 2),
        ("remove", "sc1.Student.Name"),
        ("specify", "sc1.Student", "sc2.Grad_student", 3),
        ("integrate",),
    ]
    live = drive(ops, snapshot_every=3)
    state = live.kernel.export_state()
    restored_kernel = Kernel.restore(state)
    restored = AnalysisSession(kernel=restored_kernel)
    restored_kernel.checkout(state["head"])  # used to raise ReplayError
    assert fingerprint(restored) == fingerprint(live)


@settings(max_examples=20, deadline=None)
@given(st.lists(operations, min_size=1, max_size=12), st.data())
def test_any_prefix_checkout_equals_rerunning_the_prefix(ops, data):
    live = drive(ops)
    kernel = live.kernel
    events = kernel.bus.events()
    offset = data.draw(
        st.integers(min_value=0, max_value=len(events)), label="offset"
    )
    kernel.checkout(offset)
    assert fingerprint(live) == fingerprint(replay_prefix(events, offset))
    assert kernel.head == offset
