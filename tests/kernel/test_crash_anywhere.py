"""The crash-anywhere property: recovery always lands on committed state.

Hypothesis drives a random DDA sitting against a durable session while a
:class:`~repro.faults.FaultPlan` schedules a simulated process death at
a random crashpoint — possibly tearing the crashing write or losing
fsyncs — and optionally a checkpoint save mid-sitting.  Whatever the
aftermath, reopening the path must yield a state bitwise-identical
(canonical ``state_payload`` JSON) to the state after some *prefix* of
the attempted transactions: no torn transaction ever surfaces, and
nothing the recovery invents is observable.  Two refinements:

* the transaction in flight at the crash is a legitimate landing spot —
  its WAL record may have become durable before the "death"; and
* with honest fsyncs (no ``lost_fsync``), every *completed* transaction
  was fsynced before the next one started, so recovery may lose at most
  the one in flight — the durability lower bound.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import faults
from repro.faults import CRASHPOINTS, FaultPlan, InjectedCrash
from repro.tool.session import ToolSession
from repro.workloads.university import build_sc1, build_sc2

from tests.kernel.test_property import apply_operation, fingerprint, operations

crash_plans = st.builds(
    FaultPlan,
    crash_at=st.sampled_from(CRASHPOINTS),
    occurrence=st.integers(min_value=1, max_value=12),
    torn=st.booleans(),
    lost_fsync=st.booleans(),
    seed=st.integers(min_value=0, max_value=2**16),
)


@settings(max_examples=30, deadline=None)
@given(
    ops=st.lists(operations, min_size=1, max_size=8),
    plan=crash_plans,
    save_at=st.integers(min_value=-1, max_value=8),
)
def test_recovery_is_a_prefix_of_committed_transactions(ops, plan, save_at):
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "session.json"
        session = ToolSession.open(path)
        session.adopt_schema(build_sc1())
        session.adopt_schema(build_sc2())
        # frequent snapshots → WAL segment rotation inside the sitting
        session.analysis.kernel.snapshot_every = 2
        # every state a recovery may legitimately land on: after the
        # schemas (the last pre-fault commit) and after each later op
        committed = [fingerprint(session.analysis)]
        crashed = False
        with faults.inject(plan):
            try:
                for index, operation in enumerate(ops):
                    if index == save_at:
                        session.save(path)
                    apply_operation(session.analysis, operation)
                    committed.append(fingerprint(session.analysis))
            except InjectedCrash:
                crashed = True
                # the in-flight transaction is applied in memory and its
                # WAL record may or may not have become durable
                committed.append(fingerprint(session.analysis))
        del session  # the "process" is gone either way

        recovered = ToolSession.open(path)
        recovered_state = fingerprint(recovered.analysis)
        assert recovered_state in committed, (
            f"recovered state matches no committed prefix "
            f"(crashed={crashed}, report={recovered.last_recovery.to_dict()})"
        )
        if not crashed:
            # without a crash nothing may be lost: recovery is exact
            assert recovered_state == committed[-1]
        elif not plan.lost_fsync:
            # honest fsyncs: at most the in-flight transaction is lost
            assert recovered_state in committed[-2:], (
                f"a durably committed transaction was lost "
                f"(report={recovered.last_recovery.to_dict()})"
            )


@settings(max_examples=10, deadline=None)
@given(
    ops=st.lists(operations, min_size=1, max_size=5),
    plan=crash_plans,
)
def test_recovered_sessions_recover_again(ops, plan):
    """Crash, recover, mutate, crash again (no injection): still consistent."""
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "session.json"
        session = ToolSession.open(path)
        session.adopt_schema(build_sc1())
        session.adopt_schema(build_sc2())
        with faults.inject(plan):
            try:
                for operation in ops:
                    apply_operation(session.analysis, operation)
            except InjectedCrash:
                pass
        del session

        survivor = ToolSession.open(path)
        apply_operation(survivor.analysis, ("declare",
            "sc1.Student.Name", "sc2.Grad_student.Name"))
        expected = fingerprint(survivor.analysis)
        del survivor

        final = ToolSession.open(path)
        assert fingerprint(final.analysis) == expected
