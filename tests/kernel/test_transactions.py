"""Transactions: all-or-nothing multi-mutation blocks over the kernel."""

import json

import pytest

from repro.equivalence.session import AnalysisSession
from repro.workloads.university import build_sc1, build_sc2


def state_key(session: AnalysisSession) -> str:
    return json.dumps(session.state_payload(), sort_keys=True)


class Boom(Exception):
    pass


@pytest.fixture
def session():
    return AnalysisSession([build_sc1(), build_sc2()])


class TestCommit:
    def test_transaction_commits_one_group(self, session):
        kernel = session.kernel
        before = kernel.head
        with kernel.transaction():
            session.declare_equivalent(
                "sc1.Student.Name", "sc2.Grad_student.Name"
            )
            session.declare_equivalent(
                "sc1.Student.GPA", "sc2.Grad_student.GPA"
            )
        committed = kernel.bus.events(before)
        assert len(committed) == 2
        assert len({event.txn for event in committed}) == 1
        assert kernel.head == before + 2

    def test_nested_transactions_join_the_outermost(self, session):
        kernel = session.kernel
        before = kernel.head
        with kernel.transaction():
            session.declare_equivalent(
                "sc1.Student.Name", "sc2.Grad_student.Name"
            )
            with kernel.transaction():
                session.declare_equivalent(
                    "sc1.Student.GPA", "sc2.Grad_student.GPA"
                )
        committed = kernel.bus.events(before)
        assert len({event.txn for event in committed}) == 1


class TestRollback:
    def test_failed_transaction_restores_state_and_log(self, session):
        kernel = session.kernel
        before_offset = kernel.bus.offset
        before_state = state_key(session)
        with pytest.raises(Boom):
            with kernel.transaction():
                session.declare_equivalent(
                    "sc1.Student.Name", "sc2.Grad_student.Name"
                )
                session.specify("sc1.Student", "sc2.Grad_student", 1)
                raise Boom()
        assert kernel.bus.offset == before_offset
        assert kernel.head == before_offset
        assert state_key(session) == before_state
        assert session.registry.nontrivial_classes() == []
        assert (
            session.assertion_for("sc1.Student", "sc2.Grad_student") is None
        )

    def test_rollback_covers_non_invertible_events(self, session):
        # an integrate event records no inverse, so the rollback falls
        # back to rebuilding the session from the entry state
        kernel = session.kernel
        session.declare_equivalent("sc1.Student.Name", "sc2.Grad_student.Name")
        before_offset = kernel.bus.offset
        before_state = state_key(session)
        with pytest.raises(Boom):
            with kernel.transaction():
                session.integrate("sc1", "sc2")
                raise Boom()
        assert kernel.bus.offset == before_offset
        assert state_key(session) == before_state
        assert kernel.result_at_head() is None

    def test_nested_failure_rolls_back_the_whole_transaction(self, session):
        kernel = session.kernel
        before_offset = kernel.bus.offset
        before_state = state_key(session)
        with pytest.raises(Boom):
            with kernel.transaction():
                session.declare_equivalent(
                    "sc1.Student.Name", "sc2.Grad_student.Name"
                )
                with kernel.transaction():
                    session.declare_equivalent(
                        "sc1.Student.GPA", "sc2.Grad_student.GPA"
                    )
                    raise Boom()
        assert kernel.bus.offset == before_offset
        assert state_key(session) == before_state

    def test_committed_history_survives_a_later_rollback(self, session):
        kernel = session.kernel
        session.declare_equivalent("sc1.Student.Name", "sc2.Grad_student.Name")
        committed_state = state_key(session)
        with pytest.raises(Boom):
            with kernel.transaction():
                session.remove_from_class("sc1.Student.Name")
                raise Boom()
        assert state_key(session) == committed_state
        assert len(session.registry.nontrivial_classes()) == 1

    def test_rollback_resnapshots_an_attached_audit_log(self, session):
        log = session.attach_audit()
        with pytest.raises(Boom):
            with session.kernel.transaction():
                session.declare_equivalent(
                    "sc1.Student.Name", "sc2.Grad_student.Name"
                )
                raise Boom()
        assert log.events[-1].action == "snapshot"

    def test_failed_transaction_still_raises_the_original_error(self, session):
        with pytest.raises(Boom):
            with session.kernel.transaction():
                raise Boom()
