"""Kernel-level undo/redo: group-wise time travel with no-op skipping."""

import json

import pytest

from repro.equivalence.session import AnalysisSession
from repro.workloads.university import build_sc1, build_sc2


def state_key(session: AnalysisSession) -> str:
    return json.dumps(session.state_payload(), sort_keys=True)


@pytest.fixture
def session():
    return AnalysisSession([build_sc1(), build_sc2()])


class TestUndo:
    def test_undo_reverts_the_last_declaration(self, session):
        before = state_key(session)
        session.declare_equivalent("sc1.Student.Name", "sc2.Grad_student.Name")
        assert session.kernel.undo()
        assert state_key(session) == before
        assert session.registry.nontrivial_classes() == []

    def test_undo_reverts_an_assertion(self, session):
        before = state_key(session)
        session.specify("sc1.Student", "sc2.Grad_student", 2)
        assert session.kernel.undo()
        assert state_key(session) == before
        assert session.assertion_for("sc1.Student", "sc2.Grad_student") is None

    def test_undo_reverts_a_retract(self, session):
        session.specify("sc1.Student", "sc2.Grad_student", 2)
        specified = state_key(session)
        session.retract("sc1.Student", "sc2.Grad_student")
        assert session.kernel.undo()
        assert state_key(session) == specified
        assertion = session.assertion_for("sc1.Student", "sc2.Grad_student")
        assert assertion is not None and assertion.kind.code == 2

    def test_undo_skips_no_op_rejected_groups(self, session):
        from repro.errors import AssertionSpecError

        session.specify("sc1.Student", "sc2.Grad_student", 1)
        specified = state_key(session)
        with pytest.raises(AssertionSpecError):
            session.specify("sc1.Student", "sc2.Grad_student", 4)
        # the rejection event is in history, but undo skips past it and
        # reverts the successful specify instead
        assert state_key(session) == specified
        assert session.kernel.undo()
        assert session.assertion_for("sc1.Student", "sc2.Grad_student") is None

    def test_undo_bottoms_out_at_the_baseline(self, session):
        session.declare_equivalent("sc1.Student.Name", "sc2.Grad_student.Name")
        # keep undoing: declaration first, then the schema adds themselves
        steps = 0
        while session.kernel.undo():
            steps += 1
            assert steps < 10
        assert session.schemas() == []
        assert not session.kernel.can_undo()

    def test_undo_of_integrate_falls_back_to_checkout(self, session):
        session.declare_equivalent("sc1.Student.Name", "sc2.Grad_student.Name")
        before = state_key(session)
        result = session.integrate("sc1", "sc2")
        assert result is not None
        assert session.kernel.result_at_head() is result
        assert session.kernel.undo()
        assert state_key(session) == before
        assert session.kernel.result_at_head() is None


class TestRedo:
    def test_redo_reapplies_an_undone_declaration(self, session):
        session.declare_equivalent("sc1.Student.Name", "sc2.Grad_student.Name")
        after = state_key(session)
        session.kernel.undo()
        assert session.kernel.redo()
        assert state_key(session) == after

    def test_redo_restores_the_integration_result(self, session):
        session.declare_equivalent("sc1.Student.Name", "sc2.Grad_student.Name")
        result = session.integrate("sc1", "sc2")
        fingerprint_before = result.schema.name
        session.kernel.undo()
        assert session.kernel.redo()
        redone = session.kernel.result_at_head()
        assert redone is not None
        assert redone.schema.name == fingerprint_before

    def test_nothing_to_redo_without_an_undo(self, session):
        session.declare_equivalent("sc1.Student.Name", "sc2.Grad_student.Name")
        assert not session.kernel.redo()

    def test_live_mutation_truncates_the_redo_tail(self, session):
        session.declare_equivalent("sc1.Student.Name", "sc2.Grad_student.Name")
        session.kernel.undo()
        session.declare_equivalent("sc1.Student.GPA", "sc2.Grad_student.GPA")
        assert not session.kernel.redo()  # the old branch is gone
        classes = session.registry.nontrivial_classes()
        assert len(classes) == 1
        members = {str(ref) for ref in classes[0]}
        assert members == {"sc1.Student.GPA", "sc2.Grad_student.GPA"}

    def test_undo_redo_round_trip_is_stable(self, session):
        session.declare_equivalent("sc1.Student.Name", "sc2.Grad_student.Name")
        session.specify("sc1.Student", "sc2.Grad_student", 2)
        final = state_key(session)
        assert session.kernel.undo()
        assert session.kernel.undo()
        assert session.kernel.redo()
        assert session.kernel.redo()
        assert state_key(session) == final

    def test_can_undo_can_redo_track_the_cursor(self, session):
        kernel = session.kernel
        session.declare_equivalent("sc1.Student.Name", "sc2.Grad_student.Name")
        assert kernel.can_undo()
        assert not kernel.can_redo()
        kernel.undo()
        assert kernel.can_redo()


class TestAuditResnapshot:
    def test_time_travel_re_anchors_the_audit_log(self, session):
        log = session.attach_audit()
        session.declare_equivalent("sc1.Student.Name", "sc2.Grad_student.Name")
        session.kernel.undo()
        assert log.events[-1].action == "snapshot"
        from repro.obs.replay import replay

        outcome = replay(log)
        assert outcome.verified
        assert state_key(outcome.session) == state_key(session)
