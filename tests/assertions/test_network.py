"""Tests for the assertion constraint network."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.assertions.assertion import ordered_pair
from repro.assertions.kinds import AssertionKind, Relation, Source
from repro.assertions.network import AssertionNetwork
from repro.ecr.schema import ObjectRef
from repro.errors import AssertionSpecError, ConflictError


def refs(*names):
    return [ObjectRef("s", name) for name in names]


@pytest.fixture
def triangle():
    network = AssertionNetwork()
    a, b, c = refs("A", "B", "C")
    for ref in (a, b, c):
        network.add_object(ref)
    return network, a, b, c


class TestSpecify:
    def test_basic(self, triangle):
        network, a, b, c = triangle
        assertion = network.specify(a, b, AssertionKind.EQUALS)
        assert assertion.source is Source.DDA
        assert network.assertion_for(a, b).kind is AssertionKind.EQUALS

    def test_int_code_accepted(self, triangle):
        network, a, b, _ = triangle
        network.specify(a, b, 2)
        assert network.assertion_for(a, b).kind is AssertionKind.CONTAINED_IN

    def test_orientation(self, triangle):
        network, a, b, _ = triangle
        network.specify(a, b, AssertionKind.CONTAINED_IN)
        assert network.assertion_for(b, a).kind is AssertionKind.CONTAINS

    def test_self_assertion_rejected(self, triangle):
        network, a, _, _ = triangle
        with pytest.raises(AssertionSpecError):
            network.specify(a, a, 1)

    def test_unknown_object_rejected(self, triangle):
        network, a, _, _ = triangle
        with pytest.raises(AssertionSpecError):
            network.specify(a, ObjectRef("s", "Ghost"), 1)

    def test_restating_is_noop(self, triangle):
        network, a, b, _ = triangle
        network.specify(a, b, 2)
        network.specify(a, b, 2)
        assert len(network.specified_assertions()) == 1

    def test_restating_converse_orientation_is_noop(self, triangle):
        network, a, b, _ = triangle
        network.specify(a, b, 2)
        network.specify(b, a, 3)  # same assertion, read the other way
        assert len(network.specified_assertions()) == 1

    def test_changing_requires_respecify(self, triangle):
        network, a, b, _ = triangle
        network.specify(a, b, 2)
        with pytest.raises(AssertionSpecError):
            network.specify(a, b, 1)
        network.respecify(a, b, 1)
        assert network.assertion_for(a, b).kind is AssertionKind.EQUALS


class TestDerivation:
    def test_paper_subset_chain(self, triangle):
        network, a, b, c = triangle
        network.specify(a, b, AssertionKind.CONTAINED_IN)
        network.specify(b, c, AssertionKind.CONTAINED_IN)
        derived = network.assertion_for(a, c)
        assert derived.kind is AssertionKind.CONTAINED_IN
        assert derived.source is Source.DERIVED

    def test_equals_propagates_everything(self, triangle):
        network, a, b, c = triangle
        network.specify(a, b, AssertionKind.EQUALS)
        network.specify(b, c, AssertionKind.MAY_BE)
        derived = network.assertion_for(a, c)
        assert derived.kind is AssertionKind.MAY_BE
        assert not derived.integrability_decided

    def test_subset_disjoint_derives_disjoint(self, triangle):
        network, a, b, c = triangle
        network.specify(a, b, AssertionKind.CONTAINED_IN)
        network.specify(b, c, AssertionKind.DISJOINT_NONINTEGRABLE)
        derived = network.assertion_for(a, c)
        assert derived.relation is Relation.DR
        assert not derived.integrability_decided

    def test_no_overeager_derivation(self, triangle):
        network, a, b, c = triangle
        network.specify(a, b, AssertionKind.MAY_BE)
        network.specify(b, c, AssertionKind.MAY_BE)
        assert network.assertion_for(a, c) is None
        assert network.is_undetermined(a, c)

    def test_feasible_narrows_without_determining(self, triangle):
        network, a, b, c = triangle
        network.specify(a, b, AssertionKind.CONTAINS)  # a ⊃ b
        network.specify(b, c, AssertionKind.MAY_BE)
        feasible = network.feasible(a, c)
        assert feasible == frozenset({Relation.PO, Relation.PPI})

    def test_derived_integrability_can_be_decided_later(self, triangle):
        network, a, b, c = triangle
        network.specify(a, b, AssertionKind.CONTAINED_IN)
        network.specify(b, c, AssertionKind.DISJOINT_NONINTEGRABLE)
        # the DDA later confirms the derived disjointness as integrable
        confirmed = network.specify(a, c, AssertionKind.DISJOINT_INTEGRABLE)
        assert confirmed.integrability_decided

    def test_explain_returns_specified_chain(self, triangle):
        network, a, b, c = triangle
        first = network.specify(a, b, 2)
        second = network.specify(b, c, 2)
        chain = network.explain(a, c)
        assert set(x.pair for x in chain) == {first.pair, second.pair}


class TestConflicts:
    def test_direct_contradiction(self, triangle):
        network, a, b, c = triangle
        network.specify(a, b, 2)
        network.specify(b, c, 2)
        with pytest.raises(ConflictError) as excinfo:
            network.specify(a, c, 0)
        report = excinfo.value.report
        assert report.new.kind is AssertionKind.DISJOINT_NONINTEGRABLE
        assert report.current is not None
        assert report.current.kind.relation is Relation.PP
        assert len(report.chain) == 2

    def test_paper_screen9_example_text(self):
        # Employee ≡ Person, Person ≡ Worker ⇒ Worker ⊂ Employee must fail
        network = AssertionNetwork()
        emp, per, wor = (
            ObjectRef("x", "Employee"),
            ObjectRef("y", "Person"),
            ObjectRef("z", "Worker"),
        )
        for ref in (emp, per, wor):
            network.add_object(ref)
        network.specify(emp, per, 1)
        network.specify(per, wor, 1)
        with pytest.raises(ConflictError):
            network.specify(wor, emp, 2)

    def test_state_unchanged_after_conflict(self, triangle):
        network, a, b, c = triangle
        network.specify(a, b, 2)
        network.specify(b, c, 2)
        before = network.feasible(a, c)
        with pytest.raises(ConflictError):
            network.specify(a, c, 0)
        assert network.feasible(a, c) == before
        assert len(network.specified_assertions()) == 2

    def test_propagation_conflict_on_third_pair(self):
        # a ⊂ b, c ⊃ b, then a disjoint c contradicts a ⊂ b ⊂ c.
        network = AssertionNetwork()
        a, b, c = refs("A", "B", "C")
        for ref in (a, b, c):
            network.add_object(ref)
        network.specify(a, b, 2)
        network.specify(b, c, 2)
        with pytest.raises(ConflictError):
            network.specify(c, a, AssertionKind.CONTAINED_IN)  # c ⊂ a


class TestRetraction:
    def test_retract_removes_derivations(self, triangle):
        network, a, b, c = triangle
        network.specify(a, b, 2)
        network.specify(b, c, 2)
        assert network.assertion_for(a, c) is not None
        network.retract(b, c)
        assert network.assertion_for(a, c) is None
        assert network.assertion_for(a, b) is not None

    def test_retract_unknown_pair(self, triangle):
        network, a, b, _ = triangle
        with pytest.raises(AssertionSpecError):
            network.retract(a, b)

    def test_respecify_after_conflict_resolution(self, triangle):
        # The Screen 9 repair: change the earlier assertion, retry the new.
        network, a, b, c = triangle
        network.specify(a, b, 2)
        network.specify(b, c, 2)
        with pytest.raises(ConflictError):
            network.specify(a, c, 0)
        network.respecify(a, b, 0)  # "all instructors are not grad students"
        network.specify(a, c, 0)  # now accepted
        assert network.assertion_for(a, c).kind.code == 0


class TestSeeding:
    def test_categories_seed_contained_in(self, sc4):
        network = AssertionNetwork()
        implicit = network.seed_schema(sc4)
        assert len(implicit) == 1
        assertion = implicit[0]
        assert assertion.kind is AssertionKind.CONTAINED_IN
        assert assertion.source is Source.IMPLICIT
        assert assertion.first.object_name == "Grad_student"

    def test_entity_disjointness_optional(self, sc1):
        plain = AssertionNetwork()
        plain.seed_schema(sc1)
        a = ObjectRef("sc1", "Student")
        b = ObjectRef("sc1", "Department")
        assert plain.assertion_for(a, b) is None
        seeded = AssertionNetwork()
        seeded.seed_schema(sc1, entity_disjointness=True)
        assert seeded.assertion_for(a, b).relation is Relation.DR


# -- model-based property test -------------------------------------------------

@st.composite
def consistent_worlds(draw):
    """Random non-empty subsets of a universe plus all their true relations."""
    count = draw(st.integers(3, 6))
    sets = [
        draw(st.frozensets(st.integers(0, 5), min_size=1)) for _ in range(count)
    ]
    return sets


def _actual_kind(a: frozenset, b: frozenset) -> AssertionKind:
    if a == b:
        return AssertionKind.EQUALS
    if a < b:
        return AssertionKind.CONTAINED_IN
    if a > b:
        return AssertionKind.CONTAINS
    if a & b:
        return AssertionKind.MAY_BE
    return AssertionKind.DISJOINT_INTEGRABLE


@settings(deadline=None, max_examples=60)
@given(consistent_worlds(), st.randoms(use_true_random=False))
def test_consistent_assertion_scripts_never_conflict(world, rng):
    """Feeding the true relations of actual sets can never raise a conflict,
    and every derived assertion must match the model's true relation."""
    network = AssertionNetwork()
    object_refs = [ObjectRef("w", f"S{i}") for i in range(len(world))]
    for ref in object_refs:
        network.add_object(ref)
    pairs = [
        (i, j)
        for i in range(len(world))
        for j in range(i + 1, len(world))
    ]
    rng.shuffle(pairs)
    for i, j in pairs[: len(pairs) * 2 // 3 + 1]:
        kind = _actual_kind(world[i], world[j])
        existing = network.assertion_for(object_refs[i], object_refs[j])
        if existing is not None and existing.source is Source.DERIVED:
            # the network already knows; re-specifying must agree, not raise
            network.specify(object_refs[i], object_refs[j], kind)
            continue
        network.specify(object_refs[i], object_refs[j], kind)
    for derived in network.derived_assertions():
        i = int(derived.first.object_name[1:])
        j = int(derived.second.object_name[1:])
        assert derived.relation is _actual_kind(world[i], world[j]).relation


class TestUnionCategorySeeding:
    def test_union_category_contributes_no_implicit_assertion(self):
        from repro.ecr.builder import SchemaBuilder

        schema = (
            SchemaBuilder("u")
            .entity("Car", attrs=[("Vin", "char", True)])
            .entity("Boat", attrs=[("Hull", "char", True)])
            .category("Amphibious", of=["Car", "Boat"])
            .build()
        )
        network = AssertionNetwork()
        implicit = network.seed_schema(schema)
        assert implicit == []
        amphibious = ObjectRef("u", "Amphibious")
        # the pair stays open: an amphibious vehicle need not be a car
        assert network.is_undetermined(amphibious, ObjectRef("u", "Car"))

    def test_single_parent_category_still_seeds(self):
        from repro.ecr.builder import SchemaBuilder

        schema = (
            SchemaBuilder("u")
            .entity("Car", attrs=[("Vin", "char", True)])
            .category("Sports_car", of="Car")
            .build()
        )
        network = AssertionNetwork()
        implicit = network.seed_schema(schema)
        assert len(implicit) == 1
        assert implicit[0].kind is AssertionKind.CONTAINED_IN


class TestDeepDerivationChains:
    def test_four_level_chain_explained_fully(self):
        network = AssertionNetwork()
        chain_refs = refs("L0", "L1", "L2", "L3", "L4")
        for ref in chain_refs:
            network.add_object(ref)
        for lower, upper in zip(chain_refs, chain_refs[1:]):
            network.specify(lower, upper, AssertionKind.CONTAINED_IN)
        derived = network.assertion_for(chain_refs[0], chain_refs[-1])
        assert derived is not None
        assert derived.kind is AssertionKind.CONTAINED_IN
        explanation = network.explain(chain_refs[0], chain_refs[-1])
        explained_pairs = {a.pair for a in explanation}
        expected_pairs = {
            ordered_pair(lower, upper)
            for lower, upper in zip(chain_refs, chain_refs[1:])
        }
        # every specified link of the chain participates in the derivation
        assert explained_pairs <= expected_pairs
        assert len(explained_pairs) >= 2

    def test_propagation_conflict_report_names_third_pair(self):
        network = AssertionNetwork()
        a, b, c = refs("A", "B", "C")
        for ref in (a, b, c):
            network.add_object(ref)
        network.specify(a, b, AssertionKind.CONTAINED_IN)
        network.specify(b, c, AssertionKind.CONTAINED_IN)
        with pytest.raises(ConflictError) as excinfo:
            network.specify(c, a, AssertionKind.CONTAINED_IN)
        report = excinfo.value.report
        # the clash materialises away from (c, a) itself
        assert report.is_propagation_conflict or report.current is not None
        assert report.new.kind is AssertionKind.CONTAINED_IN
        text = str(report)
        assert "conflict" in text
