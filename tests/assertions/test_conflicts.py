"""Tests for conflict reports and the Screen 9 rendering."""

import pytest

from repro.assertions.conflicts import render_screen9
from repro.assertions.kinds import AssertionKind
from repro.assertions.network import AssertionNetwork
from repro.ecr.schema import ObjectRef
from repro.errors import ConflictError
from repro.workloads.university import build_sc3, build_sc4


@pytest.fixture
def screen9_report():
    """The paper's Screen 9 scenario, driven end to end."""
    network = AssertionNetwork()
    network.seed_schema(build_sc3())
    network.seed_schema(build_sc4())
    network.specify(
        ObjectRef("sc3", "Instructor"),
        ObjectRef("sc4", "Grad_student"),
        AssertionKind.CONTAINED_IN,
    )
    with pytest.raises(ConflictError) as excinfo:
        network.specify(
            ObjectRef("sc3", "Instructor"),
            ObjectRef("sc4", "Student"),
            AssertionKind.DISJOINT_NONINTEGRABLE,
        )
    return excinfo.value.report


class TestReport:
    def test_subject_is_the_derived_pair(self, screen9_report):
        assert str(screen9_report.subject_first) == "sc3.Instructor"
        assert str(screen9_report.subject_second) == "sc4.Student"

    def test_current_assertion_is_derived_code_2(self, screen9_report):
        assert screen9_report.current is not None
        assert screen9_report.current.kind.code == 2

    def test_chain_lists_both_sources(self, screen9_report):
        chain = {
            (str(a.first), str(a.second), a.kind.code)
            for a in screen9_report.chain
        }
        assert chain == {
            ("sc3.Instructor", "sc4.Grad_student", 2),
            ("sc4.Grad_student", "sc4.Student", 2),
        }

    def test_repairs_distinguish_sources(self, screen9_report):
        repairs = screen9_report.suggested_repairs()
        assert any("withdraw the new assertion" in repair for repair in repairs)
        assert any("retract or change" in repair for repair in repairs)
        assert any("revise the schema structure" in repair for repair in repairs)

    def test_str_mentions_both_codes(self, screen9_report):
        text = str(screen9_report)
        assert "new assertion 0" in text
        assert "conflicts" in text

    def test_not_a_propagation_conflict(self, screen9_report):
        assert not screen9_report.is_propagation_conflict


class TestRenderScreen9:
    def test_layout_matches_paper(self, screen9_report):
        text = render_screen9(screen9_report)
        assert "Assertion Conflict Resolution Screen" in text
        assert "<derived>(CONFLICT)" in text
        assert "<new>(CONFLICT)" in text
        # the four rows of the paper's screen
        assert text.count("sc3.Instructor") >= 3
        assert "sc4.Grad_student" in text

    def test_menu_is_full(self, screen9_report):
        text = render_screen9(screen9_report)
        for code in range(6):
            assert f"{code} - " in text

    def test_repair_suggestions_included(self, screen9_report):
        text = render_screen9(screen9_report)
        assert "Suggested repairs:" in text
