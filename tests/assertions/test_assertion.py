"""Tests for the Assertion record itself."""

import pytest

from repro.assertions.assertion import Assertion, ordered_pair
from repro.assertions.kinds import AssertionKind, Source
from repro.ecr.schema import ObjectRef

A = ObjectRef("sc1", "Student")
B = ObjectRef("sc2", "Faculty")


class TestOrderedPair:
    def test_canonical_order(self):
        assert ordered_pair(B, A) == (A, B)
        assert ordered_pair(A, B) == (A, B)


class TestAssertion:
    def test_pair_is_canonical(self):
        assertion = Assertion(B, A, AssertionKind.CONTAINED_IN)
        assert assertion.pair == (A, B)

    def test_oriented_identity(self):
        assertion = Assertion(A, B, AssertionKind.CONTAINED_IN)
        assert assertion.oriented(A, B) is assertion

    def test_oriented_flips_containment(self):
        assertion = Assertion(A, B, AssertionKind.CONTAINED_IN)
        flipped = assertion.oriented(B, A)
        assert flipped.kind is AssertionKind.CONTAINS
        assert flipped.first == B

    def test_oriented_keeps_metadata(self):
        assertion = Assertion(
            A, B, AssertionKind.MAY_BE, Source.DERIVED,
            integrability_decided=False, note="x",
        )
        flipped = assertion.oriented(B, A)
        assert flipped.source is Source.DERIVED
        assert not flipped.integrability_decided
        assert flipped.note == "x"

    def test_oriented_rejects_other_pairs(self):
        assertion = Assertion(A, B, AssertionKind.EQUALS)
        with pytest.raises(ValueError):
            assertion.oriented(A, ObjectRef("sc2", "Department"))

    def test_str_tags_non_dda_sources(self):
        derived = Assertion(A, B, AssertionKind.EQUALS, Source.DERIVED)
        assert "<derived>" in str(derived)
        dda = Assertion(A, B, AssertionKind.EQUALS)
        assert "<" not in str(dda)

    def test_describe(self):
        assertion = Assertion(A, B, AssertionKind.DISJOINT_INTEGRABLE)
        assert (
            assertion.describe()
            == "sc1.Student and sc2.Faculty are disjoint but integrable"
        )
