"""Tests for assertion kinds and their relation mapping."""

import pytest

from repro.assertions.kinds import AssertionKind, Relation
from repro.errors import AssertionSpecError


class TestCodes:
    def test_paper_menu_numbers(self):
        # Screen 8/9: 1 equals, 2 contained-in, 3 contains, 4 disjoint
        # integrable, 5 may-be, 0 disjoint non-integrable.
        assert AssertionKind.EQUALS.code == 1
        assert AssertionKind.CONTAINED_IN.code == 2
        assert AssertionKind.CONTAINS.code == 3
        assert AssertionKind.DISJOINT_INTEGRABLE.code == 4
        assert AssertionKind.MAY_BE.code == 5
        assert AssertionKind.DISJOINT_NONINTEGRABLE.code == 0

    def test_from_code(self):
        for kind in AssertionKind:
            assert AssertionKind.from_code(kind.code) is kind

    @pytest.mark.parametrize("bad", [-1, 6, 42])
    def test_from_code_rejects(self, bad):
        with pytest.raises(AssertionSpecError):
            AssertionKind.from_code(bad)


class TestRelations:
    def test_relation_mapping(self):
        assert AssertionKind.EQUALS.relation is Relation.EQ
        assert AssertionKind.CONTAINED_IN.relation is Relation.PP
        assert AssertionKind.CONTAINS.relation is Relation.PPI
        assert AssertionKind.MAY_BE.relation is Relation.PO
        assert AssertionKind.DISJOINT_INTEGRABLE.relation is Relation.DR
        assert AssertionKind.DISJOINT_NONINTEGRABLE.relation is Relation.DR

    def test_from_relation(self):
        assert AssertionKind.from_relation(Relation.EQ) is AssertionKind.EQUALS
        assert (
            AssertionKind.from_relation(Relation.DR, integrable=True)
            is AssertionKind.DISJOINT_INTEGRABLE
        )
        assert (
            AssertionKind.from_relation(Relation.DR, integrable=False)
            is AssertionKind.DISJOINT_NONINTEGRABLE
        )

    def test_from_dr_requires_decision(self):
        with pytest.raises(AssertionSpecError):
            AssertionKind.from_relation(Relation.DR)


class TestBehaviour:
    def test_integrable(self):
        integrable = {kind for kind in AssertionKind if kind.integrable}
        assert integrable == set(AssertionKind) - {
            AssertionKind.DISJOINT_NONINTEGRABLE
        }

    def test_converse(self):
        assert AssertionKind.CONTAINED_IN.converse is AssertionKind.CONTAINS
        assert AssertionKind.CONTAINS.converse is AssertionKind.CONTAINED_IN
        for kind in (
            AssertionKind.EQUALS,
            AssertionKind.MAY_BE,
            AssertionKind.DISJOINT_INTEGRABLE,
            AssertionKind.DISJOINT_NONINTEGRABLE,
        ):
            assert kind.converse is kind

    def test_converse_involution(self):
        for kind in AssertionKind:
            assert kind.converse.converse is kind

    def test_describe_menu_phrasing(self):
        text = AssertionKind.CONTAINED_IN.describe("sc3.Instructor", "sc4.Student")
        assert text == "sc3.Instructor 'contained in' sc4.Student"
        text = AssertionKind.DISJOINT_NONINTEGRABLE.describe("A", "B")
        assert "disjoint & non-integratable" in text
