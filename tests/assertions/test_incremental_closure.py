"""Incremental closure repair must be indistinguishable from a full rebuild.

The network repairs only the affected neighborhood on retract/respecify
(:meth:`AssertionNetwork._repair_after_retract`).  These tests drive an
incremental network and a full-rebuild network (``incremental=False``)
through identical scripts and require bit-identical feasible sets and
derived assertions, plus counter evidence that the incremental path really
did less work.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assertions.kinds import AssertionKind, Relation
from repro.assertions.network import AssertionNetwork
from repro.ecr.schema import ObjectRef
from repro.errors import AssertionSpecError, ConflictError

OBJECTS = [ObjectRef("s", f"O{i}") for i in range(6)]

SPECIFIABLE_KINDS = [
    AssertionKind.EQUALS,
    AssertionKind.CONTAINED_IN,
    AssertionKind.CONTAINS,
    AssertionKind.DISJOINT_INTEGRABLE,
    AssertionKind.DISJOINT_NONINTEGRABLE,
    AssertionKind.MAY_BE,
]


def fresh_network(incremental: bool) -> AssertionNetwork:
    network = AssertionNetwork(incremental=incremental)
    for ref in OBJECTS:
        network.add_object(ref)
    return network


def state_of(network: AssertionNetwork):
    """Everything observable about a network, for equality comparison."""
    feasible = {
        (first, second): network.feasible(first, second)
        for first, second in itertools.combinations(OBJECTS, 2)
    }
    derived = {
        (a.first, a.second, a.kind) for a in network.derived_assertions()
    }
    specified = {
        (a.first, a.second, a.kind) for a in network.specified_assertions()
    }
    return feasible, derived, specified


def apply_script(network: AssertionNetwork, script) -> list[str]:
    """Run a script of (op, i, j, kind_index) tuples; log what happened.

    Failing operations are skipped — on identical states the same
    operation fails identically on both networks, which the returned log
    double-checks.
    """
    log = []
    for op, i, j, kind_index in script:
        first, second = OBJECTS[i], OBJECTS[j]
        kind = SPECIFIABLE_KINDS[kind_index]
        try:
            if op == "specify":
                network.specify(first, second, kind)
            elif op == "respecify":
                network.respecify(first, second, kind)
            else:
                network.retract(first, second)
            log.append(f"{op} {i} {j} {kind_index} ok")
        except (AssertionSpecError, ConflictError) as exc:
            log.append(f"{op} {i} {j} {kind_index} {type(exc).__name__}")
    return log


operations = st.lists(
    st.tuples(
        st.sampled_from(["specify", "specify", "respecify", "retract"]),
        st.integers(min_value=0, max_value=len(OBJECTS) - 1),
        st.integers(min_value=0, max_value=len(OBJECTS) - 1),
        st.integers(min_value=0, max_value=len(SPECIFIABLE_KINDS) - 1),
    ).filter(lambda op: op[1] != op[2]),
    min_size=1,
    max_size=25,
)


class TestEquivalenceWithFullRebuild:
    @settings(max_examples=60, deadline=None)
    @given(script=operations)
    def test_incremental_matches_full_rebuild(self, script):
        incremental = fresh_network(incremental=True)
        baseline = fresh_network(incremental=False)
        log_a = apply_script(incremental, script)
        log_b = apply_script(baseline, script)
        assert log_a == log_b
        assert state_of(incremental) == state_of(baseline)

    def test_chain_retract_middle(self):
        incremental = fresh_network(incremental=True)
        baseline = fresh_network(incremental=False)
        for network in (incremental, baseline):
            network.specify(OBJECTS[0], OBJECTS[1], AssertionKind.CONTAINED_IN)
            network.specify(OBJECTS[1], OBJECTS[2], AssertionKind.CONTAINED_IN)
            network.specify(OBJECTS[2], OBJECTS[3], AssertionKind.CONTAINED_IN)
            # O0 ⊂ O3 is now derived through the chain.
            assert network.feasible(OBJECTS[0], OBJECTS[3]) == frozenset(
                {Relation.PP}
            )
            network.retract(OBJECTS[1], OBJECTS[2])
        assert state_of(incremental) == state_of(baseline)
        # The derived conclusion died with its support.
        assert len(incremental.feasible(OBJECTS[0], OBJECTS[3])) > 1

    def test_unaffected_region_survives_untouched(self):
        network = fresh_network(incremental=True)
        network.specify(OBJECTS[0], OBJECTS[1], AssertionKind.EQUALS)
        network.specify(OBJECTS[3], OBJECTS[4], AssertionKind.CONTAINED_IN)
        network.counters.reset()
        network.retract(OBJECTS[0], OBJECTS[1])
        # The disconnected O3 ⊂ O4 edge was not recomputed.
        assert network.counters.closure_incremental_retracts == 1
        assert network.counters.closure_full_rebuilds == 0
        assert network.feasible(OBJECTS[3], OBJECTS[4]) == frozenset(
            {Relation.PP}
        )
        recomputed = network.counters.closure_pairs_recomputed
        assert recomputed >= 1
        # Only the retracted edge itself depended on the retracted edge.
        assert recomputed < len(OBJECTS) * (len(OBJECTS) - 1) // 2

    def test_incremental_flag_off_uses_full_rebuild(self):
        network = fresh_network(incremental=False)
        network.specify(OBJECTS[0], OBJECTS[1], AssertionKind.EQUALS)
        network.counters.reset()
        network.retract(OBJECTS[0], OBJECTS[1])
        assert network.counters.closure_full_rebuilds == 1
        assert network.counters.closure_incremental_retracts == 0

    def test_explain_survives_incremental_repair(self):
        network = fresh_network(incremental=True)
        a, b, c, d = OBJECTS[:4]
        network.specify(a, b, AssertionKind.CONTAINED_IN)
        network.specify(b, c, AssertionKind.CONTAINED_IN)
        network.specify(c, d, AssertionKind.EQUALS)
        network.retract(c, d)
        chain = network.explain(a, c)
        assert {(x.first, x.second) for x in chain} == {(a, b), (b, c)}

    def test_state_unchanged_after_conflict_with_incremental(self):
        network = fresh_network(incremental=True)
        a, b, c = OBJECTS[:3]
        network.specify(a, b, AssertionKind.CONTAINED_IN)
        network.specify(b, c, AssertionKind.CONTAINED_IN)
        before = state_of(network)
        with pytest.raises(ConflictError):
            network.specify(a, c, AssertionKind.DISJOINT_NONINTEGRABLE)
        assert state_of(network) == before
