"""Tests for the Entity Assertion matrix view."""

from repro.assertions.matrix import assertion_code_matrix, render_assertion_matrix
from repro.workloads.university import build_sc1, build_sc2, paper_assertions


class TestAssertionMatrix:
    def test_paper_codes(self, registry, object_network):
        sc1 = registry.schema("sc1")
        sc2 = registry.schema("sc2")
        matrix = assertion_code_matrix(object_network, sc1, sc2)
        rows = [s.name for s in sc1.object_classes()]
        columns = [s.name for s in sc2.object_classes()]
        lookup = {
            (rows[i], columns[j]): matrix[i][j]
            for i in range(len(rows))
            for j in range(len(columns))
        }
        assert lookup[("Student", "Grad_student")] == 3
        assert lookup[("Student", "Faculty")] == 4
        assert lookup[("Department", "Department")] == 1
        # derived: Faculty disjoint Grad_student (via Student)
        assert lookup[("Student", "Department")] is None

    def test_derived_cells_present(self, registry, object_network):
        sc1 = registry.schema("sc1")
        sc2 = registry.schema("sc2")
        matrix = assertion_code_matrix(object_network, sc2, sc2)
        columns = [s.name for s in sc2.object_classes()]
        cell = matrix[columns.index("Grad_student")][columns.index("Faculty")]
        assert cell == 4  # derived disjoint (shown as integrable code)

    def test_render(self, registry, object_network):
        sc1 = registry.schema("sc1")
        sc2 = registry.schema("sc2")
        text = render_assertion_matrix(object_network, sc1, sc2)
        assert "Entity Assertion matrix: sc1 x sc2" in text
        assert "." in text  # undetermined cells
        assert "Student" in text
