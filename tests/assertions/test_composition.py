"""Tests for the RCC-5 composition table — including a model-based check.

The model-based property test draws random non-empty subsets of a small
universe, computes their *actual* relations, and verifies that the table's
feasible set always contains the actual composed relation.  This validates
every cell of the table against set semantics.
"""

import pytest
from hypothesis import given, strategies as st

from repro.assertions.composition import (
    ALL_RELATIONS,
    compose,
    compose_sets,
    converse,
    converse_set,
)
from repro.assertions.kinds import Relation


def actual_relation(first: frozenset, second: frozenset) -> Relation:
    """The true RCC-5 relation between two non-empty sets."""
    if first == second:
        return Relation.EQ
    if first < second:
        return Relation.PP
    if first > second:
        return Relation.PPI
    if first & second:
        return Relation.PO
    return Relation.DR


nonempty_sets = st.frozensets(st.integers(0, 5), min_size=1)


class TestTableShape:
    def test_complete(self):
        for a in Relation:
            for b in Relation:
                result = compose(a, b)
                assert result and result <= ALL_RELATIONS

    def test_eq_is_identity(self):
        for relation in Relation:
            assert compose(Relation.EQ, relation) == frozenset({relation})
            assert compose(relation, Relation.EQ) == frozenset({relation})

    def test_paper_transitivity_rule(self):
        # "if a ⊆ b and b ⊆ c then a ⊆ c"
        assert compose(Relation.PP, Relation.PP) == frozenset({Relation.PP})
        assert compose(Relation.PPI, Relation.PPI) == frozenset({Relation.PPI})

    def test_subset_of_disjoint_is_disjoint(self):
        assert compose(Relation.PP, Relation.DR) == frozenset({Relation.DR})

    def test_converse_symmetry_of_table(self):
        # compose(a, b) == converse(compose(converse(b), converse(a)))
        for a in Relation:
            for b in Relation:
                direct = compose(a, b)
                mirrored = converse_set(compose(converse(b), converse(a)))
                assert direct == mirrored


class TestConverse:
    def test_pairs(self):
        assert converse(Relation.PP) is Relation.PPI
        assert converse(Relation.PPI) is Relation.PP
        for relation in (Relation.EQ, Relation.PO, Relation.DR):
            assert converse(relation) is relation

    def test_involution(self):
        for relation in Relation:
            assert converse(converse(relation)) is relation

    def test_converse_set(self):
        assert converse_set(frozenset({Relation.PP, Relation.DR})) == frozenset(
            {Relation.PPI, Relation.DR}
        )


class TestComposeSets:
    def test_universal_short_circuit(self):
        assert compose_sets(ALL_RELATIONS, frozenset({Relation.PP})) is ALL_RELATIONS

    def test_union_over_members(self):
        left = frozenset({Relation.EQ, Relation.PP})
        right = frozenset({Relation.PP})
        assert compose_sets(left, right) == compose(
            Relation.EQ, Relation.PP
        ) | compose(Relation.PP, Relation.PP)

    def test_empty_left(self):
        assert compose_sets(frozenset(), frozenset({Relation.PP})) == frozenset()


@given(nonempty_sets, nonempty_sets, nonempty_sets)
def test_table_is_sound_against_set_model(a, b, c):
    """For all sets: actual(a,c) ∈ compose(actual(a,b), actual(b,c))."""
    rel_ab = actual_relation(a, b)
    rel_bc = actual_relation(b, c)
    rel_ac = actual_relation(a, c)
    assert rel_ac in compose(rel_ab, rel_bc)


@given(nonempty_sets, nonempty_sets)
def test_converse_matches_set_model(a, b):
    assert actual_relation(b, a) is converse(actual_relation(a, b))


@pytest.mark.parametrize("left", list(Relation))
@pytest.mark.parametrize("right", list(Relation))
def test_every_table_entry_is_witnessed(left, right):
    """Completeness (no over-tight cells): every relation in a feasible set
    is realised by some triple of sets over a small universe."""
    universe = range(4)
    subsets = [
        frozenset(s)
        for s in _powerset(universe)
        if s
    ]
    witnessed = set()
    for a in subsets:
        for b in subsets:
            if actual_relation(a, b) is not left:
                continue
            for c in subsets:
                if actual_relation(b, c) is right:
                    witnessed.add(actual_relation(a, c))
    assert witnessed == set(compose(left, right))


def _powerset(universe):
    items = list(universe)
    for mask in range(1 << len(items)):
        yield {item for index, item in enumerate(items) if mask >> index & 1}
