"""Tests for the seeded populator."""

from repro.data.populate import populate_store
from repro.workloads.university import build_sc2, build_sc4


class TestPopulate:
    def test_deterministic(self):
        first = populate_store(build_sc2(), seed=5)
        second = populate_store(build_sc2(), seed=5)
        assert first.size() == second.size()
        rows_a = [m.values for m in first.members("Grad_student")]
        rows_b = [m.values for m in second.members("Grad_student")]
        assert rows_a == rows_b

    def test_different_seeds_differ(self):
        first = populate_store(build_sc2(), seed=1)
        second = populate_store(build_sc2(), seed=2)
        assert [m.values for m in first.members("Faculty")] != [
            m.values for m in second.members("Faculty")
        ]

    def test_counts(self):
        store = populate_store(build_sc2(), seed=0, entities_per_class=4)
        assert len(store.members("Faculty")) == 4
        assert len(store.members("Department")) == 4

    def test_category_population_is_subset(self):
        store = populate_store(build_sc4(), seed=3, entities_per_class=6)
        students = {m.instance_id for m in store.members("Student")}
        grads = {m.instance_id for m in store.members("Grad_student")}
        assert grads < students
        assert len(grads) >= 1

    def test_every_value_in_domain(self):
        from repro.ecr.walk import inherited_attributes

        store = populate_store(build_sc2(), seed=7)
        schema = store.schema
        for structure in schema.object_classes():
            expected = {
                attribute.name: attribute
                for attribute in inherited_attributes(schema, structure.name)
            }
            for member in store.members(structure.name):
                for name, value in member.values.items():
                    assert expected[name].domain.contains_value(value)

    def test_links_reference_members(self):
        store = populate_store(build_sc2(), seed=9)
        majors = store.schema.relationship_set("Majors")
        member_ids = {
            leg.label: {m.instance_id for m in store.members(leg.object_name)}
            for leg in majors.participations
        }
        for link in store.links("Majors"):
            for label, instance_id in link.legs.items():
                assert instance_id in member_ids[label]

    def test_links_deduplicated(self):
        store = populate_store(build_sc2(), seed=11, links_per_relationship=50)
        keys = [
            tuple(sorted(link.legs.values())) for link in store.links("Majors")
        ]
        assert len(keys) == len(set(keys))
