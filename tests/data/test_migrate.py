"""Tests for migration and federated answering — the semantic check of
the paper's mappings."""

import pytest

from repro.data.instances import InstanceStore
from repro.data.migrate import federated_answer, merge_stores, migrate_store
from repro.data.populate import populate_store
from repro.integration.mappings import build_mappings
from repro.query.parser import parse_request
from repro.query.rewrite import rewrite_to_integrated


@pytest.fixture
def world(paper_result, registry):
    mappings = build_mappings(paper_result, registry.schemas())
    sc1_store = populate_store(registry.schema("sc1"), seed=1)
    sc2_store = populate_store(registry.schema("sc2"), seed=2)
    integrated, id_maps = merge_stores(
        [(sc1_store, mappings["sc1"]), (sc2_store, mappings["sc2"])],
        paper_result.schema,
    )
    return mappings, sc1_store, sc2_store, integrated, id_maps


class TestMigration:
    def test_every_instance_mapped(self, world):
        _, sc1_store, sc2_store, integrated, id_maps = world
        assert len(id_maps[0]) == sc1_store.size()[0]
        assert len(id_maps[1]) == sc2_store.size()[0]

    def test_no_duplicate_merge_without_shared_keys(self, world):
        # populate seeds 1 and 2 generate distinct names, so the merged
        # store carries the sum of the entities
        _, sc1_store, sc2_store, integrated, _ = world
        assert (
            integrated.size()[0]
            == sc1_store.size()[0] + sc2_store.size()[0]
        )

    def test_links_migrated_and_repointed(self, world):
        _, sc1_store, sc2_store, integrated, _ = world
        merged_majors = integrated.links("E_Stud_Majo")
        assert len(merged_majors) == len(sc1_store.links("Majors")) + len(
            sc2_store.links("Majors")
        )
        assert len(integrated.links("Works")) == len(sc2_store.links("Works"))

    def test_shared_entities_merge_by_key(self, paper_result, registry):
        mappings = build_mappings(paper_result, registry.schemas())
        sc1_store = InstanceStore(registry.schema("sc1"))
        sc2_store = InstanceStore(registry.schema("sc2"))
        sc1_store.insert("Department", {"Name": "cs"})
        sc2_store.insert("Department", {"Name": "cs", "Location": "west"})
        integrated, _ = merge_stores(
            [(sc1_store, mappings["sc1"]), (sc2_store, mappings["sc2"])],
            paper_result.schema,
        )
        members = integrated.members("E_Department")
        assert len(members) == 1
        # values combined from both sides
        assert members[0].values["D_Name"] == "cs"
        assert members[0].values["Location"] == "west"

    def test_contained_entity_reclassifies_down(self, paper_result, registry):
        """The same person entered as sc1 Student and sc2 Grad_student
        becomes ONE integrated instance that is a Grad_student."""
        mappings = build_mappings(paper_result, registry.schemas())
        sc1_store = InstanceStore(registry.schema("sc1"))
        sc2_store = InstanceStore(registry.schema("sc2"))
        sc1_store.insert("Student", {"Name": "ana", "GPA": 3.0})
        sc2_store.insert(
            "Grad_student", {"Name": "ana", "GPA": 3.0, "Support_type": "ta"}
        )
        integrated, _ = merge_stores(
            [(sc1_store, mappings["sc1"]), (sc2_store, mappings["sc2"])],
            paper_result.schema,
        )
        students = integrated.members("Student")
        grads = integrated.members("Grad_student")
        assert len(students) == 1
        assert len(grads) == 1
        assert students[0].instance_id == grads[0].instance_id
        assert students[0].values["Support_type"] == "ta"


class TestSemanticPreservation:
    def test_view_answers_contained_in_integrated_answers(self, world):
        mappings, sc1_store, _, integrated, _ = world
        for text in (
            "select Name, GPA from Student",
            "select Name from Department",
            "select Name from Student via Majors(Department)",
        ):
            view_request = parse_request(text)
            view_rows = sc1_store.select(view_request)
            integrated_request = rewrite_to_integrated(
                view_request, mappings["sc1"]
            )
            integrated_rows = integrated.select(integrated_request)
            assert set(view_rows) <= set(integrated_rows)

    def test_federated_equals_direct(self, world):
        mappings, sc1_store, sc2_store, integrated, _ = world
        stores = {"sc1": sc1_store, "sc2": sc2_store}
        for text in (
            "select D_Name from E_Department",
            "select Rank from Faculty",
            "select Name, Rank from Faculty",
        ):
            request = parse_request(text)
            fed = federated_answer(request, mappings, stores)
            direct = integrated.select(request)
            assert fed == direct

    def test_federated_pads_missing_attributes(self, world):
        mappings, sc1_store, sc2_store, *_ = world
        stores = {"sc1": sc1_store, "sc2": sc2_store}
        request = parse_request("select D_Name, Location from E_Department")
        rows = federated_answer(request, mappings, stores)
        # sc1 departments have no Location: padded None rows appear
        assert any(row[1] is None for row in rows)
        assert any(row[1] is not None for row in rows)


class TestMigrationErrors:
    def test_wrong_target_schema_rejected(self, world, registry):
        mappings, sc1_store, *_ = world
        from repro.errors import MappingError

        wrong = InstanceStore(registry.schema("sc2"))
        with pytest.raises(MappingError):
            migrate_store(sc1_store, mappings["sc1"], wrong)


class TestSubsumptionElimination:
    def test_padded_row_dominated_by_full_row(self, paper_result, registry):
        mappings = build_mappings(paper_result, registry.schemas())
        sc1_store = InstanceStore(registry.schema("sc1"))
        sc2_store = InstanceStore(registry.schema("sc2"))
        # the same department known to both databases, sc2 knows more
        sc1_store.insert("Department", {"Name": "cs"})
        sc2_store.insert("Department", {"Name": "cs", "Location": "west"})
        request = parse_request("select D_Name, Location from E_Department")
        rows = federated_answer(
            request, mappings, {"sc1": sc1_store, "sc2": sc2_store}
        )
        assert rows == [("cs", "west")]

    def test_unique_padded_rows_survive(self, paper_result, registry):
        mappings = build_mappings(paper_result, registry.schemas())
        sc1_store = InstanceStore(registry.schema("sc1"))
        sc2_store = InstanceStore(registry.schema("sc2"))
        sc1_store.insert("Department", {"Name": "history"})  # only in sc1
        sc2_store.insert("Department", {"Name": "cs", "Location": "west"})
        request = parse_request("select D_Name, Location from E_Department")
        rows = federated_answer(
            request, mappings, {"sc1": sc1_store, "sc2": sc2_store}
        )
        assert ("history", None) in rows
        assert ("cs", "west") in rows

    def test_subclass_instances_in_federated_answer(
        self, paper_result, registry
    ):
        mappings = build_mappings(paper_result, registry.schemas())
        sc1_store = InstanceStore(registry.schema("sc1"))
        sc2_store = InstanceStore(registry.schema("sc2"))
        sc1_store.insert("Student", {"Name": "bob", "GPA": 2.0})
        sc2_store.insert(
            "Grad_student", {"Name": "eva", "GPA": 3.9, "Support_type": "ra"}
        )
        request = parse_request("select D_Name from Student")
        without = federated_answer(
            request, mappings, {"sc1": sc1_store, "sc2": sc2_store}
        )
        assert without == [("bob",)]
        with_schema = federated_answer(
            request, mappings, {"sc1": sc1_store, "sc2": sc2_store},
            paper_result.schema,
        )
        assert with_schema == [("bob",), ("eva",)]
