"""Tests for the instance store and its request executor."""

import pytest

from repro.data.instances import InstanceStore
from repro.ecr.builder import SchemaBuilder
from repro.errors import SchemaError
from repro.query.parser import parse_request


@pytest.fixture
def schema():
    return (
        SchemaBuilder("s")
        .entity(
            "Student",
            attrs=[("Name", "char", True), ("GPA", "real")],
        )
        .entity("Department", attrs=[("Name", "char", True)])
        .category("Grad", of="Student", attrs=[("Thesis", "char")])
        .relationship(
            "Majors",
            connects=[("Student", "(1,1)"), ("Department", "(0,n)")],
        )
        .build()
    )


@pytest.fixture
def store(schema):
    store = InstanceStore(schema)
    alice = store.insert("Student", {"Name": "alice", "GPA": 3.9})
    bob = store.insert("Student", {"Name": "bob", "GPA": 2.5})
    cara = store.insert("Grad", {"Name": "cara", "GPA": 3.5, "Thesis": "x"})
    cs = store.insert("Department", {"Name": "cs"})
    math = store.insert("Department", {"Name": "math"})
    store.connect("Majors", {"Student": alice, "Department": cs})
    store.connect("Majors", {"Student": cara, "Department": math})
    return store


class TestInsertion:
    def test_category_membership_closure(self, store):
        names = {m.values["Name"] for m in store.members("Student")}
        assert names == {"alice", "bob", "cara"}
        assert {m.values["Name"] for m in store.members("Grad")} == {"cara"}

    def test_missing_value_rejected(self, store):
        with pytest.raises(SchemaError):
            store.insert("Student", {"Name": "dan"})

    def test_partial_insert_fills_none(self, store):
        dan = store.insert("Student", {"Name": "dan"}, partial=True)
        assert store.instance(dan).values["GPA"] is None

    def test_unknown_attribute_rejected(self, store):
        with pytest.raises(SchemaError):
            store.insert("Student", {"Name": "e", "GPA": 1.0, "X": 2})

    def test_domain_enforced(self, store):
        with pytest.raises(SchemaError):
            store.insert("Student", {"Name": "e", "GPA": "not a number"})

    def test_category_requires_inherited_values(self, schema):
        store = InstanceStore(schema)
        with pytest.raises(SchemaError):
            store.insert("Grad", {"Thesis": "only own attr"})

    def test_size(self, store):
        assert store.size() == (5, 2)


class TestLinks:
    def test_connect_validates_membership(self, store, schema):
        with pytest.raises(SchemaError):
            store.connect("Majors", {"Student": 999, "Department": 4})

    def test_connect_validates_legs(self, store):
        with pytest.raises(SchemaError):
            store.connect("Majors", {"Student": 1})

    def test_category_member_participates_via_parent(self, store):
        # cara is a Grad; she participates in Majors as a Student
        assert any(
            store.instance(link.legs["Student"]).values["Name"] == "cara"
            for link in store.links("Majors")
        )


class TestSelect:
    def test_projection_and_condition(self, store):
        rows = store.select(parse_request("select Name from Student where GPA >= 3.5"))
        assert rows == [("alice",), ("cara",)]

    def test_category_scope(self, store):
        rows = store.select(parse_request("select Name from Grad"))
        assert rows == [("cara",)]

    def test_inherited_attribute_projected(self, store):
        rows = store.select(parse_request("select Name, GPA from Grad"))
        assert rows == [("cara", 3.5)]

    def test_string_comparison(self, store):
        rows = store.select(parse_request("select Name from Department where Name = cs"))
        assert rows == [("cs",)]

    def test_join_semantics(self, store):
        rows = store.select(
            parse_request("select Name from Student via Majors(Department)")
        )
        assert rows == [("alice",), ("cara",)]  # bob has no major

    def test_empty_projection_counts_instances(self, store):
        rows = store.select(parse_request("select * from Student"))
        assert len(rows) == 3

    def test_none_values_never_satisfy(self, store):
        store.insert("Student", {"Name": "dan"}, partial=True)
        rows = store.select(parse_request("select Name from Student where GPA < 100"))
        assert ("dan",) not in rows

    def test_operators(self, store):
        assert store.select(parse_request("select Name from Student where GPA != 2.5")) == [
            ("alice",),
            ("cara",),
        ]
        assert store.select(parse_request("select Name from Student where GPA <= 2.5")) == [
            ("bob",)
        ]


class TestDuplicateDetection:
    def test_find_duplicate_by_key(self, store):
        found = store.find_duplicate("Student", {"Name": "alice", "GPA": 1.0})
        assert found is not None and found.values["GPA"] == 3.9

    def test_no_duplicate_without_key_values(self, store):
        assert store.find_duplicate("Student", {"GPA": 3.9}) is None

    def test_fill_values(self, store):
        dan = store.insert("Student", {"Name": "dan"}, partial=True)
        store.fill_values(dan, {"GPA": 3.0, "Name": "ignored"})
        assert store.instance(dan).values["GPA"] == 3.0
        assert store.instance(dan).values["Name"] == "dan"

    def test_reclassify_down(self, store):
        bob = next(
            m.instance_id
            for m in store.members("Student")
            if m.values["Name"] == "bob"
        )
        store.reclassify_down(bob, "Grad")
        assert bob in {m.instance_id for m in store.members("Grad")}
