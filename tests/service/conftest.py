"""Shared service fixtures: an in-process app and a request helper."""

from __future__ import annotations

import json

import pytest

from repro.service import Request, ServiceApp, TenantAuth

#: fixed tokens for the two test tenants
TOKENS = {"token-acme": "acme", "token-beta": "beta"}

SC1_DDL = """\
schema sc1
entity Student
  attr Name : string key
  attr GPA : real
entity Department
  attr Name : string key
relationship Majors
  connects Student (1,1)
  connects Department (0,n)
"""

SC2_DDL = """\
schema sc2
entity Grad_student
  attr Name : string key
  attr Advisor : string
entity Department
  attr Name : string key
"""


@pytest.fixture
def app(tmp_path):
    application = ServiceApp(
        tmp_path / "service",
        auth=TenantAuth.from_tokens(TOKENS),
        max_resident=4,
    )
    yield application
    application.close()


class Client:
    """Drives ``ServiceApp.dispatch`` like an HTTP client, sans socket."""

    def __init__(self, app: ServiceApp, token: str | None = "token-acme"):
        self.app = app
        self.token = token

    def request(self, method, path, body=None, *, query=None, token=...):
        if token is ...:
            token = self.token
        headers = {}
        if token is not None:
            headers["authorization"] = f"Bearer {token}"
        response = self.app.dispatch(
            Request(
                method=method,
                path=path,
                query=query or {},
                headers=headers,
                body=(
                    json.dumps(body).encode("utf-8")
                    if body is not None
                    else b""
                ),
            )
        )
        return response.status, response.json_payload()

    def get(self, path, **kw):
        return self.request("GET", path, **kw)

    def post(self, path, body=None, **kw):
        return self.request("POST", path, body, **kw)

    def delete(self, path, body=None, **kw):
        return self.request("DELETE", path, body, **kw)


@pytest.fixture
def client(app):
    return Client(app)


@pytest.fixture
def beta(app):
    return Client(app, token="token-beta")


@pytest.fixture
def seeded(client):
    """A session with both paper-style schemas loaded and a pair asserted."""
    assert client.post("/v1/sessions", {"session_id": "s1"})[0] == 201
    assert client.post("/v1/sessions/s1/schemas", {"ddl": SC1_DDL})[0] == 201
    assert client.post("/v1/sessions/s1/schemas", {"ddl": SC2_DDL})[0] == 201
    client.post(
        "/v1/sessions/s1/equivalences",
        {"first": "sc1.Student.Name", "second": "sc2.Grad_student.Name"},
    )
    client.post(
        "/v1/sessions/s1/equivalences",
        {"first": "sc1.Department.Name", "second": "sc2.Department.Name"},
    )
    client.post(
        "/v1/sessions/s1/assertions",
        {
            "first": "sc1.Department",
            "second": "sc2.Department",
            "kind": "EQUALS",
        },
    )
    client.post(
        "/v1/sessions/s1/assertions",
        {
            "first": "sc1.Student",
            "second": "sc2.Grad_student",
            "kind": "CONTAINS",
        },
    )
    return client
