"""Tenant authentication and name validation."""

from __future__ import annotations

import pytest

from repro.service import Request, TenantAuth, require_safe_name
from repro.service.errors import AuthenticationError, BadRequestError


class TestTenantAuth:
    def test_issue_and_lookup(self):
        auth = TenantAuth()
        token = auth.issue("acme")
        assert auth.tenant_for(token) == "acme"

    def test_tokens_are_stored_as_digests(self):
        auth = TenantAuth()
        token = auth.issue("acme")
        blob = repr(vars(auth))
        assert token not in blob

    def test_unknown_token_raises(self):
        auth = TenantAuth()
        auth.issue("acme")
        with pytest.raises(AuthenticationError):
            auth.tenant_for("not-a-token")

    def test_revoke(self):
        auth = TenantAuth()
        token = auth.issue("acme")
        assert auth.revoke(token) is True
        assert auth.revoke(token) is False
        with pytest.raises(AuthenticationError):
            auth.tenant_for(token)

    def test_from_tokens(self):
        auth = TenantAuth.from_tokens({"t1": "acme", "t2": "beta"})
        assert auth.tenant_for("t1") == "acme"
        assert auth.tenant_for("t2") == "beta"

    def test_authenticate_reads_bearer_header(self):
        auth = TenantAuth.from_tokens({"t1": "acme"})
        request = Request(
            method="GET",
            path="/v1/sessions",
            headers={"authorization": "Bearer t1"},
        )
        assert auth.authenticate(request) == "acme"

    def test_authenticate_missing_header(self):
        auth = TenantAuth()
        with pytest.raises(AuthenticationError, match="Bearer"):
            auth.authenticate(Request(method="GET", path="/v1/sessions"))

    def test_non_bearer_scheme_rejected(self):
        auth = TenantAuth.from_tokens({"t1": "acme"})
        request = Request(
            method="GET",
            path="/v1/sessions",
            headers={"authorization": "Basic dXNlcjpwdw=="},
        )
        with pytest.raises(AuthenticationError):
            auth.authenticate(request)

    def test_tenant_names_are_validated(self):
        auth = TenantAuth()
        with pytest.raises(BadRequestError):
            auth.issue("../escape")


class TestSafeNames:
    @pytest.mark.parametrize(
        "name", ["acme", "a", "Tenant-1", "x.y_z", "A" * 64]
    )
    def test_accepts(self, name):
        assert require_safe_name("tenant", name) == name

    @pytest.mark.parametrize(
        "name",
        [
            "",
            ".hidden",
            "-dash",
            "a/b",
            "a\\b",
            "..",
            "a..b/../c",
            "A" * 65,
            "white space",
            "sné",
        ],
    )
    def test_rejects(self, name):
        with pytest.raises(BadRequestError):
            require_safe_name("tenant", name)
