"""Concurrency lifecycle: eviction and rehydration under multi-tenant load.

The contracts the service stands on:

* N threads hammering **distinct** tenants while the manager aggressively
  evicts/rehydrates never corrupt anyone's session;
* an evicted-then-rehydrated session is bitwise-identical to the live one
  by kernel ``state_payload`` fingerprint;
* eviction refuses sessions pinned by a mid-flight background job.
"""

from __future__ import annotations

import threading

import pytest

from repro.service import SessionManager, state_fingerprint
from repro.service.errors import (
    SessionBusyError,
    SessionExistsError,
    UnknownSessionError,
)

DDL = """\
schema {name}
entity Thing
  attr Name : string key
  attr Rank : int
entity Box
  attr Name : string key
"""


def add_schema(session, name: str) -> None:
    from repro.ecr.ddl import parse_ddl

    session.adopt_schema(parse_ddl(DDL.format(name=name)))


class TestFingerprintRoundTrip:
    def test_evict_then_rehydrate_is_identical(self, tmp_path):
        manager = SessionManager(tmp_path, max_resident=4)
        manager.create("acme", "s1")
        with manager.acquire("acme", "s1") as session:
            add_schema(session, "sc_a")
            add_schema(session, "sc_b")
            session.analysis.declare_equivalent(
                "sc_a.Thing.Name", "sc_b.Thing.Name"
            )
            live = state_fingerprint(session)
        assert manager.evict("acme", "s1") is True
        assert manager.resident_count() == 0
        assert manager.fingerprint("acme", "s1") == live
        # and the rehydrated session keeps working
        with manager.acquire("acme", "s1") as session:
            assert set(session.schemas) == {"sc_a", "sc_b"}
        assert manager.rehydrations >= 1

    def test_double_evict_is_a_noop(self, tmp_path):
        manager = SessionManager(tmp_path, max_resident=4)
        manager.create("acme", "s1")
        assert manager.evict("acme", "s1") is True
        assert manager.evict("acme", "s1") is False


class TestResidencyBounds:
    def test_lru_count_bound_holds(self, tmp_path):
        manager = SessionManager(tmp_path, max_resident=3)
        for index in range(8):
            manager.create("acme", f"s{index}")
        assert manager.resident_count() <= 3
        assert manager.evictions >= 5
        # every parked session still lists and still opens
        listed = manager.sessions("acme")
        assert len(listed) == 8
        for info in listed:
            assert manager.fingerprint("acme", info.session_id)

    def test_memory_watermark_bound(self, tmp_path):
        manager = SessionManager(
            tmp_path, max_resident=64, max_resident_bytes=10_000
        )
        for index in range(6):
            manager.create("acme", f"s{index}")
        # ~4KiB floor per kernel: only a couple fit under 10KB
        assert manager.resident_count() <= 2
        assert manager.evictions >= 1

    def test_lru_order_parks_coldest_first(self, tmp_path):
        manager = SessionManager(tmp_path, max_resident=8)
        for index in range(3):
            manager.create("acme", f"s{index}")
        # touch s0 so s1 becomes the coldest
        with manager.acquire("acme", "s0"):
            pass
        manager.max_resident = 2
        with manager.acquire("acme", "s2"):
            pass  # release triggers enforcement
        infos = {
            info.session_id: info.resident
            for info in manager.sessions("acme")
        }
        assert infos["s1"] is False  # the coldest was parked
        assert infos["s2"] is True


class TestPinning:
    def test_pinned_session_refuses_eviction(self, tmp_path):
        manager = SessionManager(tmp_path, max_resident=4)
        manager.create("acme", "s1")
        manager.pin("acme", "s1")
        try:
            with pytest.raises(SessionBusyError, match="pinned"):
                manager.evict("acme", "s1")
        finally:
            manager.unpin("acme", "s1")
        assert manager.evict("acme", "s1") is True

    def test_pinned_session_survives_bound_enforcement(self, tmp_path):
        manager = SessionManager(tmp_path, max_resident=2)
        manager.create("acme", "pinned")
        manager.pin("acme", "pinned")
        try:
            for index in range(5):
                manager.create("acme", f"s{index}")
            infos = {
                info.session_id: info
                for info in manager.sessions("acme")
            }
            assert infos["pinned"].resident is True
        finally:
            manager.unpin("acme", "pinned")

    def test_mid_request_session_refuses_eviction(self, tmp_path):
        manager = SessionManager(tmp_path, max_resident=4)
        manager.create("acme", "s1")
        entered = threading.Event()
        release = threading.Event()

        def hold():
            with manager.acquire("acme", "s1"):
                entered.set()
                release.wait(timeout=30)

        thread = threading.Thread(target=hold)
        thread.start()
        try:
            assert entered.wait(timeout=30)
            with pytest.raises(SessionBusyError, match="serving"):
                manager.evict("acme", "s1")
        finally:
            release.set()
            thread.join(timeout=30)
        assert manager.evict("acme", "s1") is True


class TestMultiTenantHammer:
    THREADS = 8
    ROUNDS = 12

    def test_distinct_tenants_under_eviction_churn(self, tmp_path):
        """N workers × distinct tenants, resident pool far too small."""
        manager = SessionManager(tmp_path, max_resident=2)
        errors: list[BaseException] = []
        fingerprints: dict[str, str] = {}
        barrier = threading.Barrier(self.THREADS)

        def worker(index: int) -> None:
            tenant = f"tenant{index}"
            try:
                manager.create(tenant, "work")
                barrier.wait(timeout=60)
                for round_number in range(self.ROUNDS):
                    with manager.acquire(tenant, "work") as session:
                        add_schema(session, f"sc{round_number}")
                    # every other round, park explicitly (if not busy)
                    if round_number % 2:
                        try:
                            manager.evict(tenant, "work")
                        except SessionBusyError:
                            pass
                with manager.acquire(tenant, "work") as session:
                    assert len(session.schemas) == self.ROUNDS, (
                        f"{tenant} lost schemas: {sorted(session.schemas)}"
                    )
                    fingerprints[tenant] = state_fingerprint(session)
            except BaseException as exc:  # noqa: BLE001 - collect, re-raise
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(index,))
            for index in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, errors

        # the pool stayed bounded through the churn
        assert manager.resident_count() <= 2
        assert manager.evictions > 0
        assert manager.rehydrations > 0

        # park everything, rehydrate, and every tenant's state survived
        manager.shutdown()
        assert manager.resident_count() == 0
        for index in range(self.THREADS):
            tenant = f"tenant{index}"
            assert (
                manager.fingerprint(tenant, "work")
                == fingerprints[tenant]
            ), f"{tenant} diverged across evict/rehydrate"

    def test_tenant_files_stay_disjoint(self, tmp_path):
        manager = SessionManager(tmp_path, max_resident=2)
        for index in range(4):
            manager.create(f"tenant{index}", "work")
        manager.shutdown()
        for index in range(4):
            tenant_dir = tmp_path / f"tenant{index}"
            assert (tenant_dir / "work.json").exists()
            files = {p.name for p in tenant_dir.iterdir()}
            assert files <= {"work.json", "work.json.wal"}


class TestErrors:
    def test_unknown_session(self, tmp_path):
        manager = SessionManager(tmp_path)
        with pytest.raises(UnknownSessionError):
            with manager.acquire("acme", "ghost"):
                pass

    def test_create_collision(self, tmp_path):
        manager = SessionManager(tmp_path)
        manager.create("acme", "s1")
        with pytest.raises(SessionExistsError):
            manager.create("acme", "s1")

    def test_create_collision_with_parked_checkpoint(self, tmp_path):
        manager = SessionManager(tmp_path)
        manager.create("acme", "s1")
        manager.evict("acme", "s1")
        with pytest.raises(SessionExistsError):
            manager.create("acme", "s1")
