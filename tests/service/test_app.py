"""The v1 API surface, driven in-process through ``ServiceApp.dispatch``."""

from __future__ import annotations

import json

from tests.service.conftest import SC1_DDL


class TestMeta:
    def test_healthz_needs_no_auth(self, client):
        assert client.get("/v1/healthz", token=None) == (
            200,
            {"status": "ok"},
        )

    def test_about(self, client):
        status, payload = client.get("/v1/about", token=None)
        assert status == 200
        assert payload["api"] == "v1"

    def test_missing_token_is_401(self, client):
        status, payload = client.get("/v1/sessions", token=None)
        assert status == 401
        assert payload["error"]["code"] == "auth_required"

    def test_bad_token_is_401(self, client):
        status, payload = client.get("/v1/sessions", token="wrong")
        assert status == 401

    def test_unknown_route_is_404(self, client):
        status, payload = client.get("/v1/nothing/here")
        assert status == 404
        assert payload["error"]["code"] == "route_not_found"

    def test_wrong_method_is_405_with_allow(self, client):
        status, payload = client.request("PUT", "/v1/sessions")
        assert status == 405
        assert payload["error"]["code"] == "method_not_allowed"
        assert set(payload["error"]["details"]["allowed"]) == {
            "GET",
            "POST",
        }


class TestSessions:
    def test_create_list_detail(self, client):
        status, payload = client.post("/v1/sessions", {"session_id": "s1"})
        assert status == 201
        assert payload["session_id"] == "s1"
        assert payload["resident"] is True

        status, payload = client.get("/v1/sessions")
        assert [s["session_id"] for s in payload["sessions"]] == ["s1"]

        status, payload = client.get("/v1/sessions/s1")
        assert status == 200
        assert payload["schemas"] == []
        assert payload["state_fingerprint"]

    def test_create_duplicate_is_409(self, client):
        client.post("/v1/sessions", {"session_id": "s1"})
        status, payload = client.post("/v1/sessions", {"session_id": "s1"})
        assert status == 409
        assert payload["error"]["code"] == "session_exists"

    def test_bad_session_id_is_400(self, client):
        status, payload = client.post(
            "/v1/sessions", {"session_id": "../../etc"}
        )
        assert status == 400

    def test_missing_body_field_is_400(self, client):
        status, payload = client.post("/v1/sessions", {})
        assert status == 400
        assert "session_id" in payload["error"]["message"]

    def test_unknown_session_is_404(self, client):
        status, payload = client.get("/v1/sessions/ghost")
        assert status == 404
        assert payload["error"]["code"] == "session_not_found"

    def test_tenants_are_isolated(self, client, beta):
        client.post("/v1/sessions", {"session_id": "s1"})
        # the other tenant cannot see or address it
        assert beta.get("/v1/sessions")[1] == {"sessions": []}
        assert beta.get("/v1/sessions/s1")[0] == 404
        # and may reuse the id without collision
        assert beta.post("/v1/sessions", {"session_id": "s1"})[0] == 201
        assert client.get("/v1/sessions/s1")[0] == 200

    def test_evict_and_rehydrate_keeps_state(self, client):
        client.post("/v1/sessions", {"session_id": "s1"})
        client.post("/v1/sessions/s1/schemas", {"ddl": SC1_DDL})
        before = client.get("/v1/sessions/s1")[1]["state_fingerprint"]
        status, payload = client.delete("/v1/sessions/s1")
        assert (status, payload["evicted"]) == (200, True)
        # the listing still shows it, parked
        listing = client.get("/v1/sessions")[1]["sessions"]
        assert listing[0]["resident"] is False
        after = client.get("/v1/sessions/s1")[1]["state_fingerprint"]
        assert after == before

    def test_purge_deletes_for_good(self, client):
        client.post("/v1/sessions", {"session_id": "s1"})
        status, payload = client.delete(
            "/v1/sessions/s1", query={"purge": "true"}
        )
        assert payload["purged"] is True
        assert client.get("/v1/sessions/s1")[0] == 404

    def test_checkpoint_and_recovery(self, client):
        client.post("/v1/sessions", {"session_id": "s1"})
        assert client.post("/v1/sessions/s1/checkpoint")[0] == 200
        status, payload = client.get("/v1/sessions/s1/recovery")
        assert status == 200
        # a resident session created this run has its creation report
        assert payload["recovery"] is None or "source" in payload["recovery"]


class TestSchemas:
    def test_ddl_roundtrip(self, client):
        client.post("/v1/sessions", {"session_id": "s1"})
        status, payload = client.post(
            "/v1/sessions/s1/schemas", {"ddl": SC1_DDL}
        )
        assert (status, payload["schema"]) == (201, "sc1")
        status, payload = client.get("/v1/sessions/s1/schemas/sc1")
        assert status == 200
        assert "entity Student" in payload["ddl"]
        assert payload["schema"]["name"] == "sc1"

    def test_bad_ddl_is_400(self, client):
        client.post("/v1/sessions", {"session_id": "s1"})
        status, payload = client.post(
            "/v1/sessions/s1/schemas", {"ddl": "bogus nonsense"}
        )
        assert status == 400
        assert payload["error"]["code"] == "ddl_parse_error"

    def test_name_mismatch_is_400(self, client):
        client.post("/v1/sessions", {"session_id": "s1"})
        status, payload = client.post(
            "/v1/sessions/s1/schemas", {"ddl": SC1_DDL, "name": "other"}
        )
        assert status == 400

    def test_empty_schema_by_name(self, client):
        client.post("/v1/sessions", {"session_id": "s1"})
        status, payload = client.post(
            "/v1/sessions/s1/schemas", {"name": "blank"}
        )
        assert (status, payload["schemas"]) == (201, ["blank"])

    def test_delete_schema(self, client):
        client.post("/v1/sessions", {"session_id": "s1"})
        client.post("/v1/sessions/s1/schemas", {"ddl": SC1_DDL})
        status, payload = client.delete("/v1/sessions/s1/schemas/sc1")
        assert payload["schemas"] == []

    def test_unknown_schema_is_404(self, client):
        client.post("/v1/sessions", {"session_id": "s1"})
        status, payload = client.get("/v1/sessions/s1/schemas/ghost")
        assert status == 404
        assert payload["error"]["code"] == "unknown_name"


class TestAnalysis:
    def test_candidates_ranked(self, seeded):
        status, payload = seeded.get(
            "/v1/sessions/s1/candidates",
            query={"first": "sc1", "second": "sc2"},
        )
        assert status == 200
        tops = [(c["first"], c["second"]) for c in payload["candidates"]]
        assert ("sc1.Department", "sc2.Department") == tops[0]

    def test_candidates_need_both_schemas(self, seeded):
        status, payload = seeded.get(
            "/v1/sessions/s1/candidates", query={"first": "sc1"}
        )
        assert status == 400

    def test_assertion_kind_names_and_codes(self, seeded):
        # seeded used one name and one code path already; bad kind -> 400
        status, payload = seeded.post(
            "/v1/sessions/s1/assertions",
            {"first": "sc1.Student", "second": "sc2.Department", "kind": "NOPE"},
        )
        assert status == 400

    def test_respecify_same_pair_is_400(self, seeded):
        status, payload = seeded.post(
            "/v1/sessions/s1/assertions",
            {
                "first": "sc1.Department",
                "second": "sc2.Department",
                "kind": "DISJOINT_NONINTEGRABLE",
            },
        )
        assert status == 400
        assert payload["error"]["code"] == "assertion_invalid"

    def test_derived_conflict_is_409(self, seeded):
        seeded.post(
            "/v1/sessions/s1/schemas",
            {
                "ddl": "schema sc3\nentity Pupil\n"
                "  attr Name : string key\n"
            },
        )
        seeded.post(
            "/v1/sessions/s1/equivalences",
            {"first": "sc1.Student.Name", "second": "sc3.Pupil.Name"},
        )
        seeded.post(
            "/v1/sessions/s1/assertions",
            {
                "first": "sc2.Grad_student",
                "second": "sc3.Pupil",
                "kind": "EQUALS",
            },
        )
        # sc1.Student ⊇ sc2.Grad_student = sc3.Pupil forbids disjointness
        status, payload = seeded.post(
            "/v1/sessions/s1/assertions",
            {
                "first": "sc1.Student",
                "second": "sc3.Pupil",
                "kind": "DISJOINT_NONINTEGRABLE",
            },
        )
        assert status == 409
        assert payload["error"]["code"] == "assertion_conflict"

    def test_remove_equivalence(self, seeded):
        status, payload = seeded.delete(
            "/v1/sessions/s1/equivalences",
            {"ref": "sc1.Student.Name"},
        )
        assert status == 200
        assert payload["removed"] is True


class TestIntegrateAndQuery:
    def test_sync_integration(self, seeded):
        status, payload = seeded.post(
            "/v1/sessions/s1/integrate", {"first": "sc1", "second": "sc2"}
        )
        assert status == 200
        assert payload["result_schema"] == "integrated"
        assert payload["structures"] >= 3
        assert payload["state_fingerprint"]

    def test_undo_redo(self, seeded):
        seeded.post(
            "/v1/sessions/s1/integrate", {"first": "sc1", "second": "sc2"}
        )
        assert seeded.post("/v1/sessions/s1/undo")[0] == 200
        assert seeded.post("/v1/sessions/s1/redo")[0] == 200

    def test_query_before_integration_fails_cleanly(self, seeded):
        status, payload = seeded.post(
            "/v1/sessions/s1/query", {"request": "select Name from Student"}
        )
        assert status == 400
        assert payload["error"]["code"] == "tool_invalid_state"

    def test_background_integration_job(self, seeded):
        status, payload = seeded.post(
            "/v1/sessions/s1/integrate",
            {"first": "sc1", "second": "sc2", "mode": "background"},
        )
        assert status == 202
        job_id = payload["job_id"]
        job = seeded.app.jobs.wait("acme", job_id)
        assert job.state == "succeeded"
        status, payload = seeded.get(f"/v1/jobs/{job_id}")
        assert payload["result"]["result_schema"] == "integrated"
        assert payload["progress"]  # notes streamed
        assert payload["spans"]  # tracer spans streamed

    def test_jobs_are_tenant_scoped(self, seeded, beta):
        status, payload = seeded.post(
            "/v1/sessions/s1/replay", {}
        )
        job_id = payload["job_id"]
        assert beta.get(f"/v1/jobs/{job_id}")[0] == 404
        seeded.app.jobs.wait("acme", job_id)

    def test_replay_job_verifies(self, seeded):
        seeded.post(
            "/v1/sessions/s1/integrate", {"first": "sc1", "second": "sc2"}
        )
        status, payload = seeded.post("/v1/sessions/s1/replay", {})
        assert status == 202
        job = seeded.app.jobs.wait("acme", payload["job_id"])
        assert job.state == "succeeded"
        assert job.result["verified"] is True
        live = seeded.get("/v1/sessions/s1")[1]["state_fingerprint"]
        assert job.result["state_fingerprint"] == live

    def test_job_submit_for_missing_session_is_404(self, client):
        status, payload = client.post(
            "/v1/sessions/ghost/replay", {}
        )
        assert status == 404


class TestStatsAndWire:
    def test_stats_shape(self, seeded):
        status, payload = seeded.get("/v1/stats")
        assert status == 200
        assert payload["manager"]["resident_sessions"] >= 1
        assert payload["tenant"]["sessions"] == 1

    def test_every_payload_is_json_clean(self, seeded):
        for path in (
            "/v1/sessions",
            "/v1/sessions/s1",
            "/v1/stats",
            "/v1/jobs",
        ):
            status, payload = seeded.get(path)
            assert json.loads(json.dumps(payload)) == payload

    def test_internal_errors_are_500_not_tracebacks(self, client, app):
        def boom(ctx):
            raise RuntimeError("kaboom")

        app.router.add("GET", "/v1/boom", boom)
        status, payload = client.get("/v1/boom")
        assert status == 500
        assert payload["error"]["code"] == "internal_error"
        assert "kaboom" in payload["error"]["message"]
