"""The evolution HTTP surface: typed edits, repair scope, 409 conflicts."""


def _edit(kind, **extra):
    return {"kind": kind, **extra}


class TestApplyEdit:
    def test_add_attribute_returns_scope_and_inverse(self, seeded):
        status, payload = seeded.post(
            "/v1/sessions/s1/schemas/sc1/edits",
            {
                "edit": _edit(
                    "add_attribute",
                    object="Student",
                    attribute={"name": "Age", "domain": {"kind": "integer"}},
                )
            },
        )
        assert status == 201
        assert payload["schema"] == "sc1"
        assert payload["destructive"] is False
        assert payload["inverse"] == {
            "kind": "drop_attribute",
            "object": "Student",
            "attribute": "Age",
        }
        scope = payload["scope"]
        assert scope["edit_kind"] == "add_attribute"
        assert "OCS cells" in scope["summary"]
        assert "state_fingerprint" in payload

    def test_edit_changes_the_schema(self, seeded):
        seeded.post(
            "/v1/sessions/s1/schemas/sc1/edits",
            {
                "edit": _edit(
                    "rename_attribute",
                    object="Student",
                    old="GPA",
                    new="Grade_avg",
                )
            },
        )
        status, payload = seeded.get("/v1/sessions/s1/schemas/sc1")
        assert status == 200
        assert "Grade_avg" in payload["ddl"]
        assert "GPA" not in payload["ddl"]

    def test_conflicting_drop_is_409_with_minimal_conflict(self, seeded):
        # sc1.Student carries a specified CONTAINS assertion: a non-cascade
        # drop must refuse with the solver's minimal-conflict wire shape
        status, payload = seeded.post(
            "/v1/sessions/s1/schemas/sc1/edits",
            {"edit": _edit("drop_class", object="Student")},
        )
        assert status == 409
        assert payload["error"]["code"] == "solver_inconsistent"
        details = payload["error"]["details"]
        members = details["conflict_set"]
        assert members
        assert any("Student" in str(member) for member in members)

    def test_cascade_drop_is_destructive_and_reports_retractions(
        self, seeded
    ):
        status, payload = seeded.post(
            "/v1/sessions/s1/schemas/sc2/edits",
            {"edit": _edit("drop_class", object="Grad_student", cascade=True)},
        )
        assert status == 201
        assert payload["destructive"] is True
        assert payload["retracted"]
        assert payload["scope"]["assertions_retracted"] >= 1

    def test_unknown_schema_is_404(self, seeded):
        status, payload = seeded.post(
            "/v1/sessions/s1/schemas/nope/edits",
            {"edit": _edit("add_class", structure={"kind": "e", "name": "X"})},
        )
        assert status == 404
        assert payload["error"]["code"] == "unknown_name"

    def test_unknown_kind_is_400(self, seeded):
        status, payload = seeded.post(
            "/v1/sessions/s1/schemas/sc1/edits",
            {"edit": _edit("explode")},
        )
        assert status == 400

    def test_missing_edit_field_is_400(self, seeded):
        status, payload = seeded.post(
            "/v1/sessions/s1/schemas/sc1/edits", {}
        )
        assert status == 400
        assert payload["error"]["code"] == "bad_request"

    def test_edit_survives_undo_redo_round_trip(self, seeded):
        seeded.post(
            "/v1/sessions/s1/schemas/sc1/edits",
            {
                "edit": _edit(
                    "add_class",
                    structure={
                        "kind": "e",
                        "name": "Campus",
                        "attributes": [
                            {
                                "name": "CName",
                                "domain": {"kind": "char"},
                                "is_key": True,
                            }
                        ],
                    },
                )
            },
        )
        _, before = seeded.get("/v1/sessions/s1")
        assert seeded.post("/v1/sessions/s1/undo")[0] == 200
        _, payload = seeded.get("/v1/sessions/s1/schemas/sc1")
        assert "Campus" not in payload["ddl"]
        assert seeded.post("/v1/sessions/s1/redo")[0] == 200
        _, after = seeded.get("/v1/sessions/s1")
        assert after["state_fingerprint"] == before["state_fingerprint"]
