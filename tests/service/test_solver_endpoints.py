"""The solver's HTTP surface: suggestions, what-if explain, 409 details."""


def _plant_derived_conflict(seeded):
    """Recreate the derived-conflict world from ``test_app`` and reject one.

    sc1.Student ⊇ sc2.Grad_student = sc3.Pupil makes Student ∥ Pupil
    underivable, so the final POST is a 409 whose payload this module
    asserts on.
    """
    seeded.post(
        "/v1/sessions/s1/schemas",
        {"ddl": "schema sc3\nentity Pupil\n  attr Name : string key\n"},
    )
    seeded.post(
        "/v1/sessions/s1/equivalences",
        {"first": "sc1.Student.Name", "second": "sc3.Pupil.Name"},
    )
    seeded.post(
        "/v1/sessions/s1/assertions",
        {"first": "sc2.Grad_student", "second": "sc3.Pupil", "kind": "EQUALS"},
    )
    return seeded.post(
        "/v1/sessions/s1/assertions",
        {
            "first": "sc1.Student",
            "second": "sc3.Pupil",
            "kind": "DISJOINT_NONINTEGRABLE",
        },
    )


class TestSuggestions:
    def test_ranked_and_shaped(self, seeded):
        status, payload = seeded.get(
            "/v1/sessions/s1/suggestions",
            query={"first": "sc1", "second": "sc2"},
        )
        assert status == 200
        suggestions = payload["suggestions"]
        assert suggestions
        scores = [s["score"] for s in suggestions]
        assert scores == sorted(scores, reverse=True)
        for suggestion in suggestions:
            assert suggestion["kind"] == "EQUALS"
            assert suggestion["status"] in ("safe", "conflicting")
            assert set(suggestion["components"]) == {
                "name",
                "attribute_ratio",
                "key",
                "domain",
                "cardinality",
            }

    def test_decided_pairs_are_excluded(self, seeded):
        # the seeded fixture already asserted both cross-schema pairs
        status, payload = seeded.get(
            "/v1/sessions/s1/suggestions",
            query={"first": "sc1", "second": "sc2"},
        )
        pairs = {
            (s["first"], s["second"]) for s in payload["suggestions"]
        }
        assert ("sc1.Department", "sc2.Department") not in pairs
        assert ("sc1.Student", "sc2.Grad_student") not in pairs

    def test_limit(self, seeded):
        status, payload = seeded.get(
            "/v1/sessions/s1/suggestions",
            query={"first": "sc1", "second": "sc2", "limit": "1"},
        )
        assert status == 200
        assert len(payload["suggestions"]) == 1

    def test_missing_schema_params_is_400(self, seeded):
        status, payload = seeded.get(
            "/v1/sessions/s1/suggestions", query={"first": "sc1"}
        )
        assert status == 400
        assert payload["error"]["code"] == "bad_request"

    def test_bad_limit_is_400(self, seeded):
        for bad in ("zero", "0", "-3"):
            status, payload = seeded.get(
                "/v1/sessions/s1/suggestions",
                query={"first": "sc1", "second": "sc2", "limit": bad},
            )
            assert status == 400


class TestExplain:
    def test_consistent_hypothesis_is_200_with_consequences(self, seeded):
        seeded.post(
            "/v1/sessions/s1/schemas",
            {"ddl": "schema sc3\nentity Pupil\n  attr Name : string key\n"},
        )
        status, payload = seeded.post(
            "/v1/sessions/s1/assertions/explain",
            {
                "first": "sc3.Pupil",
                "second": "sc2.Grad_student",
                "kind": "EQUALS",
            },
        )
        assert status == 200
        assert payload["consistent"] is True
        assert payload["conflict_set"] == []
        # Pupil = Grad_student ⊂ Student pins Pupil ⊂ Student
        consequences = {
            (c["first"], c["second"]) for c in payload["consequences"]
        }
        assert consequences
        # and nothing was committed: the same explain still succeeds
        assert (
            seeded.post(
                "/v1/sessions/s1/assertions/explain",
                {
                    "first": "sc3.Pupil",
                    "second": "sc2.Grad_student",
                    "kind": "EQUALS",
                },
            )[0]
            == 200
        )

    def test_conflicting_hypothesis_is_still_200(self, seeded):
        status, payload = seeded.post(
            "/v1/sessions/s1/assertions/explain",
            {
                "first": "sc1.Student",
                "second": "sc2.Grad_student",
                "kind": "DISJOINT_NONINTEGRABLE",
            },
        )
        assert status == 200
        assert payload["consistent"] is False
        assert payload["conflict_set"]
        assert payload["repairs"]
        for member in payload["conflict_set"]:
            assert {"first", "second", "kind"} <= member.keys()

    def test_missing_kind_is_400(self, seeded):
        status, payload = seeded.post(
            "/v1/sessions/s1/assertions/explain",
            {"first": "sc1.Student", "second": "sc2.Grad_student"},
        )
        assert status == 400


class TestConflictPayload:
    def test_409_carries_structured_details(self, seeded):
        status, payload = _plant_derived_conflict(seeded)
        assert status == 409
        assert payload["error"]["code"] == "assertion_conflict"
        details = payload["error"]["details"]
        assert details["new"]["kind"] == "DISJOINT_NONINTEGRABLE"
        assert {"first", "second"} <= details["subject"].keys()
        assert details["chain"]
        assert details["repairs"]
        assert details["feasible"]

    def test_409_minimal_conflict_set_names_retractables(self, seeded):
        status, payload = _plant_derived_conflict(seeded)
        details = payload["error"]["details"]
        conflict_set = details["conflict_set"]
        assert conflict_set
        for member in conflict_set:
            assert {"first", "second", "kind", "source"} <= member.keys()
        # the rejected assertion is background, never its own culprit
        rejected = (details["new"]["first"], details["new"]["second"])
        assert rejected not in {
            (m["first"], m["second"]) for m in conflict_set
        }
