"""Background jobs: queueing, progress, pinning, failure capture."""

from __future__ import annotations

import threading

import pytest

from repro.service import JobQueue, SessionManager
from repro.service.errors import (
    BadRequestError,
    JobNotFoundError,
    JobStateError,
    SessionBusyError,
    UnknownSessionError,
)
from tests.service.conftest import SC1_DDL, SC2_DDL


@pytest.fixture
def manager(tmp_path):
    mgr = SessionManager(tmp_path, max_resident=4)
    yield mgr
    mgr.shutdown()


@pytest.fixture
def queue(manager):
    q = JobQueue(manager)
    yield q
    q.stop()


def seed_integrable(manager, tenant="acme", session_id="s1"):
    from repro.assertions.kinds import AssertionKind
    from repro.ecr.ddl import parse_ddl

    manager.create(tenant, session_id)
    with manager.acquire(tenant, session_id) as session:
        session.adopt_schema(parse_ddl(SC1_DDL))
        session.adopt_schema(parse_ddl(SC2_DDL))
        session.analysis.declare_equivalent(
            "sc1.Student.Name", "sc2.Grad_student.Name"
        )
        session.analysis.declare_equivalent(
            "sc1.Department.Name", "sc2.Department.Name"
        )
        session.analysis.specify(
            "sc1.Department", "sc2.Department", AssertionKind.EQUALS
        )
        session.analysis.specify(
            "sc1.Student", "sc2.Grad_student", AssertionKind.CONTAINS
        )


class TestSubmission:
    def test_unknown_kind_is_rejected(self, queue, manager):
        manager.create("acme", "s1")
        with pytest.raises(BadRequestError, match="unknown job kind"):
            queue.submit("acme", "mine-bitcoin", {"session_id": "s1"})

    def test_unknown_session_fails_at_submit(self, queue):
        with pytest.raises(UnknownSessionError):
            queue.submit("acme", "replay", {"session_id": "ghost"})

    def test_backlog_cap(self, manager):
        queue = JobQueue(manager, max_queued=0)
        manager.create("acme", "s1")
        from repro.service.errors import CapacityError

        with pytest.raises(CapacityError):
            queue.submit("acme", "replay", {"session_id": "s1"})

    def test_get_is_tenant_scoped(self, queue, manager):
        manager.create("acme", "s1")
        job = queue.submit("acme", "replay", {"session_id": "s1"})
        with pytest.raises(JobNotFoundError):
            queue.get("beta", job.job_id)
        queue.wait("acme", job.job_id)


class TestExecution:
    def test_integrate_job_end_to_end(self, queue, manager):
        seed_integrable(manager)
        job = queue.submit(
            "acme",
            "integrate",
            {"session_id": "s1", "first": "sc1", "second": "sc2"},
        )
        done = queue.wait("acme", job.job_id)
        assert done.state == "succeeded", done.error
        assert done.result["result_schema"] == "integrated"
        assert done.result["state_fingerprint"]
        assert any("integrating" in note for note in done.progress)
        # the checkpoint was refreshed: a rehydrated copy matches
        manager.evict("acme", "s1")
        assert (
            manager.fingerprint("acme", "s1")
            == done.result["state_fingerprint"]
        )

    def test_replay_job_verifies_fingerprint(self, queue, manager):
        seed_integrable(manager)
        job = queue.submit("acme", "replay", {"session_id": "s1"})
        done = queue.wait("acme", job.job_id)
        assert done.state == "succeeded", done.error
        assert done.result["verified"] is True
        assert done.result["events"] > 0

    def test_job_failure_is_captured_not_fatal(self, queue, manager):
        manager.create("acme", "s1")
        # integrating schemas that don't exist fails inside the handler
        job = queue.submit(
            "acme",
            "integrate",
            {"session_id": "s1", "first": "nope", "second": "nada"},
        )
        done = queue.wait("acme", job.job_id)
        assert done.state == "failed"
        assert done.error["code"]
        # the queue still works afterwards
        ok = queue.submit("acme", "replay", {"session_id": "s1"})
        assert queue.wait("acme", ok.job_id).state == "succeeded"

    def test_spans_stream_while_tracing(self, queue, manager):
        seed_integrable(manager)
        job = queue.submit(
            "acme",
            "integrate",
            {"session_id": "s1", "first": "sc1", "second": "sc2"},
        )
        done = queue.wait("acme", job.job_id)
        names = {span["name"] for span in done.spans_so_far()}
        assert names, "tracer captured nothing"
        assert any("service.session" in name for name in names)


class TestCancellation:
    def test_cancel_queued_job(self, manager):
        # submit() auto-starts workers, so enqueue a record by hand to
        # observe the queued -> cancelled transition deterministically
        from repro.service.jobs import QUEUED, Job

        queue = JobQueue(manager)
        manager.create("acme", "s1")
        queued = Job(
            job_id="j-test", tenant="acme", kind="replay",
            params={"session_id": "s1"}, state=QUEUED,
        )
        with queue._mutex:
            queue._jobs[queued.job_id] = queued
        cancelled = queue.cancel("acme", "j-test")
        assert cancelled.state == "cancelled"
        with pytest.raises(JobStateError):
            queue.cancel("acme", "j-test")

    def test_cannot_cancel_finished_job(self, queue, manager):
        manager.create("acme", "s1")
        job = queue.submit("acme", "replay", {"session_id": "s1"})
        queue.wait("acme", job.job_id)
        with pytest.raises(JobStateError):
            queue.cancel("acme", job.job_id)


class TestPinningDuringJobs:
    def test_eviction_refused_mid_job(self, queue, manager):
        """An explicit evict during a running job answers session_busy."""
        manager.create("acme", "s1")
        started = threading.Event()
        release = threading.Event()

        def slow_handler(mgr, job):
            with mgr.pinned(job.tenant, job.params["session_id"]):
                started.set()
                assert release.wait(timeout=30)
            return {"done": True}

        queue.register("slow", slow_handler)
        job = queue.submit("acme", "slow", {"session_id": "s1"})
        assert started.wait(timeout=30)
        try:
            with pytest.raises(SessionBusyError, match="pinned"):
                manager.evict("acme", "s1")
        finally:
            release.set()
        done = queue.wait("acme", job.job_id)
        assert done.state == "succeeded"
        # once the job released its pin, eviction goes through
        assert manager.evict("acme", "s1") is True
