"""The telemetry plane end to end: /v1/metrics, SSE streams, correlation.

The acceptance property: one ``X-Request-Id`` observably joins all three
signals — the structured access-log line, the tracer span tree streamed
over ``/v1/sessions/{sid}/spans/stream``, and the kernel events streamed
over ``/v1/sessions/{sid}/events/stream``.
"""

from __future__ import annotations

import json
import logging
import threading

from repro.obs.telemetry import PROMETHEUS_CONTENT_TYPE, parse_prometheus
from repro.service import Request, ServiceApp, StreamingResponse


def raw(app, method, path, *, token="token-acme", headers=None,
        body=None, query=None):
    """Dispatch one request and return the raw response object."""
    all_headers = dict(headers or {})
    if token is not None:
        all_headers["authorization"] = f"Bearer {token}"
    return app.dispatch(
        Request(
            method=method,
            path=path,
            query=query or {},
            headers=all_headers,
            body=(
                json.dumps(body).encode("utf-8")
                if body is not None
                else b""
            ),
        )
    )


def parse_sse(chunks):
    """SSE bytes -> list of {id?, event?, data} frames (comments skipped)."""
    frames = []
    for block in b"".join(chunks).decode("utf-8").split("\n\n"):
        block = block.strip()
        if not block or block.startswith(":"):
            continue
        frame = {}
        for line in block.splitlines():
            key, _, value = line.partition(": ")
            frame[key] = value
        if "data" in frame:
            frame["data"] = json.loads(frame["data"])
        frames.append(frame)
    return frames


class Collector:
    """Consumes a StreamingResponse's chunks on a background thread."""

    def __init__(self, response: StreamingResponse):
        assert isinstance(response, StreamingResponse)
        self.chunks: list[bytes] = []
        self._thread = threading.Thread(
            target=lambda: self.chunks.extend(response.chunks)
        )
        self._thread.start()

    def frames(self, timeout=15.0):
        self._thread.join(timeout)
        assert not self._thread.is_alive(), "stream did not terminate"
        return parse_sse(self.chunks)


# -- /v1/metrics ------------------------------------------------------------------


def test_metrics_endpoint_emits_valid_prometheus_text(seeded, app):
    seeded.get("/v1/stats")
    seeded.get("/v1/sessions")
    response = raw(app, "GET", "/v1/metrics", token=None)
    assert response.status == 200
    assert response.headers["content-type"] == PROMETHEUS_CONTENT_TYPE
    samples = parse_prometheus(response.body.decode("utf-8"))

    def series(name, **labels):
        inner = ",".join(
            f'{key}="{value}"' for key, value in sorted(labels.items())
        )
        return f"{name}{{{inner}}}" if inner else name

    assert (
        samples[
            series(
                "repro_http_requests_total",
                method="GET",
                route="/v1/stats",
                status="200",
                tenant="acme",
            )
        ]
        >= 1
    )
    # session-manager gauges reflect the seeded resident session
    assert samples["repro_sessions_resident"] >= 1
    assert samples["repro_sessions_resident_bytes"] > 0
    assert samples["repro_sessions_known"] >= 1
    # rolling latency quantiles appear per tenant/route
    assert (
        series(
            "repro_http_request_latency_seconds",
            quantile="0.5",
            route="/v1/stats",
            tenant="acme",
        )
        in samples
    )
    # job-state gauges are always present once scraped
    assert series("repro_jobs", state="queued") in samples
    assert samples["repro_jobs_queue_depth"] >= 0
    # duration histogram: cumulative buckets parse and count matches
    count_series = series(
        "repro_http_request_duration_seconds_count",
        route="/v1/stats",
        tenant="acme",
    )
    assert samples[count_series] >= 1


def test_metrics_counts_unauthenticated_and_unmatched_requests(app):
    raw(app, "GET", "/v1/healthz", token=None)
    raw(app, "GET", "/v1/nowhere", token=None)
    response = raw(app, "GET", "/v1/metrics", token=None)
    samples = parse_prometheus(response.body.decode("utf-8"))
    assert (
        samples[
            'repro_http_requests_total{method="GET",route="/v1/healthz"'
            ',status="200",tenant="-"}'
        ]
        >= 1
    )
    assert (
        samples[
            'repro_http_requests_total{method="GET",route="(unmatched)"'
            ',status="404",tenant="-"}'
        ]
        >= 1
    )


# -- request ids ------------------------------------------------------------------


def test_request_id_is_generated_and_echoed(app):
    response = raw(app, "GET", "/v1/healthz", token=None)
    generated = response.headers["x-request-id"]
    assert generated.startswith("req-")
    echoed = raw(
        app,
        "GET",
        "/v1/healthz",
        token=None,
        headers={"x-request-id": "my-trace-01"},
    )
    assert echoed.headers["x-request-id"] == "my-trace-01"
    # malformed ids are replaced, never reflected back verbatim
    replaced = raw(
        app,
        "GET",
        "/v1/healthz",
        token=None,
        headers={"x-request-id": "bad id\nwith newline"},
    )
    assert replaced.headers["x-request-id"].startswith("req-")


def test_disabled_telemetry_serves_requests_without_the_plane(tmp_path):
    from repro.service import TenantAuth

    app = ServiceApp(
        tmp_path / "svc",
        auth=TenantAuth.from_tokens({"token-acme": "acme"}),
        telemetry=False,
    )
    try:
        response = raw(app, "GET", "/v1/healthz", token=None)
        assert response.status == 200
        assert "x-request-id" not in response.headers
        assert raw(app, "GET", "/v1/metrics", token=None).status == 404
        assert (
            raw(
                app,
                "GET",
                "/v1/sessions/s1/events/stream",
            ).status
            == 404
        )
    finally:
        app.close()


# -- SSE tenant isolation ---------------------------------------------------------


def test_streams_404_for_foreign_and_missing_sessions(seeded, app):
    for path in (
        "/v1/sessions/s1/events/stream",
        "/v1/sessions/s1/spans/stream",
    ):
        foreign = raw(app, "GET", path, token="token-beta")
        assert foreign.status == 404
        missing = raw(
            app, "GET", path.replace("/s1/", "/ghost/"),
            token="token-acme",
        )
        assert missing.status == 404
    # failed subscriptions must not leak hub entries or pins
    assert app.telemetry.events_hub.subscriber_count() == 0
    assert app.telemetry.spans_hub.subscriber_count() == 0
    evicted = raw(app, "DELETE", "/v1/sessions/s1")
    assert evicted.status == 200  # nothing pinned it


def test_stream_query_parameters_are_validated(seeded, app):
    for query in (
        {"max_events": "zero"},
        {"max_events": "0"},
        {"timeout_s": "-1"},
        {"idle_s": "soon"},
    ):
        response = raw(
            app, "GET", "/v1/sessions/s1/events/stream", query=query
        )
        assert response.status == 400
    assert app.telemetry.events_hub.subscriber_count() == 0


def test_open_events_stream_pins_the_session(seeded, app):
    response = raw(
        app,
        "GET",
        "/v1/sessions/s1/events/stream",
        query={"max_events": "1", "timeout_s": "10"},
    )
    collector = Collector(response)
    try:
        busy = raw(app, "DELETE", "/v1/sessions/s1")
        assert busy.status == 409  # pinned while streaming
    finally:
        seeded.post(
            "/v1/sessions/s1/equivalences",
            {
                "first": "sc1.Student.GPA",
                "second": "sc2.Grad_student.Advisor",
            },
        )
        collector.frames()
    evicted = raw(app, "DELETE", "/v1/sessions/s1")
    assert evicted.status == 200
    assert app.telemetry.events_hub.subscriber_count() == 0


# -- the acceptance property ------------------------------------------------------


def test_one_request_id_joins_access_log_spans_and_events(
    seeded, app, caplog
):
    rid = "req-jointest0001"
    events = Collector(
        raw(
            app,
            "GET",
            "/v1/sessions/s1/events/stream",
            query={"idle_s": "1.0", "timeout_s": "15"},
        )
    )
    spans = Collector(
        raw(
            app,
            "GET",
            "/v1/sessions/s1/spans/stream",
            query={"idle_s": "1.0", "timeout_s": "15"},
        )
    )
    with caplog.at_level(logging.INFO, logger="repro.service"):
        response = raw(
            app,
            "POST",
            "/v1/sessions/s1/equivalences",
            headers={"x-request-id": rid},
            body={
                "first": "sc1.Student.GPA",
                "second": "sc2.Grad_student.Advisor",
            },
        )
    assert response.status == 201
    assert response.headers["x-request-id"] == rid

    # 1) the structured access-log line carries the id
    access = [
        json.loads(record.message)
        for record in caplog.records
        if record.name == "repro.service"
        and record.message.startswith("{")
    ]
    mine = [line for line in access if line["request_id"] == rid]
    assert mine, f"no access-log line for {rid}: {access}"
    assert mine[0]["route"] == "/v1/sessions/{sid}/equivalences"
    assert mine[0]["status"] == 201
    assert mine[0]["tenant"] == "acme"

    # 2) the span tree streamed over SSE carries the id
    span_frames = [
        frame["data"]
        for frame in spans.frames()
        if frame.get("event") == "span"
    ]
    correlated = [
        frame for frame in span_frames if frame["request_id"] == rid
    ]
    assert correlated, f"no spans for {rid}: {span_frames}"
    names = {frame["name"] for frame in correlated}
    assert "service.request" in names  # the dispatch root span

    # 3) the kernel events streamed over SSE carry the id
    event_frames = [
        frame["data"]
        for frame in events.frames()
        if frame.get("event") == "kernel-event"
    ]
    mine = [
        frame for frame in event_frames if frame["request_id"] == rid
    ]
    assert mine, f"no kernel events for {rid}: {event_frames}"
    assert all("scope" in frame and "action" in frame for frame in mine)
    # SSE ids are the kernel offsets: monotonic
    offsets = [frame["seq"] for frame in mine]
    assert offsets == sorted(offsets)


def test_background_job_inherits_the_submitting_request_id(seeded, app):
    rid = "req-jobcorr0001"
    spans = Collector(
        raw(
            app,
            "GET",
            "/v1/sessions/s1/spans/stream",
            query={"idle_s": "1.5", "timeout_s": "30"},
        )
    )
    submitted = raw(
        app,
        "POST",
        "/v1/sessions/s1/integrate",
        headers={"x-request-id": rid},
        body={"first": "sc1", "second": "sc2", "mode": "background"},
    )
    assert submitted.status == 202
    job_wire = json.loads(submitted.body)
    assert job_wire["request_id"] == rid
    job = app.jobs.wait("acme", job_wire["job_id"], timeout=30)
    assert job.state == "succeeded"
    span_frames = [
        frame["data"]
        for frame in spans.frames(timeout=30)
        if frame.get("event") == "span"
    ]
    job_spans = [
        frame for frame in span_frames if frame["request_id"] == rid
    ]
    names = {frame["name"] for frame in job_spans}
    # the submit request's root span and the job's own spans both joined
    assert "service.request" in names
    assert "service.job.integrate" in names
    assert any(name.startswith("phase") for name in names) or any(
        "integrate" in name for name in names
    )


def test_span_stream_reports_drops_under_backpressure(seeded, app):
    # a tiny ring forces drop-oldest under a burst
    app.telemetry.spans_hub.maxlen = 4
    spans = Collector(
        raw(
            app,
            "GET",
            "/v1/sessions/s1/spans/stream",
            query={"idle_s": "1.0", "timeout_s": "15"},
        )
    )
    # burst: each request publishes several spans before the consumer
    # thread can drain its ring
    for _ in range(10):
        seeded.get("/v1/sessions/s1")
    frames = spans.frames()
    end = [frame for frame in frames if frame.get("event") == "end"]
    assert end, "missing terminal end frame"
    summary = end[0]["data"]
    assert summary["sent"] >= 1
    assert summary["dropped"] >= 0  # counter is wired into the end frame
