"""The asyncio HTTP server over a real socket: framing, keep-alive, auth."""

from __future__ import annotations

import asyncio
import json
import socket
import threading

import pytest

from repro.service import ServiceApp, TenantAuth
from repro.service.app import serve
from repro.service.http import (
    MAX_BODY_BYTES,
    Request,
    Response,
    parse_target,
)


@pytest.fixture
def server(tmp_path):
    """A live server on an ephemeral port, driven from a worker thread."""
    app = ServiceApp(
        tmp_path / "root",
        auth=TenantAuth.from_tokens({"tok": "acme"}),
        max_resident=4,
    )
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]

    loop = asyncio.new_event_loop()
    ready = None
    started = threading.Event()
    task_holder: dict[str, asyncio.Task] = {}

    async def main():
        nonlocal ready
        ready = asyncio.Event()
        task_holder["serve"] = asyncio.ensure_future(
            serve(app, "127.0.0.1", port, ready=ready)
        )
        await ready.wait()
        started.set()
        try:
            await task_holder["serve"]
        except asyncio.CancelledError:
            pass

    thread = threading.Thread(target=lambda: loop.run_until_complete(main()))
    thread.start()
    assert started.wait(timeout=30), "server failed to start"
    try:
        yield port
    finally:
        loop.call_soon_threadsafe(task_holder["serve"].cancel)
        thread.join(timeout=30)
        loop.close()
        app.close()


def raw_exchange(port: int, payload: bytes, *, recv_until_close=True) -> bytes:
    with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
        sock.sendall(payload)
        sock.shutdown(socket.SHUT_WR)
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
        return b"".join(chunks)


def http(
    port: int,
    method: str,
    path: str,
    body: dict | None = None,
    *,
    token: str | None = "tok",
    close: bool = True,
) -> tuple[int, dict]:
    data = json.dumps(body).encode() if body is not None else b""
    headers = [f"{method} {path} HTTP/1.1", "host: localhost"]
    if token:
        headers.append(f"authorization: Bearer {token}")
    if data:
        headers.append(f"content-length: {len(data)}")
    if close:
        headers.append("connection: close")
    raw = ("\r\n".join(headers) + "\r\n\r\n").encode() + data
    answer = raw_exchange(port, raw)
    head, _, payload = answer.partition(b"\r\n\r\n")
    status = int(head.split()[1])
    return status, json.loads(payload) if payload else None


class TestOverTheWire:
    def test_health_and_auth(self, server):
        assert http(server, "GET", "/v1/healthz", token=None) == (
            200,
            {"status": "ok"},
        )
        status, payload = http(server, "GET", "/v1/sessions", token=None)
        assert status == 401

    def test_full_lifecycle_over_socket(self, server):
        status, payload = http(
            server, "POST", "/v1/sessions", {"session_id": "wire"}
        )
        assert status == 201
        status, payload = http(
            server,
            "POST",
            "/v1/sessions/wire/schemas",
            {"ddl": "schema sc1\nentity Thing\n  attr Name : string key\n"},
        )
        assert status == 201
        status, payload = http(server, "GET", "/v1/sessions/wire")
        assert payload["schemas"] == ["sc1"]

    def test_keep_alive_two_requests_one_connection(self, server):
        first = (
            b"GET /v1/healthz HTTP/1.1\r\nhost: x\r\n\r\n"
            b"GET /v1/about HTTP/1.1\r\nhost: x\r\nconnection: close\r\n\r\n"
        )
        answer = raw_exchange(server, first)
        assert answer.count(b"HTTP/1.1 200") == 2
        assert b'"api": "v1"' in answer or b'"api":"v1"' in answer

    def test_malformed_request_line_is_400(self, server):
        answer = raw_exchange(server, b"NONSENSE\r\n\r\n")
        assert b"400" in answer.split(b"\r\n")[0]

    def test_query_string_reaches_handler(self, server):
        http(server, "POST", "/v1/sessions", {"session_id": "q"})
        status, payload = http(
            server, "DELETE", "/v1/sessions/q?purge=true"
        )
        assert payload["purged"] is True

    def test_oversized_body_is_rejected(self, server):
        headers = (
            f"POST /v1/sessions HTTP/1.1\r\nhost: x\r\n"
            f"authorization: Bearer tok\r\n"
            f"content-length: {MAX_BODY_BYTES + 1}\r\n\r\n"
        ).encode()
        answer = raw_exchange(server, headers)
        assert b"400" in answer.split(b"\r\n")[0]

    def test_chunked_encoding_is_rejected(self, server):
        raw = (
            b"POST /v1/sessions HTTP/1.1\r\nhost: x\r\n"
            b"transfer-encoding: chunked\r\n\r\n"
        )
        answer = raw_exchange(server, raw)
        assert b"400" in answer.split(b"\r\n")[0]


class TestFramingUnits:
    def test_parse_target(self):
        path, query = parse_target("/v1/x?a=1&b=two%20words")
        assert path == "/v1/x"
        assert query == {"a": "1", "b": "two words"}

    def test_response_encode_close(self):
        wire = Response.json({"ok": True}).encode(close=True)
        assert b"connection: close" in wire

    def test_request_json_object_guards(self):
        request = Request(method="POST", path="/x", body=b"[1,2]")
        from repro.service.errors import BadRequestError

        with pytest.raises(BadRequestError):
            request.json_object()

    def test_bearer_parsing(self):
        request = Request(
            method="GET",
            path="/x",
            headers={"authorization": "bearer  abc "},
        )
        assert request.auth_token == "abc"
        assert Request(method="GET", path="/x").auth_token is None
