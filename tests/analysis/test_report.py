"""Tests for the plain-text report tables."""

import pytest

from repro.analysis.report import Table


class TestTable:
    def test_render_alignment(self):
        table = Table("demo", ["name", "value"])
        table.add_row("short", 1)
        table.add_row("a_much_longer_name", 22)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "demo"
        header = lines[2]
        assert header.startswith("name")
        assert "value" in header
        # all data rows aligned to the same column start
        column = header.index("value")
        assert lines[4][column:].strip() == "1"
        assert lines[5][column:].strip() == "22"

    def test_floats_formatted(self):
        table = Table("t", ["x"])
        table.add_row(0.5)
        assert "0.5000" in table.render()

    def test_wrong_arity_rejected(self):
        table = Table("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_str_is_render(self):
        table = Table("t", ["a"])
        table.add_row("x")
        assert str(table) == table.render()
