"""Tests for analysis metrics."""

from repro.analysis.metrics import integration_effort, schema_size
from repro.workloads.university import build_sc2


class TestSchemaSize:
    def test_counts(self):
        size = schema_size(build_sc2())
        assert size.entities == 3
        assert size.categories == 0
        assert size.relationships == 2
        assert size.attributes == 9
        assert size.structures == 5

    def test_as_row(self):
        assert schema_size(build_sc2()).as_row() == [3, 0, 2, 9]


class TestEffort:
    def test_paper_effort(self, object_network, paper_result):
        effort = integration_effort(object_network, paper_result)
        assert effort.dda_assertions == 3
        assert effort.implicit_assertions == 0
        assert effort.derived_assertions >= 1
        assert effort.equivalent_merges == 2
        assert effort.derived_parents == 1
        assert effort.derived_attributes == 4
        assert effort.automation_ratio > 0

    def test_zero_dda_ratio(self, paper_result):
        from repro.assertions.network import AssertionNetwork

        empty = AssertionNetwork()
        effort = integration_effort(empty, paper_result)
        assert effort.automation_ratio == 0.0
