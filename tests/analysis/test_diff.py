"""Tests for the structural schema diff, and the strongest FIG5 pin:
the produced integrated schema is structurally identical to a hand-built
Figure 5."""

from repro.analysis.diff import diff_schemas
from repro.ecr.builder import SchemaBuilder
from repro.workloads.university import build_expected_figure5, build_sc1


class TestDiffMechanics:
    def test_identical_schemas(self):
        assert diff_schemas(build_sc1(), build_sc1()) == []

    def test_declaration_order_ignored(self):
        first = (
            SchemaBuilder("s")
            .entity("A", attrs=[("x", "char", True)])
            .entity("B", attrs=[("y", "char", True)])
            .build()
        )
        second = (
            SchemaBuilder("s")
            .entity("B", attrs=[("y", "char", True)])
            .entity("A", attrs=[("x", "char", True)])
            .build()
        )
        assert diff_schemas(first, second) == []

    def test_missing_and_unexpected_structures(self):
        first = SchemaBuilder("s").entity("A", attrs=[("x", "char", True)]).build()
        second = SchemaBuilder("s").entity("B", attrs=[("x", "char", True)]).build()
        differences = diff_schemas(first, second)
        assert "missing structure 'A'" in differences
        assert "unexpected structure 'B'" in differences

    def test_kind_mismatch(self):
        first = (
            SchemaBuilder("s")
            .entity("A", attrs=[("x", "char", True)])
            .entity("C", attrs=[("y", "char", True)])
            .build()
        )
        second = (
            SchemaBuilder("s")
            .entity("A", attrs=[("x", "char", True)])
            .category("C", of="A", attrs=["y"])
            .build()
        )
        differences = diff_schemas(first, second)
        assert any("kind 'e' != 'c'" in d for d in differences)

    def test_attribute_differences(self):
        first = SchemaBuilder("s").entity(
            "A", attrs=[("x", "char", True), ("y", "real")]
        ).build()
        second = SchemaBuilder("s").entity(
            "A", attrs=[("x", "integer", False), ("z", "real")]
        ).build()
        differences = diff_schemas(first, second)
        assert any("missing attribute 'y'" in d for d in differences)
        assert any("unexpected attribute 'z'" in d for d in differences)
        assert any("domain" in d for d in differences)
        assert any("key" in d for d in differences)

    def test_parent_differences(self):
        first = (
            SchemaBuilder("s")
            .entity("A", attrs=[("x", "char", True)])
            .entity("B", attrs=[("k", "char", True)])
            .category("C", of="A")
            .build()
        )
        second = first.copy()
        second.category("C").parents[:] = ["B"]
        differences = diff_schemas(first, second)
        assert any("parents" in d for d in differences)

    def test_leg_differences(self):
        first = (
            SchemaBuilder("s")
            .entity("A", attrs=[("x", "char", True)])
            .entity("B", attrs=[("y", "char", True)])
            .relationship("R", connects=[("A", "(1,1)"), ("B", "(0,n)")])
            .build()
        )
        second = (
            SchemaBuilder("s")
            .entity("A", attrs=[("x", "char", True)])
            .entity("B", attrs=[("y", "char", True)])
            .relationship("R", connects=[("A", "(0,1)"),("B", "(0,n)")])
            .build()
        )
        differences = diff_schemas(first, second)
        assert any("cardinality" in d for d in differences)


class TestFigure5Pin:
    def test_produced_schema_equals_hand_built_figure5(self, paper_result):
        differences = diff_schemas(build_expected_figure5(), paper_result.schema)
        assert differences == []
