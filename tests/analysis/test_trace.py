"""Tests for the integration Markdown report."""

from repro.analysis.trace import integration_report


class TestIntegrationReport:
    def test_sections_present(self, registry, object_network, paper_result):
        report = integration_report(
            registry, object_network, paper_result, title="Paper run"
        )
        for heading in (
            "# Paper run",
            "## Component schemas",
            "## Attribute equivalence classes",
            "## Assertions",
            "## Integrated schema",
            "## Provenance",
            "## Integration log",
        ):
            assert heading in report

    def test_content_detail(self, registry, object_network, paper_result):
        report = integration_report(registry, object_network, paper_result)
        assert "sc1.Student.Name ~ " in report
        assert "| sc1.Department | sc2.Department | 1 | dda |" in report
        assert "D_Stud_Facu" in report
        assert "Student.D_Name <- sc1.Student.Name, sc2.Grad_student.Name" in report

    def test_no_equivalences_case(self, sc3, sc4):
        from repro.assertions.network import AssertionNetwork
        from repro.equivalence.registry import EquivalenceRegistry
        from repro.integration.integrator import integrate_pair

        registry = EquivalenceRegistry([sc3, sc4])
        network = AssertionNetwork()
        network.seed_schema(sc3)
        network.seed_schema(sc4)
        result = integrate_pair(registry, network, "sc3", "sc4")
        report = integration_report(registry, network, result)
        assert "(none declared)" in report
