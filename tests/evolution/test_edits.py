"""The typed edit vocabulary: payloads, inverses, conflicts, retraction."""

import pytest

from repro.assertions.kinds import AssertionKind, Source
from repro.baselines import state_payload_fingerprint
from repro.equivalence.session import AnalysisSession
from repro.errors import ConsistencyFailure, SchemaError
from repro.evolution import (
    AddAttribute,
    AddClass,
    DropClass,
    RenameAttribute,
    SetCategoryParents,
    edit_from_payload,
)
from repro.ecr.attributes import Attribute
from repro.ecr.domains import Domain, DomainKind
from repro.ecr.schema import ObjectRef
from repro.workloads.university import build_sc1, build_sc2


@pytest.fixture
def session():
    live = AnalysisSession([build_sc1(), build_sc2()])
    live.declare_equivalent("sc1.Student.Name", "sc2.Grad_student.Name")
    live.specify("sc1.Student", "sc2.Grad_student", AssertionKind.from_code(3))
    return live


PAYLOADS = [
    {"kind": "add_attribute", "object": "Student",
     "attribute": {"name": "Age", "domain": {"kind": "integer"}}},
    {"kind": "drop_attribute", "object": "Student", "attribute": "GPA"},
    {"kind": "rename_attribute", "object": "Student",
     "old": "GPA", "new": "Grade_avg"},
    {"kind": "add_class", "structure": {"kind": "e", "name": "Campus"}},
    {"kind": "drop_class", "object": "Student", "cascade": True},
    {"kind": "add_relationship",
     "structure": {"kind": "r", "name": "Attends", "participations": [
         {"object": "Student", "min": 0, "max": 1}]}},
    {"kind": "drop_relationship", "relationship": "Majors", "cascade": True},
    {"kind": "set_category_parents", "object": "Student",
     "parents": ["Person"]},
]


class TestPayloads:
    @pytest.mark.parametrize(
        "payload", PAYLOADS, ids=[p["kind"] for p in PAYLOADS]
    )
    def test_round_trip(self, payload):
        assert edit_from_payload(dict(payload)).to_payload() == payload

    def test_unknown_kind_rejected(self):
        with pytest.raises(SchemaError):
            edit_from_payload({"kind": "explode"})

    def test_missing_key_rejected(self):
        with pytest.raises(SchemaError):
            edit_from_payload({"kind": "add_attribute"})


class TestInverses:
    def test_inverse_restores_the_fingerprint(self, session):
        before = state_payload_fingerprint(session)
        outcome = session.apply_edit(
            "sc1",
            AddAttribute(
                "Student", Attribute("Age", Domain(DomainKind.INTEGER))
            ),
        )
        assert state_payload_fingerprint(session) != before
        session.apply_edit("sc1", outcome.inverse)
        assert state_payload_fingerprint(session) == before

    def test_rename_inverse_swaps_names(self, session):
        outcome = session.apply_edit(
            "sc1", RenameAttribute("Student", "GPA", "Grade_avg")
        )
        assert outcome.inverse.to_payload() == {
            "kind": "rename_attribute",
            "object": "Student",
            "old": "Grade_avg",
            "new": "GPA",
        }

    def test_destructive_inverse_restores_structure_not_assertions(
        self, session
    ):
        session.apply_edit(
            "sc2",
            edit_from_payload(
                {"kind": "drop_relationship", "relationship": "Majors",
                 "cascade": True}
            ),
        )
        outcome = session.apply_edit(
            "sc2", DropClass("Grad_student", cascade=True)
        )
        assert outcome.destructive
        # the structural inverse re-adds the class at its old position...
        payload = outcome.inverse.to_payload()
        assert payload["structure"]["name"] == "Grad_student"
        assert payload["position"] == 0
        session.apply_edit("sc2", outcome.inverse)
        assert "Grad_student" in session.registry.schema("sc2")
        # ...but the retracted DDA assertion is gone for good
        assert session.object_network.assertion_for(
            ObjectRef("sc1", "Student"), ObjectRef("sc2", "Grad_student")
        ) is None


class TestConflicts:
    def test_non_cascade_drop_of_asserted_class_refuses(self, session):
        before = state_payload_fingerprint(session)
        session.apply_edit(
            "sc2",
            edit_from_payload(
                {"kind": "drop_relationship", "relationship": "Majors",
                 "cascade": True}
            ),
        )
        after_rel_drop = state_payload_fingerprint(session)
        with pytest.raises(ConsistencyFailure) as failure:
            session.apply_edit("sc2", DropClass("Grad_student"))
        assert failure.value.code == "solver_inconsistent"
        # the refused edit left no trace
        assert state_payload_fingerprint(session) == after_rel_drop
        assert after_rel_drop != before

    def test_rejection_is_counted(self, session):
        rejected_before = session.counters.evolution_edits_rejected
        session.apply_edit(
            "sc2",
            edit_from_payload(
                {"kind": "drop_relationship", "relationship": "Majors",
                 "cascade": True}
            ),
        )
        with pytest.raises(ConsistencyFailure):
            session.apply_edit("sc2", DropClass("Grad_student"))
        assert session.counters.evolution_edits_rejected == rejected_before + 1


class TestDestructive:
    def test_cascade_drop_retracts_and_reports(self, session):
        session.apply_edit(
            "sc2",
            edit_from_payload(
                {"kind": "drop_relationship", "relationship": "Majors",
                 "cascade": True}
            ),
        )
        outcome = session.apply_edit(
            "sc2", DropClass("Grad_student", cascade=True)
        )
        assert outcome.destructive
        assert outcome.retracted
        assert any(
            "sc2.Grad_student" in {str(ref) for ref in assertion.pair}
            for assertion in outcome.retracted
        )
        assert outcome.scope.assertions_retracted >= 1
        assert "Grad_student" not in session.registry.schema("sc2")


class TestReseeding:
    def test_new_category_parent_reseeds_containment(self, session):
        session.apply_edit(
            "sc1",
            AddClass({"kind": "c", "name": "Honors_student",
                      "parents": ["Student"]}),
        )
        implicit = session.object_network.assertion_for(
            ObjectRef("sc1", "Honors_student"), ObjectRef("sc1", "Student")
        )
        assert implicit is not None
        assert implicit.source is Source.IMPLICIT

        session.apply_edit(
            "sc1", SetCategoryParents("Honors_student", ("Department",))
        )
        stale = session.object_network.assertion_for(
            ObjectRef("sc1", "Honors_student"), ObjectRef("sc1", "Student")
        )
        fresh = session.object_network.assertion_for(
            ObjectRef("sc1", "Honors_student"), ObjectRef("sc1", "Department")
        )
        assert fresh is not None and fresh.source is Source.IMPLICIT
        assert stale is None or stale.source is not Source.IMPLICIT
