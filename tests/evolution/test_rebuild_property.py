"""Incremental repair is pinned to the from-scratch rebuild oracle.

The acceptance property of the evolution subsystem: after *any* random
DDA sitting — equivalences, assertions, retractions, integrations and
typed schema edits interleaved — the incrementally repaired session's
canonical ``state_payload`` fingerprints bitwise-identically to a fresh
session rebuilt from scratch out of the same observable facts.  A
second property pins the incrementally *patched* integration result to
a cold :class:`~repro.integration.integrator.Integrator` run over the
rebuilt session.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    rebuild_matches,
    reintegrate_from_scratch,
    state_payload_fingerprint,
)
from repro.equivalence.session import AnalysisSession
from repro.errors import ReproError, SchemaError
from repro.kernel.apply import schema_fingerprint
from repro.workloads import (
    EvolutionConfig,
    GeneratorConfig,
    generate_schema_pair,
    run_evolution_script,
)
from repro.workloads.university import build_sc1, build_sc2

from tests.kernel.test_property import apply_operation, operations


@settings(max_examples=25, deadline=None)
@given(st.lists(operations, max_size=20))
def test_incremental_state_equals_rebuilt_state(ops):
    live = AnalysisSession([build_sc1(), build_sc2()])
    for operation in ops:
        apply_operation(live, operation)
    incremental, rebuilt = rebuild_matches(live)
    assert incremental == rebuilt


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    concepts=st.integers(min_value=6, max_value=10),
)
def test_scripted_evolution_matches_rebuild_at_every_step(seed, concepts):
    pair = generate_schema_pair(GeneratorConfig(seed=seed, concepts=concepts))
    live = AnalysisSession()
    live.add_schema(pair.first)
    live.add_schema(pair.second)
    for first, second in sorted(pair.truth.attribute_pairs):
        live.declare_equivalent(str(first), str(second))
    for (first, second), kind in sorted(
        pair.truth.object_assertions.items(),
        key=lambda item: (str(item[0][0]), str(item[0][1])),
    ):
        live.specify(str(first), str(second), kind)

    config = EvolutionConfig(seed=seed, edits=6, invalidating_fraction=0.2)
    try:
        applied = run_evolution_script(live, config)
    except SchemaError:
        return  # this seed ran out of droppable asserted classes
    assert applied
    incremental, rebuilt = rebuild_matches(live)
    assert incremental == rebuilt


@settings(max_examples=10, deadline=None)
@given(st.lists(operations, max_size=12))
def test_patched_integration_equals_cold_reintegration(ops):
    from repro.tool.session import ToolSession

    session = ToolSession()
    session.adopt_schema(build_sc1())
    session.adopt_schema(build_sc2())
    for operation in ops:
        apply_operation(session.analysis, operation)
    try:
        session.integrate()
    except ReproError:
        return  # inconsistent sitting: nothing to patch
    edits = [
        ("edit", index)
        for index in range(5)  # the non-drop half of the palette
    ]
    for operation in edits:
        apply_operation(session.analysis, operation)
    # route one edit through the tool layer so patching actually runs
    from repro.evolution import edit_from_payload

    session.apply_edit(
        "sc1",
        edit_from_payload(
            {"kind": "add_attribute", "object": "Department",
             "attribute": {"name": "Budget", "domain": {"kind": "integer"}}}
        ),
    )
    assert session.result is not None
    assert schema_fingerprint(session.result.schema) == (
        reintegrate_from_scratch(session.analysis, "sc1", "sc2")
    )
    incremental, rebuilt = rebuild_matches(session.analysis)
    assert incremental == rebuilt


def test_rebuild_oracle_round_trips_an_untouched_session():
    live = AnalysisSession([build_sc1(), build_sc2()])
    incremental, rebuilt = rebuild_matches(live)
    assert incremental == rebuilt
    assert incremental == state_payload_fingerprint(live)
