"""Tests for request rewriting in both integration contexts."""

import pytest

from repro.errors import MappingError
from repro.integration.mappings import build_mappings
from repro.query.parser import parse_request
from repro.query.rewrite import rewrite_to_components, rewrite_to_integrated


@pytest.fixture
def mappings(paper_result, registry):
    return build_mappings(paper_result, registry.schemas())


class TestViewToLogical:
    """Logical database design: view requests → integrated schema."""

    def test_simple_projection(self, mappings, paper_result):
        request = parse_request("select Name, GPA from Student")
        rewritten = rewrite_to_integrated(request, mappings["sc1"])
        assert str(rewritten) == "select D_Name, D_GPA from Student"
        rewritten.validate_against(paper_result.schema)

    def test_conditions_rewritten(self, mappings):
        request = parse_request("select Name from Student where GPA >= 3.5")
        rewritten = rewrite_to_integrated(request, mappings["sc1"])
        assert rewritten.conditions[0].attribute == "D_GPA"
        assert rewritten.conditions[0].value == "3.5"

    def test_joins_rewritten(self, mappings, paper_result):
        request = parse_request(
            "select Name from Student via Majors(Department)"
        )
        rewritten = rewrite_to_integrated(request, mappings["sc1"])
        assert rewritten.joins[0].relationship == "E_Stud_Majo"
        assert rewritten.joins[0].target == "E_Department"
        rewritten.validate_against(paper_result.schema)

    def test_sc2_view_lands_on_merged_elements(self, mappings):
        request = parse_request("select Name from Grad_student")
        rewritten = rewrite_to_integrated(request, mappings["sc2"])
        # Grad_student's Name was absorbed into Student.D_Name; the
        # category inherits it, so the rewrite stays on Grad_student.
        assert rewritten.object_name == "Grad_student"
        assert rewritten.attributes == ("D_Name",)

    def test_foreign_request_rejected(self, mappings):
        request = parse_request("select Rank from Faculty")
        with pytest.raises(MappingError):
            rewrite_to_integrated(request, mappings["sc1"])


class TestGlobalToComponents:
    """Global schema design: global requests → component databases."""

    def test_merged_object_fans_out(self, mappings):
        request = parse_request("select D_Name from E_Department")
        legs = rewrite_to_components(request, mappings)
        assert [(leg.schema, str(leg.request)) for leg in legs] == [
            ("sc1", "select Name from Department"),
            ("sc2", "select Name from Department"),
        ]
        assert all(leg.is_complete for leg in legs)

    def test_partial_component_reports_missing(self, mappings):
        request = parse_request("select D_Name, Location from E_Department")
        legs = rewrite_to_components(request, mappings)
        by_schema = {leg.schema: leg for leg in legs}
        assert by_schema["sc2"].is_complete
        assert by_schema["sc1"].missing_attributes == ["Location"]
        assert "missing" in str(by_schema["sc1"])

    def test_condition_on_missing_attribute_disqualifies(self, mappings):
        request = parse_request(
            "select D_Name from E_Department where Location = West"
        )
        legs = rewrite_to_components(request, mappings)
        assert [leg.schema for leg in legs] == ["sc2"]

    def test_single_source_object(self, mappings):
        request = parse_request("select Rank from Faculty")
        legs = rewrite_to_components(request, mappings)
        assert [leg.schema for leg in legs] == ["sc2"]
        assert str(legs[0].request) == "select Rank from Faculty"

    def test_join_requires_component_coverage(self, mappings):
        request = parse_request(
            "select D_Name from Student via E_Stud_Majo(E_Department)"
        )
        legs = rewrite_to_components(request, mappings)
        # only sc1 has both the Student side and the Majors relationship
        assert [leg.schema for leg in legs] == ["sc1"]
        assert legs[0].request.joins[0].relationship == "Majors"

    def test_uncovered_object_raises(self, mappings):
        request = parse_request("select x from D_Stud_Facu")
        with pytest.raises(MappingError):
            rewrite_to_components(request, mappings)


class TestRoundTrip:
    def test_view_to_global_to_component_recovers_request(self, mappings):
        original = parse_request("select Name from Department")
        global_request = rewrite_to_integrated(original, mappings["sc1"])
        legs = rewrite_to_components(global_request, mappings)
        sc1_leg = next(leg for leg in legs if leg.schema == "sc1")
        assert str(sc1_leg.request) == str(original)


class TestSubclassRouting:
    def test_subclass_components_contribute_with_schema(
        self, mappings, paper_result
    ):
        request = parse_request("select D_Name from Student")
        direct = rewrite_to_components(request, mappings)
        assert [leg.schema for leg in direct] == ["sc1"]
        with_closure = rewrite_to_components(
            request, mappings, paper_result.schema
        )
        schemas = [leg.schema for leg in with_closure]
        assert schemas == ["sc1", "sc2"]
        sc2_leg = next(leg for leg in with_closure if leg.schema == "sc2")
        # sc2 contributes through its Grad_student subclass
        assert sc2_leg.request.object_name == "Grad_student"
        assert sc2_leg.request.attributes == ("Name",)

    def test_condition_still_mapped_on_subclass_leg(
        self, mappings, paper_result
    ):
        request = parse_request("select D_Name from Student where D_GPA > 3")
        legs = rewrite_to_components(request, mappings, paper_result.schema)
        sc2_leg = next(leg for leg in legs if leg.schema == "sc2")
        assert sc2_leg.request.conditions[0].attribute == "GPA"
