"""Tests for the request parser."""

import pytest

from repro.errors import QueryError
from repro.query.ast import Comparison, Join
from repro.query.parser import parse_request


class TestParsing:
    def test_minimal(self):
        request = parse_request("select * from Student")
        assert request.object_name == "Student"
        assert request.attributes == ()
        assert request.conditions == ()

    def test_projection_list(self):
        request = parse_request("select Name, GPA from Student")
        assert request.attributes == ("Name", "GPA")

    def test_where_single(self):
        request = parse_request("select Name from Student where GPA >= 3.5")
        assert request.conditions == (Comparison("GPA", ">=", "3.5"),)

    def test_where_conjunction(self):
        request = parse_request(
            "select Name from Student where GPA > 3 and Name != Bob"
        )
        assert len(request.conditions) == 2
        assert request.conditions[1] == Comparison("Name", "!=", "Bob")

    def test_quoted_values_stripped(self):
        request = parse_request("select * from S where Name = 'Alice'")
        assert request.conditions[0].value == "Alice"

    def test_via_joins(self):
        request = parse_request(
            "select Name from Student via Majors(Department) via Takes(Course)"
        )
        assert request.joins == (
            Join("Majors", "Department"),
            Join("Takes", "Course"),
        )

    def test_case_insensitive_keywords(self):
        request = parse_request("SELECT Name FROM Student WHERE GPA = 4")
        assert request.object_name == "Student"
        assert request.conditions

    def test_operator_longest_match(self):
        request = parse_request("select * from S where x <= 3")
        assert request.conditions[0].operator == "<="

    def test_roundtrip_through_str(self):
        text = "select Name, GPA from Student where GPA >= 3.5 via Majors(Department)"
        assert str(parse_request(text)) == text


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "get stuff",
            "select from Student",
            "select Name from",
            "select Na me from S",
            "select * from S where",
            "select * from S where x",
            "select * from S where x =",
            "select * from S where and",
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(QueryError):
            parse_request(bad)
