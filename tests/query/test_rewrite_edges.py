"""Edge cases of ``rewrite_to_components`` — the federation direction."""

import pytest

from repro.errors import MappingError
from repro.integration.mappings import build_mappings
from repro.query.parser import parse_request
from repro.query.rewrite import rewrite_to_components


@pytest.fixture
def mappings(paper_result, registry):
    return build_mappings(paper_result, registry.schemas())


class TestRouting:
    def test_single_component_object_yields_one_leg(
        self, mappings, paper_result
    ):
        legs = rewrite_to_components(
            parse_request("select Rank from Faculty"),
            mappings,
            paper_result.schema,
        )
        assert [(leg.schema, leg.request.object_name) for leg in legs] == [
            ("sc2", "Faculty")
        ]
        assert legs[0].is_complete

    def test_subclass_routing_needs_integrated_schema(
        self, mappings, paper_result
    ):
        request = parse_request("select D_Name from Student")
        direct_only = rewrite_to_components(request, mappings)
        assert [leg.schema for leg in direct_only] == ["sc1"]
        routed = rewrite_to_components(request, mappings, paper_result.schema)
        assert [(leg.schema, leg.request.object_name) for leg in routed] == [
            ("sc1", "Student"),
            ("sc2", "Grad_student"),
        ]

    def test_missing_projection_attribute_recorded_not_fatal(
        self, mappings, paper_result
    ):
        legs = rewrite_to_components(
            parse_request("select D_Name, Location from E_Department"),
            mappings,
            paper_result.schema,
        )
        by_schema = {leg.schema: leg for leg in legs}
        assert by_schema["sc1"].missing_attributes == ["Location"]
        assert by_schema["sc2"].is_complete


class TestJoins:
    def test_join_renamed_per_component(self, mappings, paper_result):
        """The merged E_Stud_Majo traversal maps back onto each
        component's own Majors relationship set."""
        legs = rewrite_to_components(
            parse_request("select D_Name from Student via E_Stud_Majo(E_Department)"),
            mappings,
            paper_result.schema,
        )
        by_schema = {leg.schema: leg.request for leg in legs}
        assert by_schema["sc1"].joins[0].relationship == "Majors"
        assert by_schema["sc1"].joins[0].target == "Department"
        assert by_schema["sc2"].joins[0].relationship == "Majors"
        assert by_schema["sc2"].joins[0].target == "Department"

    def test_partial_join_coverage_drops_only_incapable_legs(
        self, mappings, paper_result
    ):
        """Works exists only in sc2: the sc1 Student leg is disqualified,
        the sc2 Grad_student leg survives."""
        legs = rewrite_to_components(
            parse_request("select D_Name from Student via Works(Faculty)"),
            mappings,
            paper_result.schema,
        )
        assert [leg.schema for leg in legs] == ["sc2"]

    def test_unroutable_join_names_the_relationship(
        self, mappings, paper_result
    ):
        with pytest.raises(MappingError) as err:
            rewrite_to_components(
                parse_request("select D_Name from Student via Bogus(E_Department)"),
                mappings,
                paper_result.schema,
            )
        message = str(err.value)
        assert "cannot be routed" in message
        assert "relationship set 'Bogus'" in message
        assert "'sc1'" in message and "'sc2'" in message

    def test_unroutable_join_names_the_target(self, mappings, paper_result):
        with pytest.raises(MappingError) as err:
            rewrite_to_components(
                parse_request("select D_Name from Student via E_Stud_Majo(Ghost)"),
                mappings,
                paper_result.schema,
            )
        assert "join target 'Ghost'" in str(err.value)


class TestConditions:
    def test_comparison_attribute_merged_per_component(
        self, mappings, paper_result
    ):
        """D_GPA is an attribute merge of sc1 GPA and sc2 GPA: each leg's
        condition uses the component's own attribute name."""
        legs = rewrite_to_components(
            parse_request("select D_Name from Student where D_GPA > 3.0"),
            mappings,
            paper_result.schema,
        )
        assert len(legs) == 2
        for leg in legs:
            condition = leg.request.conditions[0]
            assert condition.attribute == "GPA"
            assert condition.operator == ">"

    def test_condition_on_missing_attribute_disqualifies(
        self, mappings, paper_result
    ):
        legs = rewrite_to_components(
            parse_request("select D_Name from E_Department where Location = 'west'"),
            mappings,
            paper_result.schema,
        )
        assert [leg.schema for leg in legs] == ["sc2"]


class TestErrors:
    def test_uncovered_class_keeps_generic_message(self, mappings):
        with pytest.raises(
            MappingError, match="no component schema covers"
        ):
            rewrite_to_components(
                parse_request("select X from Ghost"), mappings
            )
