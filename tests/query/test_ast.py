"""Tests for the request AST and validation."""

import pytest

from repro.errors import QueryError
from repro.query.ast import Comparison, Join, Request
from repro.workloads.university import build_sc1


class TestComparison:
    def test_valid_operators(self):
        for op in ("=", "!=", "<", ">", "<=", ">="):
            Comparison("x", op, "1")

    def test_unknown_operator(self):
        with pytest.raises(QueryError):
            Comparison("x", "~", "1")

    def test_str(self):
        assert str(Comparison("GPA", ">=", "3.5")) == "GPA >= 3.5"


class TestRequest:
    def test_str_full(self):
        request = Request(
            "Student",
            ("Name",),
            (Comparison("GPA", ">", "3"),),
            (Join("Majors", "Department"),),
        )
        assert (
            str(request)
            == "select Name from Student where GPA > 3 via Majors(Department)"
        )

    def test_str_star(self):
        assert str(Request("Student")) == "select * from Student"

    def test_referenced_attributes_deduplicated(self):
        request = Request(
            "S", ("a", "b"), (Comparison("a", "=", "1"), Comparison("c", "=", "2"))
        )
        assert request.referenced_attributes() == ["a", "b", "c"]

    def test_with_object(self):
        assert Request("A").with_object("B").object_name == "B"


class TestValidation:
    def test_valid_request(self):
        request = Request(
            "Student",
            ("Name", "GPA"),
            (Comparison("GPA", ">=", "3.5"),),
            (Join("Majors", "Department"),),
        )
        request.validate_against(build_sc1())

    def test_unknown_object(self):
        with pytest.raises(QueryError):
            Request("Ghost").validate_against(build_sc1())

    def test_relationship_as_from_rejected(self):
        with pytest.raises(QueryError):
            Request("Majors").validate_against(build_sc1())

    def test_unknown_attribute(self):
        with pytest.raises(QueryError):
            Request("Student", ("Ghost",)).validate_against(build_sc1())

    def test_inherited_attribute_allowed(self):
        from repro.workloads.university import build_sc4

        Request("Grad_student", ("Name",)).validate_against(build_sc4())

    def test_unknown_relationship_in_join(self):
        request = Request("Student", joins=(Join("Ghost", "Department"),))
        with pytest.raises(QueryError):
            request.validate_against(build_sc1())

    def test_join_target_must_participate(self):
        request = Request("Student", joins=(Join("Majors", "Student2"),))
        with pytest.raises(QueryError):
            request.validate_against(build_sc1())
