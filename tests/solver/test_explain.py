"""QuickXplain minimal conflict sets: sufficiency, minimality, background."""

import pytest

from repro.assertions.kinds import AssertionKind
from repro.errors import AssertionSpecError
from repro.obs.metrics import AnalysisCounters
from repro.solver import is_consistent, minimal_conflict, verify_conflict

from tests.solver.conftest import A, B, C, T, fact


class TestIsConsistent:
    def test_consistent(self, chain_facts):
        assert is_consistent(chain_facts)

    def test_inconsistent(self, triangle_facts):
        assert not is_consistent(triangle_facts)

    def test_counter_bumped(self, chain_facts):
        counters = AnalysisCounters()
        is_consistent(chain_facts, counters=counters)
        assert counters.solver_consistency_checks == 1


class TestMinimalConflict:
    def test_triangle_is_its_own_minimal_set(self, triangle_facts):
        conflict = minimal_conflict(triangle_facts)
        assert set(conflict) == set(triangle_facts)
        assert verify_conflict(conflict)

    def test_irrelevant_facts_are_dropped(self, triangle_facts):
        padded = [fact(B, C, AssertionKind.CONTAINED_IN)] + triangle_facts
        conflict = minimal_conflict(padded)
        assert set(conflict) == set(triangle_facts)

    def test_background_members_are_excluded(self, triangle_facts):
        new, *rest = triangle_facts
        conflict = minimal_conflict(rest, background=[new])
        assert set(conflict) == set(rest)
        assert new not in conflict
        assert verify_conflict(conflict, background=[new])

    def test_consistent_facts_cannot_be_minimized(self, chain_facts):
        with pytest.raises(AssertionSpecError):
            minimal_conflict(chain_facts)

    def test_counters(self, triangle_facts):
        counters = AnalysisCounters()
        minimal_conflict(triangle_facts, counters=counters)
        assert counters.solver_conflicts_minimized == 1
        assert counters.solver_consistency_checks > 1

    def test_two_member_conflict(self):
        # A = B clashing directly with A ∥ B: the pairless case
        facts = [
            fact(A, B, AssertionKind.EQUALS),
            fact(A, B, AssertionKind.DISJOINT_INTEGRABLE),
        ]
        conflict = minimal_conflict(facts)
        assert set(conflict) == set(facts)
        assert verify_conflict(conflict)


class TestVerifyConflict:
    def test_accepts_true_minimal_set(self, triangle_facts):
        assert verify_conflict(triangle_facts)

    def test_rejects_padded_set(self, triangle_facts):
        padded = triangle_facts + [fact(C, T, AssertionKind.CONTAINS)]
        assert not verify_conflict(padded)

    def test_rejects_insufficient_set(self, triangle_facts):
        assert not verify_conflict(triangle_facts[:2])

    def test_rejects_empty_set_without_background(self):
        assert not verify_conflict([])

    def test_accepts_inconsistent_background_alone(self, triangle_facts):
        # all blame already sits in the background: () is the right answer
        assert verify_conflict([], background=triangle_facts)
