"""The worklist engine: fixpoints, derived assertions, what-if analysis."""

import pytest

from repro.assertions.assertion import Assertion, ordered_pair
from repro.assertions.composition import ALL_RELATIONS
from repro.assertions.kinds import AssertionKind, Relation, Source
from repro.assertions.network import AssertionNetwork
from repro.baselines import closure_oracle, derived_keys, objects_of
from repro.errors import AssertionSpecError, ConsistencyFailure
from repro.obs.metrics import AnalysisCounters
from repro.solver import (
    ConstraintSolver,
    explain_assertion,
    propagate,
    verify_conflict,
)
from repro.workloads.generator import GeneratorConfig, generate_schema_pair

from tests.solver.conftest import A, B, C, T, fact, truth_facts


class TestPropagate:
    def test_seeds_are_singletons(self, chain_facts):
        outcome = propagate(chain_facts)
        assert outcome.culprit is None
        assert outcome.domains[ordered_pair(A, B)] == {Relation.EQ}

    def test_chain_derives_transitive_edge(self, chain_facts):
        outcome = propagate(chain_facts)
        # Alpha = Beta and Beta ⊂ Gamma pin Alpha ⊂ Gamma
        pair = ordered_pair(A, C)
        oriented = outcome.domains[pair]
        assert len(oriented) == 1

    def test_contradiction_names_a_culprit(self, triangle_facts):
        outcome = propagate(triangle_facts)
        assert outcome.culprit is not None
        assert not outcome.domains[outcome.culprit]

    def test_same_pair_seed_clash_is_immediate(self):
        facts = [
            fact(A, B, AssertionKind.EQUALS),
            fact(A, B, AssertionKind.DISJOINT_INTEGRABLE),
        ]
        outcome = propagate(facts)
        assert outcome.culprit == ordered_pair(A, B)
        assert outcome.steps == 0

    def test_self_pair_is_a_spec_error(self):
        with pytest.raises(AssertionSpecError):
            propagate([fact(A, A, AssertionKind.EQUALS)])

    def test_counters_accumulate_steps(self, chain_facts):
        counters = AnalysisCounters()
        outcome = propagate(chain_facts, counters=counters)
        assert counters.solver_propagation_steps == outcome.steps > 0

    def test_no_universal_domains_are_stored(self, chain_facts):
        outcome = propagate(chain_facts)
        assert ALL_RELATIONS not in outcome.domains.values()


class TestConstraintSolver:
    def test_solution_matches_oracle(self, chain_facts):
        solution = ConstraintSolver(chain_facts).solve()
        oracle = closure_oracle(objects_of(chain_facts), chain_facts)
        assert derived_keys(
            {a.pair: a for a in solution.derived}
        ) == derived_keys(oracle.derived)
        assert solution.feasible == oracle.feasible

    def test_derived_are_marked_derived(self, chain_facts):
        solution = ConstraintSolver(chain_facts).solve()
        assert solution.derived
        assert all(a.source is Source.DERIVED for a in solution.derived)

    def test_feasible_between_orients(self, chain_facts):
        solution = ConstraintSolver(chain_facts).solve()
        forward = solution.feasible_between(A, C)
        backward = solution.feasible_between(C, A)
        assert forward == {Relation.PP}
        assert backward == {Relation.PPI}

    def test_feasible_between_self_pair_is_eq(self, chain_facts):
        solution = ConstraintSolver(chain_facts).solve()
        assert solution.feasible_between(A, A) == {Relation.EQ}

    def test_unconstrained_pair_is_universal(self, chain_facts):
        solution = ConstraintSolver(chain_facts).solve()
        assert solution.feasible_between(A, T) == ALL_RELATIONS

    def test_inconsistency_raises_with_minimal_conflict(self, triangle_facts):
        solver = ConstraintSolver(triangle_facts)
        with pytest.raises(ConsistencyFailure) as exc:
            solver.solve()
        failure = exc.value
        assert set(failure.conflict) == set(triangle_facts)
        assert verify_conflict(failure.conflict)
        assert failure.subject is not None

    def test_check_is_nondestructive(self, chain_facts):
        solver = ConstraintSolver(chain_facts)
        assert solver.check()
        assert not solver.check([fact(A, C, AssertionKind.DISJOINT_INTEGRABLE)])
        # the hypothetical did not stick
        assert solver.check()

    def test_counters_track_runs(self, chain_facts):
        counters = AnalysisCounters()
        solver = ConstraintSolver(chain_facts, counters=counters)
        solver.solve()
        assert counters.solver_runs == 1
        solver.check()
        assert counters.solver_consistency_checks == 1

    def test_from_network_matches_network_closure(self):
        network = AssertionNetwork(counters=AnalysisCounters())
        for ref in (A, B, C, T):
            network.add_object(ref)
        network.specify(A, B, AssertionKind.EQUALS)
        network.specify(B, C, AssertionKind.CONTAINED_IN)
        solution = ConstraintSolver.from_network(network).solve()
        assert derived_keys({a.pair: a for a in solution.derived}) == (
            derived_keys(
                {a.pair: a for a in network.derived_assertions()}
            )
        )
        assert solution.feasible == dict(network.feasible_table())

    def test_generated_workload_matches_oracle(self):
        pair = generate_schema_pair(
            GeneratorConfig(seed=17, concepts=12, overlap=0.6)
        )
        facts = truth_facts(pair)
        solution = ConstraintSolver(facts).solve()
        oracle = closure_oracle(objects_of(facts), facts)
        assert oracle.consistent
        assert derived_keys(
            {a.pair: a for a in solution.derived}
        ) == derived_keys(oracle.derived)
        assert solution.feasible == oracle.feasible


class TestExplainAssertion:
    @pytest.fixture
    def network(self):
        network = AssertionNetwork(counters=AnalysisCounters())
        for ref in (A, B, C, T):
            network.add_object(ref)
        network.specify(A, B, AssertionKind.EQUALS)
        network.specify(B, C, AssertionKind.CONTAINED_IN)
        return network

    def test_consistent_hypothesis_lists_consequences(self, network):
        explanation = explain_assertion(
            network, T, C, AssertionKind.CONTAINED_IN
        )
        assert explanation.consistent
        assert explanation.conflict == ()
        assert explanation.repairs() == []

    def test_consequences_show_new_derivations(self, network):
        # T = A forces T = B and T ⊂ C by composition
        explanation = explain_assertion(network, T, A, AssertionKind.EQUALS)
        assert explanation.consistent
        derived_pairs = {a.pair for a in explanation.consequences}
        assert ordered_pair(T, B) in derived_pairs
        assert ordered_pair(T, C) in derived_pairs

    def test_conflicting_hypothesis_carries_minimal_set(self, network):
        explanation = explain_assertion(
            network, A, C, AssertionKind.DISJOINT_NONINTEGRABLE
        )
        assert not explanation.consistent
        assert verify_conflict(
            explanation.conflict,
            background=[
                Assertion(A, C, AssertionKind.DISJOINT_NONINTEGRABLE)
            ],
        )
        assert explanation.repairs()

    def test_network_is_not_mutated(self, network):
        before = network.specified_assertions()
        explain_assertion(network, A, C, AssertionKind.DISJOINT_NONINTEGRABLE)
        explain_assertion(network, T, A, AssertionKind.EQUALS)
        assert network.specified_assertions() == before

    def test_kind_codes_are_accepted(self, network):
        explanation = explain_assertion(network, T, A, 1)  # code 1 = equals
        assert explanation.kind is AssertionKind.EQUALS

    def test_self_pair_is_rejected(self, network):
        with pytest.raises(AssertionSpecError):
            explain_assertion(network, A, A, AssertionKind.EQUALS)

    def test_to_wire_shape(self, network):
        wire = explain_assertion(
            network, A, C, AssertionKind.DISJOINT_NONINTEGRABLE
        ).to_wire()
        assert wire["consistent"] is False
        assert wire["kind"] == "DISJOINT_NONINTEGRABLE"
        assert wire["conflict_set"]
        assert wire["repairs"]
        for member in wire["conflict_set"]:
            assert {"first", "second", "kind"} <= member.keys()
