"""Property tests: the batch solver against the incremental-closure oracle.

Two properties pin the subsystem's contract:

* on conflict-free generated workloads the solver's fixpoint (derived
  assertions *and* narrowed feasible sets) equals what the network
  derives incrementally — same monotone revision operator, same unique
  fixpoint;
* on conflict-seeded workloads every planted contradiction is caught,
  and the minimal conflict sets the solver reports really are both
  sufficient and minimal (``verify_conflict`` re-checks both halves).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import closure_oracle, derived_keys, objects_of
from repro.errors import ConsistencyFailure
from repro.solver import ConstraintSolver, minimal_conflict, verify_conflict
from repro.workloads.generator import (
    GeneratorConfig,
    conflict_seeded_config,
    generate_schema_pair,
)

from tests.solver.conftest import triple_fact, truth_facts

# equal + contain + overlap rates must sum to <= 1 (GeneratorConfig checks)
conflict_free_configs = st.builds(
    GeneratorConfig,
    seed=st.integers(0, 10_000),
    concepts=st.integers(6, 16),
    overlap=st.sampled_from([0.3, 0.5, 0.8, 1.0]),
    equal_rate=st.sampled_from([0.3, 0.5, 0.7]),
    contain_rate=st.sampled_from([0.0, 0.2]),
    overlap_rate=st.just(0.1),
)


@settings(max_examples=25, deadline=None)
@given(config=conflict_free_configs)
def test_solver_fixpoint_equals_incremental_closure(config):
    facts = truth_facts(generate_schema_pair(config))
    if not facts:
        return  # overlap rounded to zero shared concepts: nothing to say
    solution = ConstraintSolver(facts).solve()
    oracle = closure_oracle(objects_of(facts), facts)
    assert oracle.consistent
    assert derived_keys(
        {a.pair: a for a in solution.derived}
    ) == derived_keys(oracle.derived)
    assert solution.feasible == oracle.feasible


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    contradictions=st.integers(1, 3),
)
def test_planted_contradictions_are_caught_with_minimal_sets(
    seed, contradictions
):
    pair = generate_schema_pair(
        conflict_seeded_config(seed, contradictions=contradictions)
    )
    assert len(pair.contradictions) == contradictions
    base_facts = truth_facts(pair)
    # contradictions are independent: verify each against the true facts
    for planted in pair.contradictions:
        extras = [triple_fact(triple) for triple in planted.extras]
        facts = base_facts + extras
        solver = ConstraintSolver(facts)
        with pytest.raises(ConsistencyFailure) as exc:
            solver.solve()
        conflict = exc.value.conflict
        assert verify_conflict(conflict)
        # the oracle agrees something is wrong on the same input
        oracle = closure_oracle(objects_of(facts), facts)
        assert not oracle.consistent


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_minimal_sets_match_the_planted_triangles(seed):
    pair = generate_schema_pair(conflict_seeded_config(seed, contradictions=1))
    (planted,) = pair.contradictions
    triangle = [triple_fact(triple) for triple in planted.all_facts]
    # the planted triangle alone is a minimal inconsistent set by design
    assert verify_conflict(triangle)
    assert set(minimal_conflict(triangle)) == set(triangle)
