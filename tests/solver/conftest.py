"""Shared helpers: hand-built fact triangles and workload fact lists."""

from __future__ import annotations

import pytest

from repro.assertions.assertion import Assertion
from repro.assertions.kinds import AssertionKind
from repro.ecr.schema import ObjectRef
from repro.workloads.generator import GeneratedPair

A = ObjectRef("sc1", "Alpha")
B = ObjectRef("sc2", "Beta")
C = ObjectRef("sc2", "Gamma")
T = ObjectRef("sc3", "Thorn")


def fact(first, second, kind) -> Assertion:
    return Assertion(first, second, kind)


def triple_fact(triple) -> Assertion:
    """An (first, second, kind) generator triple as an Assertion."""
    first, second, kind = triple
    return Assertion(first, second, kind)


def truth_facts(pair: GeneratedPair) -> list[Assertion]:
    """The generator's ground-truth object assertions as a fact list."""
    return [
        Assertion(first, second, kind)
        for (first, second), kind in pair.truth.object_assertions.items()
    ]


@pytest.fixture
def chain_facts():
    """A consistent chain: Alpha = Beta, Beta ⊂ Gamma (derives Alpha ⊂ Gamma)."""
    return [
        fact(A, B, AssertionKind.EQUALS),
        fact(B, C, AssertionKind.CONTAINED_IN),
    ]


@pytest.fixture
def triangle_facts():
    """A minimally inconsistent triangle: A = B, B ∥ T, A = T."""
    return [
        fact(A, B, AssertionKind.EQUALS),
        fact(B, T, AssertionKind.DISJOINT_INTEGRABLE),
        fact(A, T, AssertionKind.EQUALS),
    ]
