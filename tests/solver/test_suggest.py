"""The suggestion pass: ranking, safety labels, top-3 recall on workloads."""

import pytest

from repro.assertions.assertion import Assertion
from repro.assertions.kinds import AssertionKind
from repro.ecr.builder import SchemaBuilder
from repro.equivalence.session import AnalysisSession
from repro.obs.metrics import AnalysisCounters
from repro.solver import suggest_equivalence_assertions, verify_conflict
from repro.workloads.generator import conflict_seeded_config, generate_schema_pair


def _schema(name, entities):
    builder = SchemaBuilder(name)
    for entity, attrs in entities:
        builder.entity(entity, attrs=attrs)
    return builder.build()


@pytest.fixture
def session():
    """Three mini-schemas with a twin pair and a planted obstruction.

    sc1.Alpha and sc2.Alpha are obvious twins.  sc1.Alpha ∥ sc3.Thorn
    and sc3.Thorn ⊂ sc2.Carton leave (Alpha, Carton) undetermined —
    {DR, PO, PP} all remain — while excluding EQ, so suggesting EQUALS
    there must come back ``conflicting``.
    """
    sc1 = _schema(
        "sc1", [("Alpha", [("Name", "char", True), ("Size", "int")])]
    )
    sc2 = _schema(
        "sc2",
        [
            ("Alpha", [("Name", "char", True), ("Size", "int")]),
            ("Carton", [("Label", "char", True)]),
        ],
    )
    sc3 = _schema("sc3", [("Thorn", [("Id", "char", True)])])
    session = AnalysisSession([sc1, sc2, sc3])
    session.specify(
        "sc1.Alpha", "sc3.Thorn", AssertionKind.DISJOINT_INTEGRABLE
    )
    session.specify("sc3.Thorn", "sc2.Carton", AssertionKind.CONTAINED_IN)
    return session


class TestRankingAndLabels:
    def test_twins_rank_first_and_are_safe(self, session):
        suggestions = session.suggest_assertions("sc1", "sc2")
        top = suggestions[0]
        assert (str(top.first), str(top.second)) == ("sc1.Alpha", "sc2.Alpha")
        assert top.safe and top.status == "safe"
        assert top.kind is AssertionKind.EQUALS
        assert top.conflict == ()

    def test_obstructed_pair_is_conflicting_with_minimal_set(self, session):
        suggestions = session.suggest_assertions("sc1", "sc2")
        by_pair = {
            (str(s.first), str(s.second)): s for s in suggestions
        }
        blocked = by_pair[("sc1.Alpha", "sc2.Carton")]
        assert blocked.status == "conflicting"
        assert len(blocked.conflict) == 2
        candidate = Assertion(
            blocked.first, blocked.second, AssertionKind.EQUALS
        )
        assert verify_conflict(blocked.conflict, background=[candidate])

    def test_scores_are_ordered_and_componentised(self, session):
        suggestions = session.suggest_assertions("sc1", "sc2")
        scores = [s.score for s in suggestions]
        assert scores == sorted(scores, reverse=True)
        for suggestion in suggestions:
            assert set(suggestion.components) == {
                "name",
                "attribute_ratio",
                "key",
                "domain",
                "cardinality",
            }

    def test_limit_is_respected(self, session):
        assert len(session.suggest_assertions("sc1", "sc2", limit=1)) == 1

    def test_decided_pairs_are_not_suggested(self, session):
        session.specify("sc1.Alpha", "sc2.Alpha", AssertionKind.EQUALS)
        pairs = {
            (str(s.first), str(s.second))
            for s in session.suggest_assertions("sc1", "sc2")
        }
        assert ("sc1.Alpha", "sc2.Alpha") not in pairs

    def test_counters_count_candidates(self, session):
        before = session.counters.solver_candidates_checked
        count = len(session.suggest_assertions("sc1", "sc2"))
        assert session.counters.solver_candidates_checked == before + count

    def test_wire_shape(self, session):
        suggestions = session.suggest_assertions("sc1", "sc2")
        for suggestion in suggestions:
            wire = suggestion.to_wire()
            assert {
                "first",
                "second",
                "kind",
                "kind_code",
                "score",
                "components",
                "status",
            } <= wire.keys()
            assert ("conflict_set" in wire) == (
                suggestion.status == "conflicting"
            )

    def test_describe_mentions_score_and_status(self, session):
        text = session.suggest_assertions("sc1", "sc2")[0].describe()
        assert "safe" in text and "score" in text


class TestWorkloadRecall:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_planted_equivalence_in_top_three(self, seed):
        """The acceptance gate: a true EQUALS pair ranks in the top 3."""
        pair = generate_schema_pair(
            conflict_seeded_config(seed, contradictions=0)
        )
        session = AnalysisSession([pair.first, pair.second])
        suggestions = session.suggest_assertions(
            pair.first.name, pair.second.name, limit=10
        )
        true_equals = {
            (first, second)
            for (first, second), kind in pair.truth.object_assertions.items()
            if kind is AssertionKind.EQUALS
        }
        top3 = {(s.first, s.second) for s in suggestions[:3]}
        assert top3 & true_equals
        # nothing is committed yet, so every suggestion is safe
        assert all(s.safe for s in suggestions)

    def test_direct_call_matches_session_facade(self):
        pair = generate_schema_pair(conflict_seeded_config(5, contradictions=0))
        session = AnalysisSession([pair.first, pair.second])
        counters = AnalysisCounters()
        direct = suggest_equivalence_assertions(
            session.registry,
            session.network_for(False),
            pair.first.name,
            pair.second.name,
            counters=counters,
        )
        facade = session.suggest_assertions(pair.first.name, pair.second.name)
        assert [s.describe() for s in direct] == [
            s.describe() for s in facade
        ]
