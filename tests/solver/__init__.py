"""Tests for the batch constraint solver (``repro.solver``)."""
