"""The metrics registry and the absorbed AnalysisCounters."""

from __future__ import annotations

import pytest

from repro.obs.metrics import (
    AnalysisCounters,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


def test_counter_increments_and_rejects_negative():
    counter = Counter("pages")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    with pytest.raises(ValueError):
        counter.inc(-1)
    counter.reset()
    assert counter.value == 0


def test_gauge_holds_the_latest_value():
    gauge = Gauge("depth")
    gauge.set(3)
    gauge.set(1.5)
    assert gauge.value == 1.5
    gauge.reset()
    assert gauge.value == 0


def test_histogram_buckets_and_mean():
    histogram = Histogram("steps", buckets=(1, 5, 10))
    for value in (0, 1, 2, 7, 100):
        histogram.observe(value)
    snap = histogram.snapshot()
    assert snap["count"] == 5
    assert snap["sum"] == 110
    assert snap["buckets"] == {"le_1": 2, "le_5": 1, "le_10": 1, "overflow": 1}
    assert histogram.mean == pytest.approx(22.0)
    histogram.reset()
    assert histogram.snapshot()["count"] == 0
    assert histogram.mean == 0.0


def test_histogram_requires_buckets():
    with pytest.raises(ValueError):
        Histogram("empty", buckets=())


def test_registry_get_or_create_is_idempotent():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    assert registry.gauge("b") is registry.gauge("b")
    assert registry.histogram("c") is registry.histogram("c")


def test_registry_rejects_cross_kind_name_collisions():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(ValueError):
        registry.gauge("x")
    with pytest.raises(ValueError):
        registry.histogram("x")
    with pytest.raises(ValueError):
        registry.register_group("x", AnalysisCounters())


def test_registry_absorbs_analysis_counters():
    registry = MetricsRegistry()
    counters = AnalysisCounters()
    registry.register_group("analysis", counters)
    counters.ocs_cache_hits += 7
    registry.counter("screens_handled").inc(2)
    snap = registry.snapshot()
    assert snap["analysis.ocs_cache_hits"] == 7
    assert snap["analysis.propagation_steps"] == 0
    assert snap["screens_handled"] == 2
    registry.reset()
    assert counters.ocs_cache_hits == 0
    assert registry.snapshot()["screens_handled"] == 0


def test_analysis_counters_str_all_zero():
    # Regression: this used to render "AnalysisCounters()" with a dangling
    # format when every counter was zero.
    assert str(AnalysisCounters()) == "AnalysisCounters(all zero)"


def test_analysis_counters_str_shows_only_nonzero():
    counters = AnalysisCounters()
    counters.acs_rebuilds = 2
    counters.propagation_steps = 9
    assert str(counters) == (
        "AnalysisCounters(acs_rebuilds=2, propagation_steps=9)"
    )


def test_analysis_counters_snapshot_and_reset():
    counters = AnalysisCounters()
    counters.registry_mutations = 3
    snap = counters.snapshot()
    assert snap["registry_mutations"] == 3
    assert set(snap) == {field for field in snap}
    counters.reset()
    assert all(value == 0 for value in counters.snapshot().values())
