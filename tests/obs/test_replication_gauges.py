"""Replication gauges must appear in the Prometheus exposition.

Satellite of the replication PR: ``replication.lag_seconds``,
``replication.offset_behind`` and ``replication.followers_connected``
are emitted by the service collector on every scrape, on leaders and
replicas alike, under their sanitized ``repro_``-prefixed names.
"""

from __future__ import annotations

import pytest

from repro.obs.telemetry import metric_name, parse_prometheus
from repro.service import Request, ServiceApp, TenantAuth
from repro.service.replication import InProcessLeaderLink

GAUGES = (
    "replication.lag_seconds",
    "replication.offset_behind",
    "replication.followers_connected",
)


def scrape(app):
    response = app.dispatch(Request(method="GET", path="/v1/metrics"))
    assert response.status == 200
    return parse_prometheus(response.body.decode("utf-8"))


REPL_TOKEN = "repl-operator-secret"


@pytest.fixture
def pair(tmp_path):
    auth = TenantAuth.from_tokens({"token-acme": "acme"})
    leader = ServiceApp(
        tmp_path / "leader", auth=auth, replication_token=REPL_TOKEN
    )
    replica = ServiceApp(
        tmp_path / "replica",
        auth=TenantAuth.from_tokens({"token-acme": "acme"}),
        replication_link=InProcessLeaderLink(leader, REPL_TOKEN),
        replication_token=REPL_TOKEN,
        replication_autostart=False,
    )
    yield leader, replica
    replica.close()
    leader.close()


def test_gauge_names_sanitize_to_the_documented_series():
    assert [metric_name(name) for name in GAUGES] == [
        "repro_replication_lag_seconds",
        "repro_replication_offset_behind",
        "repro_replication_followers_connected",
    ]


def test_replica_exposes_all_three_gauges(pair):
    leader, replica = pair
    replica.replication.sync_once()
    samples = scrape(replica)
    for name in GAUGES:
        assert metric_name(name) in samples, name
    assert samples["repro_replication_offset_behind"] == 0
    assert samples["repro_replication_lag_seconds"] >= 0


def test_leader_reports_connected_followers(pair):
    leader, replica = pair
    replica.replication.sync_once()
    samples = scrape(leader)
    assert samples["repro_replication_followers_connected"] == 1
    assert samples["repro_replication_lag_seconds"] == 0


def test_unsynced_replica_reports_the_lag_ceiling(pair):
    _, replica = pair
    samples = scrape(replica)
    # never synced: lag is unbounded; the gauge reports the configured
    # ceiling instead of an unrepresentable infinity
    assert (
        samples["repro_replication_lag_seconds"]
        == replica.replication.max_lag_s
    )
