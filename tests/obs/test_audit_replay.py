"""The DDA audit log and its deterministic replay."""

from __future__ import annotations

import pytest

from repro.ecr.builder import SchemaBuilder
from repro.equivalence.session import AnalysisSession
from repro.errors import AssertionSpecError, ConflictError, ReplayError
from repro.obs.audit import AuditEvent, AuditLog
from repro.obs.replay import replay, schema_fingerprint
from repro.tool.app import run_script
from repro.tool.session import ToolSession
from repro.workloads.university import build_sc1, build_sc2, build_sc4


def record_university_session() -> tuple[AnalysisSession, AuditLog]:
    """The paper's Screen 7→9 sitting, recorded from an empty session."""
    session = AnalysisSession()
    log = session.attach_audit()
    session.add_schema(build_sc1())
    session.add_schema(build_sc2())
    session.declare_equivalent("sc1.Student.Name", "sc2.Grad_student.Name")
    session.declare_equivalent("sc1.Student.Name", "sc2.Faculty.Name")
    session.declare_equivalent("sc1.Student.GPA", "sc2.Grad_student.GPA")
    session.declare_equivalent("sc1.Department.Name", "sc2.Department.Name")
    session.declare_equivalent("sc1.Majors.Since", "sc2.Majors.Since")
    session.specify("sc1.Department", "sc2.Department", 1)
    session.specify("sc1.Student", "sc2.Grad_student", 3)
    session.specify("sc1.Student", "sc2.Faculty", 4)
    session.specify("sc1.Majors", "sc2.Majors", 1, relationships=True)
    session.integrate("sc1", "sc2")
    return session, log


def test_university_flow_replays_bitwise_identical():
    live, log = record_university_session()
    outcome = replay(log)
    assert outcome.verified
    assert len(outcome.results) == 1
    (recorded, replayed) = outcome.fingerprints[0]
    assert recorded == replayed
    # and the replayed session's analysis state matches the live one
    assert (
        outcome.session.registry.nontrivial_classes()
        == live.registry.nontrivial_classes()
    )
    assert outcome.session.feasible(
        "sc1.Student", "sc2.Grad_student"
    ) == live.feasible("sc1.Student", "sc2.Grad_student")


def test_log_survives_jsonl_round_trip(tmp_path):
    _, log = record_university_session()
    path = tmp_path / "sitting.jsonl"
    log.write_jsonl(path)
    loaded = AuditLog.load_jsonl(path)
    assert loaded.actions() == log.actions()
    assert [event.to_dict() for event in loaded] == [
        event.to_dict() for event in log
    ]
    assert replay(loaded).verified


def test_audit_records_every_surface():
    _, log = record_university_session()
    actions = log.actions()
    assert actions.count("registry.register_schema") == 2
    assert actions.count("registry.declare_equivalent") == 5
    assert actions.count("object_network.specify") == 3
    assert actions.count("relationship_network.specify") == 1
    assert actions[-1] == "session.integrate"
    assert "fingerprint" in log.events[-1].payload


def test_conflicts_are_recorded_and_reproduce():
    session = AnalysisSession([build_sc1(), build_sc2()])
    log = session.attach_audit()
    session.specify("sc1.Student", "sc2.Grad_student", 3)
    session.specify("sc2.Grad_student", "sc1.Department", 3)
    # Student ⊃ Grad_student ⊃ Department makes "Department ⊃ Student"
    # infeasible: the conflict is recorded, the network rolls back.
    with pytest.raises(ConflictError):
        session.specify("sc1.Department", "sc1.Student", 3)
    assert log.actions().count("object_network.conflict") == 1
    outcome = replay(log)
    assert outcome.verified
    # the rejected assertion was rolled back; only the derived
    # "Department contained in Student" remains on that pair
    derived = outcome.session.assertion_for("sc1.Department", "sc1.Student")
    assert derived is not None and derived.kind.code == 2
    specified_pairs = {
        assertion.pair
        for assertion in outcome.session.object_network.specified_assertions()
    }
    assert all(
        {str(ref) for ref in pair} != {"sc1.Department", "sc1.Student"}
        for pair in specified_pairs
    )


def test_rejected_respecifications_are_recorded_and_reproduce():
    session = AnalysisSession([build_sc1(), build_sc2()])
    log = session.attach_audit()
    session.specify("sc1.Student", "sc2.Grad_student", 3)
    with pytest.raises(AssertionSpecError):
        session.specify("sc1.Student", "sc2.Grad_student", 1)
    assert "object_network.rejected" in log.actions()
    assert replay(log).verified


def test_retract_and_respecify_replay():
    session = AnalysisSession([build_sc1(), build_sc2()])
    log = session.attach_audit()
    session.specify("sc1.Student", "sc2.Grad_student", 3)
    session.retract("sc1.Student", "sc2.Grad_student")
    session.specify("sc1.Student", "sc2.Grad_student", 5)
    session.respecify("sc1.Student", "sc2.Grad_student", 1)
    # respecify records its retract+specify pair alongside the explicit ones
    actions = log.actions()
    assert actions.count("object_network.retract") == 2
    assert actions.count("object_network.specify") == 3
    outcome = replay(log)
    assert outcome.verified
    assertion = outcome.session.assertion_for("sc1.Student", "sc2.Grad_student")
    assert assertion is not None and assertion.kind.code == 1


def test_attach_mid_session_snapshots_existing_state():
    session = AnalysisSession([build_sc1(), build_sc2()])
    session.declare_equivalent("sc1.Student.Name", "sc2.Grad_student.Name")
    session.specify("sc1.Student", "sc2.Grad_student", 3)
    log = session.attach_audit()
    assert log.actions()[0] == "session.snapshot"
    session.declare_equivalent("sc1.Department.Name", "sc2.Department.Name")
    live = session.integrate("sc1", "sc2")
    outcome = replay(log)
    assert outcome.verified
    assert schema_fingerprint(outcome.results[0].schema) == schema_fingerprint(
        live.schema
    )


def test_implicit_assertions_replay_through_sc4():
    # sc4's Grad_student ⊆ Student arises from the schema itself; the
    # recorded implicit specify replays as a harmless restatement.
    session = AnalysisSession()
    log = session.attach_audit()
    session.add_schema(build_sc4())
    assert "object_network.specify" in log.actions()
    outcome = replay(log)
    assert outcome.verified
    assertion = outcome.session.assertion_for("sc4.Grad_student", "sc4.Student")
    assert assertion is not None and assertion.kind.code == 2


def test_refresh_schema_with_replacement_replays():
    session = AnalysisSession([build_sc1(), build_sc2()])
    log = session.attach_audit()
    session.declare_equivalent("sc1.Student.Name", "sc2.Grad_student.Name")
    edited = (
        SchemaBuilder("sc1")
        .entity("Student", attrs=[("Name", "char", True), ("GPA", "real")])
        .entity("Department", attrs=[("Name", "char", True)])
        .relationship(
            "Majors",
            connects=[("Student", "(1,1)"), ("Department", "(0,n)")],
            attrs=[("Since", "date"), ("Advisor", "char")],
        )
        .build()
    )
    session.refresh_schema("sc1", replacement=edited)
    assert "registry.refresh_schema" in log.actions()
    outcome = replay(log)
    assert outcome.verified
    replayed_refs = outcome.session.schema("sc1").all_attribute_refs()
    assert session.schema("sc1").all_attribute_refs() == replayed_refs
    # memberships survive the refresh on both sides
    assert outcome.session.registry.are_equivalent(
        "sc1.Student.Name", "sc2.Grad_student.Name"
    )


def test_screens_driven_sitting_is_recorded_and_replays():
    session = ToolSession()
    session.adopt_schema(build_sc1())
    session.adopt_schema(build_sc2())
    log = session.analysis.attach_audit()
    run_script(
        [
            "2", "sc1 sc2",
            "Student Grad_student", "A Name Name", "A GPA GPA", "E",
            "Department Department", "A Name Name", "E",
            "E", "E",
        ],
        session,
    )
    assert log.actions().count("registry.declare_equivalent") == 3
    assert log.actions()[0] == "session.snapshot"  # schemas predate the log
    outcome = replay(log)
    assert outcome.verified
    assert (
        outcome.session.registry.nontrivial_classes()
        == session.registry.nontrivial_classes()
    )


def test_delete_schema_preserves_the_recording():
    session = ToolSession()
    session.adopt_schema(build_sc1())
    session.adopt_schema(build_sc2())
    log = session.analysis.attach_audit()
    session.analysis.declare_equivalent(
        "sc1.Student.Name", "sc2.Grad_student.Name"
    )
    session.delete_schema("sc2")
    assert session.analysis.audit_log is log
    # a fresh snapshot captures the post-delete state
    assert log.actions()[-1] == "session.snapshot"
    session.analysis.declare_equivalent(
        "sc1.Student.Name", "sc1.Department.Name"
    )
    outcome = replay(log)
    assert outcome.verified
    assert [schema.name for schema in outcome.session.schemas()] == ["sc1"]


def test_strict_replay_raises_on_divergence():
    _, log = record_university_session()
    tampered = AuditLog()
    for event in log:
        payload = dict(event.payload)
        if event.action == "integrate":
            payload["fingerprint"] = "0" * 64
        tampered.emit(event.scope, event.action, payload)
    with pytest.raises(ReplayError):
        replay(tampered)
    outcome = replay(tampered, strict=False)
    assert not outcome.verified
    assert outcome.divergences


def test_audit_event_round_trip_and_rendering():
    event = AuditEvent(3, "registry", "declare_equivalent", {"first": "a"})
    assert AuditEvent.from_dict(event.to_dict()) == event
    assert "registry.declare_equivalent" in str(event)


def test_package_exports_resolve_deterministically():
    # ``repro.obs.replay`` names the submodule (never the function, which
    # would depend on import order); lazy names resolve through the package.
    import types

    import repro.obs as obs

    assert isinstance(obs.replay, types.ModuleType)
    assert obs.replay.replay is replay
    assert obs.AuditLog is AuditLog
    assert callable(obs.schema_fingerprint)
    with pytest.raises(AttributeError):
        obs.no_such_export


def test_detach_stops_recording():
    session = AnalysisSession([build_sc1(), build_sc2()])
    log = session.attach_audit()
    before = len(log)
    assert session.detach_audit() is log
    session.declare_equivalent("sc1.Student.Name", "sc2.Grad_student.Name")
    assert len(log) == before


def test_federation_events_are_informational_on_replay():
    """Scope ``federation`` records query outcomes; replay must accept the
    events without re-driving them (they never mutate analysis state)."""
    live, log = record_university_session()
    log.emit(
        "federation",
        "query",
        {
            "request": "select D_Name, D_GPA from Student",
            "strategy": "subset-union",
            "components": ["sc1", "sc2"],
            "rows": 4,
        },
    )
    outcome = replay(log)
    assert outcome.verified
    assert not outcome.divergences
