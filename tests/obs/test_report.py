"""Per-phase observability reports."""

from __future__ import annotations

import json

from repro.equivalence.session import AnalysisSession
from repro.obs.report import cache_ratios, render_json, render_text, summarize
from repro.obs.trace import tracing
from repro.workloads.university import build_sc1, build_sc2


def traced_session():
    with tracing() as tracer:
        session = AnalysisSession([build_sc1(), build_sc2()])
        session.declare_equivalent("sc1.Student.Name", "sc2.Grad_student.Name")
        session.declare_equivalent("sc1.Department.Name", "sc2.Department.Name")
        session.candidate_pairs("sc1", "sc2")
        session.candidate_pairs("sc1", "sc2")  # cache hit
        session.specify("sc1.Student", "sc2.Grad_student", 3)
        session.specify("sc1.Department", "sc2.Department", 1)
        session.integrate("sc1", "sc2")
    return session, tracer


def test_cache_ratios_none_until_consulted():
    ratios = cache_ratios({})
    assert ratios == {
        "ocs_hit_ratio": None,
        "acs_hit_ratio": None,
        "ordering_hit_ratio": None,
    }
    ratios = cache_ratios({"ocs_cache_hits": 3, "ocs_cells_recomputed": 1})
    assert ratios["ocs_hit_ratio"] == 0.75


def test_summarize_covers_phases_spans_and_caches():
    session, tracer = traced_session()
    summary = summarize(tracer, session.counters_snapshot())
    assert {"phase1", "phase2", "phase3", "phase4"} <= set(summary["phases"])
    phase2 = summary["phases"]["phase2"]
    assert phase2["spans"] >= 2
    assert "phase2.ordering.rank" in phase2["names"]
    assert summary["spans"]["phase4.integrate"]["count"] == 1
    assert summary["top_self_time"]
    assert summary["cache"]["ordering_hit_ratio"] == 0.5
    steps = summary["propagation_steps"]
    assert steps["count"] >= 1  # one histogram sample per closure span


def test_summarize_falls_back_to_span_deltas():
    _, tracer = traced_session()
    summary = summarize(tracer)  # no counters snapshot passed
    assert summary["cache"]["ordering_hit_ratio"] is not None


def test_render_json_is_valid_and_sorted():
    session, tracer = traced_session()
    summary = summarize(tracer, session.counters_snapshot())
    parsed = json.loads(render_json(summary))
    assert parsed["phases"].keys() == summary["phases"].keys()


def test_render_text_is_one_readable_report():
    session, tracer = traced_session()
    text = render_text(summarize(tracer, session.counters_snapshot()))
    assert "Observability report" in text
    assert "Per-phase self time" in text
    assert "phase2" in text
    assert "Cache hit ratios" in text
    assert "Propagation steps" in text
