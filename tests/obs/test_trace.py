"""Hierarchical tracing: spans, nesting, exports, instrumented paths."""

from __future__ import annotations

import json

from repro.equivalence.session import AnalysisSession
from repro.obs.metrics import AnalysisCounters
from repro.obs.trace import (
    Tracer,
    _NULL_SPAN,
    get_tracer,
    install_tracer,
    span,
    tracing,
    uninstall_tracer,
)
from repro.tool.app import run_script
from repro.tool.session import ToolSession
from repro.workloads.university import build_sc1, build_sc2


def test_span_is_a_shared_noop_while_disabled():
    assert get_tracer() is None
    context = span("phase2.anything", irrelevant=1)
    assert context is _NULL_SPAN
    with context as live:
        assert live is None


def test_install_and_uninstall_round_trip():
    tracer = install_tracer(Tracer())
    try:
        assert get_tracer() is tracer
        with span("phase1.x"):
            pass
        assert tracer.names() == ["phase1.x"]
    finally:
        assert uninstall_tracer() is tracer
    assert get_tracer() is None


def test_nesting_parent_child_and_self_time():
    with tracing() as tracer:
        with span("phase4.integrate") as parent:
            with span("phase4.clusters") as child:
                pass
    assert child.parent_id == parent.span_id
    assert child.depth == parent.depth + 1
    assert parent.children_time >= child.duration
    assert parent.self_time <= parent.duration
    # children finish (and are appended) before their parent
    assert [s.name for s in tracer.spans] == [
        "phase4.clusters",
        "phase4.integrate",
    ]


def test_counter_deltas_recorded_per_span():
    counters = AnalysisCounters()
    with tracing():
        with span("phase3.closure.specify", counters=counters) as record:
            counters.propagation_steps += 11
    assert record.counter_deltas == {"propagation_steps": 11}


def test_exceptions_mark_the_span_and_propagate():
    with tracing() as tracer:
        try:
            with span("phase2.boom"):
                raise RuntimeError("nope")
        except RuntimeError:
            pass
    (record,) = tracer.spans
    assert record.attrs["error"] == "RuntimeError"


def test_tracing_restores_the_previous_tracer():
    outer = install_tracer(Tracer())
    try:
        with tracing() as inner:
            assert get_tracer() is inner
        assert get_tracer() is outer
    finally:
        uninstall_tracer()


def test_jsonl_and_chrome_exports(tmp_path):
    with tracing() as tracer:
        with span("phase1.a", schema="sc1"):
            with span("phase1.b"):
                pass
    jsonl_path = tmp_path / "trace.jsonl"
    chrome_path = tmp_path / "trace.json"
    tracer.write_jsonl(jsonl_path)
    tracer.write_chrome_trace(chrome_path)
    lines = jsonl_path.read_text().splitlines()
    assert len(lines) == 2
    first = json.loads(lines[0])
    assert {"span_id", "name", "duration_s", "self_s"} <= set(first)
    chrome = json.loads(chrome_path.read_text())
    events = chrome["traceEvents"]
    spans = [event for event in events if event["ph"] == "X"]
    assert [event["name"] for event in spans] == ["phase1.a", "phase1.b"]
    assert events[0]["args"]["schema"] == "sc1"
    # every span carries the real process and thread ids
    assert all(event["pid"] == tracer.pid for event in spans)
    assert all(isinstance(event["tid"], int) for event in spans)
    # thread-name metadata events describe each tid exactly once
    metadata = [event for event in events if event["ph"] == "M"]
    assert {event["tid"] for event in metadata} == {
        event["tid"] for event in spans
    }


def test_top_self_time_ranks_by_summed_self_time():
    with tracing() as tracer:
        for _ in range(3):
            with span("phase2.ocs.recompute"):
                pass
    ((name, seconds, count),) = tracer.top_self_time(limit=1)
    assert name == "phase2.ocs.recompute"
    assert count == 3
    assert seconds >= 0


def test_analysis_session_emits_spans_for_every_phase():
    with tracing() as tracer:
        session = AnalysisSession([build_sc1(), build_sc2()])
        session.declare_equivalent("sc1.Student.Name", "sc2.Grad_student.Name")
        session.declare_equivalent("sc1.Student.GPA", "sc2.Grad_student.GPA")
        session.declare_equivalent("sc1.Department.Name", "sc2.Department.Name")
        session.acs("sc1", "sc2").equivalent_pairs()
        session.candidate_pairs("sc1", "sc2")
        session.specify("sc1.Department", "sc2.Department", 1)
        session.retract("sc1.Department", "sc2.Department")
        session.specify("sc1.Department", "sc2.Department", 1)
        session.integrate("sc1", "sc2")
    names = set(tracer.names())
    assert {
        "phase1.registry.register_schema",
        "phase2.registry.declare_equivalent",
        "phase2.acs.recompute",
        "phase2.ocs.recompute",
        "phase2.ordering.rank",
        "phase3.closure.specify",
        "phase3.closure.retract",
        "phase3.closure.repair",
        "phase4.integrate",
        "phase4.clusters",
        "phase4.objects.merge",
        "phase4.isa.edges",
        "phase4.isa.derived_parents",
        "phase4.objects.build",
        "phase4.relationships.merge",
        "phase4.validate",
    } <= names
    # integrate's stage spans are its children
    (integrate_span,) = tracer.by_name("phase4.integrate")
    for stage in ("phase4.clusters", "phase4.validate"):
        (stage_span,) = tracer.by_name(stage)
        assert stage_span.parent_id == integrate_span.span_id


def test_full_rebuild_network_emits_rebuild_span():
    from repro.assertions.network import AssertionNetwork

    network = AssertionNetwork(incremental=False)
    network.add_object("sc1.A")
    network.add_object("sc1.B")
    network.specify("sc1.A", "sc1.B", 3)
    with tracing() as tracer:
        network.retract("sc1.A", "sc1.B")
    assert "phase3.closure.rebuild" in tracer.names()


def test_tool_screens_emit_handle_spans():
    session = ToolSession()
    session.adopt_schema(build_sc1())
    session.adopt_schema(build_sc2())
    with tracing() as tracer:
        run_script(
            [
                "2", "sc1 sc2",
                "Student Grad_student", "A Name Name", "E",
                "E", "E",
            ],
            session,
        )
    handles = tracer.by_name("tool.screen.handle")
    assert handles, "screen handling should be traced"
    screens = {record.attrs["screen"] for record in handles}
    assert len(screens) >= 2  # the flow crosses several screens
    # the screen-driven registry mutation nests under a screen span
    (declare,) = tracer.by_name("phase2.registry.declare_equivalent")
    assert declare.parent_id in {record.span_id for record in handles}


def test_disabled_tracing_leaves_pipeline_output_unchanged():
    baseline = AnalysisSession([build_sc1(), build_sc2()])
    baseline.declare_equivalent("sc1.Student.Name", "sc2.Grad_student.Name")
    expected = baseline.candidate_pairs("sc1", "sc2")
    with tracing():
        traced = AnalysisSession([build_sc1(), build_sc2()])
        traced.declare_equivalent("sc1.Student.Name", "sc2.Grad_student.Name")
        got = traced.candidate_pairs("sc1", "sc2")
    assert [str(pair) for pair in got] == [str(pair) for pair in expected]
