"""Property test: any recorded sitting replays to the same state.

Hypothesis drives random DDA sittings over the paper's sc1/sc2 —
equivalence declarations and removals, assertions of every kind,
retractions — with failures (conflicts, rejections) left in the mix.
Replaying the recorded audit log must reproduce the same equivalence
classes, the same feasible sets on every object pair, and (when the
sitting ends in an integration) a bitwise-identical integrated schema.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.equivalence.session import AnalysisSession
from repro.errors import ReproError
from repro.obs.replay import replay, schema_fingerprint
from repro.workloads.university import build_sc1, build_sc2

ATTRIBUTES = (
    "sc1.Student.Name",
    "sc1.Student.GPA",
    "sc1.Department.Name",
    "sc1.Majors.Since",
    "sc2.Grad_student.Name",
    "sc2.Grad_student.GPA",
    "sc2.Grad_student.Support_type",
    "sc2.Faculty.Name",
    "sc2.Department.Name",
    "sc2.Majors.Since",
)

OBJECTS = (
    "sc1.Student",
    "sc1.Department",
    "sc2.Grad_student",
    "sc2.Faculty",
    "sc2.Department",
)

RELATIONSHIPS = ("sc1.Majors", "sc2.Majors")

# typed evolution edits in wire form; ones that have become infeasible
# (double-add, drop of a referenced class) raise and stay in the log
EDITS = (
    ("sc1", {"kind": "add_attribute", "object": "Department",
             "attribute": {"name": "Budget", "domain": {"kind": "integer"}}}),
    ("sc2", {"kind": "rename_attribute", "object": "Faculty",
             "old": "Name", "new": "Full_name"}),
    ("sc1", {"kind": "drop_attribute", "object": "Student",
             "attribute": "GPA"}),
    ("sc2", {"kind": "add_class",
             "structure": {"kind": "e", "name": "Campus", "attributes": [
                 {"name": "CName", "domain": {"kind": "char"},
                  "is_key": True}]}}),
    ("sc2", {"kind": "drop_class", "object": "Campus", "cascade": True}),
    ("sc2", {"kind": "drop_relationship", "relationship": "Works",
             "cascade": True}),
)

operations = st.one_of(
    st.tuples(
        st.just("declare"),
        st.sampled_from(ATTRIBUTES),
        st.sampled_from(ATTRIBUTES),
    ),
    st.tuples(st.just("remove"), st.sampled_from(ATTRIBUTES)),
    st.tuples(
        st.just("specify"),
        st.sampled_from(OBJECTS),
        st.sampled_from(OBJECTS),
        st.integers(min_value=0, max_value=5),
    ),
    st.tuples(
        st.just("retract"),
        st.sampled_from(OBJECTS),
        st.sampled_from(OBJECTS),
    ),
    st.tuples(
        st.just("specify_rel"),
        st.sampled_from(RELATIONSHIPS),
        st.sampled_from(RELATIONSHIPS),
        st.integers(min_value=0, max_value=5),
    ),
    st.tuples(st.just("edit"), st.sampled_from(range(len(EDITS)))),
)


def apply_operation(session: AnalysisSession, operation) -> None:
    verb = operation[0]
    if verb == "declare":
        session.declare_equivalent(operation[1], operation[2])
    elif verb == "remove":
        session.remove_from_class(operation[1])
    elif verb == "specify":
        session.specify(operation[1], operation[2], operation[3])
    elif verb == "retract":
        session.retract(operation[1], operation[2])
    elif verb == "edit":
        from copy import deepcopy

        from repro.evolution import edit_from_payload

        schema, payload = EDITS[operation[1]]
        session.apply_edit(schema, edit_from_payload(deepcopy(payload)))
    else:
        session.specify(
            operation[1], operation[2], operation[3], relationships=True
        )


def equivalence_partition(session: AnalysisSession):
    return sorted(
        frozenset(str(ref) for ref in members)
        for members in session.registry.nontrivial_classes()
    )


@settings(max_examples=30, deadline=None)
@given(st.lists(operations, max_size=25))
def test_random_sittings_replay_identically(ops):
    live = AnalysisSession([build_sc1(), build_sc2()])
    log = live.attach_audit()
    for operation in ops:
        try:
            apply_operation(live, operation)
        except ReproError:
            pass  # conflicts/rejections are themselves recorded
    integrated = None
    try:
        integrated = live.integrate("sc1", "sc2")
    except ReproError:
        pass

    outcome = replay(log)  # strict: any divergence raises ReplayError
    assert outcome.verified
    replayed = outcome.session

    assert equivalence_partition(replayed) == equivalence_partition(live)
    for first in OBJECTS:
        for second in OBJECTS:
            if first == second:
                continue
            assert replayed.feasible(first, second) == live.feasible(
                first, second
            ), (first, second)
    assert replayed.feasible(
        "sc1.Majors", "sc2.Majors", relationships=True
    ) == live.feasible("sc1.Majors", "sc2.Majors", relationships=True)
    if integrated is not None:
        assert len(outcome.results) == 1
        assert schema_fingerprint(outcome.results[0].schema) == (
            schema_fingerprint(integrated.schema)
        )
