"""Audit-log edge cases: mid-session attach, empty logs, trailing retractions.

The audit log is a live-only tap on the kernel bus, so these cases all
exercise the re-anchoring rule: whenever the session's state moves
without live events (attach with prior state, checkout, undo), a fresh
``session.snapshot`` keeps the saved log replayable.
"""

import json

from repro.equivalence.session import AnalysisSession
from repro.obs.audit import AuditLog
from repro.obs.replay import replay
from repro.workloads.university import build_sc1, build_sc2


def state_key(session: AnalysisSession) -> str:
    return json.dumps(session.state_payload(), sort_keys=True)


class TestMidSessionAttach:
    def test_attach_with_prior_state_snapshots_first(self):
        session = AnalysisSession([build_sc1(), build_sc2()])
        session.declare_equivalent("sc1.Student.Name", "sc2.Grad_student.Name")
        log = session.attach_audit()
        assert log.events[0].action == "snapshot"
        assert log.events[0].payload["equivalences"] == [
            ["sc1.Student.Name", "sc2.Grad_student.Name"]
        ]

    def test_attach_then_checkout_stays_replayable(self):
        session = AnalysisSession([build_sc1(), build_sc2()])
        session.declare_equivalent("sc1.Student.Name", "sc2.Grad_student.Name")
        log = session.attach_audit()
        session.declare_equivalent("sc1.Student.GPA", "sc2.Grad_student.GPA")
        # time travel back past the second declaration: the tap is
        # live-only, so the kernel re-anchors the log with a snapshot
        session.kernel.checkout(session.kernel.head - 1)
        assert log.events[-1].action == "snapshot"
        outcome = replay(AuditLog.from_jsonl(log.to_jsonl()))
        assert outcome.verified
        assert state_key(outcome.session) == state_key(session)
        assert len(session.registry.nontrivial_classes()) == 1

    def test_snapshot_then_more_live_events_replay_in_order(self):
        session = AnalysisSession([build_sc1(), build_sc2()])
        session.declare_equivalent("sc1.Student.Name", "sc2.Grad_student.Name")
        log = session.attach_audit()
        session.kernel.checkout(session.kernel.head - 1)  # drop it again
        session.declare_equivalent("sc1.Student.GPA", "sc2.Grad_student.GPA")
        outcome = replay(log)
        assert outcome.verified
        assert state_key(outcome.session) == state_key(session)


class TestEmptyLog:
    def test_replay_of_empty_log_yields_a_fresh_session(self):
        outcome = replay(AuditLog())
        assert outcome.verified
        assert outcome.session.schemas() == []
        assert outcome.results == []

    def test_empty_log_round_trips_through_jsonl(self):
        log = AuditLog.from_jsonl(AuditLog().to_jsonl())
        assert len(log) == 0
        assert replay(log).verified


class TestTrailingRetraction:
    def test_replay_of_log_ending_in_a_retraction(self):
        session = AnalysisSession([build_sc1(), build_sc2()])
        log = session.attach_audit()
        session.declare_equivalent("sc1.Student.Name", "sc2.Grad_student.Name")
        session.specify("sc1.Student", "sc2.Grad_student", 2)
        session.retract("sc1.Student", "sc2.Grad_student")
        assert log.events[-1].action == "retract"
        outcome = replay(AuditLog.from_jsonl(log.to_jsonl()))
        assert outcome.verified
        replayed = outcome.session
        assert (
            replayed.assertion_for("sc1.Student", "sc2.Grad_student") is None
        )
        assert state_key(replayed) == state_key(session)

    def test_replay_of_log_ending_in_an_equivalence_removal(self):
        session = AnalysisSession([build_sc1(), build_sc2()])
        log = session.attach_audit()
        session.declare_equivalent("sc1.Student.Name", "sc2.Grad_student.Name")
        session.remove_from_class("sc1.Student.Name")
        outcome = replay(log)
        assert outcome.verified
        assert outcome.session.registry.nontrivial_classes() == []
