"""Thread-safety of the metrics registry under concurrent writers.

The telemetry plane increments counters and observes histograms from
HTTP worker threads, job workers and federation pools simultaneously;
these tests hammer one registry from 8 threads and assert *exact*
totals — a lost update anywhere fails the count.
"""

from __future__ import annotations

import threading

from repro.obs.metrics import MetricsRegistry

THREADS = 8
ROUNDS = 2_000


def _hammer(worker) -> None:
    barrier = threading.Barrier(THREADS)

    def body() -> None:
        barrier.wait()  # maximize interleaving
        worker()

    threads = [
        threading.Thread(target=body) for _ in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


def test_counter_increments_are_exact_under_contention():
    registry = MetricsRegistry()

    def worker() -> None:
        # get-or-create inside the loop: the registration path races too
        for _ in range(ROUNDS):
            registry.counter("hammered_total").inc()
            registry.counter("weighted_total").inc(3)

    _hammer(worker)
    assert registry.counter("hammered_total").value == THREADS * ROUNDS
    assert registry.counter("weighted_total").value == THREADS * ROUNDS * 3


def test_histogram_counts_and_bucket_sums_are_exact():
    registry = MetricsRegistry()
    buckets = (0.25, 0.5, 0.75)
    values = [0.1, 0.3, 0.6, 0.9]  # one per bucket + one overflow

    def worker() -> None:
        for _ in range(ROUNDS):
            for value in values:
                registry.histogram("latency", buckets=buckets).observe(
                    value
                )

    _hammer(worker)
    histogram = registry.histogram("latency", buckets=buckets)
    expected = THREADS * ROUNDS
    assert histogram.count == expected * len(values)
    # every observation landed in exactly one bucket (or the overflow)
    assert histogram.bucket_counts == [expected] * 4  # 3 buckets + overflow
    assert sum(histogram.bucket_counts) == histogram.count
    assert abs(
        histogram.total - expected * sum(values)
    ) < 1e-6 * expected


def test_snapshot_is_monotonic_while_writers_run():
    """Concurrent snapshots never observe totals going backwards."""
    registry = MetricsRegistry()
    stop = threading.Event()
    failures: list[str] = []

    def writer() -> None:
        for _ in range(ROUNDS):
            registry.counter("events_total").inc()
            registry.histogram("work").observe(0.01)

    def reader() -> None:
        last_count = 0
        last_counter = 0
        while not stop.is_set():
            histogram = registry.histogram("work")
            snap = histogram.snapshot()
            if snap["count"] < last_count:
                failures.append("histogram count went backwards")
                return
            last_count = snap["count"]
            value = registry.counter("events_total").value
            if value < last_counter:
                failures.append("counter went backwards")
                return
            last_counter = value

    observer = threading.Thread(target=reader)
    observer.start()
    _hammer(writer)
    stop.set()
    observer.join()
    assert not failures
    assert registry.counter("events_total").value == THREADS * ROUNDS
