"""Unit tests for the telemetry plane: exposition, streaming, correlation."""

from __future__ import annotations

import math
import threading

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import (
    RollingLatency,
    StreamHub,
    accept_request_id,
    current_request_id,
    labeled,
    metric_name,
    new_request_id,
    parse_prometheus,
    render_prometheus,
    set_request_id,
    split_series,
    sse_frame,
    sse_stream,
)

# -- request correlation ----------------------------------------------------------


def test_request_ids_are_fresh_and_well_formed():
    first, second = new_request_id(), new_request_id()
    assert first != second
    assert first.startswith("req-")
    assert accept_request_id(first) == first


def test_accept_request_id_rejects_malformed_candidates():
    for bad in (None, "", "has space", "x" * 200, "naughty\nnewline"):
        accepted = accept_request_id(bad)
        assert accepted != bad
        assert accepted.startswith("req-")


def test_request_id_is_thread_local():
    set_request_id("req-main")
    seen = {}

    def worker():
        seen["before"] = current_request_id()
        set_request_id("req-worker")
        seen["after"] = current_request_id()

    thread = threading.Thread(target=worker)
    thread.start()
    thread.join()
    assert seen == {"before": None, "after": "req-worker"}
    assert current_request_id() == "req-main"
    set_request_id(None)
    assert current_request_id() is None


# -- rolling latency --------------------------------------------------------------


def test_rolling_latency_exact_quantiles():
    rolling = RollingLatency(window=100)
    for value in range(1, 101):  # 0.01 .. 1.00
        rolling.observe(("t", "/r"), value / 100)
    quantiles = rolling.quantiles(("t", "/r"))
    assert quantiles[0.5] == pytest.approx(0.50)
    assert quantiles[0.95] == pytest.approx(0.95)
    assert quantiles[0.99] == pytest.approx(0.99)


def test_rolling_latency_window_slides():
    rolling = RollingLatency(window=4)
    for value in (1.0, 1.0, 1.0, 1.0, 9.0, 9.0, 9.0, 9.0):
        rolling.observe(("k",), value)
    assert rolling.quantiles(("k",))[0.5] == 9.0
    assert rolling.quantiles(("missing",)) is None
    assert rolling.keys() == [("k",)]


# -- stream hub -------------------------------------------------------------------


def test_hub_fans_out_to_every_subscriber():
    hub = StreamHub(maxlen=8)
    a = hub.subscribe("k")
    b = hub.subscribe("k")
    other = hub.subscribe("other")
    assert hub.publish("k", {"seq": 1}) == 2
    assert a.pop(timeout=0.1) == {"seq": 1}
    assert b.pop(timeout=0.1) == {"seq": 1}
    assert other.pop(timeout=0.01) is None
    a.close()
    b.close()
    other.close()
    assert hub.subscriber_count() == 0


def test_slow_subscriber_drops_oldest_and_counts():
    hub = StreamHub(maxlen=3)
    slow = hub.subscribe("k")
    for seq in range(6):
        hub.publish("k", {"seq": seq})
    assert slow.dropped == 3
    assert hub.dropped_total() == 3
    survivors = [slow.pop(timeout=0.01)["seq"] for _ in range(3)]
    assert survivors == [3, 4, 5]  # newest retained, oldest shed
    slow.close()


def test_publish_to_unwatched_key_is_cheap_and_counts_nobody():
    hub = StreamHub()
    published = []
    hub.on_publish = published.append
    assert hub.publish("nobody", {"seq": 1}) == 0
    assert published == []  # hook only fires when somebody listened


# -- SSE framing ------------------------------------------------------------------


def test_sse_frame_wire_format():
    frame = sse_frame({"b": 2, "a": 1}, event="span", event_id=7)
    assert frame == b'id: 7\nevent: span\ndata: {"a":1,"b":2}\n\n'


def test_sse_stream_delivers_then_ends():
    hub = StreamHub()
    subscription = hub.subscribe("k")
    closed = []
    stream = sse_stream(
        subscription,
        event="kernel-event",
        max_events=2,
        on_close=lambda: closed.append(True),
    )
    hub.publish("k", {"seq": 1, "action": "a"})
    hub.publish("k", {"seq": 2, "action": "b"})
    chunks = list(stream)
    assert chunks[0].startswith(b":")  # open comment
    body = b"".join(chunks).decode()
    assert "event: kernel-event" in body
    assert '"action":"a"' in body and '"action":"b"' in body
    assert "event: end" in body
    assert '"sent": 2' in body or '"sent":2' in body
    assert closed == [True]
    assert subscription.closed


def test_sse_stream_abandonment_runs_cleanup():
    hub = StreamHub()
    subscription = hub.subscribe("k")
    closed = []
    stream = sse_stream(
        subscription, event="span", on_close=lambda: closed.append(True)
    )
    assert next(stream).startswith(b":")
    stream.close()  # client disconnected
    assert closed == [True]
    assert subscription.closed


def test_sse_stream_idle_timeout_and_heartbeat(monkeypatch):
    hub = StreamHub()
    subscription = hub.subscribe("k")
    clock = iter([0.0, 0.0, 0.05, 0.05, 0.2, 0.2, 0.2]).__next__
    chunks = list(
        sse_stream(
            subscription,
            event="span",
            idle_s=0.1,
            heartbeat_s=0.01,
            clock=clock,
        )
    )
    body = b"".join(chunks).decode()
    assert ": keep-alive" in body
    assert "event: end" in body


# -- label helpers ----------------------------------------------------------------


def test_labeled_is_canonical_and_escaped():
    series = labeled("repro_http_requests_total", route="/v1/x", code=200)
    assert series == 'repro_http_requests_total{code="200",route="/v1/x"}'
    # same labels, any kwarg order -> same series
    assert series == labeled(
        "repro_http_requests_total", code=200, route="/v1/x"
    )
    name, labels = split_series(series)
    assert name == "repro_http_requests_total"
    assert 'code="200"' in labels
    tricky = labeled("m_total", note='say "hi"\nback\\slash')
    assert "\\n" in tricky and '\\"' in tricky


def test_metric_name_sanitizes_dotted_names():
    assert metric_name("federation.leg.ok") == "repro_federation_leg_ok"
    assert metric_name("repro_already") == "repro_already"
    assert metric_name("with-dash.x") == "repro_with_dash_x"


# -- exposition round-trip --------------------------------------------------------


def test_render_parse_round_trip():
    registry = MetricsRegistry()
    registry.counter(
        labeled("repro_http_requests_total", route="/v1/stats", status=200)
    ).inc(3)
    registry.counter(
        labeled("repro_http_requests_total", route="/v1/about", status=200)
    ).inc(1)
    registry.gauge("repro_sessions_resident").set(2)
    histogram = registry.histogram(
        labeled("repro_http_request_duration_seconds", route="/v1/stats"),
        buckets=(0.1, 1.0),
    )
    histogram.observe(0.05)
    histogram.observe(0.5)
    histogram.observe(5.0)
    text = render_prometheus(registry)
    samples = parse_prometheus(text)  # raises on anything malformed
    assert (
        samples[
            'repro_http_requests_total{route="/v1/stats",status="200"}'
        ]
        == 3
    )
    assert samples["repro_sessions_resident"] == 2
    base = "repro_http_request_duration_seconds"
    # cumulative buckets: le=0.1 -> 1, le=1.0 -> 2, +Inf -> count
    assert samples[f'{base}_bucket{{route="/v1/stats",le="0.1"}}'] == 1
    assert samples[f'{base}_bucket{{route="/v1/stats",le="1"}}'] == 2
    assert samples[f'{base}_bucket{{route="/v1/stats",le="+Inf"}}'] == 3
    assert samples[f'{base}_count{{route="/v1/stats"}}'] == 3
    assert samples[f'{base}_sum{{route="/v1/stats"}}'] == pytest.approx(
        5.55
    )
    # exactly one TYPE line per family even with multiple series
    assert text.count("# TYPE repro_http_requests_total counter") == 1


def test_render_includes_absorbed_counter_groups():
    from repro.obs.metrics import AnalysisCounters

    registry = MetricsRegistry()
    counters = AnalysisCounters()
    counters.propagation_steps = 17
    registry.register_group("analysis", counters)
    samples = parse_prometheus(render_prometheus(registry))
    assert samples["repro_analysis_propagation_steps"] == 17


def test_parse_rejects_malformed_exposition():
    for bad in (
        "repro_x{unclosed 1",
        "repro_x 1\nrepro_x 2",  # duplicate sample
        "# TYPE repro_x counter\n# TYPE repro_x counter",  # dup TYPE
        "# TYPE repro_x nonsense\n",
        "repro_x notanumber",
        'repro_x{bad~name="v"} 1',
    ):
        with pytest.raises(ValueError):
            parse_prometheus(bad)


def test_parse_accepts_infinities():
    samples = parse_prometheus("repro_x +Inf\nrepro_y -Inf\n")
    assert samples["repro_x"] == math.inf
    assert samples["repro_y"] == -math.inf
