"""Tests for the synonym/antonym dictionary."""

import pytest

from repro.equivalence.synonyms import DEFAULT_SYNONYMS, SynonymDictionary
from repro.errors import EquivalenceError


class TestSynonyms:
    def test_identity(self):
        d = SynonymDictionary()
        assert d.are_synonyms("Name", "name")

    def test_normalisation(self):
        d = SynonymDictionary([("soc_sec_no", "socsecno")])
        assert d.are_synonyms("Soc_Sec_No", "SOCSECNO")

    def test_group_transitivity(self):
        d = SynonymDictionary([("employee", "worker", "staff")])
        assert d.are_synonyms("worker", "staff")

    def test_groups_can_merge(self):
        d = SynonymDictionary()
        d.add_synonyms("a", "b")
        d.add_synonyms("b", "c")
        assert d.are_synonyms("a", "c")

    def test_group_needs_two_words(self):
        with pytest.raises(EquivalenceError):
            SynonymDictionary([("only",)])

    def test_synonyms_of(self):
        d = SynonymDictionary([("employee", "worker")])
        assert d.synonyms_of("Employee") == ["worker"]
        assert d.synonyms_of("unknown") == []


class TestAntonyms:
    def test_basic(self):
        d = SynonymDictionary(antonym_pairs=[("arrival", "departure")])
        assert d.are_antonyms("Arrival", "Departure")
        assert not d.are_antonyms("Arrival", "Arrival_time")

    def test_self_antonym_rejected(self):
        d = SynonymDictionary()
        with pytest.raises(EquivalenceError):
            d.add_antonyms("same", "Same")

    def test_antonymy_propagates_through_synonyms(self):
        d = SynonymDictionary(
            synonym_groups=[("departure", "takeoff")],
            antonym_pairs=[("arrival", "departure")],
        )
        assert d.are_antonyms("arrival", "takeoff")


class TestDefaultDictionary:
    def test_domain_vocabulary(self):
        assert DEFAULT_SYNONYMS.are_synonyms("employee", "worker")
        assert DEFAULT_SYNONYMS.are_synonyms("doctor", "physician")
        assert DEFAULT_SYNONYMS.are_antonyms("undergraduate", "graduate")

    def test_unrelated_words(self):
        assert not DEFAULT_SYNONYMS.are_synonyms("employee", "department")
