"""Tests for the attribute-equivalence registry (Screen 7 semantics)."""

import pytest

from repro.ecr.attributes import Attribute, AttributeRef
from repro.ecr.builder import SchemaBuilder
from repro.equivalence.registry import EquivalenceRegistry
from repro.errors import DuplicateNameError, EquivalenceError
from repro.workloads.university import build_sc1, build_sc2


@pytest.fixture
def fresh_registry():
    return EquivalenceRegistry([build_sc1(), build_sc2()])


class TestRegistration:
    def test_every_attribute_gets_a_class(self, fresh_registry):
        sc1 = fresh_registry.schema("sc1")
        numbers = [
            fresh_registry.class_number(ref)
            for ref in sc1.all_attribute_refs()
        ]
        assert len(numbers) == len(set(numbers))  # all singletons

    def test_numbering_follows_declaration_order(self, fresh_registry):
        assert fresh_registry.class_number("sc1.Student.Name") == 1
        assert fresh_registry.class_number("sc1.Student.GPA") == 2
        assert fresh_registry.class_number("sc1.Department.Name") == 3

    def test_duplicate_schema_rejected(self, fresh_registry):
        with pytest.raises(DuplicateNameError):
            fresh_registry.register_schema(build_sc1())

    def test_unknown_schema(self, fresh_registry):
        with pytest.raises(Exception):
            fresh_registry.schema("nope")


class TestDeclaration:
    def test_merge_changes_class_number(self, fresh_registry):
        fresh_registry.declare_equivalent(
            "sc1.Student.Name", "sc2.Grad_student.Name"
        )
        assert fresh_registry.are_equivalent(
            "sc1.Student.Name", "sc2.Grad_student.Name"
        )
        # the surviving number is the smaller one, as the paper describes
        assert fresh_registry.class_number(
            "sc2.Grad_student.Name"
        ) == fresh_registry.class_number("sc1.Student.Name")

    def test_three_way_class(self, fresh_registry):
        fresh_registry.declare_equivalent(
            "sc1.Student.Name", "sc2.Grad_student.Name"
        )
        fresh_registry.declare_equivalent("sc1.Student.Name", "sc2.Faculty.Name")
        members = fresh_registry.class_members("sc2.Faculty.Name")
        assert {str(m) for m in members} == {
            "sc1.Student.Name",
            "sc2.Grad_student.Name",
            "sc2.Faculty.Name",
        }

    def test_self_equivalence_rejected(self, fresh_registry):
        with pytest.raises(EquivalenceError):
            fresh_registry.declare_equivalent(
                "sc1.Student.Name", "sc1.Student.Name"
            )

    def test_unknown_attribute_rejected(self, fresh_registry):
        with pytest.raises(EquivalenceError):
            fresh_registry.declare_equivalent(
                "sc1.Student.Name", "sc2.Grad_student.Nope"
            )

    def test_issues_on_incompatible_domains(self, fresh_registry):
        issues = fresh_registry.declare_equivalent(
            "sc1.Student.Name", "sc2.Grad_student.GPA"
        )
        assert any("incompatible" in issue.message for issue in issues)
        # declared anyway: equivalence is the DDA's call
        assert fresh_registry.are_equivalent(
            "sc1.Student.Name", "sc2.Grad_student.GPA"
        )

    def test_issue_on_key_mismatch(self, fresh_registry):
        issues = fresh_registry.declare_equivalent(
            "sc1.Student.GPA", "sc2.Grad_student.GPA"
        )
        assert issues == []
        issues = fresh_registry.declare_equivalent(
            "sc1.Student.Name", "sc2.Grad_student.Support_type"
        )
        assert any("key property" in issue.message for issue in issues)


class TestRemoval:
    def test_remove_moves_to_fresh_class(self, fresh_registry):
        fresh_registry.declare_equivalent(
            "sc1.Student.Name", "sc2.Grad_student.Name"
        )
        fresh_registry.remove_from_class("sc2.Grad_student.Name")
        assert not fresh_registry.are_equivalent(
            "sc1.Student.Name", "sc2.Grad_student.Name"
        )

    def test_remove_from_singleton_is_noop(self, fresh_registry):
        before = fresh_registry.class_number("sc1.Student.GPA")
        fresh_registry.remove_from_class("sc1.Student.GPA")
        assert fresh_registry.class_number("sc1.Student.GPA") == before


class TestQueries:
    def test_nontrivial_classes(self, fresh_registry):
        assert fresh_registry.nontrivial_classes() == []
        fresh_registry.declare_equivalent(
            "sc1.Department.Name", "sc2.Department.Name"
        )
        assert len(fresh_registry.nontrivial_classes()) == 1

    def test_equivalent_class_count_spanning(self, fresh_registry):
        fresh_registry.declare_equivalent(
            "sc1.Student.Name", "sc2.Grad_student.Name"
        )
        fresh_registry.declare_equivalent(
            "sc1.Student.GPA", "sc2.Grad_student.GPA"
        )
        count = fresh_registry.equivalent_class_count(
            ("sc1", "Student"), ("sc2", "Grad_student")
        )
        assert count == 2

    def test_three_way_class_counts_once(self, fresh_registry):
        fresh_registry.declare_equivalent(
            "sc1.Student.Name", "sc2.Grad_student.Name"
        )
        fresh_registry.declare_equivalent("sc1.Student.Name", "sc2.Faculty.Name")
        assert (
            fresh_registry.equivalent_class_count(
                ("sc1", "Student"), ("sc2", "Faculty")
            )
            == 1
        )

    def test_shared_classes(self, fresh_registry):
        fresh_registry.declare_equivalent(
            "sc1.Department.Name", "sc2.Department.Name"
        )
        shared = fresh_registry.shared_classes(
            ("sc1", "Department"), ("sc2", "Department")
        )
        assert len(shared) == 1
        assert AttributeRef("sc1", "Department", "Name") in shared[0]


class TestRefresh:
    def test_new_attribute_gets_class(self, fresh_registry):
        schema = fresh_registry.schema("sc1")
        schema.entity_set("Student").add_attribute(Attribute("Email"))
        fresh_registry.refresh_schema("sc1")
        assert fresh_registry.class_number("sc1.Student.Email") > 0

    def test_dropped_attribute_leaves_classes(self, fresh_registry):
        fresh_registry.declare_equivalent(
            "sc1.Student.GPA", "sc2.Grad_student.GPA"
        )
        schema = fresh_registry.schema("sc1")
        schema.entity_set("Student").remove_attribute("GPA")
        fresh_registry.refresh_schema("sc1")
        members = fresh_registry.class_members("sc2.Grad_student.GPA")
        assert members == [AttributeRef("sc2", "Grad_student", "GPA")]

    def test_refresh_keeps_existing_memberships(self, fresh_registry):
        fresh_registry.declare_equivalent(
            "sc1.Student.Name", "sc2.Grad_student.Name"
        )
        fresh_registry.refresh_schema("sc1")
        assert fresh_registry.are_equivalent(
            "sc1.Student.Name", "sc2.Grad_student.Name"
        )


def test_paper_screen7_example():
    """Screen 7: an equivalence class holding sc1.Student.Name,
    sc2.Faculty.Name and sc2.Grad_student.Name exists at end of phase."""
    from repro.workloads.university import paper_registry

    registry = paper_registry()
    members = {str(m) for m in registry.class_members("sc1.Student.Name")}
    assert members == {
        "sc1.Student.Name",
        "sc2.Faculty.Name",
        "sc2.Grad_student.Name",
    }
