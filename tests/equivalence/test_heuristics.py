"""Tests for automatic equivalence suggestion (the future-work heuristics)."""

import pytest

from repro.ecr.builder import SchemaBuilder
from repro.equivalence.heuristics import apply_suggestions, suggest_equivalences
from repro.equivalence.registry import EquivalenceRegistry
from repro.equivalence.synonyms import SynonymDictionary
from repro.workloads.university import build_sc1, build_sc2


@pytest.fixture
def registry():
    return EquivalenceRegistry([build_sc1(), build_sc2()])


class TestSuggestions:
    def test_exact_name_matches_found(self, registry):
        suggestions = suggest_equivalences(registry, "sc1", "sc2")
        found = {(str(s.first), str(s.second)) for s in suggestions}
        assert ("sc1.Student.Name", "sc2.Grad_student.Name") in found
        assert ("sc1.Student.GPA", "sc2.Grad_student.GPA") in found
        assert ("sc1.Department.Name", "sc2.Department.Name") in found

    def test_incompatible_domains_vetoed(self, registry):
        suggestions = suggest_equivalences(registry, "sc1", "sc2", threshold=0.0)
        pairs = {(str(s.first), str(s.second)) for s in suggestions}
        # Name (char) vs GPA (real) must never be proposed
        assert ("sc1.Student.Name", "sc2.Grad_student.GPA") not in pairs

    def test_synonym_raises_score(self):
        first = (
            SchemaBuilder("a").entity("E", attrs=[("Salary", "real")]).build(validate=False)
        )
        second = (
            SchemaBuilder("b").entity("F", attrs=[("Pay", "real")]).build(validate=False)
        )
        registry = EquivalenceRegistry([first, second])
        plain = suggest_equivalences(registry, "a", "b", threshold=0.9)
        assert plain == []
        synonyms = SynonymDictionary([("salary", "pay")])
        boosted = suggest_equivalences(
            registry, "a", "b", synonyms=synonyms, threshold=0.9
        )
        assert len(boosted) == 1
        assert boosted[0].score == 1.0
        assert "synonym" in boosted[0].reason

    def test_antonym_vetoes(self):
        first = SchemaBuilder("a").entity(
            "E", attrs=[("Arrival", "date")]
        ).build(validate=False)
        second = SchemaBuilder("b").entity(
            "F", attrs=[("Departure", "date")]
        ).build(validate=False)
        registry = EquivalenceRegistry([first, second])
        synonyms = SynonymDictionary(antonym_pairs=[("arrival", "departure")])
        suggestions = suggest_equivalences(
            registry, "a", "b", synonyms=synonyms, threshold=0.0
        )
        assert suggestions == []

    def test_key_bonus(self, registry):
        suggestions = suggest_equivalences(registry, "sc1", "sc2", threshold=0.99)
        name_pair = next(
            s
            for s in suggestions
            if str(s.first) == "sc1.Student.Name"
            and str(s.second) == "sc2.Grad_student.Name"
        )
        assert "both keys" in name_pair.reason

    def test_already_equivalent_skipped(self, registry):
        registry.declare_equivalent("sc1.Student.Name", "sc2.Grad_student.Name")
        suggestions = suggest_equivalences(registry, "sc1", "sc2")
        pairs = {(str(s.first), str(s.second)) for s in suggestions}
        assert ("sc1.Student.Name", "sc2.Grad_student.Name") not in pairs

    def test_ordering_is_deterministic(self, registry):
        first = suggest_equivalences(registry, "sc1", "sc2")
        second = suggest_equivalences(registry, "sc1", "sc2")
        assert first == second
        scores = [s.score for s in first]
        assert scores == sorted(scores, reverse=True)


class TestApply:
    def test_apply_only_above_min_score(self, registry):
        suggestions = suggest_equivalences(registry, "sc1", "sc2", threshold=0.5)
        applied = apply_suggestions(registry, suggestions, min_score=1.0)
        assert applied >= 3
        assert registry.are_equivalent(
            "sc1.Student.Name", "sc2.Grad_student.Name"
        )

    def test_apply_none_when_bar_too_high(self, registry):
        suggestions = suggest_equivalences(registry, "sc1", "sc2", threshold=0.5)
        for suggestion in suggestions:
            assert suggestion.score <= 1.0
        applied = apply_suggestions(registry, suggestions, min_score=1.1)
        assert applied == 0
