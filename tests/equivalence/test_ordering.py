"""Tests for the ranked candidate list (Screen 8)."""

import pytest

from repro.ecr.objects import ObjectKind
from repro.equivalence.ordering import ordered_object_pairs, render_screen8_rows
from repro.workloads.university import paper_candidate_pairs, paper_registry


class TestPaperOrdering:
    def test_screen8_rows_in_order(self):
        pairs = paper_candidate_pairs()
        rows = [
            (str(pair.first), str(pair.second), round(pair.attribute_ratio, 4))
            for pair in pairs
        ]
        assert rows == [
            ("sc1.Department", "sc2.Department", 0.5),
            ("sc1.Student", "sc2.Grad_student", 0.5),
            ("sc1.Student", "sc2.Faculty", 0.3333),
        ]

    def test_render_matches_screen8_values(self):
        text = render_screen8_rows(paper_candidate_pairs())
        assert "0.5000" in text
        assert "0.3333" in text
        assert text.index("sc1.Department") < text.index("sc1.Student")

    def test_zero_pairs_hidden_by_default(self):
        registry = paper_registry()
        pairs = ordered_object_pairs(registry, "sc1", "sc2")
        assert all(pair.equivalent_attributes > 0 for pair in pairs)

    def test_include_zero_lists_every_pair(self):
        registry = paper_registry()
        pairs = ordered_object_pairs(registry, "sc1", "sc2", include_zero=True)
        assert len(pairs) == 2 * 3  # sc1 objects x sc2 objects

    def test_relationship_subphase(self):
        registry = paper_registry()
        pairs = ordered_object_pairs(
            registry, "sc1", "sc2", kind_filter=ObjectKind.RELATIONSHIP
        )
        assert len(pairs) == 1
        assert pairs[0].first.object_name == "Majors"
        assert pairs[0].attribute_ratio == pytest.approx(0.5)

    def test_descending_by_ratio_then_alphabetical(self):
        pairs = ordered_object_pairs(
            paper_registry(), "sc1", "sc2", include_zero=True
        )
        ratios = [pair.attribute_ratio for pair in pairs]
        assert ratios == sorted(ratios, reverse=True)
        for earlier, later in zip(pairs, pairs[1:]):
            if earlier.attribute_ratio == later.attribute_ratio:
                assert (earlier.first, earlier.second) < (
                    later.first,
                    later.second,
                )
