"""Tests for cross-construct conflict detection (entity vs relationship)."""

import pytest

from repro.ecr.builder import SchemaBuilder
from repro.equivalence.constructs import suggest_construct_conflicts
from repro.equivalence.registry import EquivalenceRegistry


@pytest.fixture
def marriage_world():
    relational_style = (
        SchemaBuilder("a")
        .entity("Person", attrs=[("Pid", "char", True)])
        .relationship(
            "Marriage",
            connects=[
                ("Person", "(0,1)", "husband"),
                ("Person", "(0,1)", "wife"),
            ],
            attrs=[
                ("Wedding_date", "date"),
                ("Location", "char"),
                ("Children", "integer"),
            ],
        )
        .build()
    )
    entity_style = (
        SchemaBuilder("b")
        .entity("Citizen", attrs=[("Cid", "char", True)])
        .entity(
            "Marriage",
            attrs=[
                ("Wedding_date", "date"),
                ("Location", "char"),
                ("Children", "integer"),
            ],
        )
        .build()
    )
    registry = EquivalenceRegistry([relational_style, entity_style])
    registry.declare_equivalent("a.Marriage.Wedding_date", "b.Marriage.Wedding_date")
    registry.declare_equivalent("a.Marriage.Location", "b.Marriage.Location")
    registry.declare_equivalent("a.Marriage.Children", "b.Marriage.Children")
    return registry


class TestSuggestions:
    def test_marriage_detected(self, marriage_world):
        conflicts = suggest_construct_conflicts(marriage_world, "a", "b")
        assert conflicts
        top = conflicts[0]
        assert top.object_class.object_name == "Marriage"
        assert top.relationship_set.object_name == "Marriage"
        assert top.shared_attributes == 3
        assert top.name_score == 1.0

    def test_orientation_is_reported_correctly(self, marriage_world):
        conflicts = suggest_construct_conflicts(marriage_world, "a", "b")
        top = conflicts[0]
        # the entity lives in schema b, the relationship in schema a
        assert top.object_class.schema == "b"
        assert top.relationship_set.schema == "a"

    def test_min_shared_filter(self, marriage_world):
        none = suggest_construct_conflicts(
            marriage_world, "a", "b", min_shared=4
        )
        assert none == []

    def test_unrelated_pairs_not_reported(self, marriage_world):
        conflicts = suggest_construct_conflicts(marriage_world, "a", "b")
        names = {
            (c.object_class.object_name, c.relationship_set.object_name)
            for c in conflicts
        }
        assert ("Citizen", "Marriage") not in names

    def test_paper_schemas_have_no_construct_conflicts(self):
        from repro.workloads.university import paper_registry

        registry = paper_registry()
        conflicts = suggest_construct_conflicts(
            registry, "sc1", "sc2", min_shared=1, min_score=0.5
        )
        assert conflicts == []

    def test_deterministic_ordering(self, marriage_world):
        first = suggest_construct_conflicts(marriage_world, "a", "b")
        second = suggest_construct_conflicts(marriage_world, "a", "b")
        assert first == second
        scores = [conflict.score for conflict in first]
        assert scores == sorted(scores, reverse=True)

    def test_str(self, marriage_world):
        conflict = suggest_construct_conflicts(marriage_world, "a", "b")[0]
        assert "shared attribute(s)" in str(conflict)
