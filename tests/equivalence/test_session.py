"""Tests for the :class:`AnalysisSession` facade."""

import pytest

from repro import AnalysisSession
from repro.assertions.kinds import AssertionKind, Relation, Source
from repro.errors import EquivalenceError
from repro.workloads.university import (
    PAPER_ASSERTION_CODES,
    PAPER_RELATIONSHIP_CODES,
    build_sc1,
    build_sc2,
    build_sc4,
    paper_registry,
)


def paper_session() -> AnalysisSession:
    session = AnalysisSession([build_sc1(), build_sc2()])
    session.declare_equivalent("sc1.Student.Name", "sc2.Grad_student.Name")
    session.declare_equivalent("sc1.Student.Name", "sc2.Faculty.Name")
    session.declare_equivalent("sc1.Student.GPA", "sc2.Grad_student.GPA")
    session.declare_equivalent("sc1.Department.Name", "sc2.Department.Name")
    session.declare_equivalent("sc1.Majors.Since", "sc2.Majors.Since")
    return session


class TestConstruction:
    def test_exported_from_repro(self):
        import repro

        assert repro.AnalysisSession is AnalysisSession

    def test_schemas_and_registry_are_mutually_exclusive(self):
        with pytest.raises(EquivalenceError):
            AnalysisSession([build_sc1()], registry=paper_registry())

    def test_components_share_one_counter_set(self):
        session = paper_session()
        assert session.registry.counters is session.counters
        assert session.object_network.counters is session.counters
        assert session.relationship_network.counters is session.counters

    def test_wrapping_an_existing_registry(self):
        session = AnalysisSession(registry=paper_registry())
        assert [schema.name for schema in session.schemas()] == ["sc1", "sc2"]
        assert session.registry.counters is session.counters

    def test_accepts_generator_of_schemas(self):
        session = AnalysisSession(s for s in [build_sc1(), build_sc2()])
        assert len(session.schemas()) == 2


class TestPaperFlow:
    def test_screen8_candidates(self):
        session = paper_session()
        pairs = session.candidate_pairs("sc1", "sc2")
        names = [
            (pair.first.object_name, pair.second.object_name)
            for pair in pairs
        ]
        assert names == [
            ("Department", "Department"),
            ("Student", "Grad_student"),
            ("Student", "Faculty"),
        ]

    def test_relationship_subphase_candidates(self):
        session = paper_session()
        pairs = session.candidate_pairs("sc1", "sc2", relationships=True)
        assert [(p.first.object_name, p.second.object_name) for p in pairs] == [
            ("Majors", "Majors")
        ]

    def test_full_integration_matches_figure5(self):
        session = paper_session()
        for first, second, code in PAPER_ASSERTION_CODES:
            session.specify(first, second, code)
        for first, second, code in PAPER_RELATIONSHIP_CODES:
            session.specify(first, second, code, relationships=True)
        result = session.integrate("sc1", "sc2")
        assert result.schema.get("Student")
        assert result.schema.get("Grad_student")
        merged = result.schema.get("E_Department")
        assert "D_Name" in merged.attribute_names()

    def test_string_references_throughout(self):
        session = paper_session()
        session.specify("sc1.Student", "sc2.Grad_student", AssertionKind.CONTAINS)
        assert session.feasible("sc1.Student", "sc2.Grad_student") == frozenset(
            {Relation.PPI}
        )
        assertion = session.assertion_for("sc1.Student", "sc2.Grad_student")
        assert assertion.kind is AssertionKind.CONTAINS
        assert session.explain("sc1.Student", "sc2.Grad_student") == [assertion]
        session.retract("sc1.Student", "sc2.Grad_student")
        assert session.assertion_for("sc1.Student", "sc2.Grad_student") is None

    def test_respecify_routes_to_network(self):
        session = paper_session()
        session.specify("sc1.Student", "sc2.Grad_student", AssertionKind.EQUALS)
        session.respecify(
            "sc1.Student", "sc2.Grad_student", AssertionKind.CONTAINS
        )
        assert session.assertion_for(
            "sc1.Student", "sc2.Grad_student"
        ).kind is AssertionKind.CONTAINS

    def test_implicit_category_assertion_seeded(self):
        session = AnalysisSession([build_sc4()])
        assertion = session.assertion_for("sc4.Grad_student", "sc4.Student")
        assert assertion is not None
        assert assertion.kind is AssertionKind.CONTAINED_IN
        assert assertion.source is Source.IMPLICIT


class TestSchemaLifecycle:
    def test_refresh_schema_reseeds(self):
        from repro.ecr.objects import EntitySet

        session = paper_session()
        session.specify("sc1.Student", "sc2.Grad_student", AssertionKind.EQUALS)
        session.schema("sc1").add(EntitySet("Library"))
        session.refresh_schema("sc1")
        # Networks were reseeded: the assertion is gone, the new object known.
        assert session.assertion_for("sc1.Student", "sc2.Grad_student") is None
        assert session.feasible("sc1.Library", "sc2.Faculty")

    def test_ocs_acs_views(self):
        session = paper_session()
        assert session.ocs("sc1", "sc2") is session.registry.ocs("sc1", "sc2")
        assert session.acs("sc1", "sc2") is session.registry.acs("sc1", "sc2")


class TestInstrumentation:
    def test_snapshot_and_reset(self):
        session = paper_session()
        session.candidate_pairs("sc1", "sc2")
        snapshot = session.counters_snapshot()
        assert snapshot["registry_mutations"] > 0
        assert snapshot["ordering_rebuilds"] == 1
        session.reset_counters()
        assert not any(session.counters_snapshot().values())
