"""Tests for the incremental engine: versions, change events, cached views."""

import pytest

from repro.ecr.schema import ObjectRef
from repro.equivalence.ordering import ordered_object_pairs
from repro.equivalence.registry import RegistryChange
from repro.workloads.university import build_sc1, build_sc2, paper_registry


@pytest.fixture
def registry():
    return paper_registry()


class TestVersioning:
    def test_version_starts_at_zero(self):
        from repro.equivalence.registry import EquivalenceRegistry

        assert EquivalenceRegistry().version == 0

    def test_every_mutation_bumps_version(self):
        from repro.equivalence.registry import EquivalenceRegistry

        registry = EquivalenceRegistry()
        registry.register_schema(build_sc1())
        after_first = registry.version
        registry.register_schema(build_sc2())
        assert registry.version > after_first
        before = registry.version
        registry.declare_equivalent("sc1.Student.Name", "sc2.Faculty.Name")
        assert registry.version == before + 1
        registry.remove_from_class("sc2.Faculty.Name")
        assert registry.version == before + 2

    def test_version_tracks_counter(self, registry):
        mutations = registry.counters.registry_mutations
        assert registry.version == mutations
        registry.refresh_schema("sc1")
        assert registry.version == mutations + 1
        assert registry.counters.registry_mutations == mutations + 1

    def test_removing_singleton_is_a_no_op(self, registry):
        before = registry.version
        # Support_type is in no declared class: deleting it changes nothing.
        registry.remove_from_class("sc2.Grad_student.Support_type")
        assert registry.version == before

    def test_redeclaring_same_class_is_a_no_op(self, registry):
        before = registry.version
        registry.declare_equivalent(
            "sc1.Student.Name", "sc2.Grad_student.Name"
        )
        assert registry.version == before


class TestChangeEvents:
    def test_declare_reports_touched_owners(self, registry):
        events = []
        registry.subscribe(events.append)
        registry.declare_equivalent(
            "sc1.Student.GPA", "sc2.Faculty.Rank"
        )
        assert len(events) == 1
        change = events[0]
        assert isinstance(change, RegistryChange)
        assert change.kind == "declare"
        assert change.version == registry.version
        # Owners of the merged class: Student's class already spans
        # Grad_student via GPA.
        assert ("sc1", "Student") in change.objects
        assert ("sc2", "Faculty") in change.objects
        assert not change.schemas

    def test_remove_reports_old_class_owners(self, registry):
        events = []
        registry.subscribe(events.append)
        registry.remove_from_class("sc2.Faculty.Name")
        (change,) = events
        assert change.kind == "remove"
        assert ("sc2", "Faculty") in change.objects
        assert ("sc1", "Student") in change.objects

    def test_refresh_reports_schema_shape_change(self, registry):
        events = []
        registry.subscribe(events.append)
        registry.refresh_schema("sc2")
        (change,) = events
        assert change.kind == "refresh"
        assert change.schemas == frozenset({"sc2"})
        assert change.touches_schema("sc2")
        assert not change.touches_schema("sc1")

    def test_touches_schema_via_objects(self):
        change = RegistryChange(
            "declare", 3, objects=frozenset({("sc1", "Student")})
        )
        assert change.touches_schema("sc1")
        assert not change.touches_schema("sc2")


class TestOcsCellCache:
    def test_cold_then_warm(self, registry):
        counters = registry.counters
        ocs = registry.ocs("sc1", "sc2")
        counters.reset()
        ocs.as_counts()
        cells = len(ocs.rows) * len(ocs.columns)
        assert counters.ocs_cells_recomputed == cells
        assert counters.ocs_cache_hits == 0
        counters.reset()
        ocs.as_counts()
        assert counters.ocs_cells_recomputed == 0
        assert counters.ocs_cache_hits == cells

    def test_mutation_invalidates_only_touched_cells(self, registry):
        counters = registry.counters
        ocs = registry.ocs("sc1", "sc2")
        ocs.as_counts()  # warm every cell
        generation = ocs.generation
        # Shrinks the Name class spanning Student/Grad_student/Faculty.
        registry.remove_from_class("sc2.Faculty.Name")
        assert ocs.generation == generation + 1
        counters.reset()
        # Untouched pair: still served from cache.
        assert ocs.count(
            ObjectRef("sc1", "Department"), ObjectRef("sc2", "Department")
        ) == 1
        assert counters.ocs_cache_hits == 1
        assert counters.ocs_cells_recomputed == 0
        # Touched pair: recomputed, with the new (smaller) value.
        assert ocs.count(
            ObjectRef("sc1", "Student"), ObjectRef("sc2", "Faculty")
        ) == 0
        assert counters.ocs_cells_recomputed == 1

    def test_unrelated_schema_mutation_leaves_cache_alone(self, registry):
        from repro.workloads.university import build_sc3

        counters = registry.counters
        ocs = registry.ocs("sc1", "sc2")
        ocs.as_counts()
        generation = ocs.generation
        registry.register_schema(build_sc3())
        registry.declare_equivalent(
            "sc3.Instructor.Name", "sc1.Student.Name"
        )
        # sc3.Instructor is in the merged class's owners, and so is
        # sc1.Student — the sc1 side invalidates, sc3 does not exist here.
        assert ocs.generation == generation + 1
        counters.reset()
        assert ocs.count(
            ObjectRef("sc1", "Department"), ObjectRef("sc2", "Department")
        ) == 1
        assert counters.ocs_cache_hits == 1

    def test_refresh_schema_rebuilds_shape(self, registry):
        ocs = registry.ocs("sc1", "sc2")
        schema = registry.schema("sc1")
        rows_before = len(ocs.rows)
        from repro.ecr.objects import EntitySet

        schema.add(EntitySet("Library"))
        registry.refresh_schema("sc1")
        assert len(ocs.rows) == rows_before + 1


class TestAcsCache:
    def test_rebuild_only_after_invalidation(self, registry):
        counters = registry.counters
        acs = registry.acs("sc1", "sc2")
        counters.reset()
        acs.equivalent_pairs()
        acs.as_booleans()
        assert counters.acs_rebuilds == 1
        assert counters.acs_cache_hits == 1
        registry.remove_from_class("sc1.Majors.Since")
        counters.reset()
        assert len(acs.equivalent_pairs()) == 4
        assert counters.acs_rebuilds == 1


class TestFactories:
    def test_ocs_factory_memoizes(self, registry):
        assert registry.ocs("sc1", "sc2") is registry.ocs("sc1", "sc2")

    def test_acs_factory_memoizes(self, registry):
        assert registry.acs("sc1", "sc2") is registry.acs("sc1", "sc2")

    def test_factory_validates_schema_names(self, registry):
        from repro.errors import UnknownNameError

        with pytest.raises(UnknownNameError):
            registry.ocs("sc1", "nope")


class TestOrderingCache:
    def test_ranked_list_memoized(self, registry):
        counters = registry.counters
        counters.reset()
        first = ordered_object_pairs(registry, "sc1", "sc2")
        assert counters.ordering_rebuilds == 1
        assert counters.ordering_cache_hits == 0
        second = ordered_object_pairs(registry, "sc1", "sc2")
        assert counters.ordering_cache_hits == 1
        assert counters.ordering_rebuilds == 1
        assert first == second

    def test_ranked_list_is_a_defensive_copy(self, registry):
        first = ordered_object_pairs(registry, "sc1", "sc2")
        first.clear()
        assert ordered_object_pairs(registry, "sc1", "sc2")

    def test_mutation_invalidates_ranking(self, registry):
        counters = registry.counters
        baseline = ordered_object_pairs(registry, "sc1", "sc2")
        registry.remove_from_class("sc2.Faculty.Name")
        counters.reset()
        updated = ordered_object_pairs(registry, "sc1", "sc2")
        assert counters.ordering_rebuilds == 1
        assert updated != baseline
        assert all(
            (pair.first.object_name, pair.second.object_name)
            != ("Student", "Faculty")
            for pair in updated
        )

    def test_positional_options_are_a_type_error(self, registry):
        from repro.ecr.objects import ObjectKind

        with pytest.raises(TypeError):
            ordered_object_pairs(
                registry, "sc1", "sc2", ObjectKind.RELATIONSHIP
            )
        pairs = ordered_object_pairs(
            registry, "sc1", "sc2", kind_filter=ObjectKind.RELATIONSHIP
        )
        assert [pair.first.object_name for pair in pairs] == ["Majors"]
