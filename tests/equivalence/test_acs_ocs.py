"""Tests for the ACS and OCS matrices."""

import pytest

from repro.ecr.objects import ObjectKind
from repro.ecr.schema import ObjectRef
from repro.equivalence.acs import AcsMatrix
from repro.equivalence.ocs import OcsMatrix
from repro.workloads.university import paper_registry


@pytest.fixture
def registry():
    return paper_registry()


class TestAcs:
    def test_dimensions(self, registry):
        acs = registry.acs("sc1", "sc2")
        assert len(acs.rows) == 4  # Name, GPA, Name, Since
        assert len(acs.columns) == 9

    def test_equivalent_pairs(self, registry):
        acs = registry.acs("sc1", "sc2")
        pairs = {(str(a), str(b)) for a, b in acs.equivalent_pairs()}
        assert ("sc1.Student.Name", "sc2.Grad_student.Name") in pairs
        assert ("sc1.Student.Name", "sc2.Faculty.Name") in pairs
        assert ("sc1.Student.GPA", "sc2.Grad_student.GPA") in pairs
        assert ("sc1.Department.Name", "sc2.Department.Name") in pairs
        assert ("sc1.Majors.Since", "sc2.Majors.Since") in pairs
        assert len(pairs) == 5

    def test_boolean_matrix_agrees_with_cells(self, registry):
        acs = registry.acs("sc1", "sc2")
        matrix = acs.as_booleans()
        for i, row in enumerate(acs.rows):
            for j, column in enumerate(acs.columns):
                assert matrix[i][j] == acs.cell(row, column).equivalent

    def test_render_contains_marks(self, registry):
        text = registry.acs("sc1", "sc2").render()
        assert "X" in text and "sc1.Student.Name" in text

    def test_direct_construction_deprecated(self, registry):
        with pytest.warns(DeprecationWarning, match="registry.acs"):
            acs = AcsMatrix(registry, "sc1", "sc2")
        # The shim still works.
        assert len(acs.rows) == 4


class TestOcs:
    def test_counts_match_paper(self, registry):
        ocs = registry.ocs("sc1", "sc2")
        counts = {
            (entry.row.object_name, entry.column.object_name):
                entry.equivalent_attributes
            for entry in ocs.entries()
        }
        assert counts == {
            ("Student", "Grad_student"): 2,
            ("Student", "Faculty"): 1,
            ("Department", "Department"): 1,
        }

    def test_include_zero(self, registry):
        ocs = registry.ocs("sc1", "sc2")
        all_entries = ocs.entries(include_zero=True)
        assert len(all_entries) == len(ocs.rows) * len(ocs.columns)

    def test_relationship_subphase(self, registry):
        ocs = registry.ocs("sc1", "sc2", ObjectKind.RELATIONSHIP)
        assert [ref.object_name for ref in ocs.rows] == ["Majors"]
        assert ocs.count(
            ObjectRef("sc1", "Majors"), ObjectRef("sc2", "Majors")
        ) == 1
        assert ocs.count(
            ObjectRef("sc1", "Majors"), ObjectRef("sc2", "Works")
        ) == 0

    def test_entity_kind_filter(self, registry):
        ocs = registry.ocs("sc1", "sc2", ObjectKind.ENTITY)
        assert all(
            registry.schema(ref.schema).get(ref.object_name).kind
            is ObjectKind.ENTITY
            for ref in ocs.rows + ocs.columns
        )

    def test_as_counts_shape(self, registry):
        ocs = registry.ocs("sc1", "sc2")
        counts = ocs.as_counts()
        assert len(counts) == len(ocs.rows)
        assert all(len(row) == len(ocs.columns) for row in counts)

    def test_render(self, registry):
        text = registry.ocs("sc1", "sc2").render()
        assert "OCS sc1 x sc2" in text
        assert "Grad_student" in text

    def test_direct_construction_deprecated(self, registry):
        with pytest.warns(DeprecationWarning, match="registry.ocs"):
            ocs = OcsMatrix(registry, "sc1", "sc2")
        assert ocs.count(
            ObjectRef("sc1", "Student"), ObjectRef("sc2", "Grad_student")
        ) == 2

    def test_factory_returns_cached_instance(self, registry):
        first = registry.ocs("sc1", "sc2")
        assert registry.ocs("sc1", "sc2") is first
        # Different kind filters are distinct cached views.
        assert registry.ocs("sc1", "sc2", ObjectKind.ENTITY) is not first
