"""Tests for resemblance functions, including the paper's attribute ratio."""

import pytest
from hypothesis import given, strategies as st

from repro.ecr.builder import SchemaBuilder
from repro.ecr.schema import ObjectRef
from repro.equivalence.registry import EquivalenceRegistry
from repro.equivalence.resemblance import (
    AttributeRatio,
    DomainResemblance,
    KeyResemblance,
    NameResemblance,
    WeightedResemblance,
    attribute_ratio,
    name_similarity,
)
from repro.equivalence.synonyms import SynonymDictionary
from repro.errors import EquivalenceError
from repro.workloads.university import paper_registry


class TestAttributeRatio:
    def test_paper_values(self):
        # Screen 8: Department/Department and Student/Grad_student at 0.5000,
        # Student/Faculty at 0.3333.
        assert attribute_ratio(1, 1, 2) == pytest.approx(0.5)
        assert attribute_ratio(2, 2, 3) == pytest.approx(0.5)
        assert attribute_ratio(1, 2, 2) == pytest.approx(1 / 3)

    def test_half_means_full_coverage_of_smaller(self):
        # "a value of 0.5 ... specifies that every attribute in one object
        # class has an equivalent attribute in the other"
        assert attribute_ratio(3, 3, 7) == pytest.approx(0.5)

    def test_zero_cases(self):
        assert attribute_ratio(0, 4, 4) == 0.0
        assert attribute_ratio(0, 0, 4) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(EquivalenceError):
            attribute_ratio(-1, 2, 2)

    def test_overcount_rejected(self):
        with pytest.raises(EquivalenceError):
            attribute_ratio(3, 2, 5)

    @given(st.integers(0, 10), st.integers(0, 10), st.integers(0, 10))
    def test_bounds_and_symmetry(self, e, n1, n2):
        e = min(e, n1, n2)
        ratio = attribute_ratio(e, n1, n2)
        assert 0.0 <= ratio <= 0.5
        assert ratio == attribute_ratio(e, n2, n1)

    @given(st.integers(1, 10), st.integers(1, 10))
    def test_monotone_in_equivalences(self, n1, n2):
        smaller = min(n1, n2)
        ratios = [attribute_ratio(e, n1, n2) for e in range(smaller + 1)]
        assert ratios == sorted(ratios)


class TestNameSimilarity:
    def test_identical(self):
        assert name_similarity("Name", "Name") == 1.0

    def test_case_and_underscores_ignored(self):
        assert name_similarity("Grad_student", "GRADSTUDENT") == 1.0

    def test_disjoint_strings(self):
        assert name_similarity("abc", "xyz") == 0.0

    def test_empty_cases(self):
        assert name_similarity("", "") == 1.0
        assert name_similarity("a", "") == 0.0

    @given(st.text(max_size=12), st.text(max_size=12))
    def test_bounds_and_symmetry(self, a, b):
        score = name_similarity(a, b)
        assert 0.0 <= score <= 1.0
        assert score == name_similarity(b, a)


class TestObjectScorers:
    @pytest.fixture
    def scene(self):
        registry = paper_registry()
        sc1 = registry.schema("sc1")
        sc2 = registry.schema("sc2")
        return registry, sc1, sc2

    def _score(self, scorer, registry, a, b):
        sc_a = registry.schema(a.schema).object_class(a.object_name)
        sc_b = registry.schema(b.schema).object_class(b.object_name)
        return scorer.score(a, sc_a, b, sc_b)

    def test_attribute_ratio_scorer(self, scene):
        registry, *_ = scene
        scorer = AttributeRatio(registry)
        score = self._score(
            scorer,
            registry,
            ObjectRef("sc1", "Student"),
            ObjectRef("sc2", "Grad_student"),
        )
        assert score == pytest.approx(0.5)

    def test_name_resemblance_with_synonyms(self, scene):
        registry, *_ = scene
        synonyms = SynonymDictionary([("student", "grad_student")])
        scorer = NameResemblance(synonyms)
        score = self._score(
            scorer,
            registry,
            ObjectRef("sc1", "Student"),
            ObjectRef("sc2", "Grad_student"),
        )
        assert score == 1.0

    def test_name_resemblance_antonym_veto(self):
        registry = EquivalenceRegistry(
            [
                SchemaBuilder("x").entity("Arrival", attrs=["a"]).build(validate=False),
                SchemaBuilder("y").entity("Departure", attrs=["a"]).build(validate=False),
            ]
        )
        synonyms = SynonymDictionary(antonym_pairs=[("arrival", "departure")])
        scorer = NameResemblance(synonyms)
        score = scorer.score(
            ObjectRef("x", "Arrival"),
            registry.schema("x").object_class("Arrival"),
            ObjectRef("y", "Departure"),
            registry.schema("y").object_class("Departure"),
        )
        assert score == 0.0

    def test_key_resemblance(self, scene):
        registry, *_ = scene
        scorer = KeyResemblance()
        score = self._score(
            scorer,
            registry,
            ObjectRef("sc1", "Student"),
            ObjectRef("sc2", "Faculty"),
        )
        assert score == 1.0  # both keyed on Name

    def test_domain_resemblance(self, scene):
        registry, *_ = scene
        scorer = DomainResemblance()
        score = self._score(
            scorer,
            registry,
            ObjectRef("sc1", "Student"),
            ObjectRef("sc2", "Grad_student"),
        )
        assert score == 1.0  # char+real both present on the other side

    def test_weighted_combination(self, scene):
        registry, *_ = scene
        weighted = WeightedResemblance(
            [AttributeRatio(registry), KeyResemblance()], [1.0, 1.0]
        )
        score = self._score(
            weighted,
            registry,
            ObjectRef("sc1", "Student"),
            ObjectRef("sc2", "Grad_student"),
        )
        assert score == pytest.approx((0.5 + 1.0) / 2)

    def test_weighted_validation(self):
        with pytest.raises(EquivalenceError):
            WeightedResemblance([], [])
        with pytest.raises(EquivalenceError):
            WeightedResemblance([KeyResemblance()], [1.0, 2.0])
        with pytest.raises(EquivalenceError):
            WeightedResemblance([KeyResemblance()], [0.0])
