"""Tests (incl. property-based) for the disjoint-set structure."""

from hypothesis import given, strategies as st

from repro.equivalence.union_find import DisjointSet


class TestBasics:
    def test_singletons(self):
        ds = DisjointSet(["a", "b"])
        assert ds.find("a") == "a"
        assert not ds.connected("a", "b")
        assert ds.class_count() == 2

    def test_union_connects(self):
        ds = DisjointSet(["a", "b", "c"])
        ds.union("a", "b")
        assert ds.connected("a", "b")
        assert not ds.connected("a", "c")
        assert ds.class_count() == 2

    def test_find_adds_missing(self):
        ds = DisjointSet()
        assert ds.find("x") == "x"
        assert "x" in ds

    def test_add_idempotent(self):
        ds = DisjointSet()
        ds.add("a")
        ds.add("a")
        assert len(ds) == 1

    def test_union_same_class_noop(self):
        ds = DisjointSet(["a", "b"])
        root = ds.union("a", "b")
        assert ds.union("a", "b") == root

    def test_connected_unknown_items(self):
        ds = DisjointSet(["a"])
        assert not ds.connected("a", "never_added")

    def test_class_of_preserves_insertion_order(self):
        ds = DisjointSet(["c", "a", "b"])
        ds.union("b", "c")
        assert ds.class_of("c") == ["c", "b"]

    def test_classes_ordered_by_first_member(self):
        ds = DisjointSet(["x", "y", "z"])
        ds.union("z", "y")
        assert ds.classes() == [["x"], ["y", "z"]]


@st.composite
def union_scripts(draw):
    size = draw(st.integers(2, 12))
    items = [f"i{i}" for i in range(size)]
    pair = st.tuples(st.sampled_from(items), st.sampled_from(items))
    return items, draw(st.lists(pair, max_size=30))


@given(union_scripts())
def test_equivalence_relation_properties(script):
    items, unions = script
    ds = DisjointSet(items)
    for first, second in unions:
        ds.union(first, second)
    # reflexive / symmetric
    for item in items:
        assert ds.connected(item, item)
    for first, second in unions:
        assert ds.connected(first, second)
        assert ds.connected(second, first)
    # classes partition the items
    classes = ds.classes()
    flattened = [item for members in classes for item in members]
    assert sorted(flattened) == sorted(items)
    assert ds.class_count() == len(classes)
    # class membership agrees with connected()
    for members in classes:
        for other in members:
            assert ds.connected(members[0], other)


@given(union_scripts())
def test_transitivity(script):
    items, unions = script
    ds = DisjointSet(items)
    for first, second in unions:
        ds.union(first, second)
    for a in items[:5]:
        for b in items[:5]:
            for c in items[:5]:
                if ds.connected(a, b) and ds.connected(b, c):
                    assert ds.connected(a, c)
