"""The conflict-seeded generator knob: planted, minimal, independent."""

import pytest

from repro.assertions.kinds import AssertionKind
from repro.errors import SchemaError
from repro.solver import is_consistent, verify_conflict
from repro.workloads import (
    GeneratorConfig,
    PlantedContradiction,
    conflict_seeded_config,
    generate_schema_pair,
)

from tests.solver.conftest import triple_fact, truth_facts


class TestConfig:
    def test_default_plants_nothing(self):
        pair = generate_schema_pair(GeneratorConfig(seed=3))
        assert pair.contradictions == []

    def test_negative_contradictions_rejected(self):
        with pytest.raises(SchemaError):
            GeneratorConfig(contradictions=-1)

    def test_conflict_seeded_config_defaults(self):
        config = conflict_seeded_config(7)
        assert config.seed == 7
        assert config.contradictions == 2
        assert config.name_hint_rate == 1.0  # names must carry signal

    def test_too_few_shared_equals_is_actionable(self):
        # overlap 0 leaves no shared concepts to contradict
        config = GeneratorConfig(seed=0, overlap=0.0, contradictions=1)
        with pytest.raises(SchemaError, match="shared equals"):
            generate_schema_pair(config)

    def test_too_few_spoilers_is_actionable(self):
        # full overlap leaves no unshared spoiler concepts
        config = GeneratorConfig(
            seed=0, overlap=1.0, equal_rate=1.0, contain_rate=0.0,
            overlap_rate=0.0, contradictions=1,
        )
        with pytest.raises(SchemaError, match="spoiler"):
            generate_schema_pair(config)


class TestPlanting:
    @pytest.fixture
    def pair(self):
        return generate_schema_pair(conflict_seeded_config(1, contradictions=3))

    def test_requested_count_is_planted(self, pair):
        assert len(pair.contradictions) == 3
        assert all(
            isinstance(planted, PlantedContradiction)
            for planted in pair.contradictions
        )

    def test_refs_resolve_in_the_schemas(self, pair):
        schemas = {pair.first.name: pair.first, pair.second.name: pair.second}
        for planted in pair.contradictions:
            for first, second, _kind in planted.all_facts:
                schemas[first.schema].get(first.object_name)
                schemas[second.schema].get(second.object_name)

    def test_base_is_part_of_the_ground_truth(self, pair):
        for planted in pair.contradictions:
            first, second, kind = planted.base
            assert kind is AssertionKind.EQUALS
            assert pair.truth.object_assertions.get((first, second)) is kind

    def test_each_triangle_is_minimal_and_sufficient(self, pair):
        for planted in pair.contradictions:
            triangle = [triple_fact(triple) for triple in planted.all_facts]
            assert verify_conflict(triangle)

    def test_triangles_are_independent(self, pair):
        # true facts plus any ONE contradiction's extras break; the
        # spoilers are distinct so removing those extras restores truth
        facts = truth_facts(pair)
        assert is_consistent(facts)
        spoilers = set()
        for planted in pair.contradictions:
            extras = [triple_fact(triple) for triple in planted.extras]
            assert not is_consistent(facts + extras)
            spoiler = planted.extras[0][1]
            assert spoiler not in spoilers
            spoilers.add(spoiler)

    def test_determinism(self):
        config = conflict_seeded_config(9, contradictions=2)
        first = generate_schema_pair(config)
        second = generate_schema_pair(config)
        assert first.contradictions == second.contradictions
