"""Tests for the synthetic schema-pair generator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ecr.ddl import to_ddl
from repro.ecr.validation import validate_schema
from repro.errors import SchemaError
from repro.workloads.generator import GeneratorConfig, generate_schema_pair


class TestConfigValidation:
    def test_defaults_ok(self):
        GeneratorConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"concepts": 1},
            {"overlap": 1.5},
            {"overlap": -0.1},
            {"attributes_per_concept": (0, 3)},
            {"attributes_per_concept": (4, 2)},
            {"equal_rate": 0.8, "contain_rate": 0.8},
        ],
    )
    def test_bad_configs(self, kwargs):
        with pytest.raises(SchemaError):
            GeneratorConfig(**kwargs)


class TestDeterminism:
    def test_same_seed_same_output(self):
        config = GeneratorConfig(seed=7, concepts=10, overlap=0.5)
        first = generate_schema_pair(config)
        second = generate_schema_pair(config)
        assert to_ddl(first.first) == to_ddl(second.first)
        assert to_ddl(first.second) == to_ddl(second.second)
        assert first.truth.object_assertions == second.truth.object_assertions
        assert first.truth.attribute_pairs == second.truth.attribute_pairs

    def test_different_seeds_differ(self):
        a = generate_schema_pair(GeneratorConfig(seed=1))
        b = generate_schema_pair(GeneratorConfig(seed=2))
        assert to_ddl(a.first) != to_ddl(b.first)


class TestGroundTruthConsistency:
    def test_truth_refs_exist_in_schemas(self):
        pair = generate_schema_pair(GeneratorConfig(seed=5, concepts=12))
        schemas = {pair.first.name: pair.first, pair.second.name: pair.second}
        for first, second in pair.truth.attribute_pairs:
            for ref in (first, second):
                schemas[ref.schema].resolve_attribute(ref)
        for (a, b) in pair.truth.object_assertions:
            schemas[a.schema].get(a.object_name)
            schemas[b.schema].get(b.object_name)

    def test_overlap_controls_shared_concepts(self):
        none = generate_schema_pair(GeneratorConfig(seed=3, overlap=0.0))
        assert len(none.truth.object_assertions) == 0
        full = generate_schema_pair(GeneratorConfig(seed=3, overlap=1.0))
        assert len(full.truth.object_assertions) == full.config.concepts

    def test_schemas_are_valid(self):
        for seed in range(4):
            pair = generate_schema_pair(GeneratorConfig(seed=seed))
            for schema in (pair.first, pair.second):
                assert not any(
                    issue.is_error for issue in validate_schema(schema)
                )

    def test_name_hint_rate_zero_renames_everything_possible(self):
        pair = generate_schema_pair(
            GeneratorConfig(seed=11, overlap=1.0, name_hint_rate=0.0)
        )
        same_names = [
            (a, b)
            for a, b in pair.truth.attribute_pairs
            if a.attribute == b.attribute
        ]
        # with rate 0 almost everything is renamed (collisions aside)
        assert len(same_names) <= len(pair.truth.attribute_pairs) * 0.2


@settings(deadline=None, max_examples=20)
@given(
    st.integers(0, 1000),
    st.integers(2, 14),
    st.floats(0.0, 1.0),
)
def test_generator_never_builds_invalid_schemas(seed, concepts, overlap):
    pair = generate_schema_pair(
        GeneratorConfig(seed=seed, concepts=concepts, overlap=overlap)
    )
    for schema in (pair.first, pair.second):
        assert not any(issue.is_error for issue in validate_schema(schema))
    # equivalences always span the two schemas
    for first, second in pair.truth.attribute_pairs:
        assert {first.schema, second.schema} == {
            pair.first.name,
            pair.second.name,
        }


class TestSharedRelationships:
    def test_disabled_by_default(self):
        pair = generate_schema_pair(GeneratorConfig(seed=4))
        assert pair.truth.relationship_assertions == {}

    def test_shared_relationships_span_both_schemas(self):
        pair = generate_schema_pair(
            GeneratorConfig(
                seed=4, concepts=12, overlap=0.8, shared_relationship_rate=0.9
            )
        )
        assert pair.truth.relationship_assertions
        for (a, b), kind in pair.truth.relationship_assertions.items():
            assert {a.schema, b.schema} == {pair.first.name, pair.second.name}
            # both projections exist and connect the same concept names
            rel_a = generate_relationship(pair, a)
            rel_b = generate_relationship(pair, b)
            assert rel_a.participant_names() == rel_b.participant_names()

    def test_shared_relationship_attributes_in_truth(self):
        pair = generate_schema_pair(
            GeneratorConfig(
                seed=4, concepts=12, overlap=0.8, shared_relationship_rate=0.9
            )
        )
        relationship_names = {
            a.object_name for a, _ in pair.truth.relationship_assertions
        }
        covered = {
            ref.object_name
            for refs in pair.truth.attribute_pairs
            for ref in refs
            if ref.object_name in relationship_names
        }
        assert covered == relationship_names

    def test_integration_merges_shared_relationships(self):
        from repro.assertions.network import AssertionNetwork
        from repro.baselines.closure_baselines import (
            drive_assertions_with_closure,
        )
        from repro.ecr.schema import ObjectRef
        from repro.equivalence.registry import EquivalenceRegistry
        from repro.integration.integrator import Integrator
        from repro.workloads.oracle import OracleDda

        pair = generate_schema_pair(
            GeneratorConfig(
                seed=4, concepts=12, overlap=0.8, shared_relationship_rate=0.9
            )
        )
        registry = EquivalenceRegistry([pair.first, pair.second])
        OracleDda(pair.truth).declare_all_equivalences(registry)
        network, _ = drive_assertions_with_closure(
            pair.first, pair.second, pair.truth
        )
        rel_network = AssertionNetwork()
        for schema in (pair.first, pair.second):
            for relationship in schema.relationship_sets():
                rel_network.add_object(
                    ObjectRef(schema.name, relationship.name)
                )
        for (a, b), kind in pair.truth.relationship_assertions.items():
            rel_network.specify(a, b, kind)
        result = Integrator(registry, network, rel_network).integrate(
            pair.first.name, pair.second.name
        )
        for (a, b) in pair.truth.relationship_assertions:
            assert result.object_mapping[a] == result.object_mapping[b]


def generate_relationship(pair, ref):
    schema = pair.first if ref.schema == pair.first.name else pair.second
    return schema.relationship_set(ref.object_name)
