"""Tests for the ground truth and the oracle DDA."""

import pytest

from repro.assertions.kinds import AssertionKind
from repro.ecr.attributes import AttributeRef
from repro.ecr.schema import ObjectRef
from repro.equivalence.registry import EquivalenceRegistry
from repro.workloads.oracle import GroundTruth, OracleDda
from repro.workloads.university import build_sc1, build_sc2


@pytest.fixture
def truth():
    t = GroundTruth()
    t.add_attribute_pair("sc1.Student.Name", "sc2.Grad_student.Name")
    t.add_object_assertion(
        "sc1.Student", "sc2.Grad_student", AssertionKind.CONTAINS
    )
    t.add_object_assertion(
        "sc1.Majors", "sc2.Majors", AssertionKind.EQUALS, relationship=True
    )
    return t


class TestGroundTruth:
    def test_attribute_pairs_unordered(self, truth):
        assert truth.attributes_equivalent(
            AttributeRef("sc2", "Grad_student", "Name"),
            AttributeRef("sc1", "Student", "Name"),
        )

    def test_assertion_orientation(self, truth):
        forward = truth.assertion_between(
            ObjectRef("sc1", "Student"), ObjectRef("sc2", "Grad_student")
        )
        backward = truth.assertion_between(
            ObjectRef("sc2", "Grad_student"), ObjectRef("sc1", "Student")
        )
        assert forward is AssertionKind.CONTAINS
        assert backward is AssertionKind.CONTAINED_IN

    def test_orientation_preserved_when_key_swaps(self):
        t = GroundTruth()
        # first > second lexicographically, forcing a canonical swap
        t.add_object_assertion("zz.B", "aa.A", AssertionKind.CONTAINED_IN)
        assert (
            t.assertion_between(ObjectRef("zz", "B"), ObjectRef("aa", "A"))
            is AssertionKind.CONTAINED_IN
        )
        assert (
            t.assertion_between(ObjectRef("aa", "A"), ObjectRef("zz", "B"))
            is AssertionKind.CONTAINS
        )

    def test_default_is_nonintegrable(self, truth):
        kind = truth.assertion_between(
            ObjectRef("sc1", "Department"), ObjectRef("sc2", "Faculty")
        )
        assert kind is AssertionKind.DISJOINT_NONINTEGRABLE

    def test_relationship_table_separate(self, truth):
        kind = truth.assertion_between(
            ObjectRef("sc1", "Majors"),
            ObjectRef("sc2", "Majors"),
            relationship=True,
        )
        assert kind is AssertionKind.EQUALS
        assert (
            truth.assertion_between(
                ObjectRef("sc1", "Majors"), ObjectRef("sc2", "Majors")
            )
            is AssertionKind.DISJOINT_NONINTEGRABLE
        )

    def test_integrable_pairs(self, truth):
        assert truth.integrable_pairs() == [
            (ObjectRef("sc1", "Student"), ObjectRef("sc2", "Grad_student"))
        ]
        assert len(truth.integrable_pairs(relationship=True)) == 1


class TestOracle:
    def test_declare_all_equivalences(self, truth):
        registry = EquivalenceRegistry([build_sc1(), build_sc2()])
        oracle = OracleDda(truth)
        declared = oracle.declare_all_equivalences(registry)
        assert declared == 1
        assert registry.are_equivalent(
            "sc1.Student.Name", "sc2.Grad_student.Name"
        )

    def test_review_answers(self, truth):
        oracle = OracleDda(truth)
        assert oracle.review_attribute_pair(
            AttributeRef("sc1", "Student", "Name"),
            AttributeRef("sc2", "Grad_student", "Name"),
        )
        assert not oracle.review_attribute_pair(
            AttributeRef("sc1", "Student", "GPA"),
            AttributeRef("sc2", "Grad_student", "GPA"),
        )
        kind = oracle.review_object_pair(
            ObjectRef("sc2", "Grad_student"), ObjectRef("sc1", "Student")
        )
        assert kind is AssertionKind.CONTAINED_IN

    def test_is_true_correspondence(self, truth):
        oracle = OracleDda(truth)
        assert oracle.is_true_correspondence(
            ObjectRef("sc1", "Student"), ObjectRef("sc2", "Grad_student")
        )
        assert not oracle.is_true_correspondence(
            ObjectRef("sc1", "Student"), ObjectRef("sc2", "Faculty")
        )
