"""The seeded service-traffic stream and its read_fraction knob."""

from __future__ import annotations

import pytest

from repro.errors import SchemaError
from repro.service import ServiceApp, TenantAuth
from repro.workloads import TrafficConfig, service_traffic

from tests.service.conftest import SC1_DDL, SC2_DDL, Client


def stream(**kwargs):
    return list(service_traffic(TrafficConfig(**kwargs)))


class TestMix:
    def test_read_fraction_is_exact(self):
        calls = stream(operations=40, read_fraction=0.75)
        assert len(calls) == 40
        assert sum(call.is_read for call in calls) == 30

    @pytest.mark.parametrize("fraction", [0.0, 0.5, 1.0])
    def test_extremes_and_middles(self, fraction):
        config = TrafficConfig(operations=10, read_fraction=fraction)
        calls = list(service_traffic(config))
        assert sum(call.is_read for call in calls) == config.reads
        assert config.reads + config.writes == 10

    def test_same_seed_same_stream(self):
        assert stream(seed=3) == stream(seed=3)
        assert stream(seed=3) != stream(seed=4)

    def test_reads_are_gets_writes_are_posts(self):
        for call in stream(operations=30, read_fraction=0.5):
            assert call.method == ("GET" if call.is_read else "POST")

    def test_writes_alternate_declare_and_undo(self):
        writes = [
            call
            for call in stream(operations=20, read_fraction=0.0)
            if not call.is_read
        ]
        for index, call in enumerate(writes):
            if index % 2 == 0:
                assert call.path.endswith("/equivalences")
                assert set(call.body) == {"first", "second"}
            else:
                assert call.path.endswith("/undo")

    def test_config_validation(self):
        with pytest.raises(SchemaError):
            TrafficConfig(operations=-1)
        with pytest.raises(SchemaError):
            TrafficConfig(read_fraction=1.5)


class TestAgainstTheService:
    def test_stream_is_entirely_accepted(self, tmp_path):
        # the contract of service_traffic: against the standard seeded
        # session every call in the stream succeeds, in order
        app = ServiceApp(
            tmp_path / "svc",
            auth=TenantAuth.from_tokens({"token-acme": "acme"}),
        )
        try:
            client = Client(app)
            assert client.post("/v1/sessions", {"session_id": "s1"})[0] == 201
            for ddl in (SC1_DDL, SC2_DDL):
                assert (
                    client.post("/v1/sessions/s1/schemas", {"ddl": ddl})[0]
                    == 201
                )
            for call in stream(operations=30, read_fraction=0.6, seed=11):
                if call.method == "GET":
                    status, _ = client.get(call.path, query=call.query)
                else:
                    status, _ = client.post(call.path, call.body)
                assert status < 300, (call, status)
        finally:
            app.close()
