"""Tests pinning the paper workload to the published artifacts."""

from repro.assertions.kinds import AssertionKind, Source
from repro.ecr.validation import validate_schema
from repro.workloads.university import (
    PAPER_ASSERTION_CODES,
    PAPER_RELATIONSHIP_CODES,
    build_sc1,
    build_sc2,
    build_sc3,
    build_sc4,
    paper_assertions,
    paper_candidate_pairs,
    paper_registry,
)


class TestInputSchemas:
    def test_sc1_matches_screen3(self):
        """Screen 3 lists Student (2 attrs), Department (1), Majors (1)."""
        sc1 = build_sc1()
        assert len(sc1.get("Student").attributes) == 2
        assert len(sc1.get("Department").attributes) == 1
        assert len(sc1.get("Majors").attributes) == 1

    def test_sc1_student_matches_screen5(self):
        """Screen 5: Name char key, GPA real non-key."""
        student = build_sc1().entity_set("Student")
        name = student.attribute("Name")
        gpa = student.attribute("GPA")
        assert name.is_key and str(name.domain) == "char"
        assert not gpa.is_key and str(gpa.domain) == "real"

    def test_sc2_grad_student_matches_screen7(self):
        """Screen 7 lists Name, GPA, Support_type on sc2.Grad_student."""
        grad = build_sc2().entity_set("Grad_student")
        assert grad.attribute_names() == ["Name", "GPA", "Support_type"]

    def test_all_paper_schemas_valid(self):
        for factory in (build_sc1, build_sc2, build_sc3, build_sc4):
            assert not any(
                issue.is_error for issue in validate_schema(factory())
            )

    def test_sc4_has_grad_category(self):
        sc4 = build_sc4()
        assert sc4.category("Grad_student").parents == ["Student"]


class TestPaperPhases:
    def test_candidate_ratios(self):
        ratios = [round(p.attribute_ratio, 4) for p in paper_candidate_pairs()]
        assert ratios == [0.5, 0.5, 0.3333]

    def test_assertion_codes_cover_three_kinds(self):
        codes = {code for _, _, code in PAPER_ASSERTION_CODES}
        assert codes == {
            AssertionKind.EQUALS.code,
            AssertionKind.CONTAINS.code,
            AssertionKind.DISJOINT_INTEGRABLE.code,
        }

    def test_network_derives_faculty_grad_disjointness(self):
        network = paper_assertions()
        derived = [
            assertion
            for assertion in network.derived_assertions()
            if assertion.source is Source.DERIVED
        ]
        pairs = {
            frozenset((str(a.first), str(a.second))) for a in derived
        }
        assert frozenset(("sc2.Faculty", "sc2.Grad_student")) in pairs

    def test_relationship_codes(self):
        assert PAPER_RELATIONSHIP_CODES == [("sc1.Majors", "sc2.Majors", 1)]

    def test_registry_reusable_across_helpers(self):
        registry = paper_registry()
        pairs = paper_candidate_pairs(registry)
        network = paper_assertions(registry)
        assert len(pairs) == 3
        assert len(network.specified_assertions()) == 3
