"""Tests for the hospital and airline domain workloads."""

from repro.ecr.validation import validate_schema
from repro.integration.nary import integrate_all
from repro.workloads.domains import (
    airline_ground_truth,
    build_airline_operations,
    build_airline_reservations,
    build_hospital_admissions,
    build_hospital_clinic,
    hospital_ground_truth,
)


class TestHospital:
    def test_schemas_valid(self):
        for factory in (build_hospital_admissions, build_hospital_clinic):
            assert not any(
                issue.is_error for issue in validate_schema(factory())
            )

    def test_truth_refs_resolve(self):
        schemas = {
            schema.name: schema
            for schema in (build_hospital_admissions(), build_hospital_clinic())
        }
        truth = hospital_ground_truth()
        for first, second in truth.attribute_pairs:
            for ref in (first, second):
                schemas[ref.schema].resolve_attribute(ref)

    def test_federation_builds_global_schema(self):
        result, mappings = integrate_all(
            [build_hospital_admissions(), build_hospital_clinic()],
            hospital_ground_truth(),
        )
        schema = result.schema
        # Patient ⊂ Person: Patient becomes a category of Person
        assert schema.category("Patient").parents == ["Person"]
        # the shared medical staff merged into one class
        assert mappings["adm"].map_object("Physician") == mappings[
            "cli"
        ].map_object("Doctor")
        # overlap of in/outpatients produced a derived parent
        derived = [node.name for node in result.derived_parent_nodes()]
        assert any(name.startswith("D_Inpa") for name in derived)


class TestAirline:
    def test_schemas_valid(self):
        for factory in (build_airline_reservations, build_airline_operations):
            assert not any(
                issue.is_error for issue in validate_schema(factory())
            )

    def test_view_integration(self):
        result, mappings = integrate_all(
            [build_airline_reservations(), build_airline_operations()],
            airline_ground_truth(),
        )
        flight = mappings["res"].map_object("Flight")
        assert flight.startswith("E_")
        merged = result.schema.get(flight)
        # merged Flight carries attributes from both views
        names = set(merged.attribute_names())
        assert "Aircraft_type" in names
        assert any(name.startswith("D_") for name in names)
        # passengers/crew disjoint-integrable under a derived parent
        assert result.derived_parent_nodes()

    def test_operations_category_preserved(self):
        result, _ = integrate_all(
            [build_airline_reservations(), build_airline_operations()],
            airline_ground_truth(),
        )
        international = result.schema.category("International_flight")
        assert international.parents[0].startswith("E_")
