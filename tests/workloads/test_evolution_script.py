"""The seeded evolution-script generator: determinism and quotas."""

import pytest

from repro.equivalence.session import AnalysisSession
from repro.errors import SchemaError
from repro.workloads import (
    EvolutionConfig,
    GeneratorConfig,
    evolution_script,
    generate_schema_pair,
    run_evolution_script,
)


def build_session(seed=3, concepts=8):
    pair = generate_schema_pair(GeneratorConfig(seed=seed, concepts=concepts))
    session = AnalysisSession()
    session.add_schema(pair.first)
    session.add_schema(pair.second)
    for first, second in sorted(pair.truth.attribute_pairs):
        session.declare_equivalent(str(first), str(second))
    for (first, second), kind in sorted(
        pair.truth.object_assertions.items(),
        key=lambda item: (str(item[0][0]), str(item[0][1])),
    ):
        session.specify(str(first), str(second), kind)
    return session


class TestConfig:
    def test_negative_edits_rejected(self):
        with pytest.raises(SchemaError):
            EvolutionConfig(edits=-1)

    def test_fraction_out_of_range_rejected(self):
        with pytest.raises(SchemaError):
            EvolutionConfig(invalidating_fraction=1.5)

    def test_quota_rounding(self):
        assert EvolutionConfig(edits=8, invalidating_fraction=0.25
                               ).invalidating_edits == 2
        assert EvolutionConfig(edits=3, invalidating_fraction=0.5
                               ).invalidating_edits == 2


class TestScript:
    def test_deterministic_across_equal_sessions(self):
        config = EvolutionConfig(seed=11, edits=8, invalidating_fraction=0.25)
        first = [
            (step.schema, step.edit.to_payload())
            for step, _ in run_evolution_script(build_session(), config)
        ]
        second = [
            (step.schema, step.edit.to_payload())
            for step, _ in run_evolution_script(build_session(), config)
        ]
        assert first == second

    def test_different_seeds_diverge(self):
        base = EvolutionConfig(seed=1, edits=8)
        other = EvolutionConfig(seed=2, edits=8)
        first = [
            step.edit.to_payload()
            for step, _ in run_evolution_script(build_session(), base)
        ]
        second = [
            step.edit.to_payload()
            for step, _ in run_evolution_script(build_session(), other)
        ]
        assert first != second

    def test_invalidating_quota_is_met_and_retracts(self):
        config = EvolutionConfig(seed=7, edits=8, invalidating_fraction=0.25)
        applied = run_evolution_script(build_session(), config)
        invalidating = [
            (step, outcome)
            for step, outcome in applied
            if step.invalidating
        ]
        assert len(invalidating) >= config.invalidating_edits
        for step, outcome in invalidating:
            assert outcome.destructive
            assert outcome.retracted

    def test_zero_fraction_never_drops(self):
        config = EvolutionConfig(seed=5, edits=6, invalidating_fraction=0.0)
        applied = run_evolution_script(build_session(), config)
        assert len(applied) == 6
        assert not any(step.invalidating for step, _ in applied)

    def test_impossible_quota_raises(self):
        session = AnalysisSession()
        from repro.ecr.schema import Schema

        session.add_schema(Schema("lonely"))
        config = EvolutionConfig(seed=1, edits=2, invalidating_fraction=1.0)
        with pytest.raises(SchemaError):
            run_evolution_script(session, config)

    def test_lazy_generation_sees_prior_edits(self):
        # consuming the script while applying is the contract; edit names
        # never collide with what earlier steps created
        session = build_session(seed=9)
        config = EvolutionConfig(seed=3, edits=10, invalidating_fraction=0.2)
        seen = set()
        for step in evolution_script(session, config):
            session.apply_edit(step.schema, step.edit)
            key = (step.schema, str(step.edit.to_payload()))
            assert key not in seen
            seen.add(key)
