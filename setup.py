"""Legacy setup shim.

The offline environment this repo targets has no `wheel` package, so PEP 660
editable installs fail; this shim lets ``pip install -e .`` use the legacy
``setup.py develop`` path. All metadata lives in pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    entry_points={"console_scripts": ["ecr-integrate=repro.tool.app:main"]},
)
