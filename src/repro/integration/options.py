"""Configuration of the integration engine.

The paper fixes one behaviour; a few points it leaves open (or that its
future-work section discusses) are exposed as options so the ablation
benchmarks can compare them.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class IntegrationOptions:
    """Tunable integration behaviour.

    Attributes
    ----------
    pull_up_shared_attributes:
        When a derived (``D_``) parent is created over two siblings, move
        attribute classes shared by both siblings up into the parent.  The
        paper's screens show the shared ``Name`` staying on the children
        (Screen 12 keeps ``D_Name`` on ``Student``), so the default is
        ``False``; switching it on gives the classic
        pull-common-attributes-up generalisation used as an ablation.
    merge_cardinalities_loosely:
        When two relationship sets merge, combine each matched leg's
        cardinality constraints with union (loosest bound, admits every
        instance either view admitted — the default) instead of
        intersection (tightest bound).
    keep_component_descriptions:
        Propagate component descriptions onto merged elements, joined by
        " / ".
    validate_result:
        Run the ECR validator on the integrated schema before returning.
    """

    pull_up_shared_attributes: bool = False
    merge_cardinalities_loosely: bool = True
    keep_component_descriptions: bool = True
    validate_result: bool = True
