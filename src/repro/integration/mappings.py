"""Mappings between component schemas and the integrated schema.

Phase 4 of the methodology generates, for every component schema, the
mapping that an operational system uses after integration:

* in the **logical database design** context, requests against a component
  schema (a user view) are converted into requests against the integrated
  (logical) schema — the *forward* direction; and
* in the **global schema design** context, requests against the integrated
  (global) schema are mapped into requests against the component schemas —
  the *reverse* direction.

A :class:`SchemaMapping` packages both directions for one component schema;
:mod:`repro.query.rewrite` applies them to requests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ecr.schema import Schema
from repro.errors import MappingError
from repro.integration.result import IntegrationResult


@dataclass
class SchemaMapping:
    """The element-level mapping for one component schema.

    ``objects`` maps each component structure name to its integrated
    structure name; ``attributes`` maps each (structure, attribute) to its
    integrated (structure, attribute).
    """

    component_schema: str
    integrated_schema: str
    objects: dict[str, str] = field(default_factory=dict)
    attributes: dict[tuple[str, str], tuple[str, str]] = field(
        default_factory=dict
    )

    # -- forward: component (view) -> integrated (logical schema) -------------

    def map_object(self, name: str) -> str:
        """Integrated structure for a component structure name."""
        try:
            return self.objects[name]
        except KeyError:
            raise MappingError(
                f"{self.component_schema}.{name} has no integrated counterpart"
            ) from None

    def map_attribute(self, object_name: str, attribute: str) -> tuple[str, str]:
        """Integrated (structure, attribute) for a component attribute."""
        try:
            return self.attributes[(object_name, attribute)]
        except KeyError:
            raise MappingError(
                f"{self.component_schema}.{object_name}.{attribute} has no "
                "integrated counterpart"
            ) from None

    # -- reverse: integrated (global schema) -> component (database) -----------

    def objects_mapping_to(self, integrated_name: str) -> list[str]:
        """Component structures that were merged into an integrated one."""
        return [
            name
            for name, target in self.objects.items()
            if target == integrated_name
        ]

    def attributes_mapping_to(
        self, integrated_object: str, integrated_attribute: str
    ) -> list[tuple[str, str]]:
        """Component attributes merged into an integrated attribute."""
        return [
            source
            for source, target in self.attributes.items()
            if target == (integrated_object, integrated_attribute)
        ]

    def covers_object(self, integrated_name: str) -> bool:
        """Whether this component schema contributes to an integrated
        structure (used by the federation router)."""
        return any(
            target == integrated_name for target in self.objects.values()
        )


def build_mappings(
    result: IntegrationResult, schemas: list[Schema]
) -> dict[str, SchemaMapping]:
    """Derive a :class:`SchemaMapping` per component schema from a result."""
    mappings = {
        schema.name: SchemaMapping(schema.name, result.schema.name)
        for schema in schemas
    }
    for ref, node in result.object_mapping.items():
        if ref.schema in mappings:
            mappings[ref.schema].objects[ref.object_name] = node
    for attr_ref, target in result.attribute_mapping.items():
        if attr_ref.schema in mappings:
            mappings[attr_ref.schema].attributes[
                (attr_ref.object_name, attr_ref.attribute)
            ] = target
    return mappings


def compose_mappings(
    earlier: SchemaMapping, later: SchemaMapping
) -> SchemaMapping:
    """Compose two mapping steps (component → mid → final).

    Used by n-ary integration: after integrating the result of a previous
    integration with another schema, the original components map through
    both steps.
    """
    if earlier.integrated_schema != later.component_schema:
        raise MappingError(
            f"cannot compose mapping into {earlier.integrated_schema!r} with "
            f"mapping from {later.component_schema!r}"
        )
    composed = SchemaMapping(earlier.component_schema, later.integrated_schema)
    for name, mid in earlier.objects.items():
        if mid in later.objects:
            composed.objects[name] = later.objects[mid]
    for source, mid in earlier.attributes.items():
        if mid in later.attributes:
            composed.attributes[source] = later.attributes[mid]
    return composed
