"""Small DAG utilities for building IS-A lattices.

Integration produces IS-A edges from three sources — original category
structures, cross-schema ``contained in`` assertions and new derived
parents.  Transitive derivation means redundant edges appear (if A ⊆ B and
B ⊆ C the network also derives A ⊆ C); the lattice keeps only the covering
edges, which is what :func:`transitive_reduction` computes.
"""

from __future__ import annotations

from typing import Hashable, Iterable, TypeVar

from repro.errors import IntegrationError

Node = TypeVar("Node", bound=Hashable)
Edge = tuple[Node, Node]


def _successors(edges: Iterable[Edge]) -> dict:
    adjacency: dict = {}
    for child, parent in edges:
        adjacency.setdefault(child, []).append(parent)
    return adjacency


def ancestors_in_dag(edges: Iterable[Edge], node: Node) -> set:
    """All nodes reachable from ``node`` along (child, parent) edges."""
    adjacency = _successors(edges)
    seen: set = set()
    frontier = list(adjacency.get(node, ()))
    while frontier:
        current = frontier.pop()
        if current in seen:
            continue
        seen.add(current)
        frontier.extend(adjacency.get(current, ()))
    return seen


def check_acyclic(edges: list[Edge]) -> None:
    """Raise :class:`IntegrationError` if the edge set contains a cycle."""
    adjacency = _successors(edges)
    state: dict = {}

    def visit(node) -> None:
        if state.get(node) == "done":
            return
        if state.get(node) == "active":
            raise IntegrationError(f"IS-A cycle through {node!r}")
        state[node] = "active"
        for parent in adjacency.get(node, ()):
            visit(parent)
        state[node] = "done"

    for child, _ in edges:
        visit(child)


def transitive_reduction(edges: list[Edge]) -> list[Edge]:
    """Drop edges implied by longer paths, keeping only covering edges.

    An edge (child, parent) is redundant when parent is reachable from
    child through some *other* outgoing edge.  Input order is preserved
    for the surviving edges.  Raises on cyclic input.
    """
    check_acyclic(edges)
    unique = list(dict.fromkeys(edges))
    kept: list[Edge] = []
    for edge in unique:
        child, parent = edge
        others = [other for other in unique if other != edge]
        if parent not in ancestors_in_dag(others, child):
            kept.append(edge)
    return kept
