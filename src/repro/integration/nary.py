"""N-ary integration: more than two component schemas.

The paper: *"A user can define any number of schemas, but only two schemas
can be integrated at a time.  A result of integration of two schemas can be
integrated with another schema; thus multiple schemas can be integrated."*

:func:`integrate_all` drives that iteration.  The correspondences for each
step come from a :class:`~repro.workloads.oracle.GroundTruth` expressed
over the *original* component schemas; the driver threads them through the
accumulated mappings so that, at every step, the intermediate schema's
elements are matched against the next component correctly — exactly what a
DDA does when reviewing an intermediate result against a new view.
"""

from __future__ import annotations

from repro.assertions.network import AssertionNetwork
from repro.ecr.attributes import AttributeRef
from repro.ecr.schema import ObjectRef, Schema
from repro.equivalence.registry import EquivalenceRegistry
from repro.errors import IntegrationError
from repro.integration.integrator import Integrator
from repro.integration.mappings import SchemaMapping
from repro.integration.options import IntegrationOptions
from repro.integration.result import IntegrationResult
from repro.obs.trace import span
from repro.workloads.oracle import GroundTruth


def integrate_all(
    schemas: list[Schema],
    truth: GroundTruth,
    *,
    result_name: str = "global",
    options: IntegrationOptions | None = None,
) -> tuple[IntegrationResult, dict[str, SchemaMapping]]:
    """Integrate a list of schemas pairwise-left-to-right.

    Returns the final integration result and, for every original component
    schema, the composed mapping into the final integrated schema.
    ``result_name`` and ``options`` are keyword-only.

    Raises
    ------
    IntegrationError
        If fewer than two schemas are given.
    """
    if options is None:
        options = IntegrationOptions()
    if len(schemas) < 2:
        raise IntegrationError("n-ary integration needs at least two schemas")
    # Where every original element currently lives: start with identity.
    object_home: dict[ObjectRef, tuple[str, str]] = {}
    attribute_home: dict[AttributeRef, tuple[str, str, str]] = {}
    current = schemas[0]
    for structure in current:
        ref = ObjectRef(current.name, structure.name)
        object_home[ref] = (current.name, structure.name)
        for attribute in structure.attributes:
            aref = ref.attribute(attribute.name)
            attribute_home[aref] = (current.name, structure.name, attribute.name)
    result: IntegrationResult | None = None
    for step, incoming in enumerate(schemas[1:], start=1):
        step_name = (
            result_name if step == len(schemas) - 1 else f"{result_name}_step{step}"
        )
        with span("phase4.nary.step", step=step, incoming=incoming.name):
            result = _integrate_step(
                current, incoming, truth, object_home, attribute_home,
                options, step_name,
            )
            _advance_homes(result, incoming, object_home, attribute_home)
        current = result.schema
    assert result is not None
    mappings = _final_mappings(schemas, result, object_home, attribute_home)
    return result, mappings


def _integrate_step(
    current: Schema,
    incoming: Schema,
    truth: GroundTruth,
    object_home: dict[ObjectRef, tuple[str, str]],
    attribute_home: dict[AttributeRef, tuple[str, str, str]],
    options: IntegrationOptions,
    step_name: str,
) -> IntegrationResult:
    registry = EquivalenceRegistry([current, incoming])
    _declare_step_equivalences(
        registry, current, incoming, truth, attribute_home
    )
    network = AssertionNetwork()
    network.seed_schema(current)
    network.seed_schema(incoming)
    rel_network = AssertionNetwork()
    rel_network = _seed_relationship_network(current, incoming)
    _specify_step_assertions(
        network, rel_network, current, incoming, truth, object_home
    )
    integrator = Integrator(registry, network, rel_network, options)
    return integrator.integrate(current.name, incoming.name, step_name)


def _seed_relationship_network(
    current: Schema, incoming: Schema
) -> AssertionNetwork:
    rel_network = AssertionNetwork()
    for schema in (current, incoming):
        for relationship in schema.relationship_sets():
            rel_network.add_object(ObjectRef(schema.name, relationship.name))
    return rel_network


def _declare_step_equivalences(
    registry: EquivalenceRegistry,
    current: Schema,
    incoming: Schema,
    truth: GroundTruth,
    attribute_home: dict[AttributeRef, tuple[str, str, str]],
) -> None:
    for first, second in sorted(truth.attribute_pairs):
        sides = []
        for ref in (first, second):
            if ref.schema == incoming.name:
                sides.append(AttributeRef(incoming.name, ref.object_name, ref.attribute))
            elif ref in attribute_home:
                schema_name, object_name, attribute = attribute_home[ref]
                if schema_name != current.name:
                    sides = []
                    break
                sides.append(AttributeRef(current.name, object_name, attribute))
            else:
                sides = []
                break
        if len(sides) != 2 or sides[0].schema == sides[1].schema:
            continue
        registry.declare_equivalent(sides[0], sides[1])


def _specify_step_assertions(
    network: AssertionNetwork,
    rel_network: AssertionNetwork,
    current: Schema,
    incoming: Schema,
    truth: GroundTruth,
    object_home: dict[ObjectRef, tuple[str, str]],
) -> None:
    for relationship_flag, table in (
        (False, truth.object_assertions),
        (True, truth.relationship_assertions),
    ):
        target = rel_network if relationship_flag else network
        seen: set[tuple[ObjectRef, ObjectRef]] = set()
        for (first, second), kind in sorted(
            table.items(), key=lambda item: (str(item[0][0]), str(item[0][1]))
        ):
            refs = _orient_step_pair(
                first, second, current, incoming, object_home
            )
            if refs is None:
                continue
            mapped_first, mapped_second = refs
            if (mapped_first, mapped_second) in seen:
                continue
            seen.add((mapped_first, mapped_second))
            oriented = truth.assertion_between(first, second, relationship_flag)
            if target.assertion_for(mapped_first, mapped_second) is not None:
                continue
            target.specify(mapped_first, mapped_second, oriented)


def _orient_step_pair(
    first: ObjectRef,
    second: ObjectRef,
    current: Schema,
    incoming: Schema,
    object_home: dict[ObjectRef, tuple[str, str]],
) -> tuple[ObjectRef, ObjectRef] | None:
    """Map an original pair onto (current, incoming) refs if it spans them."""

    def locate(ref: ObjectRef) -> ObjectRef | None:
        if ref.schema == incoming.name:
            return ref
        home = object_home.get(ref)
        if home is None or home[0] != current.name:
            return None
        return ObjectRef(current.name, home[1])

    mapped_first = locate(first)
    mapped_second = locate(second)
    if mapped_first is None or mapped_second is None:
        return None
    spans = {mapped_first.schema, mapped_second.schema}
    if spans != {current.name, incoming.name}:
        return None
    return mapped_first, mapped_second


def _advance_homes(
    result: IntegrationResult,
    incoming: Schema,
    object_home: dict[ObjectRef, tuple[str, str]],
    attribute_home: dict[AttributeRef, tuple[str, str, str]],
) -> None:
    """Push every original element's location through the latest step."""
    new_schema = result.schema.name
    for original, (schema_name, object_name) in list(object_home.items()):
        mapped = result.object_mapping.get(ObjectRef(schema_name, object_name))
        if mapped is not None:
            object_home[original] = (new_schema, mapped)
    for structure in incoming:
        ref = ObjectRef(incoming.name, structure.name)
        mapped = result.object_mapping.get(ref)
        if mapped is not None:
            object_home[ref] = (new_schema, mapped)
    for original, (schema_name, object_name, attribute) in list(
        attribute_home.items()
    ):
        mapped = result.attribute_mapping.get(
            AttributeRef(schema_name, object_name, attribute)
        )
        if mapped is not None:
            attribute_home[original] = (new_schema, mapped[0], mapped[1])
    for structure in incoming:
        for attribute in structure.attributes:
            aref = AttributeRef(incoming.name, structure.name, attribute.name)
            mapped = result.attribute_mapping.get(aref)
            if mapped is not None:
                attribute_home[aref] = (new_schema, mapped[0], mapped[1])


def _final_mappings(
    schemas: list[Schema],
    result: IntegrationResult,
    object_home: dict[ObjectRef, tuple[str, str]],
    attribute_home: dict[AttributeRef, tuple[str, str, str]],
) -> dict[str, SchemaMapping]:
    final_name = result.schema.name
    mappings = {
        schema.name: SchemaMapping(schema.name, final_name) for schema in schemas
    }
    for original, (schema_name, object_name) in object_home.items():
        if schema_name == final_name and original.schema in mappings:
            mappings[original.schema].objects[original.object_name] = object_name
    for original, (schema_name, object_name, attribute) in attribute_home.items():
        if schema_name == final_name and original.schema in mappings:
            mappings[original.schema].attributes[
                (original.object_name, original.attribute)
            ] = (object_name, attribute)
    return mappings
