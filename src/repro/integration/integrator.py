"""The integration engine: Phase 4 of the methodology.

Orchestrates object-class integration, relationship-set integration and
mapping generation for one pair of component schemas, following Section 3.5
of the paper:

1. **clusters** of related objects are formed (logged, for the trace);
2. object classes connected by ``equals`` merge; ``contained in`` pairs
   become IS-A edges; decided ``may be``/``disjoint integrable`` pairs get
   a new derived parent — together these form the IS-A lattice;
3. attributes are merged within each integrated class by equivalence
   class, with cross-level classes absorbed into the highest class that
   owns them (this is how ``Student`` ends up with ``D_Name`` composed of
   ``sc1.Student.Name`` and ``sc2.Grad_student.Name``, Screen 12);
4. relationship sets integrate the same way, their legs re-pointed at the
   integrated object classes; and
5. the component→integrated mappings are recorded on the result.
"""

from __future__ import annotations

from repro.assertions.kinds import Relation
from repro.assertions.network import AssertionNetwork
from repro.ecr.objects import Category, EntitySet
from repro.ecr.relationships import (
    CardinalityConstraint,
    Participation,
    RelationshipSet,
)
from repro.ecr.schema import ObjectRef, Schema
from repro.ecr.validation import assert_valid
from repro.equivalence.registry import EquivalenceRegistry
from repro.equivalence.union_find import DisjointSet
from repro.errors import IntegrationError
from repro.integration.attribute_merge import AttributePool, merge_pool
from repro.integration.clusters import compute_clusters
from repro.integration.lattice import ancestors_in_dag, transitive_reduction
from repro.integration.naming import NamePool, derived_name, equivalent_name
from repro.integration.options import IntegrationOptions
from repro.integration.result import IntegratedNode, IntegrationResult
from repro.obs.trace import span


def canonical_assertions(network: AssertionNetwork) -> list:
    """The network's assertions in history-independent order.

    Specification order varies with the DDA's path through a sitting and
    is deliberately dropped by the canonical state payload (snapshots,
    persistence), so a restored session re-specifies in sorted order.
    Integration output must be identical either way — every pass over the
    network iterates in this order, sorted by endpoint names.
    """
    return sorted(
        network.all_assertions(),
        key=lambda assertion: (str(assertion.first), str(assertion.second)),
    )


class Integrator:
    """Integrates pairs of schemas registered in an equivalence registry."""

    def __init__(
        self,
        registry: EquivalenceRegistry,
        network: AssertionNetwork,
        relationship_network: AssertionNetwork | None = None,
        options: IntegrationOptions = IntegrationOptions(),
        *,
        merge_memo=None,
    ) -> None:
        self._registry = registry
        self._network = network
        self._relationship_network = relationship_network
        self._options = options
        #: optional cross-run attribute-merge cache (evolution patching);
        #: a :class:`~repro.integration.patching.MergeMemo` or ``None``
        self._merge_memo = merge_memo

    def _merge(self, pool: AttributePool):
        """Merge one pool, through the memo when one is plugged in."""
        if self._merge_memo is None:
            return merge_pool(pool, self._registry, self._options)
        return self._merge_memo.merge(pool, self._registry, self._options)

    # -- public API -----------------------------------------------------------

    def integrate(
        self,
        first_schema: str,
        second_schema: str,
        result_name: str = "integrated",
    ) -> IntegrationResult:
        """Integrate two registered schemas into one integrated schema."""
        schema_a = self._registry.schema(first_schema)
        schema_b = self._registry.schema(second_schema)
        counters = self._registry.counters
        with span(
            "phase4.integrate",
            counters=counters,
            first=first_schema,
            second=second_schema,
        ):
            result = IntegrationResult(Schema(result_name))
            names = NamePool()
            with span("phase4.clusters", counters=counters):
                self._log_clusters(schema_a, schema_b, result)
            with span("phase4.objects.merge", counters=counters):
                groups, node_names, members_by_node = self._merge_object_classes(
                    schema_a, schema_b, names, result
                )
            with span("phase4.isa.edges", counters=counters):
                edges = self._collect_isa_edges(
                    schema_a, schema_b, groups, node_names
                )
            with span("phase4.isa.derived_parents", counters=counters):
                edges = self._add_derived_parents(
                    schema_a, schema_b, groups, node_names, members_by_node,
                    names, edges, result,
                )
                edges = transitive_reduction(edges)
            with span("phase4.objects.build", counters=counters):
                self._build_object_classes(
                    members_by_node, edges, result
                )
            with span("phase4.relationships.merge", counters=counters):
                self._merge_relationship_sets(
                    schema_a, schema_b, names, result
                )
            if self._options.validate_result:
                with span("phase4.validate", counters=counters):
                    assert_valid(result.schema)
            result.note(f"integration complete: {result.schema.summary()}")
            return result

    # -- phase logging -----------------------------------------------------------

    def _log_clusters(
        self, schema_a: Schema, schema_b: Schema, result: IntegrationResult
    ) -> None:
        refs = self._object_refs(schema_a) + self._object_refs(schema_b)
        clusters = compute_clusters(self._network, refs)
        multi = [cluster for cluster in clusters if not cluster.is_singleton]
        result.note(
            f"clusters: {len(clusters)} total, {len(multi)} with "
            f"cross-schema structure"
        )
        for cluster in multi:
            result.note(f"  cluster {cluster}")

    @staticmethod
    def _object_refs(schema: Schema) -> list[ObjectRef]:
        return [
            ObjectRef(schema.name, structure.name)
            for structure in schema.object_classes()
        ]

    # -- object-class merging ------------------------------------------------------

    def _merge_object_classes(
        self,
        schema_a: Schema,
        schema_b: Schema,
        names: NamePool,
        result: IntegrationResult,
    ) -> tuple[
        DisjointSet[ObjectRef],
        dict[ObjectRef, str],
        dict[str, list[ObjectRef]],
    ]:
        """Group object classes by ``equals`` assertions and name the groups."""
        refs = self._object_refs(schema_a) + self._object_refs(schema_b)
        chosen = set(refs)
        groups: DisjointSet[ObjectRef] = DisjointSet(refs)
        for assertion in canonical_assertions(self._network):
            if (
                assertion.relation is Relation.EQ
                and assertion.first in chosen
                and assertion.second in chosen
            ):
                groups.union(assertion.first, assertion.second)
        node_names: dict[ObjectRef, str] = {}
        members_by_node: dict[str, list[ObjectRef]] = {}
        for members in groups.classes():
            if len(members) == 1:
                node_name = names.claim(members[0].object_name)
                origin = "copy"
            else:
                node_name = names.claim(
                    equivalent_name([member.object_name for member in members])
                )
                origin = "equivalent"
                result.note(
                    f"equals merge: {node_name} <- "
                    + ", ".join(str(member) for member in members)
                )
            for member in members:
                node_names[member] = node_name
                result.object_mapping[member] = node_name
            members_by_node[node_name] = list(members)
            result.nodes[node_name] = IntegratedNode(
                node_name, list(members), origin
            )
        return groups, node_names, members_by_node

    def _collect_isa_edges(
        self,
        schema_a: Schema,
        schema_b: Schema,
        groups: DisjointSet[ObjectRef],
        node_names: dict[ObjectRef, str],
    ) -> list[tuple[str, str]]:
        """IS-A edges from definite containments and original categories."""
        chosen = set(node_names)
        edges: list[tuple[str, str]] = []
        for assertion in canonical_assertions(self._network):
            if assertion.first not in chosen or assertion.second not in chosen:
                continue
            if assertion.relation is Relation.PP:
                child, parent = assertion.first, assertion.second
            elif assertion.relation is Relation.PPI:
                child, parent = assertion.second, assertion.first
            else:
                continue
            child_node = node_names[child]
            parent_node = node_names[parent]
            if child_node != parent_node:
                edges.append((child_node, parent_node))
        for schema in (schema_a, schema_b):
            for category in schema.categories():
                child_node = node_names[ObjectRef(schema.name, category.name)]
                for parent in category.parents:
                    parent_node = node_names[ObjectRef(schema.name, parent)]
                    if child_node != parent_node:
                        edges.append((child_node, parent_node))
        return list(dict.fromkeys(edges))

    def _add_derived_parents(
        self,
        schema_a: Schema,
        schema_b: Schema,
        groups: DisjointSet[ObjectRef],
        node_names: dict[ObjectRef, str],
        members_by_node: dict[str, list[ObjectRef]],
        names: NamePool,
        edges: list[tuple[str, str]],
        result: IntegrationResult,
    ) -> list[tuple[str, str]]:
        """Create ``D_`` parents for decided overlap/disjoint-integrable pairs."""
        chosen = set(node_names)
        seen_pairs: set[frozenset[str]] = set()
        for assertion in canonical_assertions(self._network):
            if assertion.first not in chosen or assertion.second not in chosen:
                continue
            if assertion.relation not in (Relation.PO, Relation.DR):
                continue
            if not (assertion.kind.integrable and assertion.integrability_decided):
                continue
            node_a = node_names[assertion.first]
            node_b = node_names[assertion.second]
            if node_a == node_b:
                continue
            pair = frozenset({node_a, node_b})
            if pair in seen_pairs:
                continue
            seen_pairs.add(pair)
            parent_name = names.claim(derived_name([node_a, node_b]))
            components = list(members_by_node[node_a]) + list(
                members_by_node[node_b]
            )
            result.nodes[parent_name] = IntegratedNode(
                parent_name, components, "derived-parent"
            )
            members_by_node[parent_name] = []
            edges.append((node_a, parent_name))
            edges.append((node_b, parent_name))
            result.note(
                f"derived parent: {parent_name} over {node_a}, {node_b} "
                f"({assertion.kind.describe(str(assertion.first), str(assertion.second))})"
            )
        return edges

    # -- attribute placement and final construction -----------------------------------

    def _build_object_classes(
        self,
        members_by_node: dict[str, list[ObjectRef]],
        edges: list[tuple[str, str]],
        result: IntegrationResult,
    ) -> None:
        pools = self._gather_pools(members_by_node)
        self._absorb_upward(pools, edges)
        if self._options.pull_up_shared_attributes:
            self._pull_up_to_derived_parents(pools, edges, result)
        parents_of: dict[str, list[str]] = {}
        for child, parent in edges:
            parents_of.setdefault(child, []).append(parent)
        for node_name, pool in pools.items():
            attributes, origins = self._merge(pool)
            description = self._merged_description(members_by_node[node_name])
            parents = parents_of.get(node_name, [])
            if parents:
                structure = Category(
                    node_name, attributes, description, parents=parents
                )
            else:
                structure = EntitySet(node_name, attributes, description)
            result.schema.add(structure)
            for origin in origins:
                result.attribute_origins[(node_name, origin.attribute)] = origin
                for component in origin.components:
                    result.attribute_mapping[component] = (
                        node_name,
                        origin.attribute,
                    )
                if origin.is_derived:
                    result.note(
                        f"derived attribute: {node_name}.{origin.attribute} <- "
                        + ", ".join(str(ref) for ref in origin.components)
                    )

    def _gather_pools(
        self, members_by_node: dict[str, list[ObjectRef]]
    ) -> dict[str, AttributePool]:
        pools: dict[str, AttributePool] = {}
        for node_name, members in members_by_node.items():
            pool = AttributePool(node_name)
            for member in members:
                schema = self._registry.schema(member.schema)
                structure = schema.get(member.object_name)
                for attribute in structure.attributes:
                    pool.add(member.attribute(attribute.name), attribute)
            pools[node_name] = pool
        return pools

    def _absorb_upward(
        self, pools: dict[str, AttributePool], edges: list[tuple[str, str]]
    ) -> None:
        """Move equivalence classes owned along an IS-A chain to the top owner.

        When a contained class shares an attribute class with its container
        (``Grad_student.Name`` with ``Student.Name``), the container absorbs
        the contained copy, producing a single derived attribute at the top
        and plain inheritance below — Screen 12's ``D_Name``.
        """
        order = list(pools)
        owners_of: dict[int, list[str]] = {}
        for node_name in order:
            for class_number in pools[node_name].class_numbers(self._registry):
                owners_of.setdefault(class_number, []).append(node_name)
        for class_number, owners in owners_of.items():
            if len(owners) < 2:
                continue
            owner_set = set(owners)
            for node_name in owners:
                ancestor_owners = [
                    other
                    for other in order
                    if other in owner_set
                    and other != node_name
                    and other in ancestors_in_dag(edges, node_name)
                ]
                if not ancestor_owners:
                    continue
                top = self._topmost(ancestor_owners, edges)
                for ref, attribute in pools[node_name].take_class(
                    self._registry, class_number
                ):
                    pools[top].add(ref, attribute)

    @staticmethod
    def _topmost(candidates: list[str], edges: list[tuple[str, str]]) -> str:
        """The candidate with no other candidate above it (first such wins)."""
        for candidate in candidates:
            above = ancestors_in_dag(edges, candidate)
            if not any(other in above for other in candidates if other != candidate):
                return candidate
        return candidates[0]

    def _pull_up_to_derived_parents(
        self,
        pools: dict[str, AttributePool],
        edges: list[tuple[str, str]],
        result: IntegrationResult,
    ) -> None:
        """Optional ablation: move classes shared by all children into a D_ parent."""
        children_of: dict[str, list[str]] = {}
        for child, parent in edges:
            if result.nodes.get(parent) is not None and result.nodes[parent].is_derived:
                children_of.setdefault(parent, []).append(child)
        for parent, children in children_of.items():
            if len(children) < 2:
                continue
            shared = set.intersection(
                *(pools[child].class_numbers(self._registry) for child in children)
            )
            for class_number in sorted(shared):
                for child in children:
                    for ref, attribute in pools[child].take_class(
                        self._registry, class_number
                    ):
                        pools[parent].add(ref, attribute)

    def _merged_description(self, members: list[ObjectRef]) -> str:
        if not self._options.keep_component_descriptions:
            return ""
        parts = []
        for member in members:
            structure = self._registry.schema(member.schema).get(member.object_name)
            if structure.description:
                parts.append(structure.description)
        return " / ".join(dict.fromkeys(parts))

    # -- relationship sets ---------------------------------------------------------

    def _merge_relationship_sets(
        self,
        schema_a: Schema,
        schema_b: Schema,
        names: NamePool,
        result: IntegrationResult,
    ) -> None:
        refs = [
            ObjectRef(schema.name, relationship.name)
            for schema in (schema_a, schema_b)
            for relationship in schema.relationship_sets()
        ]
        chosen = set(refs)
        groups: DisjointSet[ObjectRef] = DisjointSet(refs)
        rel_net = self._relationship_network
        if rel_net is not None:
            for assertion in canonical_assertions(rel_net):
                if (
                    assertion.relation is Relation.EQ
                    and assertion.first in chosen
                    and assertion.second in chosen
                ):
                    groups.union(assertion.first, assertion.second)
        node_of: dict[ObjectRef, str] = {}
        for members in groups.classes():
            node_name = self._build_relationship_node(members, names, result)
            for member in members:
                node_of[member] = node_name
                result.object_mapping[member] = node_name
        if rel_net is not None:
            self._derived_relationship_parents(
                rel_net, chosen, node_of, names, result
            )

    def _build_relationship_node(
        self,
        members: list[ObjectRef],
        names: NamePool,
        result: IntegrationResult,
    ) -> str:
        participations = self._merged_participations(members, result)
        if len(members) == 1:
            node_name = names.claim(members[0].object_name)
            origin = "copy"
        else:
            subject = participations[0].object_name if participations else None
            node_name = names.claim(
                equivalent_name(
                    [member.object_name for member in members], subject=subject
                )
            )
            origin = "equivalent"
            result.note(
                f"equals merge (relationship): {node_name} <- "
                + ", ".join(str(member) for member in members)
            )
        pool = AttributePool(node_name)
        for member in members:
            schema = self._registry.schema(member.schema)
            structure = schema.get(member.object_name)
            for attribute in structure.attributes:
                pool.add(member.attribute(attribute.name), attribute)
        attributes, origins = self._merge(pool)
        result.schema.add(
            RelationshipSet(
                node_name,
                attributes,
                self._merged_description(members),
                participations=participations,
            )
        )
        result.nodes[node_name] = IntegratedNode(node_name, list(members), origin)
        for origin_record in origins:
            key = (node_name, origin_record.attribute)
            result.attribute_origins[key] = origin_record
            for component in origin_record.components:
                result.attribute_mapping[component] = key
        return node_name

    def _merged_participations(
        self, members: list[ObjectRef], result: IntegrationResult
    ) -> list[Participation]:
        """Re-point every leg at integrated nodes and merge matching legs."""
        merged: dict[tuple[str, str], Participation] = {}
        for member in members:
            schema = self._registry.schema(member.schema)
            relationship = schema.relationship_set(member.object_name)
            for leg in relationship.participations:
                target_ref = ObjectRef(member.schema, leg.object_name)
                target = result.object_mapping.get(target_ref)
                if target is None:
                    raise IntegrationError(
                        f"relationship {member} connects {target_ref}, which "
                        "was not integrated"
                    )
                key = (target, leg.role)
                if key in merged:
                    merged[key] = Participation(
                        target,
                        self._combine_cardinality(
                            merged[key].cardinality, leg.cardinality
                        ),
                        leg.role,
                    )
                else:
                    merged[key] = Participation(target, leg.cardinality, leg.role)
        return self._coalesce_isa_legs(merged, result)

    def _combine_cardinality(
        self, first: CardinalityConstraint, second: CardinalityConstraint
    ) -> CardinalityConstraint:
        if self._options.merge_cardinalities_loosely:
            return first.union(second)
        return first.intersect(second)

    def _coalesce_isa_legs(
        self,
        merged: dict[tuple[str, str], Participation],
        result: IntegrationResult,
    ) -> list[Participation]:
        """Fold legs whose targets are IS-A related onto the general class.

        When ``sc1.Majors`` connects ``Student`` and ``sc2.Majors`` connects
        ``Grad_student``, and ``Grad_student`` became a category of
        ``Student``, the merged ``E_Stud_Majo`` connects just ``Student`` —
        the grad students participate through inheritance (Figure 5 shows a
        binary relationship).
        """
        from repro.ecr.walk import superclass_closure

        legs = list(merged.values())
        final: list[Participation] = []
        for leg in legs:
            ancestors = set(
                superclass_closure(result.schema, leg.object_name)
            )
            absorber = next(
                (
                    other
                    for other in legs
                    if other is not leg
                    and other.role == leg.role
                    and other.object_name in ancestors
                ),
                None,
            )
            if absorber is None:
                final.append(leg)
        absorbed = [leg for leg in legs if leg not in final]
        for leg in absorbed:
            for index, kept in enumerate(final):
                ancestors = set(superclass_closure(result.schema, leg.object_name))
                if kept.role == leg.role and kept.object_name in ancestors:
                    final[index] = Participation(
                        kept.object_name,
                        self._combine_cardinality(
                            kept.cardinality, leg.cardinality
                        ),
                        kept.role,
                    )
                    break
        return final

    def _derived_relationship_parents(
        self,
        rel_net: AssertionNetwork,
        chosen: set[ObjectRef],
        node_of: dict[ObjectRef, str],
        names: NamePool,
        result: IntegrationResult,
    ) -> None:
        """Record lattice edges and D_ parents for non-equals relationship
        assertions (the ECR model has no relationship categories, so the
        lattice lives on the result)."""
        seen_pairs: set[frozenset[str]] = set()
        for assertion in canonical_assertions(rel_net):
            if assertion.first not in chosen or assertion.second not in chosen:
                continue
            node_a = node_of[assertion.first]
            node_b = node_of[assertion.second]
            if node_a == node_b:
                continue
            if assertion.relation is Relation.PP:
                result.relationship_lattice.append((node_a, node_b))
                continue
            if assertion.relation is Relation.PPI:
                result.relationship_lattice.append((node_b, node_a))
                continue
            if assertion.relation not in (Relation.PO, Relation.DR):
                continue
            if not (assertion.kind.integrable and assertion.integrability_decided):
                continue
            pair = frozenset({node_a, node_b})
            if pair in seen_pairs:
                continue
            seen_pairs.add(pair)
            parent_name = names.claim(derived_name([node_a, node_b]))
            legs = self._union_legs(result.schema, node_a, node_b)
            result.schema.add(RelationshipSet(parent_name, participations=legs))
            result.nodes[parent_name] = IntegratedNode(
                parent_name,
                result.nodes[node_a].components + result.nodes[node_b].components,
                "derived-parent",
            )
            result.relationship_lattice.append((node_a, parent_name))
            result.relationship_lattice.append((node_b, parent_name))
            result.note(
                f"derived relationship parent: {parent_name} over "
                f"{node_a}, {node_b}"
            )

    @staticmethod
    def _union_legs(
        schema: Schema, node_a: str, node_b: str
    ) -> list[Participation]:
        merged: dict[tuple[str, str], Participation] = {}
        for node in (node_a, node_b):
            for leg in schema.relationship_set(node).participations:
                key = (leg.object_name, leg.role)
                if key in merged:
                    merged[key] = Participation(
                        leg.object_name,
                        merged[key].cardinality.union(leg.cardinality),
                        leg.role,
                    )
                else:
                    merged[key] = leg
        return list(merged.values())


def integrate_pair(
    registry: EquivalenceRegistry,
    network: AssertionNetwork,
    first_schema: str,
    second_schema: str,
    *,
    relationship_network: AssertionNetwork | None = None,
    options: IntegrationOptions | None = None,
    result_name: str = "integrated",
    merge_memo=None,
) -> IntegrationResult:
    """Convenience wrapper: integrate two registered schemas in one call.

    ``relationship_network``, ``options``, ``result_name`` and
    ``merge_memo`` are keyword-only.
    """
    if options is None:
        options = IntegrationOptions()
    integrator = Integrator(
        registry, network, relationship_network, options,
        merge_memo=merge_memo,
    )
    return integrator.integrate(first_schema, second_schema, result_name)
