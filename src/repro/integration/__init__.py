"""Schema integration (Phase 4).

Given two component schemas, the DDA's attribute equivalences and a
consistent assertion network, the integrator produces the integrated
schema:

* object classes connected by an ``equals`` assertion merge into one class
  (``E_`` prefix when the merge spans names);
* a ``contained in`` object class becomes a category of its container, its
  equivalent attributes absorbed into the container as derived (``D_``)
  attributes with recorded component attributes (Screens 12a/12b);
* ``may be`` and ``disjoint integrable`` pairs acquire a new derived
  parent class (``D_`` prefix built from four-letter abbreviations:
  ``D_Stud_Facu``) with both classes as categories;
* relationship sets integrate analogously, their participants re-pointed
  at the integrated object classes; and
* mappings from every component schema to the integrated schema are
  generated for request translation.

Clusters — groups of objects connected by any assertion except disjoint
non-integrable — partition the work.
"""

from repro.integration.naming import (
    abbreviate,
    derived_name,
    equivalent_name,
    merged_attribute_name,
    NamePool,
)
from repro.integration.clusters import Cluster, compute_clusters, connects_pair
from repro.integration.lattice import transitive_reduction, ancestors_in_dag
from repro.integration.result import (
    IntegrationResult,
    IntegratedNode,
    AttributeOrigin,
)
from repro.integration.options import IntegrationOptions
from repro.integration.integrator import Integrator, integrate_pair
from repro.integration.mappings import SchemaMapping, build_mappings
from repro.integration.nary import integrate_all

__all__ = [
    "abbreviate",
    "derived_name",
    "equivalent_name",
    "merged_attribute_name",
    "NamePool",
    "Cluster",
    "compute_clusters",
    "connects_pair",
    "transitive_reduction",
    "ancestors_in_dag",
    "IntegrationResult",
    "IntegratedNode",
    "AttributeOrigin",
    "IntegrationOptions",
    "Integrator",
    "integrate_pair",
    "SchemaMapping",
    "build_mappings",
    "integrate_all",
]
