"""Merging attributes during integration.

Every integrated object class or relationship set owns a pool of *attribute
instances* — (qualified original attribute, attribute) pairs gathered from
the component structures merged into it.  Instances in the same equivalence
class merge into one **derived attribute** (``D_`` prefix) whose component
attributes are recorded for the Component Attribute Screens (12a/12b);
instances alone in their class are copied through unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ecr.attributes import Attribute, AttributeRef
from repro.equivalence.registry import EquivalenceRegistry
from repro.integration.naming import NamePool, merged_attribute_name
from repro.integration.options import IntegrationOptions
from repro.integration.result import AttributeOrigin


@dataclass
class AttributePool:
    """The attribute instances accumulated for one integrated structure."""

    node: str
    #: (original ref, attribute) in gathering order
    instances: list[tuple[AttributeRef, Attribute]] = field(default_factory=list)

    def add(self, ref: AttributeRef, attribute: Attribute) -> None:
        self.instances.append((ref, attribute))

    def take_class(
        self, registry: EquivalenceRegistry, class_number: int
    ) -> list[tuple[AttributeRef, Attribute]]:
        """Remove and return the instances belonging to one equivalence class."""
        taken = [
            (ref, attribute)
            for ref, attribute in self.instances
            if registry.class_number(ref) == class_number
        ]
        self.instances = [
            (ref, attribute)
            for ref, attribute in self.instances
            if registry.class_number(ref) != class_number
        ]
        return taken

    def class_numbers(self, registry: EquivalenceRegistry) -> set[int]:
        """Equivalence classes represented in this pool."""
        return {registry.class_number(ref) for ref, _ in self.instances}


def merge_pool(
    pool: AttributePool,
    registry: EquivalenceRegistry,
    options: IntegrationOptions,
) -> tuple[list[Attribute], list[AttributeOrigin]]:
    """Merge a pool into final attributes plus their provenance records.

    Instances are grouped by equivalence class in first-appearance order.
    A multi-instance class yields a derived attribute named
    ``D_<common name>`` (or ``D_<abbr>_<abbr>`` for differing names) whose
    key flag is the conjunction of the components' flags and whose domain is
    the first component's.  Names are made unique within the structure.
    """
    groups: dict[int, list[tuple[AttributeRef, Attribute]]] = {}
    for ref, attribute in pool.instances:
        groups.setdefault(registry.class_number(ref), []).append((ref, attribute))
    names = NamePool()
    merged: list[Attribute] = []
    origins: list[AttributeOrigin] = []
    for members in groups.values():
        refs = tuple(ref for ref, _ in members)
        attributes = [attribute for _, attribute in members]
        if len(members) == 1:
            final = attributes[0].renamed(names.claim(attributes[0].name))
        else:
            name = names.claim(
                merged_attribute_name([attribute.name for attribute in attributes])
            )
            description = ""
            if options.keep_component_descriptions:
                parts = [a.description for a in attributes if a.description]
                description = " / ".join(dict.fromkeys(parts))
            final = Attribute(
                name,
                attributes[0].domain,
                all(attribute.is_key for attribute in attributes),
                description,
            )
        merged.append(final)
        origins.append(AttributeOrigin(pool.node, final.name, refs))
    return merged, origins
