"""Localized re-integration after a schema edit.

A schema edit rarely moves more than a corner of the integrated schema:
one cluster gains or loses a member, one merged class re-derives its
attributes, everything else comes out bitwise identical.  This module
keeps re-integration proportional to that corner:

* :class:`MergeMemo` memoizes :func:`~repro.integration.attribute_merge.merge_pool`
  on a signature covering *all* of its inputs (the pooled instances,
  their equivalence-class numbers and the relevant options), so a
  patching re-integration re-merges only the attribute groups an edit
  actually disturbed — every untouched group is a memo hit.  Because the
  signature is complete, a hit is provably identical to a recomputation;
  no divergence from the from-scratch oracle is possible.
* :func:`cluster_snapshot` / :func:`diff_clusters` measure how many
  clusters of the pair actually changed membership, feeding the
  repair-scope report ("2/14 clusters").
* :func:`patch_integration` runs the (deterministic) integrator over the
  edited pair with the memo plugged in and returns a :class:`PatchReport`
  carrying the new result plus the counts.  Stable naming falls out of
  determinism: the :class:`~repro.integration.naming.NamePool` claims
  names in canonical order, so structures the edit did not touch keep
  their names.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.assertions.network import AssertionNetwork
from repro.ecr.json_io import attribute_to_dict
from repro.ecr.schema import ObjectRef, Schema
from repro.equivalence.registry import EquivalenceRegistry
from repro.integration.attribute_merge import AttributePool, merge_pool
from repro.integration.clusters import compute_clusters
from repro.integration.integrator import Integrator
from repro.integration.options import IntegrationOptions
from repro.integration.result import IntegrationResult
from repro.obs.trace import span


class MergeMemo:
    """A cross-integration cache of :func:`merge_pool` outcomes.

    Keyed by a complete signature of the merge inputs; values are the
    (attributes, origins) pair merge_pool returned.  Attributes and
    origins are frozen, so sharing them across results is safe — callers
    get fresh lists.  ``hits``/``misses`` count the current integration
    run (reset via :meth:`reset_counts`); ``misses`` is exactly the
    number of attribute groups that had to be re-merged.
    """

    def __init__(self) -> None:
        self._entries: dict[str, tuple[tuple, tuple]] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def reset_counts(self) -> None:
        self.hits = 0
        self.misses = 0

    def merge(
        self,
        pool: AttributePool,
        registry: EquivalenceRegistry,
        options: IntegrationOptions,
    ) -> tuple[list, list]:
        key = self._signature(pool, registry, options)
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            return list(cached[0]), list(cached[1])
        self.misses += 1
        attributes, origins = merge_pool(pool, registry, options)
        self._entries[key] = (tuple(attributes), tuple(origins))
        return attributes, origins

    @staticmethod
    def _signature(
        pool: AttributePool,
        registry: EquivalenceRegistry,
        options: IntegrationOptions,
    ) -> str:
        instances = [
            (
                str(ref),
                attribute_to_dict(attribute),
                registry.class_number(ref),
            )
            for ref, attribute in pool.instances
        ]
        return json.dumps(
            [
                pool.node,
                options.keep_component_descriptions,
                instances,
            ],
            sort_keys=True,
            separators=(",", ":"),
        )


@dataclass
class PatchReport:
    """What one localized re-integration produced and recomputed."""

    result: IntegrationResult
    clusters: tuple[frozenset[ObjectRef], ...]
    clusters_changed: int = 0
    clusters_total: int = 0
    merge_groups_recomputed: int = 0
    merge_groups_total: int = 0


def pair_object_refs(
    registry: EquivalenceRegistry, first: str, second: str
) -> list[ObjectRef]:
    """The object-class refs of one schema pair, in registration order."""
    refs: list[ObjectRef] = []
    for name in (first, second):
        schema = registry.schema(name)
        refs.extend(
            ObjectRef(schema.name, structure.name)
            for structure in schema.object_classes()
        )
    return refs


def cluster_snapshot(
    network: AssertionNetwork, refs: list[ObjectRef]
) -> tuple[frozenset[ObjectRef], ...]:
    """The pair's cluster partition as comparable member sets."""
    return tuple(
        frozenset(cluster.members)
        for cluster in compute_clusters(network, refs)
    )


def diff_clusters(
    previous: tuple[frozenset[ObjectRef], ...] | None,
    current: tuple[frozenset[ObjectRef], ...],
) -> int:
    """How many current clusters have no identical predecessor."""
    if previous is None:
        return len(current)
    seen = set(previous)
    return sum(1 for cluster in current if cluster not in seen)


def patch_integration(
    registry: EquivalenceRegistry,
    network: AssertionNetwork,
    relationship_network: AssertionNetwork | None,
    first: str,
    second: str,
    *,
    options: IntegrationOptions,
    result_name: str,
    memo: MergeMemo,
    previous_clusters: tuple[frozenset[ObjectRef], ...] | None = None,
) -> PatchReport:
    """Re-integrate one pair after an edit, reusing every untouched merge.

    The integrator itself is deterministic, so the patched result is the
    same object the from-scratch oracle would build; the memo makes the
    attribute-merge phase proportional to what the edit disturbed, and
    the cluster diff measures the blast radius for the repair report.
    """
    refs = pair_object_refs(registry, first, second)
    clusters = cluster_snapshot(network, refs)
    memo.reset_counts()
    with span(
        "evolution.repair.integration",
        counters=registry.counters,
        first=first,
        second=second,
    ):
        integrator = Integrator(
            registry,
            network,
            relationship_network,
            options,
            merge_memo=memo,
        )
        result = integrator.integrate(first, second, result_name)
    return PatchReport(
        result=result,
        clusters=clusters,
        clusters_changed=diff_clusters(previous_clusters, clusters),
        clusters_total=len(clusters),
        merge_groups_recomputed=memo.misses,
        merge_groups_total=memo.hits + memo.misses,
    )


__all__ = [
    "MergeMemo",
    "PatchReport",
    "cluster_snapshot",
    "diff_clusters",
    "pair_object_refs",
    "patch_integration",
]
