"""Clusters: the integration units.

The paper: *"This involves creating clusters of entity sets.  A cluster is
a group of related objects that are connected by any assertion except
disjoint [non]integrable.  The concept of cluster helps in partitioning the
schemas to more manageable subsets."*

A pair *connects* when its assertion (specified or derived) is integrable
and actionable: equals / contained-in / contains always; may-be and
disjoint-integrable only when the DDA has actually decided integrability
(a *derived* disjointness whose integrability nobody confirmed must not
invent a new object class).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.assertions.assertion import Assertion
from repro.assertions.kinds import Relation
from repro.assertions.network import AssertionNetwork
from repro.ecr.schema import ObjectRef
from repro.equivalence.union_find import DisjointSet


def connects_pair(assertion: Assertion) -> bool:
    """Whether an assertion places its two objects in one cluster."""
    if not assertion.kind.integrable:
        return False
    if assertion.relation in (Relation.EQ, Relation.PP, Relation.PPI):
        return True
    # Overlap/disjoint pairs integrate only on an explicit DDA decision.
    return assertion.integrability_decided


@dataclass
class Cluster:
    """One group of object classes integrated together."""

    members: list[ObjectRef]
    assertions: list[Assertion] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.members)

    @property
    def is_singleton(self) -> bool:
        """A cluster of one object — copied into the integrated schema as-is."""
        return len(self.members) == 1

    def __str__(self) -> str:
        return "{" + ", ".join(str(member) for member in self.members) + "}"


def compute_clusters(
    network: AssertionNetwork,
    objects: list[ObjectRef] | None = None,
) -> list[Cluster]:
    """Partition objects into clusters by connecting assertions.

    ``objects`` restricts the partition (e.g. to the two schemas being
    integrated); by default all network objects are clustered.  Clusters
    are returned in first-member registration order; singleton clusters
    are included.
    """
    if objects is None:
        objects = network.objects()
    chosen = set(objects)
    groups: DisjointSet[ObjectRef] = DisjointSet(objects)
    connecting: list[Assertion] = []
    for assertion in network.all_assertions():
        if assertion.first not in chosen or assertion.second not in chosen:
            continue
        if connects_pair(assertion):
            groups.union(assertion.first, assertion.second)
            connecting.append(assertion)
    clusters = [Cluster(members) for members in groups.classes()]
    by_root = {
        groups.find(cluster.members[0]): cluster for cluster in clusters
    }
    for assertion in connecting:
        by_root[groups.find(assertion.first)].assertions.append(assertion)
    return clusters


def cluster_of(
    clusters: list[Cluster], ref: ObjectRef
) -> Cluster | None:
    """The cluster containing ``ref``, if any."""
    for cluster in clusters:
        if ref in cluster.members:
            return cluster
    return None
