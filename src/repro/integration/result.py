"""The integration result: integrated schema plus full provenance.

The browse screens (10-12) need to answer, for any element of the
integrated schema, *where it came from*: which original object classes an
``E_``/``D_`` class merges, and which original attributes a ``D_``
attribute is composed of (the Component Attribute Screens).  The mappings
of Phase 4 need the same information in the other direction.  Both live
here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ecr.attributes import AttributeRef
from repro.ecr.schema import ObjectRef, Schema
from repro.errors import IntegrationError


@dataclass(frozen=True)
class AttributeOrigin:
    """Provenance of one integrated attribute (Screen 12 content)."""

    node: str
    attribute: str
    components: tuple[AttributeRef, ...]

    @property
    def is_derived(self) -> bool:
        """Whether the attribute merges more than one component."""
        return len(self.components) > 1

    def __str__(self) -> str:
        sources = ", ".join(str(component) for component in self.components)
        return f"{self.node}.{self.attribute} <- {sources}"


@dataclass
class IntegratedNode:
    """Provenance of one integrated object class or relationship set."""

    name: str
    components: list[ObjectRef] = field(default_factory=list)
    #: 'copy' | 'equivalent' | 'derived-parent'
    origin: str = "copy"

    @property
    def is_equivalent(self) -> bool:
        return self.origin == "equivalent"

    @property
    def is_derived(self) -> bool:
        return self.origin == "derived-parent"

    def __str__(self) -> str:
        sources = ", ".join(str(component) for component in self.components)
        return f"{self.name} [{self.origin}] <- {sources}"


@dataclass
class IntegrationResult:
    """Everything Phase 4 produces for one pair (or chain) of schemas."""

    schema: Schema
    #: component object/relationship ref -> integrated structure name
    object_mapping: dict[ObjectRef, str] = field(default_factory=dict)
    #: component attribute ref -> (integrated structure, attribute name)
    attribute_mapping: dict[AttributeRef, tuple[str, str]] = field(
        default_factory=dict
    )
    #: integrated structure name -> provenance record
    nodes: dict[str, IntegratedNode] = field(default_factory=dict)
    #: (integrated structure, attribute) -> provenance record
    attribute_origins: dict[tuple[str, str], AttributeOrigin] = field(
        default_factory=dict
    )
    #: derived-parent lattice edges among relationship sets (child, parent);
    #: object-class lattice edges live in the schema itself as categories
    relationship_lattice: list[tuple[str, str]] = field(default_factory=list)
    #: human-readable action log (the Phase 1-4 trace of Figure 1)
    log: list[str] = field(default_factory=list)

    # -- provenance queries ----------------------------------------------------

    def node_for(self, ref: ObjectRef | str) -> str:
        """Integrated structure holding a component object class."""
        if isinstance(ref, str):
            ref = ObjectRef.parse(ref)
        try:
            return self.object_mapping[ref]
        except KeyError:
            raise IntegrationError(
                f"{ref} was not part of this integration"
            ) from None

    def attribute_for(self, ref: AttributeRef | str) -> tuple[str, str]:
        """Integrated (structure, attribute) holding a component attribute."""
        if isinstance(ref, str):
            ref = AttributeRef.parse(ref)
        try:
            return self.attribute_mapping[ref]
        except KeyError:
            raise IntegrationError(
                f"attribute {ref} was not part of this integration"
            ) from None

    def components_of(self, node_name: str) -> list[ObjectRef]:
        """Original object classes behind an integrated structure."""
        try:
            return list(self.nodes[node_name].components)
        except KeyError:
            raise IntegrationError(
                f"{node_name!r} is not in the integrated schema"
            ) from None

    def component_attributes(
        self, node_name: str, attribute_name: str
    ) -> list[AttributeRef]:
        """Screen 12: the component attributes of an integrated attribute."""
        try:
            origin = self.attribute_origins[(node_name, attribute_name)]
        except KeyError:
            raise IntegrationError(
                f"no attribute {node_name}.{attribute_name} in the result"
            ) from None
        return list(origin.components)

    def derived_parent_nodes(self) -> list[IntegratedNode]:
        """All ``D_`` derived parents, in creation order."""
        return [node for node in self.nodes.values() if node.is_derived]

    def equivalent_nodes(self) -> list[IntegratedNode]:
        """All ``E_`` equivalent merges, in creation order."""
        return [node for node in self.nodes.values() if node.is_equivalent]

    def derived_attributes(self) -> list[AttributeOrigin]:
        """All attributes merged from more than one component."""
        return [
            origin
            for origin in self.attribute_origins.values()
            if origin.is_derived
        ]

    def note(self, message: str) -> None:
        """Append a line to the integration log."""
        self.log.append(message)

    def summary(self) -> str:
        """One-paragraph summary used by examples and the experiment record."""
        return (
            f"{self.schema.summary()}; "
            f"{len(self.equivalent_nodes())} equivalent merges, "
            f"{len(self.derived_parent_nodes())} derived parents, "
            f"{len(self.derived_attributes())} derived attributes"
        )
