"""Naming of integrated, equivalent and derived schema elements.

The paper's conventions, read off Screens 10-12 and Figures 2 and 5:

* ``E_`` prefixes an *equivalent* object class or relationship set produced
  by an ``equals`` merge (``E_Department``, ``E_Stud_Majo``);
* ``D_`` prefixes a *derived* object class or relationship set produced by
  integrating with ``may be``, ``contains``/``contained in`` or ``disjoint
  integrable`` assertions (``D_Stud_Facu``, ``D_Grad_Inst``,
  ``D_Secr_Engi``) and a *derived attribute* (``D_Name``);
* derived names join four-letter abbreviations of the constituent names
  (``Student`` + ``Faculty`` → ``Stud_Facu``).

When all constituent names coincide the full name is kept under the prefix
(``Department`` + ``Department`` → ``E_Department``; ``Name`` + ``Name`` →
``D_Name``).  For merged relationship sets with a shared name the paper
shows ``E_Stud_Majo`` — the abbreviation of the first participant followed
by the abbreviation of the relationship name — which disambiguates merges
of generic relationship names like ``Majors`` or ``Has``.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import IntegrationError

#: Abbreviation length used by the paper (Stud, Facu, Grad, Secr, Engi).
ABBREVIATION_LENGTH = 4


def abbreviate(name: str, length: int = ABBREVIATION_LENGTH) -> str:
    """First ``length`` characters of a name (whole name when shorter)."""
    if not name:
        raise IntegrationError("cannot abbreviate an empty name")
    return name[:length]


def derived_name(names: Sequence[str]) -> str:
    """Name of a derived (``D_``) object class over the given constituents.

    >>> derived_name(["Student", "Faculty"])
    'D_Stud_Facu'
    >>> derived_name(["Name", "Name"])
    'D_Name'
    """
    if not names:
        raise IntegrationError("derived name needs at least one constituent")
    unique = list(dict.fromkeys(names))
    if len(unique) == 1:
        return f"D_{unique[0]}"
    return "D_" + "_".join(abbreviate(name) for name in unique)


def equivalent_name(names: Sequence[str], subject: str | None = None) -> str:
    """Name of an equivalent (``E_``) class merged from the given names.

    ``subject`` is supplied for relationship sets: the name of the first
    participant of the merged set, giving the paper's ``E_Stud_Majo`` for
    two ``Majors`` sets over the integrated ``Student``.

    >>> equivalent_name(["Department", "Department"])
    'E_Department'
    >>> equivalent_name(["Majors", "Majors"], subject="Student")
    'E_Stud_Majo'
    """
    if not names:
        raise IntegrationError("equivalent name needs at least one constituent")
    unique = list(dict.fromkeys(names))
    if subject is not None:
        return f"E_{abbreviate(subject)}_{abbreviate(unique[0])}"
    if len(unique) == 1:
        return f"E_{unique[0]}"
    return "E_" + "_".join(abbreviate(name) for name in unique)


def merged_attribute_name(names: Sequence[str]) -> str:
    """Name of a derived attribute merged from equivalent attributes.

    >>> merged_attribute_name(["Name", "Name"])
    'D_Name'
    >>> merged_attribute_name(["Salary", "Pay"])
    'D_Sala_Pay'
    """
    return derived_name(names)


class NamePool:
    """Allocates unique names within one integrated schema.

    Integration can produce clashes (two unrelated ``Course`` entity sets,
    or a derived name colliding with an original).  The pool resolves them
    deterministically: the first taker keeps the name; later requests get
    ``name_2``, ``name_3``, ...
    """

    def __init__(self, taken: Iterable[str] = ()) -> None:
        self._taken: set[str] = set(taken)

    def claim(self, name: str) -> str:
        """Reserve ``name`` or the first free numbered variant of it."""
        candidate = name
        counter = 2
        while candidate in self._taken:
            candidate = f"{name}_{counter}"
            counter += 1
        self._taken.add(candidate)
        return candidate

    def is_taken(self, name: str) -> bool:
        return name in self._taken
