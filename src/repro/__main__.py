"""``python -m repro`` launches the interactive schema-integration tool."""

from repro.tool.app import main

if __name__ == "__main__":
    raise SystemExit(main())
