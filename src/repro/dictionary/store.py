"""The data dictionary container with JSON persistence.

A :class:`DataDictionary` is the durable form of a design session: the
component schemas, the DDA's equivalence declarations, the specified
assertions (object-class and relationship-set), and any number of named
integration results with their mappings.  It can rebuild the live objects
— registry and networks — so a later sitting (or another tool) resumes
exactly where the previous one stopped.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any

from repro import faults
from repro.assertions.kinds import AssertionKind, Source
from repro.assertions.network import AssertionNetwork
from repro.ecr.attributes import AttributeRef
from repro.ecr.json_io import schema_from_dict, schema_to_dict
from repro.ecr.schema import ObjectRef, Schema
from repro.equivalence.registry import EquivalenceRegistry
from repro.errors import (
    CorruptDictionaryError,
    DictionaryFormatError,
    DictionaryNotFoundError,
    SchemaError,
    UnknownNameError,
)
from repro.dictionary.serialize import (
    mapping_from_dict,
    mapping_to_dict,
    result_from_dict,
    result_to_dict,
)
from repro.integration.mappings import SchemaMapping
from repro.integration.result import IntegrationResult

#: Format marker written into every saved dictionary.  Version 2 added
#: the SHA-256 integrity footer; version-1 saves (no footer) still load.
FORMAT_VERSION = 2

#: Formats :meth:`DataDictionary.from_dict` can read.
READABLE_FORMATS = (1, 2)

#: The integrity footer: the last line of a v2 save file.
FOOTER_PREFIX = "#sha256="


class DataDictionary:
    """Schemas, equivalences, assertions and results, persistently."""

    def __init__(self) -> None:
        self._schemas: dict[str, Schema] = {}
        #: DDA equivalence declarations, in declaration order
        self._equivalences: list[tuple[AttributeRef, AttributeRef]] = []
        #: DDA assertions: (first, second, code, is_relationship)
        self._assertions: list[tuple[ObjectRef, ObjectRef, int, bool]] = []
        self._results: dict[str, IntegrationResult] = {}
        self._mappings: dict[str, dict[str, SchemaMapping]] = {}
        #: federated plans per result name, keyed by request text
        self._plans: dict[str, dict[str, dict[str, Any]]] = {}
        #: the kernel's exported event log + snapshots (None on legacy saves)
        self._kernel: dict[str, Any] | None = None

    # -- content -------------------------------------------------------------

    def add_schema(self, schema: Schema) -> None:
        if schema.name in self._schemas:
            raise SchemaError(f"dictionary already holds {schema.name!r}")
        self._schemas[schema.name] = schema

    def schema(self, name: str) -> Schema:
        try:
            return self._schemas[name]
        except KeyError:
            raise UnknownNameError("schema", name, "dictionary") from None

    def schemas(self) -> list[Schema]:
        return list(self._schemas.values())

    def record_equivalence(
        self, first: AttributeRef | str, second: AttributeRef | str
    ) -> None:
        if isinstance(first, str):
            first = AttributeRef.parse(first)
        if isinstance(second, str):
            second = AttributeRef.parse(second)
        self._equivalences.append((first, second))

    def record_assertion(
        self,
        first: ObjectRef | str,
        second: ObjectRef | str,
        kind: AssertionKind | int,
        relationship: bool = False,
    ) -> None:
        if isinstance(first, str):
            first = ObjectRef.parse(first)
        if isinstance(second, str):
            second = ObjectRef.parse(second)
        if isinstance(kind, AssertionKind):
            kind = kind.code
        AssertionKind.from_code(kind)  # validate
        self._assertions.append((first, second, kind, relationship))

    def store_result(
        self,
        name: str,
        result: IntegrationResult,
        mappings: dict[str, SchemaMapping] | None = None,
    ) -> None:
        self._results[name] = result
        if mappings is not None:
            self._mappings[name] = dict(mappings)

    def result(self, name: str) -> IntegrationResult:
        try:
            return self._results[name]
        except KeyError:
            raise UnknownNameError("result", name, "dictionary") from None

    def mappings_for(self, name: str) -> dict[str, SchemaMapping]:
        return dict(self._mappings.get(name, {}))

    def result_names(self) -> list[str]:
        return list(self._results)

    def store_plan(self, result_name: str, plan) -> None:
        """Persist a federated plan alongside a stored result's mappings.

        ``plan`` is a :class:`~repro.federation.plan.FederatedPlan`; it is
        keyed by its request text, so re-storing a replanned request
        overwrites the stale plan.
        """
        if result_name not in self._results:
            raise UnknownNameError("result", result_name, "dictionary")
        self._plans.setdefault(result_name, {})[
            str(plan.request)
        ] = plan.to_dict()

    def plans_for(self, result_name: str) -> dict[str, Any]:
        """Stored federated plans for a result, keyed by request text.

        Values are :class:`~repro.federation.plan.FederatedPlan` objects.
        """
        from repro.federation.plan import FederatedPlan

        return {
            request: FederatedPlan.from_dict(entry)
            for request, entry in self._plans.get(result_name, {}).items()
        }

    def store_kernel(self, state: dict[str, Any]) -> None:
        """Persist a kernel's event log + snapshots + cursors.

        ``state`` is :meth:`repro.kernel.Kernel.export_state` output; a
        session restored from it replays from the nearest snapshot and
        keeps its history (undo/redo work across save/load).
        """
        self._kernel = dict(state)

    def kernel_state(self) -> dict[str, Any] | None:
        """The stored kernel export, or ``None`` for legacy dictionaries."""
        return dict(self._kernel) if self._kernel is not None else None

    # -- live-object reconstruction -----------------------------------------------

    def build_registry(self) -> EquivalenceRegistry:
        """Registry over all schemas with every recorded equivalence."""
        registry = EquivalenceRegistry(self.schemas())
        for first, second in self._equivalences:
            registry.declare_equivalent(first, second)
        return registry

    def build_networks(self) -> tuple[AssertionNetwork, AssertionNetwork]:
        """(object network, relationship network) with everything replayed."""
        objects = AssertionNetwork()
        relationships = AssertionNetwork()
        for schema in self.schemas():
            objects.seed_schema(schema)
            for relationship in schema.relationship_sets():
                relationships.add_object(
                    ObjectRef(schema.name, relationship.name)
                )
        for first, second, code, is_relationship in self._assertions:
            network = relationships if is_relationship else objects
            existing = network.assertion_for(first, second)
            if (
                existing is not None
                and existing.source is not Source.DERIVED
                and existing.kind.code != code
            ):
                # a later recording of the same pair wins (review-and-modify)
                network.respecify(first, second, code)
            else:
                network.specify(first, second, code)
        return objects, relationships

    # -- persistence -----------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "format": FORMAT_VERSION,
            "schemas": [schema_to_dict(schema) for schema in self.schemas()],
            "equivalences": [
                [str(first), str(second)]
                for first, second in self._equivalences
            ],
            "assertions": [
                [str(first), str(second), code, relationship]
                for first, second, code, relationship in self._assertions
            ],
            "results": {
                name: result_to_dict(result)
                for name, result in self._results.items()
            },
            "mappings": {
                name: {
                    component: mapping_to_dict(mapping)
                    for component, mapping in mappings.items()
                }
                for name, mappings in self._mappings.items()
            },
            # optional: absent when no federated plans were stored, so
            # dictionaries written by older builds load unchanged
            **(
                {"plans": {
                    name: dict(plans)
                    for name, plans in self._plans.items()
                }}
                if self._plans
                else {}
            ),
            # optional: absent on legacy saves without an event history
            **({"kernel": self._kernel} if self._kernel else {}),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "DataDictionary":
        version = data.get("format")
        if version not in READABLE_FORMATS:
            raise DictionaryFormatError(version, READABLE_FORMATS)
        dictionary = cls()
        for entry in data.get("schemas", ()):
            dictionary.add_schema(schema_from_dict(entry))
        for first, second in data.get("equivalences", ()):
            dictionary.record_equivalence(first, second)
        for first, second, code, relationship in data.get("assertions", ()):
            dictionary.record_assertion(first, second, code, relationship)
        for name, entry in data.get("results", {}).items():
            dictionary._results[name] = result_from_dict(entry)
        for name, mappings in data.get("mappings", {}).items():
            dictionary._mappings[name] = {
                component: mapping_from_dict(mapping_data)
                for component, mapping_data in mappings.items()
            }
        for name, plans in data.get("plans", {}).items():
            dictionary._plans[name] = {
                request: dict(entry) for request, entry in plans.items()
            }
        kernel = data.get("kernel")
        if kernel is not None:
            dictionary._kernel = dict(kernel)
        return dictionary

    def save(self, path: str | Path) -> None:
        """Write the dictionary as checksummed JSON, atomically.

        The JSON body is followed by an integrity footer line
        (``#sha256=<hex digest of the body>``); the whole text is
        written to a temporary sibling, fsynced, and renamed over
        ``path`` — a crash mid-save leaves either the old save or the
        new one, never a torn file, and a damaged file is detected at
        load time instead of silently misparsed.
        """
        path = Path(path)
        body = json.dumps(self.to_dict(), indent=2)
        digest = hashlib.sha256(body.encode("utf-8")).hexdigest()
        data = f"{body}\n{FOOTER_PREFIX}{digest}\n".encode("utf-8")
        tmp = path.with_name(path.name + ".tmp")
        with faults.open_tracked(tmp, "wb") as handle:
            handle.write(data, point="dict.save.write")
            faults.crashpoint("dict.save.after_write")
            handle.fsync()
        faults.crashpoint("dict.save.before_replace")
        faults.replace(tmp, path)
        faults.crashpoint("dict.save.after_replace")
        faults.fsync_dir(path.parent)

    @classmethod
    def load(cls, path: str | Path) -> "DataDictionary":
        """Read a dictionary saved by :meth:`save`.

        Raises :class:`~repro.errors.DictionaryNotFoundError` when the
        file is missing, :class:`~repro.errors.CorruptDictionaryError`
        when it is damaged (bad JSON, checksum mismatch, or a v2 body
        whose footer was truncated away), and
        :class:`~repro.errors.DictionaryFormatError` when its ``format``
        marker is unknown to this build.  Version-1 saves (pre-footer)
        load unchanged.
        """
        path = Path(path)
        try:
            return cls.from_dict(read_save(path))
        except DictionaryFormatError as exc:
            raise DictionaryFormatError(
                exc.version, exc.readable, path
            ) from None


def read_save(path: Path) -> dict[str, Any]:
    """Read and integrity-check one save file; returns the parsed body.

    The verification order matters: a checksum mismatch is reported
    before any parse attempt (a bit flip may still leave valid JSON),
    and a v2 body without its footer is corruption (truncation chopped
    the footer off), not a v1 file.
    """
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        raise DictionaryNotFoundError(path) from None
    except OSError as exc:
        raise CorruptDictionaryError(f"unreadable: {exc}", path) from exc
    except UnicodeDecodeError as exc:
        # a bit flip can break the encoding before it breaks the JSON
        raise CorruptDictionaryError(f"not valid UTF-8: {exc}", path) from None
    body, digest = _split_footer(text)
    if digest is not None:
        actual = hashlib.sha256(body.encode("utf-8")).hexdigest()
        if actual != digest:
            raise CorruptDictionaryError(
                f"checksum mismatch (footer {digest[:12]}…, "
                f"body {actual[:12]}…)",
                path,
            )
    try:
        data = json.loads(body)
    except json.JSONDecodeError as exc:
        raise CorruptDictionaryError(f"invalid JSON: {exc}", path) from None
    if not isinstance(data, dict):
        raise CorruptDictionaryError(
            f"top level is {type(data).__name__}, expected an object", path
        )
    version = data.get("format")
    if version not in READABLE_FORMATS:
        raise DictionaryFormatError(version, READABLE_FORMATS, path)
    if isinstance(version, int) and version >= 2 and digest is None:
        raise CorruptDictionaryError(
            "integrity footer missing from a format>=2 save "
            "(truncated file?)",
            path,
        )
    return data


def _split_footer(text: str) -> tuple[str, str | None]:
    """Split save text into (JSON body, footer digest or ``None``)."""
    stripped = text.rstrip("\n")
    newline = stripped.rfind("\n")
    last_line = stripped[newline + 1 :]
    if not last_line.startswith(FOOTER_PREFIX):
        return text, None
    return stripped[: max(newline, 0)], last_line[len(FOOTER_PREFIX) :]
