"""The data dictionary: persistent state shared between design tools.

The paper's future work: *"A common representation of the database objects
and the mappings between them could be kept in a data dictionary available
to all of the tools."*  This package provides that dictionary — a
serialisable container holding component schemas, the DDA's attribute
equivalences, the specified assertions, and integration results with their
mappings — with JSON save/load and reconstruction of the live objects
(:class:`~repro.equivalence.registry.EquivalenceRegistry`,
:class:`~repro.assertions.network.AssertionNetwork`).
"""

from repro.dictionary.store import DataDictionary
from repro.dictionary.serialize import (
    result_to_dict,
    result_from_dict,
    mapping_to_dict,
    mapping_from_dict,
)

__all__ = [
    "DataDictionary",
    "result_to_dict",
    "result_from_dict",
    "mapping_to_dict",
    "mapping_from_dict",
]
