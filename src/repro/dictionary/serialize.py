"""Serialisation of integration results and mappings.

Complements :mod:`repro.ecr.json_io` (schemas) so that everything the
tools exchange — integrated schemas with provenance, and the
component→integrated mappings — can live in the data dictionary.
"""

from __future__ import annotations

from typing import Any

from repro.ecr.attributes import AttributeRef
from repro.ecr.json_io import schema_from_dict, schema_to_dict
from repro.ecr.schema import ObjectRef
from repro.errors import SchemaError
from repro.integration.mappings import SchemaMapping
from repro.integration.result import (
    AttributeOrigin,
    IntegratedNode,
    IntegrationResult,
)


def result_to_dict(result: IntegrationResult) -> dict[str, Any]:
    """Serialise an integration result, provenance included."""
    return {
        "schema": schema_to_dict(result.schema),
        "object_mapping": {
            str(ref): node for ref, node in result.object_mapping.items()
        },
        "attribute_mapping": {
            str(ref): list(target)
            for ref, target in result.attribute_mapping.items()
        },
        "nodes": [
            {
                "name": node.name,
                "origin": node.origin,
                "components": [str(ref) for ref in node.components],
            }
            for node in result.nodes.values()
        ],
        "attribute_origins": [
            {
                "node": origin.node,
                "attribute": origin.attribute,
                "components": [str(ref) for ref in origin.components],
            }
            for origin in result.attribute_origins.values()
        ],
        "relationship_lattice": [list(edge) for edge in result.relationship_lattice],
        "log": list(result.log),
    }


def result_from_dict(data: dict[str, Any]) -> IntegrationResult:
    """Inverse of :func:`result_to_dict`."""
    try:
        result = IntegrationResult(schema_from_dict(data["schema"]))
    except KeyError as exc:
        raise SchemaError(f"result data missing {exc}") from exc
    for text, node in data.get("object_mapping", {}).items():
        result.object_mapping[ObjectRef.parse(text)] = node
    for text, target in data.get("attribute_mapping", {}).items():
        result.attribute_mapping[AttributeRef.parse(text)] = (
            target[0],
            target[1],
        )
    for entry in data.get("nodes", ()):
        result.nodes[entry["name"]] = IntegratedNode(
            entry["name"],
            [ObjectRef.parse(text) for text in entry.get("components", ())],
            entry.get("origin", "copy"),
        )
    for entry in data.get("attribute_origins", ()):
        origin = AttributeOrigin(
            entry["node"],
            entry["attribute"],
            tuple(
                AttributeRef.parse(text)
                for text in entry.get("components", ())
            ),
        )
        result.attribute_origins[(origin.node, origin.attribute)] = origin
    for edge in data.get("relationship_lattice", ()):
        result.relationship_lattice.append((edge[0], edge[1]))
    result.log.extend(data.get("log", ()))
    return result


def mapping_to_dict(mapping: SchemaMapping) -> dict[str, Any]:
    """Serialise one component schema's mapping."""
    return {
        "component_schema": mapping.component_schema,
        "integrated_schema": mapping.integrated_schema,
        "objects": dict(mapping.objects),
        "attributes": [
            {"object": key[0], "attribute": key[1], "target": list(target)}
            for key, target in mapping.attributes.items()
        ],
    }


def mapping_from_dict(data: dict[str, Any]) -> SchemaMapping:
    """Inverse of :func:`mapping_to_dict`."""
    try:
        mapping = SchemaMapping(
            data["component_schema"], data["integrated_schema"]
        )
    except KeyError as exc:
        raise SchemaError(f"mapping data missing {exc}") from exc
    mapping.objects.update(data.get("objects", {}))
    for entry in data.get("attributes", ()):
        mapping.attributes[(entry["object"], entry["attribute"])] = (
            entry["target"][0],
            entry["target"][1],
        )
    return mapping
