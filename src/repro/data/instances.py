"""In-memory instances of an ECR schema, with a request executor.

The model follows the ECR semantics of Section 2 of the paper:

* an **instance** is a real-world entity with attribute values; inserting
  it into a category automatically makes it a member of every ancestor
  object class (a category is a *subset* of its parents' domains);
* a **link** is one relationship instance connecting member instances of
  the participating object classes; and
* **requests** (:class:`repro.query.ast.Request`) are evaluated by
  membership, projection, comparison and relationship semi-joins.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.ecr.schema import Schema
from repro.ecr.walk import inherited_attributes, superclass_closure
from repro.errors import SchemaError
from repro.query.ast import Comparison, Request


@dataclass
class Instance:
    """One entity: an id, its home (most specific) class and its values."""

    instance_id: int
    home_class: str
    values: dict[str, object] = field(default_factory=dict)

    def project(self, attributes: tuple[str, ...]) -> tuple[object, ...]:
        return tuple(self.values.get(name) for name in attributes)


@dataclass
class Link:
    """One relationship instance: leg label → instance id, plus values."""

    relationship: str
    legs: dict[str, int]
    values: dict[str, object] = field(default_factory=dict)


class InstanceStore:
    """A populated ECR schema."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._instances: dict[int, Instance] = {}
        self._members: dict[str, set[int]] = {
            structure.name: set() for structure in schema.object_classes()
        }
        self._links: dict[str, list[Link]] = {
            relationship.name: []
            for relationship in schema.relationship_sets()
        }
        self._next_id = itertools.count(1)

    # -- population ------------------------------------------------------------

    def insert(
        self,
        class_name: str,
        values: dict[str, object],
        partial: bool = False,
    ) -> int:
        """Insert an entity as a member of ``class_name`` and its ancestors.

        ``values`` must cover exactly the class's attributes (inherited ones
        included); each value must belong to its attribute's domain.  With
        ``partial=True`` missing attributes become ``None`` — used when
        migrating a component database whose view did not carry every
        attribute of the integrated class.
        """
        structure = self.schema.object_class(class_name)
        expected = {
            attribute.name: attribute
            for attribute in inherited_attributes(self.schema, class_name)
        }
        unknown = set(values) - set(expected)
        if unknown:
            raise SchemaError(
                f"{class_name!r} has no attribute(s) {sorted(unknown)}"
            )
        stored: dict[str, object] = {}
        for name, attribute in expected.items():
            if name not in values or values[name] is None:
                if not partial and name not in values:
                    raise SchemaError(f"missing value for {class_name}.{name}")
                stored[name] = values.get(name)
                continue
            if not attribute.domain.contains_value(values[name]):
                raise SchemaError(
                    f"value {values[name]!r} is outside the domain of "
                    f"{class_name}.{name} ({attribute.domain})"
                )
            stored[name] = values[name]
        instance_id = next(self._next_id)
        self._instances[instance_id] = Instance(instance_id, class_name, stored)
        self._members[class_name].add(instance_id)
        for ancestor in superclass_closure(self.schema, class_name):
            self._members[ancestor].add(instance_id)
        return instance_id

    def find_duplicate(
        self, class_name: str, values: dict[str, object]
    ) -> Instance | None:
        """An existing member equal on every shared key attribute, if any.

        Used by migration to merge two appearances of the same real-world
        entity (the equals-merge semantics: identical domains).  Returns
        ``None`` when the class has no key attributes or no key values are
        supplied.
        """
        keys = [
            attribute.name
            for attribute in inherited_attributes(self.schema, class_name)
            if attribute.is_key
        ]
        supplied = {
            name: values[name]
            for name in keys
            if values.get(name) is not None
        }
        if not supplied:
            return None
        for member in self.members(class_name):
            if all(
                member.values.get(name) == value
                for name, value in supplied.items()
            ):
                return member
        return None

    def fill_values(self, instance_id: int, values: dict[str, object]) -> None:
        """Fill an instance's missing (None) attributes from ``values``."""
        instance = self.instance(instance_id)
        for name, value in values.items():
            if value is not None and instance.values.get(name) is None:
                instance.values[name] = value

    def reclassify_down(self, instance_id: int, class_name: str) -> None:
        """Add membership in a subclass (and its ancestors) to an instance.

        Migration uses this when the same real-world entity appears once as
        a parent-class member and once as a category member.
        """
        self.schema.object_class(class_name)
        instance = self.instance(instance_id)
        self._members[class_name].add(instance_id)
        for ancestor in superclass_closure(self.schema, class_name):
            self._members[ancestor].add(instance_id)
        # the home class is the most specific one: move it down when the
        # old home is an ancestor of the new class
        if instance.home_class in superclass_closure(self.schema, class_name):
            instance.home_class = class_name

    def connect(
        self,
        relationship_name: str,
        legs: dict[str, int],
        values: dict[str, object] | None = None,
    ) -> Link:
        """Create a relationship instance over existing entities."""
        relationship = self.schema.relationship_set(relationship_name)
        expected = {leg.label: leg for leg in relationship.participations}
        if set(legs) != set(expected):
            raise SchemaError(
                f"{relationship_name!r} needs legs {sorted(expected)}, "
                f"got {sorted(legs)}"
            )
        for label, instance_id in legs.items():
            target = expected[label].object_name
            if instance_id not in self._members.get(target, ()):
                raise SchemaError(
                    f"instance {instance_id} is not a member of {target!r}"
                )
        link = Link(relationship_name, dict(legs), dict(values or {}))
        self._links[relationship_name].append(link)
        return link

    # -- inspection -------------------------------------------------------------

    def members(self, class_name: str) -> list[Instance]:
        """All member instances of an object class, in id order."""
        if class_name not in self._members:
            raise SchemaError(f"no object class {class_name!r}")
        return [
            self._instances[instance_id]
            for instance_id in sorted(self._members[class_name])
        ]

    def links(self, relationship_name: str) -> list[Link]:
        if relationship_name not in self._links:
            raise SchemaError(f"no relationship set {relationship_name!r}")
        return list(self._links[relationship_name])

    def instance(self, instance_id: int) -> Instance:
        try:
            return self._instances[instance_id]
        except KeyError:
            raise SchemaError(f"no instance {instance_id}") from None

    def size(self) -> tuple[int, int]:
        """(entities, links) counts."""
        return (
            len(self._instances),
            sum(len(links) for links in self._links.values()),
        )

    # -- request execution ---------------------------------------------------------

    def select(self, request: Request) -> list[tuple[object, ...]]:
        """Answer a request: a sorted list of projected value tuples.

        Projection follows the request's attribute order; an empty
        projection returns one empty tuple per qualifying instance.
        """
        request.validate_against(self.schema)
        candidates = self.members(request.object_name)
        rows: list[tuple[object, ...]] = []
        for instance in candidates:
            if not all(
                _satisfies(instance.values.get(c.attribute), c)
                for c in request.conditions
            ):
                continue
            if not all(
                self._joined(instance.instance_id, join.relationship, join.target)
                for join in request.joins
            ):
                continue
            rows.append(instance.project(request.attributes))
        return sorted(rows, key=_sort_key)

    def _joined(
        self, instance_id: int, relationship_name: str, target: str
    ) -> bool:
        """Semi-join: the instance is linked to some member of ``target``."""
        target_members = self._members[target]
        for link in self._links[relationship_name]:
            ids = set(link.legs.values())
            if instance_id in ids and ids & target_members - {instance_id}:
                return True
            if instance_id in ids and instance_id in target_members and len(ids) == 1:
                return True
        return False


def _satisfies(value: object, condition: Comparison) -> bool:
    """Evaluate one comparison with numeric coercion where sensible."""
    if value is None:
        return False
    left, right = value, condition.value
    try:
        left_num = float(left)  # type: ignore[arg-type]
        right_num = float(right)
        left, right = left_num, right_num
    except (TypeError, ValueError):
        left, right = str(left), str(right)
    operator = condition.operator
    if operator == "=":
        return left == right
    if operator == "!=":
        return left != right
    if operator == "<":
        return left < right
    if operator == ">":
        return left > right
    if operator == "<=":
        return left <= right
    return left >= right


def _sort_key(row: tuple[object, ...]) -> tuple:
    return tuple((value is None, str(value)) for value in row)
