"""An instance-level substrate: populated ECR databases.

The paper's Phase 4 exists so that "requests in an operational system"
can be translated after integration.  To *verify* that translation — not
just rewrite syntax — this package provides a small in-memory database
over an ECR schema:

* :class:`InstanceStore` — entities (with IS-A membership closure),
  relationship links and a request executor for the
  :mod:`repro.query` language;
* :func:`populate_store` — seeded random population of any schema;
* :func:`migrate_store` — push a component database through a
  :class:`~repro.integration.mappings.SchemaMapping` into the integrated
  schema, merging duplicate real-world entities by key; and
* :func:`federated_answer` — execute a global request by routing it to
  component stores and unioning the answers.  This is the **sequential
  oracle** for the federated query engine: :mod:`repro.federation` adds
  concurrency, fault tolerance and assertion-aware merging, and its
  healthy-run answers are property-tested to equal this function's.

With these, the tests can check the semantic property the paper's
mappings promise: a view request answered on the view's database equals
the rewritten request answered on the integrated database.
"""

from repro.data.instances import Instance, InstanceStore, Link
from repro.data.populate import populate_store
from repro.data.migrate import federated_answer, merge_stores, migrate_store

__all__ = [
    "Instance",
    "InstanceStore",
    "Link",
    "populate_store",
    "migrate_store",
    "merge_stores",
    "federated_answer",
]
